"""Tests for the functional crossbar array and the tile cost model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bnn.xnor_ops import xnor_popcount
from repro.crossbar.array import CrossbarArray
from repro.crossbar.noise import CrossbarNoiseModel, NoiseConfig
from repro.crossbar.tile import TIA_POWER_W, CrossbarTile, TileConfig
from repro.devices.opcm import OPCMConfig


class TestCrossbarArrayFunctional:
    def _tacitmap_layout(self, weights: np.ndarray) -> np.ndarray:
        """Columns hold [w; ~w] — the TacitMap vertical layout."""
        return np.vstack([weights.T, 1 - weights.T])

    def test_ideal_vmm_counts_match_popcount(self, rng):
        length, outputs = 24, 6
        weights = rng.integers(0, 2, size=(outputs, length))
        array = CrossbarArray(2 * length, outputs, technology="epcm", rng=0)
        array.program(self._tacitmap_layout(weights))
        x = rng.integers(0, 2, size=length)
        counts = array.match_counts(np.concatenate([x, 1 - x]), ideal=True)
        expected = np.array([xnor_popcount(x, w) for w in weights])
        assert np.array_equal(counts, expected)

    def test_noisy_vmm_counts_match_popcount(self, rng):
        """Default device noise levels must not corrupt binary read-out."""
        length, outputs = 64, 16
        weights = rng.integers(0, 2, size=(outputs, length))
        array = CrossbarArray(2 * length, outputs, technology="epcm", rng=1)
        array.program(self._tacitmap_layout(weights))
        x = rng.integers(0, 2, size=length)
        counts = array.match_counts(np.concatenate([x, 1 - x]))
        expected = np.array([xnor_popcount(x, w) for w in weights])
        assert np.array_equal(counts, expected)

    def test_opcm_array_matches_popcount(self, rng):
        length, outputs = 32, 8
        weights = rng.integers(0, 2, size=(outputs, length))
        array = CrossbarArray(2 * length, outputs, technology="opcm", rng=2)
        array.program(self._tacitmap_layout(weights))
        x = rng.integers(0, 2, size=length)
        counts = array.match_counts(np.concatenate([x, 1 - x]))
        expected = np.array([xnor_popcount(x, w) for w in weights])
        assert np.array_equal(counts, expected)

    def test_multi_vector_input_processes_independently(self, rng):
        """A 2-D input (one row per WDM wavelength) gives one count row each."""
        length, outputs, k = 16, 5, 4
        weights = rng.integers(0, 2, size=(outputs, length))
        array = CrossbarArray(2 * length, outputs, technology="opcm", rng=3)
        array.program(self._tacitmap_layout(weights))
        xs = rng.integers(0, 2, size=(k, length))
        counts = array.match_counts(np.hstack([xs, 1 - xs]))
        expected = np.array(
            [[xnor_popcount(x, w) for w in weights] for x in xs]
        )
        assert counts.shape == (k, outputs)
        assert np.array_equal(counts, expected)

    @given(st.integers(4, 48), st.integers(1, 8), st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_counts_equal_popcount(self, length, outputs, seed):
        rng = np.random.default_rng(seed)
        weights = rng.integers(0, 2, size=(outputs, length))
        array = CrossbarArray(2 * length, outputs, technology="epcm", rng=seed)
        array.program(np.vstack([weights.T, 1 - weights.T]))
        x = rng.integers(0, 2, size=length)
        counts = array.match_counts(np.concatenate([x, 1 - x]))
        expected = np.array([xnor_popcount(x, w) for w in weights])
        assert np.array_equal(counts, expected)

    def test_program_pattern_padding(self, rng):
        array = CrossbarArray(16, 16, rng=4)
        pattern = rng.integers(0, 2, size=(8, 4))
        array.program(pattern)
        stored = array.stored_bits
        assert np.array_equal(stored[:8, :4], pattern)
        assert stored[8:, :].sum() == 0 and stored[:, 4:].sum() == 0

    def test_program_too_large_rejected(self):
        array = CrossbarArray(8, 8)
        with pytest.raises(ValueError):
            array.program(np.zeros((9, 8), dtype=np.int8))

    def test_input_length_mismatch_rejected(self, rng):
        array = CrossbarArray(8, 4)
        array.program(rng.integers(0, 2, size=(8, 4)))
        with pytest.raises(ValueError):
            array.match_counts(np.zeros(7, dtype=np.int8))

    def test_invalid_technology_rejected(self):
        with pytest.raises(ValueError):
            CrossbarArray(8, 8, technology="reram")

    def test_mismatched_device_config_rejected(self):
        with pytest.raises(TypeError):
            CrossbarArray(8, 8, technology="epcm", device_config=OPCMConfig())

    def test_strong_noise_can_corrupt_counts(self, rng):
        """Sanity check that the noise path actually does something."""
        length, outputs = 64, 8
        weights = rng.integers(0, 2, size=(outputs, length))
        noisy = CrossbarArray(
            2 * length, outputs, technology="epcm",
            noise=NoiseConfig(thermal_sigma=0.2), rng=5,
        )
        noisy.program(np.vstack([weights.T, 1 - weights.T]))
        x = rng.integers(0, 2, size=length)
        counts = noisy.match_counts(np.concatenate([x, 1 - x]))
        expected = np.array([xnor_popcount(x, w) for w in weights])
        assert not np.array_equal(counts, expected)


class TestNoiseModel:
    def test_ideal_config_passthrough(self, rng):
        model = CrossbarNoiseModel(NoiseConfig())
        outputs = rng.normal(size=10)
        assert np.array_equal(model.perturb(outputs, 1.0), outputs)

    def test_thermal_noise_perturbs(self, rng):
        model = CrossbarNoiseModel(NoiseConfig(thermal_sigma=0.1), rng=0)
        outputs = rng.normal(size=10)
        assert not np.array_equal(model.perturb(outputs, 1.0), outputs)

    def test_ir_drop_weights_monotone(self):
        model = CrossbarNoiseModel(NoiseConfig(ir_drop_alpha=0.2))
        weights = model.ir_drop_weights(10)
        assert np.all(np.diff(weights) <= 0)
        assert weights[0] == 1.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            NoiseConfig(thermal_sigma=-0.1)
        with pytest.raises(ValueError):
            NoiseConfig(ir_drop_alpha=1.0)


class TestTileCosts:
    def test_adc_tile_vmm_cost_positive(self):
        tile = CrossbarTile(TileConfig())
        cost = tile.vmm_cost(256, 256)
        assert cost["latency"] > 0 and cost["energy"] > 0
        assert cost["adc_conversions"] == 256

    def test_adc_sharing_increases_latency_not_energy(self):
        private = CrossbarTile(TileConfig(columns_per_adc=1))
        shared = CrossbarTile(TileConfig(columns_per_adc=8))
        cost_private = private.vmm_cost(256, 256)
        cost_shared = shared.vmm_cost(256, 256)
        assert cost_shared["latency"] > cost_private["latency"]
        assert cost_shared["energy"] == pytest.approx(cost_private["energy"])

    def test_wdm_on_epcm_rejected(self):
        with pytest.raises(ValueError):
            TileConfig(technology="epcm", wdm_capacity=16)

    def test_wdm_vmm_amortises_array_read(self):
        """Processing K vectors in one activation costs less than K activations."""
        tile = CrossbarTile(TileConfig(technology="opcm", wdm_capacity=16))
        one = tile.vmm_cost(256, 256, wavelengths=1)
        sixteen = tile.vmm_cost(256, 256, wavelengths=16)
        assert sixteen["latency"] < 16 * one["latency"]
        assert sixteen["energy"] < 16 * one["energy"]

    def test_wavelengths_beyond_capacity_rejected(self):
        tile = CrossbarTile(TileConfig(technology="opcm", wdm_capacity=4))
        with pytest.raises(ValueError):
            tile.vmm_cost(16, 16, wavelengths=8)

    def test_pcsa_tile_row_cost(self):
        tile = CrossbarTile(TileConfig(readout="pcsa"))
        cost = tile.pcsa_row_cost(128)
        assert cost["latency"] > 0 and cost["energy"] > 0
        assert cost["adc_conversions"] == 0

    def test_pcsa_cost_on_adc_tile_rejected(self):
        tile = CrossbarTile(TileConfig(readout="adc"))
        with pytest.raises(RuntimeError):
            tile.pcsa_row_cost(16)

    def test_vmm_cost_on_pcsa_tile_rejected(self):
        tile = CrossbarTile(TileConfig(readout="pcsa"))
        with pytest.raises(RuntimeError):
            tile.vmm_cost(16, 16)

    def test_pcsa_step_cheaper_than_adc_vmm_energy(self):
        """One baseline step is much cheaper than one TacitMap VMM — the
        baseline just needs n of them instead of 1."""
        adc_tile = CrossbarTile(TileConfig(readout="adc"))
        pcsa_tile = CrossbarTile(TileConfig(readout="pcsa"))
        assert (
            pcsa_tile.pcsa_row_cost(256)["energy"]
            < adc_tile.vmm_cost(256, 256)["energy"]
        )

    def test_write_cost_scales_with_block(self):
        tile = CrossbarTile(TileConfig())
        small = tile.write_cost(16, 16)
        large = tile.write_cost(32, 16)
        assert large["latency"] > small["latency"]
        assert large["energy"] > small["energy"]

    def test_write_cost_validates_extents(self):
        tile = CrossbarTile(TileConfig(rows=64, cols=64))
        with pytest.raises(ValueError):
            tile.write_cost(0, 16)
        with pytest.raises(ValueError):
            tile.write_cost(16, 65)

    def test_receiver_static_power_equation_two(self):
        """Eq. 2: P = N x 2 mW for the N column TIAs."""
        tile = CrossbarTile(TileConfig(technology="opcm", cols=128))
        assert tile.receiver_static_power() == pytest.approx(128 * TIA_POWER_W)

    def test_epcm_tile_has_no_tias(self):
        assert CrossbarTile(TileConfig(technology="epcm")).receiver_static_power() == 0

    def test_num_adcs_with_sharing(self):
        assert TileConfig(cols=256, columns_per_adc=8).num_adcs == 32
        assert TileConfig(cols=256, columns_per_adc=1).num_adcs == 256

    def test_optical_read_latency_below_electronic(self):
        epcm = CrossbarTile(TileConfig(technology="epcm"))
        opcm = CrossbarTile(TileConfig(technology="opcm"))
        assert (
            opcm.vmm_cost(256, 256)["latency"]
            < epcm.vmm_cost(256, 256)["latency"]
        )
