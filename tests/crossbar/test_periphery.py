"""Tests for DAC, ADC, PCSA and cell-structure models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crossbar.adc import ADCConfig, SarADC, required_adc_bits
from repro.crossbar.cell import (
    CellType,
    OneT1RCell,
    TwoT2RCell,
    devices_for_bits,
)
from repro.crossbar.dac import DAC, DACConfig
from repro.crossbar.sense_amplifier import PCSAConfig, PrechargeSenseAmplifier


class TestDAC:
    def test_binary_dac_levels(self):
        dac = DAC(DACConfig(resolution_bits=1, v_max=0.2))
        out = dac.convert(np.array([0, 1, 1, 0]))
        assert np.allclose(out, np.array([0.0, 0.2, 0.2, 0.0]))

    def test_multibit_dac_scaling(self):
        dac = DAC(DACConfig(resolution_bits=2, v_max=0.3))
        out = dac.convert(np.array([0, 1, 2, 3]))
        assert np.allclose(out, np.array([0.0, 0.1, 0.2, 0.3]))

    def test_out_of_range_code_rejected(self):
        dac = DAC(DACConfig(resolution_bits=1))
        with pytest.raises(ValueError):
            dac.convert(np.array([0, 2]))

    def test_conversion_cost_latency_is_parallel(self):
        dac = DAC()
        assert (
            dac.conversion_cost(10)["latency"]
            == dac.conversion_cost(100)["latency"]
        )

    def test_conversion_cost_energy_scales(self):
        dac = DAC()
        assert (
            dac.conversion_cost(100)["energy"]
            == pytest.approx(10 * dac.conversion_cost(10)["energy"])
        )

    def test_zero_conversions_cost_nothing(self):
        cost = DAC().conversion_cost(0)
        assert cost["latency"] == 0.0 and cost["energy"] == 0.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            DACConfig(resolution_bits=0)


class TestADC:
    def test_quantize_round_trip_small_counts(self):
        adc = SarADC(ADCConfig(resolution_bits=8))
        full_scale = 255.0
        values = np.arange(0, 256, dtype=float)
        codes = adc.quantize(values, full_scale)
        recovered = adc.dequantize(codes, full_scale)
        assert np.allclose(recovered, values, atol=0.5)

    def test_quantize_saturates(self):
        adc = SarADC(ADCConfig(resolution_bits=4))
        codes = adc.quantize(np.array([-1.0, 100.0]), full_scale=10.0)
        assert codes[0] == 0 and codes[1] == 15

    def test_conversion_latency_scales_with_bits(self):
        fast = ADCConfig(resolution_bits=4)
        slow = ADCConfig(resolution_bits=8)
        assert slow.conversion_latency == pytest.approx(2 * fast.conversion_latency)

    def test_conversion_cost_serialises(self):
        adc = SarADC()
        one = adc.conversion_cost(1)
        ten = adc.conversion_cost(10)
        assert ten["latency"] == pytest.approx(10 * one["latency"])
        assert ten["energy"] == pytest.approx(10 * one["energy"])

    def test_required_adc_bits(self):
        assert required_adc_bits(1) == 1
        assert required_adc_bits(255) == 8
        assert required_adc_bits(256) == 9
        with pytest.raises(ValueError):
            required_adc_bits(0)

    def test_invalid_full_scale_rejected(self):
        adc = SarADC()
        with pytest.raises(ValueError):
            adc.quantize(np.array([1.0]), full_scale=0.0)


class TestPCSA:
    def test_sense_prefers_larger_current(self):
        pcsa = PrechargeSenseAmplifier(PCSAConfig(offset_sigma=0.0))
        bits = pcsa.sense(np.array([2.0, 0.5]), np.array([1.0, 1.0]))
        assert np.array_equal(bits, np.array([1, 0]))

    def test_sense_shape_mismatch_raises(self):
        pcsa = PrechargeSenseAmplifier()
        with pytest.raises(ValueError):
            pcsa.sense(np.array([1.0]), np.array([1.0, 2.0]))

    def test_offset_can_flip_marginal_decisions(self):
        pcsa = PrechargeSenseAmplifier(
            PCSAConfig(offset_sigma=5.0), rng=np.random.default_rng(0)
        )
        true_current = np.full(200, 1.001)
        complement_current = np.full(200, 1.0)
        bits = pcsa.sense(true_current, complement_current)
        assert 0 < bits.sum() < 200  # some flipped, some not

    def test_sense_cost_parallel_latency(self):
        pcsa = PrechargeSenseAmplifier()
        assert (
            pcsa.sense_cost(8)["latency"] == pcsa.sense_cost(128)["latency"]
        )

    def test_pcsa_energy_far_below_adc(self):
        """The SA-vs-ADC energy gap drives the Fig. 8 result."""
        assert (
            PCSAConfig().energy_per_sense < ADCConfig().energy_per_conversion / 10
        )


class TestCells:
    def test_device_counts_match_between_mappings(self):
        """Sec. III: both mappings use the same total number of devices."""
        bits = 4096
        assert devices_for_bits(OneT1RCell(), bits) == devices_for_bits(
            TwoT2RCell(), bits
        )

    def test_1t1r_needs_double_cells(self):
        assert OneT1RCell().cells_for_bits(100) == 200
        assert TwoT2RCell().cells_for_bits(100) == 100

    def test_cell_types(self):
        assert OneT1RCell().cell_type is CellType.ONE_T_ONE_R
        assert TwoT2RCell().cell_type is CellType.TWO_T_TWO_R

    def test_readout_pairing(self):
        assert OneT1RCell().readout == "ADC"
        assert TwoT2RCell().readout == "PCSA"

    def test_2t2r_cell_larger_than_1t1r(self):
        assert TwoT2RCell().area_um2 > OneT1RCell().area_um2

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            OneT1RCell().cells_for_bits(-1)

    def test_invalid_feature_size_rejected(self):
        with pytest.raises(ValueError):
            OneT1RCell(feature_size_nm=0.0)
