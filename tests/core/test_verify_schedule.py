"""Tests for functional layer equivalence and operation-count schedules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bnn.networks import build_network, list_networks
from repro.bnn.workload import LayerSpec, extract_workload
from repro.core.custbinarymap import CustBinaryMap
from repro.core.mapping_base import TileShape
from repro.core.schedule import (
    build_layer_schedule,
    build_network_schedule,
)
from repro.core.tacitmap import TacitMap
from repro.core.verify import execute_mapped_layer, verify_layer_equivalence


def _random_bipolar(rng, shape):
    return np.where(rng.random(shape) > 0.5, 1, -1).astype(np.int8)


class TestLayerEquivalence:
    def test_tacitmap_reference_equivalence(self, rng):
        weights = _random_bipolar(rng, (30, 80))
        inputs = _random_bipolar(rng, (4, 80))
        result = verify_layer_equivalence(
            TacitMap(TileShape(64, 16)), weights, inputs
        )
        assert result["equivalent"]
        assert result["num_tiles"] == 6  # 3 segments x 2 output groups

    def test_tacitmap_analog_equivalence_epcm(self, rng):
        weights = _random_bipolar(rng, (12, 48))
        inputs = _random_bipolar(rng, (3, 48))
        result = verify_layer_equivalence(
            TacitMap(TileShape(128, 16)), weights, inputs,
            backend="analog", technology="epcm", rng=7,
        )
        assert result["equivalent"]

    def test_tacitmap_analog_equivalence_opcm(self, rng):
        weights = _random_bipolar(rng, (12, 48))
        inputs = _random_bipolar(rng, (3, 48))
        result = verify_layer_equivalence(
            TacitMap(TileShape(128, 16)), weights, inputs,
            backend="analog", technology="opcm", rng=11,
        )
        assert result["equivalent"]

    def test_custbinarymap_reference_equivalence(self, rng):
        weights = _random_bipolar(rng, (20, 64))
        inputs = _random_bipolar(rng, (2, 64))
        result = verify_layer_equivalence(
            CustBinaryMap(TileShape(16, 32)), weights, inputs
        )
        assert result["equivalent"]

    def test_both_mappings_agree_with_each_other(self, rng):
        weights = _random_bipolar(rng, (10, 40))
        inputs = _random_bipolar(rng, (5, 40))
        tacit = verify_layer_equivalence(TacitMap(), weights, inputs)
        baseline = verify_layer_equivalence(CustBinaryMap(), weights, inputs)
        assert np.array_equal(tacit["counts"], baseline["counts"])

    def test_custbinarymap_analog_backend_rejected(self, rng):
        weights = _random_bipolar(rng, (4, 8))
        inputs = _random_bipolar(rng, (1, 8))
        with pytest.raises(ValueError):
            verify_layer_equivalence(
                CustBinaryMap(), weights, inputs, backend="analog"
            )

    def test_counts_within_bounds(self, rng):
        weights = _random_bipolar(rng, (6, 32))
        inputs = _random_bipolar(rng, (2, 32))
        result = verify_layer_equivalence(TacitMap(), weights, inputs)
        assert result["counts"].min() >= 0
        assert result["counts"].max() <= 32

    @given(st.integers(1, 20), st.integers(2, 60), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_tacitmap_equivalence(self, outputs, length, seed):
        rng = np.random.default_rng(seed)
        weights = _random_bipolar(rng, (outputs, length))
        inputs = _random_bipolar(rng, (2, length))
        result = verify_layer_equivalence(
            TacitMap(TileShape(64, 16)), weights, inputs
        )
        assert result["equivalent"]

    @given(st.integers(1, 20), st.integers(2, 60), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_property_custbinarymap_equivalence(self, outputs, length, seed):
        rng = np.random.default_rng(seed)
        weights = _random_bipolar(rng, (outputs, length))
        inputs = _random_bipolar(rng, (1, length))
        result = verify_layer_equivalence(
            CustBinaryMap(TileShape(16, 16)), weights, inputs
        )
        assert result["equivalent"]

    def test_execute_mapped_layer_rejects_unknown_mapping(self, rng):
        class FakeMapping:  # not a DataMapping subclass the executor knows
            pass

        weights = np.ones((2, 4), dtype=np.int8)
        layer = TacitMap().map_layer(weights)
        with pytest.raises(TypeError):
            execute_mapped_layer(
                FakeMapping(), layer, weights, np.ones((1, 4), dtype=np.int8)
            )


def _linear_spec(n, m, v=1, binary=True):
    return LayerSpec(
        name="test", kind="linear", is_binary=binary,
        vector_length=m, num_weight_vectors=n, num_input_vectors=v,
    )


class TestLayerSchedules:
    def test_tacitmap_single_tile_counts(self):
        spec = _linear_spec(n=100, m=100)
        schedule = build_layer_schedule(
            spec, mapping="tacitmap", tile_shape=TileShape(256, 256)
        )
        assert schedule.num_tiles == 1
        assert schedule.crossbar_activations == 1
        assert schedule.sequential_steps == 1
        assert schedule.adc_conversions == 100
        assert schedule.pcsa_senses == 0
        assert schedule.cells_programmed == 2 * 100 * 100

    def test_custbinarymap_single_tile_counts(self):
        spec = _linear_spec(n=100, m=100)
        schedule = build_layer_schedule(
            spec, mapping="custbinarymap", tile_shape=TileShape(256, 256)
        )
        assert schedule.num_tiles == 1
        assert schedule.crossbar_activations == 100  # one per weight vector
        assert schedule.sequential_steps == 100
        assert schedule.pcsa_senses == 100 * 100
        assert schedule.adc_conversions == 0
        assert schedule.digital_adds == 99 * 100
        assert schedule.cells_programmed == 100 * 100

    def test_step_ratio_equals_weight_vector_count(self):
        """Sec. III claim: TacitMap is up to n x fewer steps on one tile."""
        spec = _linear_spec(n=200, m=128)
        tacit = build_layer_schedule(spec, mapping="tacitmap")
        baseline = build_layer_schedule(spec, mapping="custbinarymap")
        assert baseline.sequential_steps == 200 * tacit.sequential_steps

    def test_wdm_reduces_steps_for_conv_layers(self):
        spec = LayerSpec(
            name="conv", kind="conv", is_binary=True,
            vector_length=288, num_weight_vectors=64, num_input_vectors=1024,
        )
        no_wdm = build_layer_schedule(spec, mapping="tacitmap", wdm_capacity=1)
        wdm = build_layer_schedule(spec, mapping="tacitmap", wdm_capacity=16)
        assert no_wdm.sequential_steps == 1024
        assert wdm.sequential_steps == 64  # ceil(1024 / 16)
        # the TIA/ADC chain runs once per activation window, so grouping K
        # vectors also divides the conversion count by K (Sec. VI-B)
        assert wdm.adc_conversions == no_wdm.adc_conversions // 16

    def test_wdm_on_baseline_rejected(self):
        with pytest.raises(ValueError):
            build_layer_schedule(
                _linear_spec(8, 8), mapping="custbinarymap", wdm_capacity=16
            )

    def test_non_binary_layer_rejected(self):
        with pytest.raises(ValueError):
            build_layer_schedule(
                _linear_spec(8, 8, binary=False), mapping="tacitmap"
            )

    def test_unknown_mapping_rejected(self):
        with pytest.raises(ValueError):
            build_layer_schedule(_linear_spec(8, 8), mapping="magic")

    def test_invalid_wdm_capacity_rejected(self):
        with pytest.raises(ValueError):
            build_layer_schedule(_linear_spec(8, 8), mapping="tacitmap",
                                 wdm_capacity=0)

    def test_segmented_vector_adds_partial_sums(self):
        spec = _linear_spec(n=10, m=1000)
        schedule = build_layer_schedule(
            spec, mapping="tacitmap", tile_shape=TileShape(256, 256)
        )
        assert schedule.num_tiles == 8  # ceil(1000/128) segments
        assert schedule.digital_adds == 7 * 10  # (segments-1) * outputs

    def test_large_fc_layer_tiling(self):
        spec = _linear_spec(n=2000, m=784)
        schedule = build_layer_schedule(
            spec, mapping="tacitmap", tile_shape=TileShape(256, 256)
        )
        assert schedule.num_tiles == 7 * 8  # ceil(784/128) x ceil(2000/256)


class TestNetworkSchedules:
    @pytest.mark.parametrize("name", list_networks())
    def test_all_networks_schedulable(self, name):
        workload = extract_workload(build_network(name))
        for mapping in ("tacitmap", "custbinarymap"):
            schedule = build_network_schedule(workload, mapping=mapping)
            assert schedule.total_sequential_steps > 0
            assert schedule.total_tiles > 0
            assert len(schedule.layer_schedules) == len(workload.binary_layers)

    def test_tacitmap_always_fewer_steps_than_baseline(self):
        for name in list_networks():
            workload = extract_workload(build_network(name))
            tacit = build_network_schedule(workload, mapping="tacitmap")
            baseline = build_network_schedule(workload, mapping="custbinarymap")
            assert (
                tacit.total_sequential_steps < baseline.total_sequential_steps
            ), name

    def test_wdm_never_increases_steps(self):
        for name in list_networks():
            workload = extract_workload(build_network(name))
            plain = build_network_schedule(workload, mapping="tacitmap")
            wdm = build_network_schedule(
                workload, mapping="tacitmap", wdm_capacity=16
            )
            assert wdm.total_sequential_steps <= plain.total_sequential_steps

    def test_wdm_helps_convolutional_networks_most(self):
        """CNNs have many activation vectors per layer, so the WDM step
        reduction approaches K; MLPs (one vector per layer) gain nothing."""
        cnn = extract_workload(build_network("CNN-L"))
        mlp = extract_workload(build_network("MLP-L"))
        cnn_ratio = (
            build_network_schedule(cnn, mapping="tacitmap").total_sequential_steps
            / build_network_schedule(
                cnn, mapping="tacitmap", wdm_capacity=16
            ).total_sequential_steps
        )
        mlp_ratio = (
            build_network_schedule(mlp, mapping="tacitmap").total_sequential_steps
            / build_network_schedule(
                mlp, mapping="tacitmap", wdm_capacity=16
            ).total_sequential_steps
        )
        assert cnn_ratio > 8
        assert mlp_ratio == pytest.approx(1.0)

    def test_baseline_energy_relevant_counts(self):
        workload = extract_workload(build_network("MLP-S"))
        baseline = build_network_schedule(workload, mapping="custbinarymap")
        tacit = build_network_schedule(workload, mapping="tacitmap")
        # baseline does popcounts digitally, TacitMap converts through ADCs
        assert baseline.total_pcsa_senses > 0 and baseline.total_adc_conversions == 0
        assert tacit.total_adc_conversions > 0 and tacit.total_pcsa_senses == 0
