"""Tests for the layer-schedule memoisation in repro.core.schedule."""

from __future__ import annotations

import pytest

from repro.bnn.workload import LayerSpec, get_workload
from repro.core.mapping_base import TileShape
from repro.core.schedule import (
    build_layer_schedule,
    clear_schedule_cache,
    schedule_cache_stats,
)


@pytest.fixture()
def spec():
    return LayerSpec(name="layer01:BinaryLinear", kind="linear", is_binary=True,
                     vector_length=512, num_weight_vectors=256,
                     num_input_vectors=1)


def test_memoised_calls_return_shared_schedule(spec):
    clear_schedule_cache()
    first = build_layer_schedule(spec, mapping="tacitmap", wdm_capacity=16)
    second = build_layer_schedule(spec, mapping="tacitmap", wdm_capacity=16)
    assert first is second
    stats = schedule_cache_stats()
    assert stats == {"hits": 1, "misses": 1, "size": 1}


def test_distinct_parameters_are_distinct_entries(spec):
    clear_schedule_cache()
    tacit = build_layer_schedule(spec, mapping="tacitmap")
    wdm = build_layer_schedule(spec, mapping="tacitmap", wdm_capacity=16)
    small_tile = build_layer_schedule(spec, mapping="tacitmap",
                                      tile_shape=TileShape(64, 64))
    assert len({id(s) for s in (tacit, wdm, small_tile)}) == 3
    assert schedule_cache_stats()["size"] == 3


def test_unmemoised_build_matches_cached_result(spec):
    clear_schedule_cache()
    cached = build_layer_schedule(spec, mapping="custbinarymap")
    fresh = build_layer_schedule(spec, mapping="custbinarymap", memoize=False)
    assert fresh is not cached
    assert fresh == cached
    # memoize=False neither reads nor grows the cache
    assert schedule_cache_stats() == {"hits": 0, "misses": 1, "size": 1}


def test_validation_errors_bypass_cache(spec):
    clear_schedule_cache()
    with pytest.raises(ValueError):
        build_layer_schedule(spec, mapping="nonsense")
    with pytest.raises(ValueError):
        build_layer_schedule(spec, mapping="custbinarymap", wdm_capacity=4)
    assert schedule_cache_stats()["size"] == 0


def test_get_workload_is_memoised():
    first = get_workload("MLP-S")
    second = get_workload("MLP-S")
    assert first is second
    assert first.binary_layers
