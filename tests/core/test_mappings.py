"""Tests for TacitMap / CustBinaryMap placement and input encoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.custbinarymap import CustBinaryMap
from repro.core.mapping_base import TileShape, split_ranges
from repro.core.tacitmap import TacitMap


class TestTileShapeAndRanges:
    def test_default_tile_is_256(self):
        shape = TileShape()
        assert shape.rows == 256 and shape.cols == 256

    def test_invalid_tile_rejected(self):
        with pytest.raises(ValueError):
            TileShape(rows=0, cols=16)

    def test_split_ranges_cover_everything(self):
        ranges = split_ranges(10, 4)
        assert ranges == [(0, 4), (4, 8), (8, 10)]

    def test_split_ranges_exact_division(self):
        assert split_ranges(8, 4) == [(0, 4), (4, 8)]

    def test_split_ranges_invalid(self):
        with pytest.raises(ValueError):
            split_ranges(0, 4)
        with pytest.raises(ValueError):
            split_ranges(4, 0)


class TestTacitMapPlacement:
    def test_single_tile_layout(self, rng):
        weights = rng.integers(0, 2, size=(8, 16))
        mapping = TacitMap(TileShape(64, 16))
        layer = mapping.map_layer(weights, layer_name="fc1")
        assert layer.num_tiles == 1
        tile = layer.tiles[0]
        # top half holds the weights transposed, bottom half the complement
        assert np.array_equal(tile.bits[:16], weights.T)
        assert np.array_equal(tile.bits[16:], 1 - weights.T)

    def test_each_weight_bit_occupies_two_cells(self, rng):
        weights = rng.integers(0, 2, size=(4, 8))
        mapping = TacitMap(TileShape(64, 8))
        layer = mapping.map_layer(weights)
        assert layer.cells_used == 2 * weights.size

    def test_vector_longer_than_tile_splits_into_segments(self, rng):
        weights = rng.integers(0, 2, size=(4, 100))
        mapping = TacitMap(TileShape(64, 8))  # 32 elements per segment
        layer = mapping.map_layer(weights)
        assert layer.num_vector_segments == 4  # ceil(100 / 32)
        assert layer.num_output_groups == 1
        assert layer.num_tiles == 4

    def test_many_outputs_split_into_groups(self, rng):
        weights = rng.integers(0, 2, size=(40, 16))
        mapping = TacitMap(TileShape(64, 16))
        layer = mapping.map_layer(weights)
        assert layer.num_output_groups == 3  # ceil(40 / 16)
        assert layer.num_vector_segments == 1

    def test_tile_grid_positions_unique(self, rng):
        weights = rng.integers(0, 2, size=(40, 100))
        mapping = TacitMap(TileShape(64, 16))
        layer = mapping.map_layer(weights)
        positions = [tile.grid_position for tile in layer.tiles]
        assert len(positions) == len(set(positions))
        assert layer.num_tiles == layer.num_vector_segments * layer.num_output_groups

    def test_segment_slices_cover_vector(self, rng):
        weights = rng.integers(0, 2, size=(4, 100))
        mapping = TacitMap(TileShape(64, 8))
        layer = mapping.map_layer(weights)
        covered = sorted(
            tile.vector_slice for tile in layer.tiles
        )
        assert covered[0][0] == 0
        assert covered[-1][1] == 100

    def test_encode_input_concatenates_complement(self):
        mapping = TacitMap(TileShape(64, 8))
        x = np.array([1, 0, 1, 1], dtype=np.int8)
        encoded = mapping.encode_input(x, (0, 4))
        assert np.array_equal(encoded, np.array([1, 0, 1, 1, 0, 1, 0, 0]))

    def test_encode_input_slice(self):
        mapping = TacitMap()
        x = np.array([1, 0, 1, 1, 0, 0], dtype=np.int8)
        encoded = mapping.encode_input(x, (2, 5))
        assert np.array_equal(encoded, np.array([1, 1, 0, 0, 0, 1]))

    def test_encode_input_batch(self, rng):
        mapping = TacitMap()
        xs = rng.integers(0, 2, size=(3, 10))
        encoded = mapping.encode_input(xs, (0, 10))
        assert encoded.shape == (3, 20)
        assert np.array_equal(encoded[:, 10:], 1 - xs)

    def test_encode_input_invalid_slice_rejected(self):
        mapping = TacitMap()
        with pytest.raises(ValueError):
            mapping.encode_input(np.array([1, 0]), (0, 3))

    def test_steps_per_input_vector_is_one(self):
        assert TacitMap().steps_per_input_vector(1000) == 1

    def test_rejects_non_binary_weights(self):
        with pytest.raises(ValueError):
            TacitMap().map_layer(np.array([[0, 2], [1, 0]]))

    def test_rejects_one_dimensional_weights(self):
        with pytest.raises(ValueError):
            TacitMap().map_layer(np.array([0, 1, 1]))

    def test_tile_counts_reference_matches_popcount(self, rng):
        weights = rng.integers(0, 2, size=(6, 20))
        mapping = TacitMap(TileShape(64, 8))
        layer = mapping.map_layer(weights)
        x = rng.integers(0, 2, size=20)
        total = np.zeros(6, dtype=np.int64)
        for tile in layer.tiles:
            encoded = mapping.encode_input(x, tile.vector_slice)
            partial = TacitMap.tile_counts_reference(tile.bits, encoded)
            start, stop = tile.output_slice
            total[start:stop] += partial
        expected = np.array([(weights[j] == x).sum() for j in range(6)])
        assert np.array_equal(total, expected)


class TestCustBinaryMapPlacement:
    def test_single_tile_layout_stores_rows(self, rng):
        weights = rng.integers(0, 2, size=(8, 16))
        mapping = CustBinaryMap(TileShape(16, 16))
        layer = mapping.map_layer(weights)
        assert layer.num_tiles == 1
        assert np.array_equal(layer.tiles[0].bits, weights)

    def test_more_outputs_than_rows_splits_groups(self, rng):
        weights = rng.integers(0, 2, size=(40, 16))
        mapping = CustBinaryMap(TileShape(16, 16))
        layer = mapping.map_layer(weights)
        assert layer.num_output_groups == 3

    def test_long_vectors_split_over_columns(self, rng):
        weights = rng.integers(0, 2, size=(8, 100))
        mapping = CustBinaryMap(TileShape(16, 32))
        layer = mapping.map_layer(weights)
        assert layer.num_vector_segments == 4

    def test_encode_input_is_plain_slice(self):
        mapping = CustBinaryMap()
        x = np.array([1, 0, 1, 1, 0], dtype=np.int8)
        assert np.array_equal(mapping.encode_input(x, (1, 4)), np.array([0, 1, 1]))

    def test_steps_scale_with_weight_vectors(self):
        mapping = CustBinaryMap()
        assert mapping.steps_per_input_vector(128) == 128
        with pytest.raises(ValueError):
            mapping.steps_per_input_vector(0)

    def test_row_xnor_reference(self):
        stored = np.array([1, 0, 1, 0], dtype=np.int8)
        inputs = np.array([1, 1, 1, 0], dtype=np.int8)
        assert np.array_equal(
            CustBinaryMap.row_xnor_reference(stored, inputs),
            np.array([1, 0, 1, 1]),
        )

    def test_popcount_tree_costs(self):
        assert CustBinaryMap.popcount_tree_adds(64) == 63
        assert CustBinaryMap.popcount_tree_depth(64) == 6
        assert CustBinaryMap.popcount_tree_depth(1) == 0
        with pytest.raises(ValueError):
            CustBinaryMap.popcount_tree_adds(0)

    def test_step_count_comparison_matches_paper_claim(self):
        """Sec. III: TacitMap should be up to n x fewer steps per vector."""
        n = 256
        assert (
            CustBinaryMap().steps_per_input_vector(n)
            == n * TacitMap().steps_per_input_vector(n)
        )
