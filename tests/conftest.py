"""Shared pytest fixtures for the reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bnn.datasets import synthetic_cifar10, synthetic_mnist


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Session-wide deterministic random generator."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_mnist():
    """A small synthetic MNIST split shared across tests (cheap to build)."""
    return synthetic_mnist(train_size=256, test_size=128, seed=3)


@pytest.fixture(scope="session")
def small_cifar():
    """A small synthetic CIFAR-10 split shared across tests."""
    return synthetic_cifar10(train_size=128, test_size=64, seed=5)
