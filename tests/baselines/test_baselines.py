"""Tests for the Baseline-ePCM wrapper and the GPU roofline model."""

from __future__ import annotations

import pytest

from repro.arch.config import tacitmap_epcm_config
from repro.baselines.baseline_epcm import BaselineEPCMAccelerator
from repro.baselines.gpu import GPUConfig, GPUModel
from repro.bnn.networks import build_network
from repro.bnn.workload import extract_workload


@pytest.fixture(scope="module")
def workloads():
    return {
        name: extract_workload(build_network(name))
        for name in ("CNN-S", "CNN-L", "MLP-S", "MLP-L")
    }


class TestBaselineEPCM:
    def test_default_uses_custbinarymap(self):
        assert BaselineEPCMAccelerator().config.mapping == "custbinarymap"

    def test_rejects_non_baseline_config(self):
        with pytest.raises(ValueError):
            BaselineEPCMAccelerator(tacitmap_epcm_config())

    def test_inference_report(self, workloads):
        report = BaselineEPCMAccelerator().run_inference(workloads["CNN-S"])
        assert report.latency.total > 0
        assert report.energy.total > 0

    def test_serialization_factor_larger_for_mlps(self, workloads):
        """MLP layers store many weight vectors per activation vector, so
        the baseline's row-serial read-out hurts them most (Sec. VI-A)."""
        baseline = BaselineEPCMAccelerator()
        assert (
            baseline.serialization_factor(workloads["MLP-L"])
            > baseline.serialization_factor(workloads["CNN-S"])
        )

    def test_accepts_model_instance(self):
        report = BaselineEPCMAccelerator().run_inference(build_network("MLP-S"))
        assert report.network_name == "MLP-S"


class TestGPUModel:
    def test_report_terms_positive(self, workloads):
        report = GPUModel().run_inference(workloads["CNN-S"])
        assert report.kernel_overhead > 0
        assert report.memory_time > 0
        assert report.compute_time > 0
        assert report.latency == pytest.approx(
            report.kernel_overhead + report.memory_time + report.compute_time
        )

    def test_per_layer_sums_to_latency(self, workloads):
        report = GPUModel().run_inference(workloads["MLP-L"])
        assert sum(report.per_layer.values()) == pytest.approx(report.latency)

    def test_larger_networks_take_longer(self, workloads):
        gpu = GPUModel()
        assert (
            gpu.run_inference(workloads["CNN-L"]).latency
            > gpu.run_inference(workloads["CNN-S"]).latency
        )
        assert (
            gpu.run_inference(workloads["MLP-L"]).latency
            > gpu.run_inference(workloads["MLP-S"]).latency
        )

    def test_energy_scales_with_latency(self, workloads):
        gpu = GPUModel()
        latency = gpu.run_inference(workloads["MLP-S"]).latency
        assert gpu.energy(workloads["MLP-S"]) == pytest.approx(
            latency * gpu.config.board_power_w
        )

    def test_conv_layers_carry_lowering_overhead(self, workloads):
        cheap = GPUModel(GPUConfig(conv_lowering_overhead=0.0))
        costly = GPUModel(GPUConfig(conv_lowering_overhead=500e-6))
        assert (
            costly.run_inference(workloads["CNN-S"]).latency
            > cheap.run_inference(workloads["CNN-S"]).latency
        )
        # MLPs have no conv layers, so the knob must not change them
        assert costly.run_inference(workloads["MLP-S"]).latency == pytest.approx(
            cheap.run_inference(workloads["MLP-S"]).latency
        )

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            GPUConfig(peak_binary_ops_per_s=0)
        with pytest.raises(ValueError):
            GPUConfig(kernels_per_conv_layer=0)

    def test_accepts_model_instance(self):
        report = GPUModel().run_inference(build_network("MLP-S"))
        assert report.network_name == "MLP-S"


class TestFigSevenCrossover:
    """The Fig. 7 marker-4 observation: the CIM baseline does not always beat
    the GPU — it wins on the small CNN and loses on the large MLPs."""

    def test_baseline_beats_gpu_on_small_cnn(self, workloads):
        baseline = BaselineEPCMAccelerator().run_inference(workloads["CNN-S"])
        gpu = GPUModel().run_inference(workloads["CNN-S"])
        assert baseline.latency.total < gpu.latency

    def test_gpu_beats_baseline_on_large_mlp(self, workloads):
        baseline = BaselineEPCMAccelerator().run_inference(workloads["MLP-L"])
        gpu = GPUModel().run_inference(workloads["MLP-L"])
        assert gpu.latency < baseline.latency.total
