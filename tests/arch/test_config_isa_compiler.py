"""Tests for accelerator configurations, the ISA, and the compiler."""

from __future__ import annotations

import pytest

from repro.arch.compiler import compile_network
from repro.arch.config import (
    AcceleratorConfig,
    DigitalUnitConfig,
    InterconnectConfig,
    all_design_configs,
    baseline_epcm_config,
    einsteinbarrier_config,
    tacitmap_epcm_config,
)
from repro.arch.isa import Instruction, LayerBlock, Opcode, total_count
from repro.bnn.networks import build_network
from repro.bnn.workload import extract_workload


class TestConfigs:
    def test_three_designs_exist(self):
        names = [config.name for config in all_design_configs()]
        assert names == ["Baseline-ePCM", "TacitMap-ePCM", "EinsteinBarrier"]

    def test_baseline_uses_custbinarymap_and_pcsa(self):
        config = baseline_epcm_config()
        assert config.mapping == "custbinarymap"
        assert config.tile.readout == "pcsa"
        assert config.wdm_capacity == 1

    def test_tacitmap_epcm_uses_adc_readout(self):
        config = tacitmap_epcm_config()
        assert config.mapping == "tacitmap"
        assert config.tile.readout == "adc"
        assert config.technology == "epcm"

    def test_einsteinbarrier_uses_opcm_and_wdm(self):
        config = einsteinbarrier_config()
        assert config.technology == "opcm"
        assert config.wdm_capacity == 16
        assert config.tile.wdm_capacity == 16

    def test_same_pcm_for_baseline_and_tacitmap(self):
        """Sec. V-B: the same PCM configuration backs both ePCM designs."""
        baseline = baseline_epcm_config().tile.resolved_device_config
        tacit = tacitmap_epcm_config().tile.resolved_device_config
        assert baseline == tacit

    def test_wdm_on_epcm_rejected(self):
        with pytest.raises(ValueError):
            tacitmap_epcm_config().with_overrides(wdm_capacity=16)

    def test_wdm_on_baseline_mapping_rejected(self):
        config = einsteinbarrier_config()
        with pytest.raises(ValueError):
            config.with_overrides(mapping="custbinarymap")

    def test_with_overrides_creates_modified_copy(self):
        base = einsteinbarrier_config()
        modified = base.with_overrides(wdm_capacity=8, name="EB-K8")
        assert modified.wdm_capacity == 8 and base.wdm_capacity == 16

    def test_crossbar_size_parameter(self):
        config = einsteinbarrier_config(crossbar_size=128)
        assert config.tile.rows == 128 and config.tile.cols == 128

    def test_digital_unit_validation(self):
        with pytest.raises(ValueError):
            DigitalUnitConfig(clock_hz=0)
        with pytest.raises(ValueError):
            DigitalUnitConfig(macs_per_cycle=0)

    def test_interconnect_validation(self):
        with pytest.raises(ValueError):
            InterconnectConfig(bandwidth_bytes_per_s=0)

    def test_invalid_mapping_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(
                name="x", mapping="magic", technology="epcm",
                tile=baseline_epcm_config().tile,
            )


class TestISA:
    def test_instruction_counts(self):
        block = LayerBlock(
            layer_name="l", is_binary=True,
            instructions=[
                Instruction(Opcode.MVM, count=10),
                Instruction(Opcode.MVM, count=5),
                Instruction(Opcode.ALU_ADD, count=3),
            ],
        )
        assert block.count(Opcode.MVM) == 15
        assert block.count(Opcode.ALU_ADD) == 3
        assert block.count(Opcode.LOAD) == 0

    def test_total_count_across_blocks(self):
        blocks = [
            LayerBlock("a", True, [Instruction(Opcode.MVM, count=2)]),
            LayerBlock("b", True, [Instruction(Opcode.MVM, count=3)]),
        ]
        assert total_count(blocks, Opcode.MVM) == 5

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.MVM, count=-1)

    def test_operand_defaults(self):
        instruction = Instruction(Opcode.LOAD, operands={"bytes": 128})
        assert instruction.operand("bytes") == 128
        assert instruction.operand("missing", 7) == 7


class TestCompiler:
    @pytest.fixture(scope="class")
    def workload(self):
        return extract_workload(build_network("CNN-S"))

    def test_one_block_per_mac_layer(self, workload):
        program = compile_network(workload, einsteinbarrier_config())
        assert len(program.blocks) == len(workload.layers)

    def test_binary_blocks_have_schedules(self, workload):
        program = compile_network(workload, einsteinbarrier_config())
        for block in program.binary_blocks:
            assert block.layer_name in program.schedules

    def test_full_precision_layers_become_macs(self, workload):
        program = compile_network(workload, baseline_epcm_config())
        assert program.count(Opcode.ALU_MAC) == workload.full_precision_macs

    def test_baseline_emits_row_reads_not_vmm(self, workload):
        program = compile_network(workload, baseline_epcm_config())
        assert program.count(Opcode.ROW_READ) > 0
        assert program.count(Opcode.MVM) == 0
        assert program.count(Opcode.MMM) == 0

    def test_tacitmap_epcm_emits_mvm(self, workload):
        program = compile_network(workload, tacitmap_epcm_config())
        assert program.count(Opcode.MVM) > 0
        assert program.count(Opcode.MMM) == 0
        assert program.count(Opcode.ROW_READ) == 0

    def test_einsteinbarrier_emits_mmm_for_conv_layers(self, workload):
        program = compile_network(workload, einsteinbarrier_config())
        assert program.count(Opcode.MMM) > 0

    def test_einsteinbarrier_mlp_layers_stay_mvm(self):
        """MLP layers have a single activation vector, so there is nothing to
        group into an MMM even with WDM available."""
        workload = extract_workload(build_network("MLP-S"))
        program = compile_network(workload, einsteinbarrier_config())
        assert program.count(Opcode.MMM) == 0
        assert program.count(Opcode.MVM) > 0

    def test_wdm_reduces_crossbar_instruction_count(self, workload):
        plain = compile_network(workload, tacitmap_epcm_config())
        wdm = compile_network(workload, einsteinbarrier_config())
        assert (
            wdm.count(Opcode.MMM) + wdm.count(Opcode.MVM)
            < plain.count(Opcode.MVM)
        )

    def test_every_block_moves_data(self, workload):
        program = compile_network(workload, einsteinbarrier_config())
        for block in program.blocks:
            assert block.count(Opcode.LOAD) >= 1
            assert block.count(Opcode.STORE) >= 1

    def test_baseline_emits_popcount_adds(self, workload):
        program = compile_network(workload, baseline_epcm_config())
        assert program.count(Opcode.ALU_ADD) > 0


class TestFullPrecisionCompilation:
    """Direct coverage of the digital (non-binary) layer lowering."""

    def _full_precision_spec(self, *, kind="linear", vector_length=784,
                             num_weight_vectors=128, num_input_vectors=1):
        from repro.bnn.workload import LayerSpec

        return LayerSpec(
            name="layer00:Linear", kind=kind, is_binary=False,
            vector_length=vector_length,
            num_weight_vectors=num_weight_vectors,
            num_input_vectors=num_input_vectors,
        )

    def test_block_structure_load_mac_store(self):
        from repro.arch.compiler import _compile_full_precision_layer

        spec = self._full_precision_spec()
        config = baseline_epcm_config()
        block = _compile_full_precision_layer(spec, config)
        assert not block.is_binary
        assert [i.opcode for i in block.instructions] \
            == [Opcode.LOAD, Opcode.ALU_MAC, Opcode.STORE]

    def test_mac_count_matches_spec(self):
        from repro.arch.compiler import _compile_full_precision_layer

        spec = self._full_precision_spec(vector_length=100,
                                         num_weight_vectors=10,
                                         num_input_vectors=7)
        block = _compile_full_precision_layer(spec, baseline_epcm_config())
        assert block.count(Opcode.ALU_MAC) == 100 * 10 * 7 == spec.macs

    def test_byte_operands_respect_full_precision_width(self):
        from repro.arch.compiler import _compile_full_precision_layer

        spec = self._full_precision_spec(vector_length=16,
                                         num_weight_vectors=4,
                                         num_input_vectors=3)
        config = baseline_epcm_config().with_overrides(full_precision_bits=8)
        block = _compile_full_precision_layer(spec, config)
        load, _, store = block.instructions
        assert load.operands["bytes"] == 16 * 3       # one byte per element
        assert store.operands["bytes"] == 4 * 3
        wide = baseline_epcm_config().with_overrides(full_precision_bits=16)
        wide_block = _compile_full_precision_layer(spec, wide)
        assert wide_block.instructions[0].operands["bytes"] == 2 * 16 * 3

    def test_odd_bit_widths_round_bytes_up(self):
        from repro.arch.compiler import _compile_full_precision_layer

        spec = self._full_precision_spec(vector_length=3,
                                         num_weight_vectors=3,
                                         num_input_vectors=1)
        config = baseline_epcm_config().with_overrides(full_precision_bits=5)
        block = _compile_full_precision_layer(spec, config)
        # ceil(3 elements * 5 bits / 8) = 2 bytes
        assert block.instructions[0].operands["bytes"] == 2

    def test_full_precision_blocks_identical_across_designs(self):
        spec = self._full_precision_spec()
        workload_name = spec.name
        for config in all_design_configs():
            from repro.arch.compiler import _compile_full_precision_layer

            block = _compile_full_precision_layer(spec, config)
            assert block.layer_name == workload_name
            assert block.count(Opcode.ALU_MAC) == spec.macs

    def test_compile_network_routes_non_binary_layers_here(self):
        workload = extract_workload(build_network("MLP-S"))
        program = compile_network(workload, baseline_epcm_config())
        full_precision = program.full_precision_blocks
        # first and last layers of every evaluation network stay digital
        assert len(full_precision) == 2
        for block in full_precision:
            assert block.count(Opcode.ALU_MAC) > 0
            assert block.layer_name not in program.schedules
