"""Tests for the latency/energy models, the hierarchy, and the façade."""

from __future__ import annotations

import pytest

from repro.arch.accelerator import AcceleratorModel
from repro.arch.config import (
    baseline_epcm_config,
    einsteinbarrier_config,
    tacitmap_epcm_config,
)
from repro.arch.energy import EnergyModel
from repro.arch.hierarchy import ECore, EinsteinBarrierSystem, Node, Tile, VCore
from repro.arch.timing import LatencyModel
from repro.bnn.networks import build_network, list_networks
from repro.bnn.workload import extract_workload


@pytest.fixture(scope="module")
def workloads():
    return {
        name: extract_workload(build_network(name))
        for name in ("CNN-S", "CNN-L", "MLP-S", "MLP-L")
    }


@pytest.fixture(scope="module")
def models():
    return {
        "baseline": AcceleratorModel(baseline_epcm_config()),
        "tacitmap": AcceleratorModel(tacitmap_epcm_config()),
        "einsteinbarrier": AcceleratorModel(einsteinbarrier_config()),
    }


class TestLatencyModel:
    def test_breakdown_components_positive(self, workloads):
        latency = LatencyModel(tacitmap_epcm_config()).estimate(workloads["CNN-S"])
        assert latency.binary_compute > 0
        assert latency.full_precision_compute > 0
        assert latency.data_movement > 0
        assert latency.total == pytest.approx(
            latency.binary_compute + latency.full_precision_compute
            + latency.data_movement
        )

    def test_per_layer_sums_to_total(self, workloads):
        latency = LatencyModel(einsteinbarrier_config()).estimate(workloads["CNN-S"])
        assert sum(latency.per_layer.values()) == pytest.approx(
            latency.total, rel=1e-9
        )

    def test_weight_programming_excluded_from_total(self, workloads):
        latency = LatencyModel(tacitmap_epcm_config()).estimate(workloads["MLP-S"])
        assert latency.weight_programming > 0
        assert latency.weight_programming not in (latency.total,)

    def test_tacitmap_faster_than_baseline_everywhere(self, workloads, models):
        for name, workload in workloads.items():
            baseline = models["baseline"].run_inference(workload).latency.total
            tacit = models["tacitmap"].run_inference(workload).latency.total
            assert tacit < baseline, name

    def test_einsteinbarrier_fastest(self, workloads, models):
        for name, workload in workloads.items():
            tacit = models["tacitmap"].run_inference(workload).latency.total
            einstein = models["einsteinbarrier"].run_inference(workload).latency.total
            assert einstein < tacit, name

    def test_speedup_grows_with_network_size(self, workloads, models):
        """Larger BNNs expose more parallel XNOR+Popcounts (Sec. VI-A)."""
        def speedup(name):
            base = models["baseline"].run_inference(workloads[name]).latency.total
            einstein = models["einsteinbarrier"].run_inference(
                workloads[name]
            ).latency.total
            return base / einstein

        assert speedup("CNN-L") > speedup("CNN-S")
        assert speedup("MLP-L") > speedup("MLP-S")

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(baseline_epcm_config()).transfer_latency(-1)


class TestEnergyModel:
    def test_breakdown_totals_consistent(self, workloads):
        energy = EnergyModel(einsteinbarrier_config()).estimate(workloads["CNN-S"])
        component_sum = (
            energy.crossbar_array + energy.adc + energy.sense_amplifier
            + energy.driver + energy.digital + energy.data_movement
            + energy.optical_overhead + energy.full_precision
        )
        assert energy.total == pytest.approx(component_sum)

    def test_per_layer_sums_to_total(self, workloads):
        energy = EnergyModel(baseline_epcm_config()).estimate(workloads["MLP-S"])
        assert sum(energy.per_layer.values()) == pytest.approx(energy.total, rel=1e-9)

    def test_baseline_spends_on_senses_not_adcs(self, workloads):
        energy = EnergyModel(baseline_epcm_config()).estimate(workloads["MLP-L"])
        assert energy.sense_amplifier > 0
        assert energy.adc == 0.0
        assert energy.optical_overhead == 0.0

    def test_tacitmap_spends_on_adcs_not_senses(self, workloads):
        energy = EnergyModel(tacitmap_epcm_config()).estimate(workloads["MLP-L"])
        assert energy.adc > 0
        assert energy.sense_amplifier == 0.0

    def test_einsteinbarrier_pays_optical_overhead(self, workloads):
        energy = EnergyModel(einsteinbarrier_config()).estimate(workloads["CNN-L"])
        assert energy.optical_overhead > 0

    def test_tacitmap_epcm_costs_more_energy_than_baseline(self, workloads, models):
        """Fig. 8 observation 1: TacitMap-ePCM > Baseline-ePCM in energy."""
        for name in ("CNN-S", "CNN-L", "MLP-L"):
            baseline = models["baseline"].run_inference(workloads[name]).energy.total
            tacit = models["tacitmap"].run_inference(workloads[name]).energy.total
            assert tacit > baseline, name

    def test_einsteinbarrier_beats_tacitmap_epcm_energy(self, workloads, models):
        """Fig. 8 observation 2: EinsteinBarrier < TacitMap-ePCM in energy."""
        for name in ("CNN-L", "MLP-L"):
            tacit = models["tacitmap"].run_inference(workloads[name]).energy.total
            einstein = models["einsteinbarrier"].run_inference(
                workloads[name]
            ).energy.total
            assert einstein < tacit, name

    def test_einsteinbarrier_beats_baseline_on_large_cnn(self, workloads, models):
        baseline = models["baseline"].run_inference(workloads["CNN-L"]).energy.total
        einstein = models["einsteinbarrier"].run_inference(
            workloads["CNN-L"]
        ).energy.total
        assert einstein < baseline

    def test_weight_programming_reported_separately(self, workloads):
        energy = EnergyModel(tacitmap_epcm_config()).estimate(workloads["MLP-S"])
        assert energy.weight_programming > 0


class TestHierarchy:
    def test_vcore_counts_multiply_up(self):
        config = einsteinbarrier_config()
        assert Node(0, config).num_vcores == (
            config.tiles_per_node * config.ecores_per_tile * config.vcores_per_ecore
        )
        assert Tile(0, config).num_vcores == (
            config.ecores_per_tile * config.vcores_per_ecore
        )

    def test_opcm_ecore_has_transmitter_power(self):
        assert ECore(0, einsteinbarrier_config()).transmitter_power > 0
        assert ECore(0, tacitmap_epcm_config()).transmitter_power == 0.0

    def test_vcore_receiver_power_only_for_opcm(self):
        assert VCore(0, einsteinbarrier_config()).receiver_static_power > 0
        assert VCore(0, baseline_epcm_config()).receiver_static_power == 0.0

    def test_allocation_counts_tiles(self, workloads):
        system = EinsteinBarrierSystem(einsteinbarrier_config())
        report = system.allocate(workloads["MLP-L"])
        assert report.vcores_required > 0
        assert report.nodes_required >= 1
        assert set(report.per_layer_vcores) == {
            layer.name for layer in workloads["MLP-L"].binary_layers
        }

    def test_small_network_fits_one_node(self, workloads):
        system = EinsteinBarrierSystem(einsteinbarrier_config())
        assert system.allocate(workloads["MLP-S"]).fits_single_node

    def test_allocation_area_positive(self, workloads):
        system = EinsteinBarrierSystem(baseline_epcm_config())
        assert system.allocate(workloads["CNN-S"]).crossbar_area_mm2 > 0


class TestAcceleratorFacade:
    def test_report_fields(self, workloads, models):
        report = models["einsteinbarrier"].run_inference(workloads["CNN-S"])
        assert report.design_name == "EinsteinBarrier"
        assert report.latency.total > 0
        assert report.energy.total > 0
        assert report.throughput_inferences_per_s > 0
        assert report.energy_delay_product > 0

    def test_accepts_model_instances(self, models):
        report = models["baseline"].run_inference(build_network("MLP-S"))
        assert report.network_name == "MLP-S"

    def test_all_networks_run_on_all_designs(self, models):
        for name in list_networks():
            workload = extract_workload(build_network(name))
            for model in models.values():
                report = model.run_inference(workload)
                assert report.latency.total > 0
                assert report.energy.total > 0


class TestAllocationUtilisation:
    """Edge cases of the node-provisioning utilisation metric."""

    def _allocate(self, workloads, name="MLP-S", **hier):
        config = einsteinbarrier_config(**hier)
        return EinsteinBarrierSystem(config).allocate(workloads[name])

    def test_utilisation_bounded_and_consistent(self, workloads):
        for name in ("MLP-S", "MLP-L", "CNN-S", "CNN-L"):
            report = self._allocate(workloads, name)
            assert 0.0 < report.node_utilisation <= 1.0
            assert report.vcores_provisioned \
                == report.nodes_required * report.vcores_per_node
            assert report.node_utilisation \
                == report.vcores_required / report.vcores_provisioned

    def test_exact_fit_is_full_utilisation(self, workloads):
        # shrink the node until it exactly matches the VCore requirement
        base = self._allocate(workloads)
        required = base.vcores_required
        report = self._allocate(workloads, vcores_per_ecore=required,
                                ecores_per_tile=1, tiles_per_node=1)
        assert report.nodes_required == 1
        assert report.node_utilisation == 1.0

    def test_overflow_by_one_vcore_pays_a_whole_node(self, workloads):
        base = self._allocate(workloads)
        required = base.vcores_required
        assert required > 1
        # node one VCore smaller than the requirement: a second node
        # is provisioned and utilisation drops to about one half
        report = self._allocate(workloads, vcores_per_ecore=required - 1,
                                ecores_per_tile=1, tiles_per_node=1)
        assert report.nodes_required == 2
        assert report.node_utilisation == pytest.approx(
            required / (2 * (required - 1))
        )

    def test_single_vcore_nodes_always_fully_utilised(self, workloads):
        report = self._allocate(workloads, vcores_per_ecore=1,
                                ecores_per_tile=1, tiles_per_node=1)
        assert report.nodes_required == report.vcores_required
        assert report.node_utilisation == 1.0

    def test_oversized_node_keeps_one_node_and_low_utilisation(self, workloads):
        report = self._allocate(workloads, vcores_per_ecore=64,
                                ecores_per_tile=64, tiles_per_node=64)
        assert report.nodes_required == 1
        assert report.node_utilisation \
            == report.vcores_required / (64 * 64 * 64)

    def test_hierarchy_sizing_flows_from_config_factories(self):
        config = tacitmap_epcm_config(vcores_per_ecore=2, ecores_per_tile=3,
                                      tiles_per_node=4)
        node = Node(0, config)
        assert node.num_vcores == 2 * 3 * 4
        assert Tile(0, config).num_vcores == 2 * 3
        assert ECore(0, config).num_vcores == 2
