"""Backward-pass tests against slow references and numerical gradients.

PR 1 gave the forward paths property tests; these cover the gradient paths
that were still untested: the vectorised ``_col2im`` scatter (the inverse of
im2col used by both convolution backwards), ``Conv2d.backward`` itself, and
``MaxPool2d.backward`` — each checked against an independent per-position
loop reference, plus central-difference numerical gradients for ``Conv2d``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bnn.layers import Conv2d, MaxPool2d, _col2im
from repro.bnn.xnor_ops import im2col


def _col2im_loop_reference(grad_patches, input_shape, kernel_size, stride,
                           padding, out_h, out_w):
    """Scatter patch gradients back per output position (slow oracle)."""
    batch, channels, height, width = input_shape
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding)
    )
    patches = grad_patches.reshape(
        batch, out_h, out_w, channels, kernel_size, kernel_size
    )
    for b in range(batch):
        for row in range(out_h):
            top = row * stride
            for col in range(out_w):
                left = col * stride
                padded[b, :, top:top + kernel_size, left:left + kernel_size] \
                    += patches[b, row, col]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


@pytest.mark.parametrize(
    "batch,channels,extent,kernel_size,stride,padding",
    [
        (1, 1, 4, 2, 1, 0),
        (2, 3, 6, 3, 1, 1),
        (2, 2, 7, 3, 2, 0),
        (1, 4, 5, 2, 2, 1),
        (3, 1, 6, 1, 1, 0),
        (1, 2, 8, 3, 3, 2),
    ],
)
def test_col2im_matches_loop_reference(batch, channels, extent, kernel_size,
                                       stride, padding):
    rng = np.random.default_rng(extent * 100 + kernel_size * 10 + stride)
    input_shape = (batch, channels, extent, extent)
    out_h = (extent + 2 * padding - kernel_size) // stride + 1
    out_w = (extent + 2 * padding - kernel_size) // stride + 1
    grad_patches = rng.normal(
        size=(batch * out_h * out_w, channels * kernel_size * kernel_size)
    )
    fast = _col2im(grad_patches, input_shape, kernel_size, stride, padding,
                   out_h, out_w)
    slow = _col2im_loop_reference(grad_patches, input_shape, kernel_size,
                                  stride, padding, out_h, out_w)
    assert np.allclose(fast, slow)


def test_col2im_inverts_im2col_counts():
    """col2im of all-ones patches counts how often each pixel is visited."""
    input_shape = (1, 1, 5, 5)
    kernel_size, stride, padding = 3, 1, 0
    out_h = out_w = 3
    ones = np.ones((out_h * out_w, kernel_size * kernel_size))
    counts = _col2im(ones, input_shape, kernel_size, stride, padding,
                     out_h, out_w)
    # the centre pixel is covered by all 9 windows, the corners by exactly 1
    assert counts[0, 0, 2, 2] == 9
    assert counts[0, 0, 0, 0] == 1
    assert counts.sum() == ones.size


class TestConv2dBackward:
    @pytest.mark.parametrize("stride,padding,bias", [
        (1, 1, True), (2, 0, True), (1, 0, False),
    ])
    def test_numerical_gradients(self, stride, padding, bias):
        rng = np.random.default_rng(42)
        layer = Conv2d(2, 3, 3, stride=stride, padding=padding, bias=bias,
                       rng=rng)
        layer.train()
        x = rng.normal(size=(2, 2, 6, 6))
        out = layer.forward(x)
        upstream = rng.normal(size=out.shape)
        grad_input = layer.backward(upstream)

        def loss(inputs):
            return float(np.sum(layer.forward(np.asarray(inputs)) * upstream))

        eps = 1e-6
        # input gradient, spot-checked over a sample of positions
        flat_x = x.ravel()
        sample = rng.choice(flat_x.size, size=25, replace=False)
        for index in sample:
            bumped = flat_x.copy()
            bumped[index] += eps
            plus = loss(bumped.reshape(x.shape))
            bumped[index] -= 2 * eps
            minus = loss(bumped.reshape(x.shape))
            numeric = (plus - minus) / (2 * eps)
            assert np.isclose(grad_input.ravel()[index], numeric,
                              rtol=1e-4, atol=1e-5)
        # parameter gradients (recompute state that loss() clobbered)
        layer.forward(x)
        layer.backward(upstream)
        for name in layer.params:
            flat = layer.params[name].ravel()
            sample = rng.choice(flat.size, size=min(20, flat.size),
                                replace=False)
            for index in sample:
                original = flat[index]
                flat[index] = original + eps
                plus = loss(x)
                flat[index] = original - eps
                minus = loss(x)
                flat[index] = original
                numeric = (plus - minus) / (2 * eps)
                assert np.isclose(layer.grads[name].ravel()[index], numeric,
                                  rtol=1e-4, atol=1e-5), name

    def test_grad_weight_matches_patch_form(self):
        """grad_weight == grad_flat.T @ patches, the im2col identity."""
        rng = np.random.default_rng(7)
        layer = Conv2d(3, 4, 3, stride=1, padding=1, rng=rng)
        layer.train()
        x = rng.normal(size=(2, 3, 5, 5))
        out = layer.forward(x)
        upstream = rng.normal(size=out.shape)
        layer.backward(upstream)
        patches, _, _ = im2col(x, 3, stride=1, padding=1, pad_value=0.0)
        grad_flat = upstream.transpose(0, 2, 3, 1).reshape(-1, 4)
        expected = (grad_flat.T @ patches).reshape(layer.params["weight"].shape)
        assert np.allclose(layer.grads["weight"], expected)


class TestMaxPool2dBackward:
    def _loop_reference(self, x, grad, kernel_size, stride):
        """Recompute windows and argmaxes independently of the layer cache."""
        batch, channels, height, width = x.shape
        out_h = (height - kernel_size) // stride + 1
        out_w = (width - kernel_size) // stride + 1
        grad_input = np.zeros_like(x)
        for b in range(batch):
            for c in range(channels):
                for row in range(out_h):
                    top = row * stride
                    for col in range(out_w):
                        left = col * stride
                        window = x[b, c, top:top + kernel_size,
                                   left:left + kernel_size]
                        dr, dc = np.unravel_index(np.argmax(window),
                                                  window.shape)
                        grad_input[b, c, top + dr, left + dc] \
                            += grad[b, c, row, col]
        return grad_input

    @pytest.mark.parametrize("kernel_size,stride,shape", [
        (2, 2, (2, 3, 6, 6)),
        (3, 2, (1, 2, 7, 7)),   # overlapping windows
        (2, 1, (2, 1, 5, 5)),   # heavily overlapping windows
        (3, 3, (1, 4, 9, 9)),
    ])
    def test_matches_independent_loop_reference(self, kernel_size, stride,
                                                shape):
        rng = np.random.default_rng(kernel_size * 10 + stride)
        x = rng.normal(size=shape)  # continuous values: no argmax ties
        pool = MaxPool2d(kernel_size=kernel_size, stride=stride)
        pool.train()
        out = pool.forward(x)
        upstream = rng.normal(size=out.shape)
        got = pool.backward(upstream)
        expected = self._loop_reference(x, upstream, kernel_size, stride)
        assert np.allclose(got, expected)

    def test_gradient_mass_is_conserved(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(2, 2, 6, 6))
        pool = MaxPool2d(kernel_size=2, stride=2)
        pool.train()
        upstream = rng.normal(size=pool.forward(x).shape)
        grad_input = pool.backward(upstream)
        # non-overlapping windows: every upstream unit lands on exactly one pixel
        assert np.isclose(grad_input.sum(), upstream.sum())

    def test_backward_requires_training_forward(self):
        pool = MaxPool2d(2)
        pool.forward(np.zeros((1, 1, 4, 4)))
        with pytest.raises(RuntimeError, match="training-mode"):
            pool.backward(np.zeros((1, 1, 2, 2)))
