"""Tests for the model container, the six evaluation networks and workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bnn.layers import BinaryLinear, Linear, SignActivation
from repro.bnn.model import BNNModel
from repro.bnn.networks import (
    build_network,
    dataset_for_network,
    list_networks,
)
from repro.bnn.workload import extract_workload


class TestBNNModel:
    def _tiny_model(self):
        return BNNModel(
            [
                Linear(8, 16, rng=1),
                SignActivation(),
                BinaryLinear(16, 12, rng=2),
                SignActivation(),
                Linear(12, 4, rng=3),
            ],
            name="tiny",
            input_shape=(8,),
        )

    def test_forward_shape(self, rng):
        model = self._tiny_model()
        assert model.forward(rng.normal(size=(5, 8))).shape == (5, 4)

    def test_predict_returns_class_indices(self, rng):
        model = self._tiny_model()
        preds = model.predict(rng.normal(size=(5, 8)))
        assert preds.shape == (5,)
        assert preds.min() >= 0 and preds.max() < 4

    def test_binary_layers_filter(self):
        model = self._tiny_model()
        assert len(model.binary_layers()) == 1
        assert isinstance(model.binary_layers()[0], BinaryLinear)

    def test_train_eval_propagate(self):
        model = self._tiny_model()
        model.train()
        assert all(layer.training for layer in model.layers)
        model.eval()
        assert not any(layer.training for layer in model.layers)

    def test_iter_with_shapes(self):
        model = self._tiny_model()
        shapes = [out for _, _, out in model.iter_with_shapes()]
        assert shapes[-1] == (4,)

    def test_num_parameters_positive(self):
        model = self._tiny_model()
        assert model.num_parameters() > 0
        assert 0 < model.num_binary_parameters() < model.num_parameters()

    def test_summary_mentions_every_layer(self):
        model = self._tiny_model()
        summary = model.summary()
        assert "BinaryLinear" in summary and "tiny" in summary

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            BNNModel([], name="empty", input_shape=(4,))


class TestEvaluationNetworks:
    def test_six_networks_listed(self):
        names = list_networks()
        assert len(names) == 6
        assert sorted(names) == sorted(
            ["MLP-S", "MLP-M", "MLP-L", "CNN-S", "CNN-M", "CNN-L"]
        )

    @pytest.mark.parametrize("name", ["MLP-S", "MLP-M", "MLP-L"])
    def test_mlp_forward_pass(self, name, rng):
        model = build_network(name)
        out = model.forward(rng.normal(size=(2, 784)))
        assert out.shape == (2, 10)

    def test_cnn_s_forward_pass(self, rng):
        model = build_network("CNN-S")
        assert model.forward(rng.normal(size=(1, 1, 28, 28))).shape == (1, 10)

    def test_cnn_m_forward_pass(self, rng):
        model = build_network("CNN-M")
        assert model.forward(rng.normal(size=(1, 3, 32, 32))).shape == (1, 10)

    def test_unknown_network_raises(self):
        with pytest.raises(ValueError):
            build_network("ResNet-50")

    def test_first_and_last_mac_layers_are_full_precision(self):
        """Sec. II-B: input and output layers stay in higher precision."""
        for name in list_networks():
            workload = extract_workload(build_network(name))
            assert not workload.layers[0].is_binary, name
            assert not workload.layers[-1].is_binary, name

    def test_hidden_mac_layers_are_binary(self):
        for name in list_networks():
            workload = extract_workload(build_network(name))
            for spec in workload.layers[1:-1]:
                assert spec.is_binary, f"{name}:{spec.name}"

    def test_dataset_assignment(self):
        assert dataset_for_network("MLP-L") == "mnist"
        assert dataset_for_network("CNN-L") == "cifar10"
        with pytest.raises(ValueError):
            dataset_for_network("unknown")

    def test_network_sizes_are_ordered(self):
        """S < M < L in binary parameter count for both families."""
        mlp_sizes = [
            extract_workload(build_network(n)).binary_macs
            for n in ["MLP-S", "MLP-M", "MLP-L"]
        ]
        cnn_sizes = [
            extract_workload(build_network(n)).binary_macs
            for n in ["CNN-S", "CNN-M", "CNN-L"]
        ]
        assert mlp_sizes == sorted(mlp_sizes)
        assert cnn_sizes == sorted(cnn_sizes)


class TestWorkloadExtraction:
    def test_mlp_s_layer_counts(self):
        workload = extract_workload(build_network("MLP-S"))
        assert [spec.num_weight_vectors for spec in workload.layers] == [500, 250, 10]
        assert [spec.vector_length for spec in workload.layers] == [784, 500, 250]

    def test_linear_layers_have_one_input_vector(self):
        workload = extract_workload(build_network("MLP-M"))
        assert all(spec.num_input_vectors == 1 for spec in workload.layers)

    def test_conv_layers_have_many_input_vectors(self):
        workload = extract_workload(build_network("CNN-M"))
        conv_specs = [spec for spec in workload.layers if spec.kind == "conv"]
        assert all(spec.num_input_vectors > 1 for spec in conv_specs)

    def test_macs_consistency(self):
        workload = extract_workload(build_network("CNN-S"))
        assert workload.total_macs == (
            workload.binary_macs + workload.full_precision_macs
        )
        assert 0.0 < workload.binary_fraction < 1.0

    def test_xnor_popcount_ops_counts(self):
        workload = extract_workload(build_network("MLP-S"))
        hidden = workload.binary_layers
        assert [spec.xnor_popcount_ops for spec in hidden] == [250]

    def test_conv_output_size_matches_model(self, rng):
        model = build_network("CNN-S")
        workload = extract_workload(model)
        # first conv: 28x28 with padding 2, kernel 5 -> 28x28 windows
        assert workload.layers[0].num_input_vectors == 28 * 28
