"""Tests for the BNN layer implementations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bnn.layers import (
    BatchNorm,
    BinaryConv2d,
    BinaryLinear,
    Conv2d,
    Flatten,
    HardTanh,
    Linear,
    MaxPool2d,
    SignActivation,
)


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(8, 4, rng=1)
        assert layer.forward(rng.normal(size=(3, 8))).shape == (3, 4)

    def test_forward_matches_matmul(self, rng):
        layer = Linear(5, 3, rng=2)
        x = rng.normal(size=(2, 5))
        expected = x @ layer.params["weight"].T + layer.params["bias"]
        assert np.allclose(layer.forward(x), expected)

    def test_no_bias_option(self, rng):
        layer = Linear(5, 3, bias=False, rng=2)
        assert "bias" not in layer.params
        x = rng.normal(size=(2, 5))
        assert np.allclose(layer.forward(x), x @ layer.params["weight"].T)

    def test_rejects_wrong_input_width(self, rng):
        layer = Linear(8, 4)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(3, 9)))

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 4)

    def test_backward_gradient_shapes(self, rng):
        layer = Linear(6, 4, rng=3)
        layer.train()
        x = rng.normal(size=(5, 6))
        layer.forward(x)
        grad_in = layer.backward(rng.normal(size=(5, 4)))
        assert grad_in.shape == (5, 6)
        assert layer.grads["weight"].shape == (4, 6)
        assert layer.grads["bias"].shape == (4,)

    def test_backward_numerical_gradient(self, rng):
        """Finite-difference check of the weight gradient."""
        layer = Linear(4, 3, rng=4)
        layer.train()
        x = rng.normal(size=(2, 4))
        target = rng.normal(size=(2, 3))

        def loss():
            return 0.5 * np.sum((layer.forward(x) - target) ** 2)

        base_out = layer.forward(x)
        layer.backward(base_out - target)
        analytic = layer.grads["weight"][0, 0]
        eps = 1e-6
        layer.params["weight"][0, 0] += eps
        loss_plus = loss()
        layer.params["weight"][0, 0] -= 2 * eps
        loss_minus = loss()
        numeric = (loss_plus - loss_minus) / (2 * eps)
        assert np.isclose(analytic, numeric, rtol=1e-4)

    def test_backward_before_forward_raises(self, rng):
        layer = Linear(4, 3)
        layer.train()
        with pytest.raises(RuntimeError):
            layer.backward(rng.normal(size=(2, 3)))


class TestBinaryLinear:
    def test_forward_output_is_integer_valued(self, rng):
        layer = BinaryLinear(16, 8, rng=1)
        out = layer.forward(rng.normal(size=(4, 16)))
        assert np.allclose(out, np.round(out))

    def test_forward_bounded_by_vector_length(self, rng):
        layer = BinaryLinear(16, 8, rng=1)
        out = layer.forward(rng.normal(size=(4, 16)))
        assert np.all(np.abs(out) <= 16)

    def test_binary_weight_is_bipolar(self):
        layer = BinaryLinear(16, 8, rng=1)
        assert set(np.unique(layer.binary_weight)).issubset({-1, 1})

    def test_forward_matches_explicit_binarisation(self, rng):
        layer = BinaryLinear(10, 5, rng=2)
        x = rng.normal(size=(3, 10))
        x_bin = np.where(x >= 0, 1, -1)
        expected = x_bin @ layer.binary_weight.T.astype(np.int64)
        assert np.array_equal(layer.forward(x), expected)

    def test_backward_shapes(self, rng):
        layer = BinaryLinear(12, 6, rng=3)
        layer.train()
        x = rng.normal(size=(4, 12))
        layer.forward(x)
        grad_in = layer.backward(rng.normal(size=(4, 6)))
        assert grad_in.shape == (4, 12)
        assert layer.grads["weight"].shape == (6, 12)

    def test_clip_latent_weights(self, rng):
        layer = BinaryLinear(8, 4, rng=4)
        layer.params["weight"] = rng.normal(size=(4, 8)) * 10
        layer.clip_latent_weights()
        assert np.all(np.abs(layer.params["weight"]) <= 1.0)

    def test_is_binary_flag(self):
        assert BinaryLinear(4, 2).is_binary
        assert not Linear(4, 2).is_binary


class TestConv2d:
    def test_forward_shape_with_padding(self, rng):
        layer = Conv2d(3, 8, 3, padding=1, rng=1)
        out = layer.forward(rng.normal(size=(2, 3, 16, 16)))
        assert out.shape == (2, 8, 16, 16)

    def test_forward_shape_with_stride(self, rng):
        layer = Conv2d(1, 4, 3, stride=2, rng=1)
        out = layer.forward(rng.normal(size=(1, 1, 9, 9)))
        assert out.shape == (1, 4, 4, 4)

    def test_output_shape_helper_matches_forward(self, rng):
        layer = Conv2d(3, 8, 5, padding=2, rng=1)
        out = layer.forward(rng.normal(size=(1, 3, 28, 28)))
        assert out.shape[1:] == layer.output_shape((3, 28, 28))

    def test_backward_shapes(self, rng):
        layer = Conv2d(2, 4, 3, padding=1, rng=2)
        layer.train()
        x = rng.normal(size=(2, 2, 8, 8))
        out = layer.forward(x)
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert layer.grads["weight"].shape == layer.params["weight"].shape

    def test_backward_numerical_gradient(self, rng):
        layer = Conv2d(1, 2, 3, rng=3)
        layer.train()
        x = rng.normal(size=(1, 1, 5, 5))

        def loss():
            return 0.5 * np.sum(layer.forward(x) ** 2)

        out = layer.forward(x)
        layer.backward(out)
        analytic = layer.grads["weight"][0, 0, 1, 1]
        eps = 1e-6
        layer.params["weight"][0, 0, 1, 1] += eps
        loss_plus = loss()
        layer.params["weight"][0, 0, 1, 1] -= 2 * eps
        loss_minus = loss()
        numeric = (loss_plus - loss_minus) / (2 * eps)
        assert np.isclose(analytic, numeric, rtol=1e-4)


class TestBinaryConv2d:
    def test_forward_shape(self, rng):
        layer = BinaryConv2d(3, 16, 3, padding=1, rng=1)
        out = layer.forward(rng.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 16, 8, 8)

    def test_forward_values_bounded(self, rng):
        layer = BinaryConv2d(3, 4, 3, rng=1)
        out = layer.forward(rng.normal(size=(1, 3, 6, 6)))
        assert np.all(np.abs(out) <= 3 * 3 * 3)

    def test_binary_weight_is_bipolar(self):
        layer = BinaryConv2d(2, 4, 3, rng=1)
        assert set(np.unique(layer.binary_weight)).issubset({-1, 1})

    def test_backward_shapes(self, rng):
        layer = BinaryConv2d(2, 4, 3, padding=1, rng=2)
        layer.train()
        x = rng.normal(size=(2, 2, 6, 6))
        out = layer.forward(x)
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert layer.grads["weight"].shape == layer.params["weight"].shape


class TestBatchNorm:
    def test_training_normalises_batch(self, rng):
        layer = BatchNorm(8)
        layer.train()
        x = rng.normal(loc=5.0, scale=3.0, size=(64, 8))
        out = layer.forward(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_updated_in_training(self, rng):
        layer = BatchNorm(4)
        layer.train()
        layer.forward(rng.normal(loc=2.0, size=(32, 4)))
        assert not np.allclose(layer.running_mean, 0.0)

    def test_eval_uses_running_stats(self, rng):
        layer = BatchNorm(4)
        layer.train()
        for _ in range(50):
            layer.forward(rng.normal(loc=2.0, size=(32, 4)))
        layer.eval()
        out = layer.forward(np.full((8, 4), 2.0))
        assert np.all(np.abs(out) < 1.0)

    def test_4d_input_supported(self, rng):
        layer = BatchNorm(3)
        layer.train()
        out = layer.forward(rng.normal(size=(4, 3, 5, 5)))
        assert out.shape == (4, 3, 5, 5)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)

    def test_backward_shapes(self, rng):
        layer = BatchNorm(6)
        layer.train()
        x = rng.normal(size=(16, 6))
        layer.forward(x)
        grad_in = layer.backward(rng.normal(size=(16, 6)))
        assert grad_in.shape == x.shape
        assert layer.grads["gamma"].shape == (6,)
        assert layer.grads["beta"].shape == (6,)

    def test_rejects_3d_input(self, rng):
        layer = BatchNorm(4)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(2, 4, 3)))


class TestActivationsPoolingFlatten:
    def test_sign_activation_outputs_bipolar(self, rng):
        layer = SignActivation()
        out = layer.forward(rng.normal(size=(4, 7)))
        assert set(np.unique(out)).issubset({-1.0, 1.0})

    def test_sign_activation_ste_backward(self, rng):
        layer = SignActivation()
        layer.train()
        x = np.array([[0.5, -2.0, 0.9]])
        layer.forward(x)
        grad = layer.backward(np.ones((1, 3)))
        assert np.array_equal(grad, np.array([[1.0, 0.0, 1.0]]))

    def test_hardtanh_clips(self):
        layer = HardTanh()
        out = layer.forward(np.array([[-3.0, -0.5, 0.5, 3.0]]))
        assert np.array_equal(out, np.array([[-1.0, -0.5, 0.5, 1.0]]))

    def test_maxpool_shape(self, rng):
        layer = MaxPool2d(2)
        out = layer.forward(rng.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 3, 4, 4)

    def test_maxpool_values(self):
        layer = MaxPool2d(2)
        image = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(image)
        assert np.array_equal(out[0, 0], np.array([[5.0, 7.0], [13.0, 15.0]]))

    def test_maxpool_backward_routes_to_argmax(self):
        layer = MaxPool2d(2)
        layer.train()
        image = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        layer.forward(image)
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        assert grad[0, 0, 1, 1] == 1.0  # position of value 5
        assert grad[0, 0, 0, 0] == 0.0

    def test_flatten_round_trip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(3, 2, 4, 4))
        out = layer.forward(x)
        assert out.shape == (3, 32)
        assert layer.backward(out).shape == x.shape

    def test_output_shape_helpers(self):
        assert MaxPool2d(2).output_shape((16, 8, 8)) == (16, 4, 4)
        assert Flatten().output_shape((16, 4, 4)) == (256,)
        assert SignActivation().output_shape((5,)) == (5,)
