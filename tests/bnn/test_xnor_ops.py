"""Tests for Equation 1 (XNOR + Popcount identity) and its vectorised forms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.bnn.xnor_ops import (
    binary_conv2d,
    binary_dot,
    binary_dot_via_xnor,
    binary_matmul,
    im2col,
    popcount,
    xnor,
    xnor_popcount,
)

bipolar_vectors = hnp.arrays(
    np.int8, st.integers(1, 128), elements=st.sampled_from([-1, 1])
)


class TestXnorPopcount:
    def test_xnor_truth_table(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        assert np.array_equal(xnor(a, b), np.array([1, 0, 0, 1]))

    def test_xnor_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            xnor(np.array([0, 1]), np.array([0, 1, 1]))

    def test_xnor_rejects_non_binary(self):
        with pytest.raises(ValueError):
            xnor(np.array([0, 2]), np.array([0, 1]))

    def test_popcount_total(self):
        assert popcount(np.array([1, 0, 1, 1, 0])) == 3

    def test_popcount_along_axis(self):
        bits = np.array([[1, 1, 0], [0, 0, 1]])
        assert np.array_equal(popcount(bits, axis=1), np.array([2, 1]))

    def test_xnor_popcount_identical_vectors(self):
        a = np.array([1, 0, 1, 0, 1])
        assert xnor_popcount(a, a) == 5

    def test_xnor_popcount_complementary_vectors(self):
        a = np.array([1, 0, 1, 0])
        assert xnor_popcount(a, 1 - a) == 0


class TestEquationOne:
    """In (*) W == 2 * popcount(In' XNOR W') - L  (Eq. 1 of the paper)."""

    def test_small_example(self):
        in_vec = np.array([1, -1, 1, 1], dtype=np.int8)
        w_vec = np.array([1, 1, -1, 1], dtype=np.int8)
        assert binary_dot(in_vec, w_vec) == binary_dot_via_xnor(in_vec, w_vec)

    def test_all_agree(self):
        vec = np.array([1, -1, -1, 1, 1], dtype=np.int8)
        assert binary_dot_via_xnor(vec, vec) == 5

    def test_all_disagree(self):
        vec = np.array([1, -1, -1, 1, 1], dtype=np.int8)
        assert binary_dot_via_xnor(vec, -vec) == -5

    @given(bipolar_vectors, st.data())
    @settings(max_examples=100)
    def test_identity_holds_for_random_vectors(self, in_vec, data):
        w_vec = data.draw(
            hnp.arrays(np.int8, in_vec.shape, elements=st.sampled_from([-1, 1]))
        )
        assert binary_dot(in_vec, w_vec) == binary_dot_via_xnor(in_vec, w_vec)

    @given(bipolar_vectors, st.data())
    @settings(max_examples=50)
    def test_result_parity_matches_vector_length(self, in_vec, data):
        """2*popcount - L always has the same parity as L."""
        w_vec = data.draw(
            hnp.arrays(np.int8, in_vec.shape, elements=st.sampled_from([-1, 1]))
        )
        result = binary_dot_via_xnor(in_vec, w_vec)
        assert (result - in_vec.size) % 2 == 0
        assert -in_vec.size <= result <= in_vec.size


class TestBinaryMatmul:
    def test_matches_dense_matmul(self, rng):
        inputs = np.where(rng.random((8, 32)) > 0.5, 1, -1).astype(np.int8)
        weights = np.where(rng.random((16, 32)) > 0.5, 1, -1).astype(np.int8)
        expected = inputs.astype(np.int64) @ weights.astype(np.int64).T
        assert np.array_equal(binary_matmul(inputs, weights), expected)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            binary_matmul(np.ones((2, 4), dtype=np.int8),
                          np.ones((3, 5), dtype=np.int8))

    def test_requires_two_dimensional_inputs(self):
        with pytest.raises(ValueError):
            binary_matmul(np.ones(4, dtype=np.int8), np.ones((3, 4), dtype=np.int8))

    def test_output_shape(self, rng):
        inputs = np.where(rng.random((5, 12)) > 0.5, 1, -1)
        weights = np.where(rng.random((7, 12)) > 0.5, 1, -1)
        assert binary_matmul(inputs, weights).shape == (5, 7)

    def test_output_bounds(self, rng):
        """Every entry lies in [-L, L] and shares parity with L."""
        length = 20
        inputs = np.where(rng.random((6, length)) > 0.5, 1, -1)
        weights = np.where(rng.random((9, length)) > 0.5, 1, -1)
        out = binary_matmul(inputs, weights)
        assert out.min() >= -length and out.max() <= length
        assert np.all((out - length) % 2 == 0)


class TestIm2col:
    def test_output_spatial_dims(self, rng):
        images = rng.normal(size=(2, 3, 8, 8))
        patches, out_h, out_w = im2col(images, kernel_size=3)
        assert (out_h, out_w) == (6, 6)
        assert patches.shape == (2 * 36, 3 * 9)

    def test_padding_increases_windows(self, rng):
        images = rng.normal(size=(1, 1, 8, 8))
        _, out_h, out_w = im2col(images, kernel_size=3, padding=1)
        assert (out_h, out_w) == (8, 8)

    def test_stride_reduces_windows(self, rng):
        images = rng.normal(size=(1, 1, 8, 8))
        _, out_h, out_w = im2col(images, kernel_size=2, stride=2)
        assert (out_h, out_w) == (4, 4)

    def test_patch_content_is_correct(self):
        image = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        patches, _, _ = im2col(image, kernel_size=2)
        assert np.array_equal(patches[0], np.array([0, 1, 4, 5], dtype=float))

    def test_kernel_too_large_raises(self, rng):
        with pytest.raises(ValueError):
            im2col(rng.normal(size=(1, 1, 4, 4)), kernel_size=5)

    def test_requires_4d_input(self, rng):
        with pytest.raises(ValueError):
            im2col(rng.normal(size=(4, 4)), kernel_size=2)


class TestBinaryConv2d:
    def _reference_conv(self, images, kernels, stride=1, padding=0):
        """Naive direct convolution for cross-checking."""
        images = np.asarray(images, dtype=np.int64)
        kernels = np.asarray(kernels, dtype=np.int64)
        batch, in_c, height, width = images.shape
        out_c, _, k, _ = kernels.shape
        if padding:
            images = np.pad(
                images, ((0, 0), (0, 0), (padding, padding), (padding, padding)),
                constant_values=-1,
            )
            height += 2 * padding
            width += 2 * padding
        out_h = (height - k) // stride + 1
        out_w = (width - k) // stride + 1
        out = np.zeros((batch, out_c, out_h, out_w), dtype=np.int64)
        for b in range(batch):
            for o in range(out_c):
                for i in range(out_h):
                    for j in range(out_w):
                        patch = images[b, :, i * stride:i * stride + k,
                                       j * stride:j * stride + k]
                        out[b, o, i, j] = np.sum(patch * kernels[o])
        return out

    def test_matches_direct_convolution(self, rng):
        images = np.where(rng.random((2, 3, 6, 6)) > 0.5, 1, -1).astype(np.int8)
        kernels = np.where(rng.random((4, 3, 3, 3)) > 0.5, 1, -1).astype(np.int8)
        expected = self._reference_conv(images, kernels)
        assert np.array_equal(binary_conv2d(images, kernels), expected)

    def test_matches_direct_convolution_with_padding(self, rng):
        images = np.where(rng.random((1, 2, 5, 5)) > 0.5, 1, -1).astype(np.int8)
        kernels = np.where(rng.random((3, 2, 3, 3)) > 0.5, 1, -1).astype(np.int8)
        expected = self._reference_conv(images, kernels, padding=1)
        assert np.array_equal(
            binary_conv2d(images, kernels, padding=1), expected
        )

    def test_matches_direct_convolution_with_stride(self, rng):
        images = np.where(rng.random((1, 1, 8, 8)) > 0.5, 1, -1).astype(np.int8)
        kernels = np.where(rng.random((2, 1, 2, 2)) > 0.5, 1, -1).astype(np.int8)
        expected = self._reference_conv(images, kernels, stride=2)
        assert np.array_equal(
            binary_conv2d(images, kernels, stride=2), expected
        )

    def test_rejects_non_square_kernels(self, rng):
        images = np.where(rng.random((1, 1, 8, 8)) > 0.5, 1, -1)
        kernels = np.where(rng.random((2, 1, 2, 3)) > 0.5, 1, -1)
        with pytest.raises(ValueError):
            binary_conv2d(images, kernels)

    def test_output_shape(self, rng):
        images = np.where(rng.random((3, 2, 10, 10)) > 0.5, 1, -1)
        kernels = np.where(rng.random((5, 2, 3, 3)) > 0.5, 1, -1)
        assert binary_conv2d(images, kernels, padding=1).shape == (3, 5, 10, 10)
