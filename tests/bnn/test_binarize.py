"""Tests for repro.bnn.binarize."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.bnn.binarize import (
    binarize_sign,
    clip_latent,
    ste_backward,
    to_bipolar,
    to_unipolar,
)


class TestBinarizeSign:
    def test_positive_maps_to_plus_one(self):
        assert np.all(binarize_sign(np.array([0.1, 3.0, 100.0])) == 1)

    def test_negative_maps_to_minus_one(self):
        assert np.all(binarize_sign(np.array([-0.1, -3.0, -100.0])) == -1)

    def test_zero_maps_to_plus_one(self):
        assert binarize_sign(np.array([0.0]))[0] == 1

    def test_output_dtype_is_int8(self):
        assert binarize_sign(np.array([0.5, -0.5])).dtype == np.int8

    def test_preserves_shape(self):
        x = np.zeros((3, 4, 5))
        assert binarize_sign(x).shape == (3, 4, 5)

    @given(hnp.arrays(np.float64, hnp.array_shapes(max_dims=3, max_side=6),
                      elements=st.floats(-10, 10)))
    def test_output_is_always_bipolar(self, x):
        out = binarize_sign(x)
        assert set(np.unique(out)).issubset({-1, 1})


class TestEncodingConversions:
    def test_round_trip_bipolar(self):
        bipolar = np.array([-1, 1, 1, -1, 1], dtype=np.int8)
        assert np.array_equal(to_bipolar(to_unipolar(bipolar)), bipolar)

    def test_round_trip_unipolar(self):
        unipolar = np.array([0, 1, 1, 0, 1], dtype=np.int8)
        assert np.array_equal(to_unipolar(to_bipolar(unipolar)), unipolar)

    def test_to_unipolar_mapping(self):
        assert np.array_equal(to_unipolar(np.array([-1, 1])), np.array([0, 1]))

    def test_to_bipolar_mapping(self):
        assert np.array_equal(to_bipolar(np.array([0, 1])), np.array([-1, 1]))

    def test_to_unipolar_rejects_non_bipolar(self):
        with pytest.raises(ValueError):
            to_unipolar(np.array([0, 1, 2]))

    def test_to_bipolar_rejects_non_binary(self):
        with pytest.raises(ValueError):
            to_bipolar(np.array([-1, 1]))

    @given(hnp.arrays(np.int8, st.integers(1, 64),
                      elements=st.sampled_from([-1, 1])))
    def test_round_trip_property(self, bipolar):
        assert np.array_equal(to_bipolar(to_unipolar(bipolar)), bipolar)


class TestSTE:
    def test_gradient_passes_inside_clip_region(self):
        grad = np.array([1.0, -2.0, 3.0])
        latent = np.array([0.5, -0.5, 0.0])
        assert np.array_equal(ste_backward(grad, latent), grad)

    def test_gradient_blocked_outside_clip_region(self):
        grad = np.array([1.0, -2.0])
        latent = np.array([1.5, -2.0])
        assert np.array_equal(ste_backward(grad, latent), np.zeros(2))

    def test_custom_clip_bound(self):
        grad = np.ones(3)
        latent = np.array([0.5, 1.5, 2.5])
        out = ste_backward(grad, latent, clip=2.0)
        assert np.array_equal(out, np.array([1.0, 1.0, 0.0]))

    def test_clip_latent_bounds_values(self):
        latent = np.array([-5.0, -0.5, 0.5, 5.0])
        clipped = clip_latent(latent)
        assert clipped.min() >= -1.0 and clipped.max() <= 1.0
        assert np.array_equal(clipped, np.array([-1.0, -0.5, 0.5, 1.0]))
