"""Tests for the persistent per-host kernel-autotune cache.

The contracts under test: ``REPRO_AUTOTUNE_CACHE=off`` pins the static
defaults without touching the filesystem; a cache miss measures once and
persists; a later process (simulated by dropping the in-process
singleton) reads the file back instead of re-measuring; and — the PR-8
bugfix — a cache file whose embedded key does not match the running
host's (version, host, numpy, cpu) identity is re-measured and
rewritten rather than trusted, as are corrupt and out-of-range files.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bnn import autotune, xnor_ops


@pytest.fixture(autouse=True)
def _fresh_singleton():
    """Every test resolves from scratch and leaves no singleton behind."""
    autotune.reset_cached_params()
    yield
    autotune.reset_cached_params()


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Point the cache at a temp dir (the env-value-as-directory mode)."""
    directory = tmp_path / "autotune-cache"
    monkeypatch.setenv(autotune.CACHE_ENV, str(directory))
    return directory


def _fast_measure(monkeypatch, dispatch_macs=2048, conv_block_bytes=2 << 20):
    """Replace the ~100ms measurement with a canned result."""
    calls = []

    def fake():
        calls.append(1)
        return {"dispatch_macs": dispatch_macs,
                "conv_block_bytes": conv_block_bytes}

    monkeypatch.setattr(autotune, "measure_params", fake)
    return calls


class TestDisabled:
    def test_off_returns_defaults_without_filesystem(self, monkeypatch):
        monkeypatch.setenv(autotune.CACHE_ENV, "off")
        params = autotune.get_params()
        assert params == autotune.AutotuneParams(
            autotune.DEFAULT_DISPATCH_MACS,
            autotune.DEFAULT_CONV_BLOCK_BYTES,
            "defaults",
        )
        assert autotune.cache_path() is None

    def test_defaults_match_xnor_ops_constants(self, monkeypatch):
        monkeypatch.setenv(autotune.CACHE_ENV, "off")
        assert xnor_ops._PACKED_DISPATCH_MACS == autotune.DEFAULT_DISPATCH_MACS
        assert xnor_ops._CONV_BLOCK_BYTES == autotune.DEFAULT_CONV_BLOCK_BYTES


class TestMeasureAndPersist:
    def test_miss_measures_once_then_hits_cache(self, cache_dir, monkeypatch):
        calls = _fast_measure(monkeypatch)
        first = autotune.get_params()
        assert first.source == "measured"
        assert first.dispatch_macs == 2048
        assert os.path.exists(autotune.cache_path())
        # a "new process": drop the singleton, keep the file
        autotune.reset_cached_params()
        second = autotune.get_params()
        assert second.source == "cache"
        assert second.dispatch_macs == first.dispatch_macs
        assert second.conv_block_bytes == first.conv_block_bytes
        assert len(calls) == 1

    def test_written_payload_carries_versioned_key(self, cache_dir,
                                                   monkeypatch):
        _fast_measure(monkeypatch)
        autotune.get_params()
        with open(autotune.cache_path(), encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["key"] == autotune.cache_key()
        assert payload["key"]["version"] == autotune.CACHE_VERSION
        assert "numpy" in payload["key"] and "cpu" in payload["key"]

    def test_real_measurement_lands_in_clamp_window(self, cache_dir):
        params = autotune.get_params()
        assert params.source == "measured"
        low, high = autotune._DISPATCH_MACS_RANGE
        assert low <= params.dispatch_macs <= high
        low, high = autotune._CONV_BLOCK_RANGE
        assert low <= params.conv_block_bytes <= high
        # pinned dispatch behaviour survives any measured boundary
        assert xnor_ops.choose_matmul_kernel(1, 4, 16) == "packed"
        assert xnor_ops.choose_matmul_kernel(1024, 128, 1152) == "blas"


class TestStaleAndCorrupt:
    def test_mismatched_key_re_measures_and_rewrites(self, cache_dir,
                                                     monkeypatch):
        """PR-8 bugfix: an image upgrade must invalidate the cache."""
        calls = _fast_measure(monkeypatch, dispatch_macs=4096)
        path = autotune.cache_path()
        stale_key = dict(autotune.cache_key())
        stale_key["numpy"] = "1.0.0"
        stale_key["cpu"] = "Last Host's CPU"
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"key": stale_key,
                       "params": {"dispatch_macs": 666666,
                                  "conv_block_bytes": 2 << 20}}, handle)
        params = autotune.get_params()
        assert params.source == "measured"
        assert params.dispatch_macs == 4096  # not the stale 666666
        assert len(calls) == 1
        with open(path, encoding="utf-8") as handle:
            rewritten = json.load(handle)
        assert rewritten["key"] == autotune.cache_key()
        assert rewritten["params"]["dispatch_macs"] == 4096

    def test_version_bump_alone_invalidates(self, cache_dir, monkeypatch):
        _fast_measure(monkeypatch)
        path = autotune.cache_path()
        old_key = dict(autotune.cache_key())
        old_key["version"] = autotune.CACHE_VERSION - 1
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"key": old_key,
                       "params": {"dispatch_macs": 1024,
                                  "conv_block_bytes": 2 << 20}}, handle)
        assert autotune.get_params().source == "measured"

    @pytest.mark.parametrize("content", [
        "not json at all",
        json.dumps(["wrong", "shape"]),
        json.dumps({"key": None, "params": {}}),
    ])
    def test_corrupt_file_is_re_measured(self, cache_dir, monkeypatch,
                                         content):
        _fast_measure(monkeypatch)
        path = autotune.cache_path()
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content)
        assert autotune.get_params().source == "measured"
        autotune.reset_cached_params()
        assert autotune.get_params().source == "cache"  # rewritten valid

    def test_out_of_range_cached_values_rejected(self, cache_dir,
                                                 monkeypatch):
        _fast_measure(monkeypatch)
        path = autotune.cache_path()
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"key": autotune.cache_key(),
                       "params": {"dispatch_macs": 1 << 40,
                                  "conv_block_bytes": 2 << 20}}, handle)
        assert autotune.get_params().source == "measured"

    def test_unwritable_cache_dir_still_returns_measurement(
            self, monkeypatch, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the cache dir should go")
        monkeypatch.setenv(autotune.CACHE_ENV, str(blocker / "sub"))
        _fast_measure(monkeypatch, dispatch_macs=1024)
        params = autotune.get_params()
        assert params.source == "measured"
        assert params.dispatch_macs == 1024


class TestDispatchWiring:
    def test_choose_matmul_kernel_follows_cached_boundary(
            self, cache_dir, monkeypatch):
        boundary = 100_000
        _fast_measure(monkeypatch, dispatch_macs=boundary)
        autotune.get_params()
        # 32*32*32 = 32768 MACs: packed under the raised boundary...
        assert xnor_ops.choose_matmul_kernel(32, 32, 32) == "packed"
        # ...but blas with the cache disabled (default boundary 4096)
        autotune.reset_cached_params()
        monkeypatch.setenv(autotune.CACHE_ENV, "off")
        assert xnor_ops.choose_matmul_kernel(32, 32, 32) == "blas"


class TestPipelineDecisions:
    """The streaming-pipeline section of the same per-host cache file."""

    def test_record_then_read_back_across_processes(self, cache_dir):
        sig = "MLP-L|dense,fused,fused,dense|bs32"
        recorded = autotune.record_pipeline_decision(sig, 1.42)
        assert recorded == {"speedup": 1.42, "profitable": True,
                            "source": "measured"}
        assert autotune.pipeline_decision(sig)["source"] == "memory"
        # a "new process": drop the memo, keep the file
        autotune.reset_cached_params()
        read_back = autotune.pipeline_decision(sig)
        assert read_back["source"] == "cache"
        assert read_back["speedup"] == 1.42
        assert read_back["profitable"] is True

    def test_threshold_separates_verdicts(self, cache_dir):
        below = autotune.PIPELINE_MIN_SPEEDUP - 0.01
        assert not autotune.record_pipeline_decision("a", below)["profitable"]
        assert autotune.record_pipeline_decision(
            "b", autotune.PIPELINE_MIN_SPEEDUP)["profitable"]

    def test_unknown_signature_is_none(self, cache_dir):
        assert autotune.pipeline_decision("never-measured") is None

    def test_disabled_cache_keeps_in_process_memo_only(self, monkeypatch):
        monkeypatch.setenv(autotune.CACHE_ENV, "off")
        autotune.record_pipeline_decision("sig", 2.0)
        assert autotune.pipeline_decision("sig")["source"] == "memory"
        autotune.reset_cached_params()  # "new process": nothing persisted
        assert autotune.pipeline_decision("sig") is None

    def test_params_rewrite_preserves_pipeline_section(self, cache_dir,
                                                       monkeypatch):
        autotune.record_pipeline_decision("sig", 1.3)
        _fast_measure(monkeypatch, dispatch_macs=1024)
        autotune.reset_cached_params()
        assert autotune.get_params().source == "measured"
        autotune.reset_cached_params()
        survived = autotune.pipeline_decision("sig")
        assert survived is not None and survived["source"] == "cache"

    def test_pipeline_write_preserves_params_section(self, cache_dir,
                                                     monkeypatch):
        _fast_measure(monkeypatch, dispatch_macs=2048)
        assert autotune.get_params().source == "measured"
        autotune.record_pipeline_decision("sig", 1.1)
        autotune.reset_cached_params()
        assert autotune.get_params().source == "cache"

    def test_corrupt_pipeline_entry_is_ignored(self, cache_dir):
        autotune.record_pipeline_decision("sig", 1.3)
        path = autotune.cache_path()
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["pipeline"]["sig"] = {"speedup": "fast", "profitable": "yes"}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        autotune.reset_cached_params()
        assert autotune.pipeline_decision("sig") is None

    def test_stale_key_drops_pipeline_decisions_too(self, cache_dir):
        autotune.record_pipeline_decision("sig", 1.3)
        path = autotune.cache_path()
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["key"]["numpy"] = "1.0.0"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        autotune.reset_cached_params()
        assert autotune.pipeline_decision("sig") is None
