"""Tests for the streaming packed pipeline.

The contract under test: the stage-pipelined execution path is
*byte-identical* to the serial chunk loop at the same chunking — on all
evaluation networks, with seeded flip noise, at odd tail chunks and
``batch_size=1`` — because chunk boundaries and the per-``(offset,
step_index)`` flip-noise seed derivation are unchanged.  Around that:
stage planning (prefix/body/tail splits, degenerate single-stage plans),
mode resolution (argument beats env beats the ``auto`` default), the
autotune-backed ``auto`` decision, and crash behaviour (a stage
exception propagates to the caller and leaves no live pipeline
threads).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bnn import autotune
from repro.bnn.layers import (
    BatchNorm,
    BinaryConv2d,
    BinaryLinear,
    Flatten,
    Linear,
    MaxPool2d,
    SignActivation,
)
from repro.bnn.model import BNNModel, InferenceEngine
from repro.bnn.networks import build_network, list_networks
from repro.bnn.pipeline import (
    PIPELINE_ENV,
    StreamingPipeline,
    maybe_stream,
    pipeline_mode,
    plan_signature,
    plan_stages,
)
from repro.utils.rng import make_rng


def _small_mlp(rng) -> BNNModel:
    layers = [
        Linear(12, 10, rng=rng),
        BatchNorm(10),
        SignActivation(),
        BinaryLinear(10, 9, rng=rng),
        BatchNorm(9),
        SignActivation(),
        BinaryLinear(9, 8, rng=rng),
        BatchNorm(8),
        SignActivation(),
        Linear(8, 4, rng=rng),
    ]
    return BNNModel(layers, name="tiny-mlp", input_shape=(12,))


def _small_cnn(rng) -> BNNModel:
    layers = [
        BinaryConv2d(3, 8, 3, padding=1, rng=rng),
        BatchNorm(8),
        SignActivation(),
        MaxPool2d(2),
        BinaryConv2d(8, 6, 3, rng=rng),
        BatchNorm(6),
        SignActivation(),
        Flatten(),
        BinaryLinear(6 * 2 * 2, 5, rng=rng),
        BatchNorm(5),
        SignActivation(),
        Linear(5, 3, rng=rng),
    ]
    return BNNModel(layers, name="tiny-cnn", input_shape=(3, 8, 8))


def _dense_only(rng) -> BNNModel:
    layers = [Linear(6, 5, rng=rng), Linear(5, 3, rng=rng)]
    return BNNModel(layers, name="dense-only", input_shape=(6,))


def _assert_pipeline_exact(engine: InferenceEngine, x: np.ndarray,
                           batch_size: int) -> None:
    serial = engine.forward_batch(x, batch_size=batch_size, pipeline="off")
    piped = engine.forward_batch(x, batch_size=batch_size, pipeline="on")
    assert serial.tobytes() == piped.tobytes()


def _pipeline_threads():
    return [t for t in threading.enumerate()
            if t.name.startswith("repro-pipeline-")]


class TestStagePlanning:
    def test_mlp_prefix_body_tail(self):
        engine = InferenceEngine(_small_mlp(make_rng(0)))
        stages = plan_stages(engine._steps)
        names = [stage.name for stage in stages]
        assert names[0] == "dense_prefix"
        assert names[-1] == "dense_tail"
        assert any(n.startswith("packed_body") for n in names)
        # contiguous, exhaustive cover of the plan
        assert stages[0].start == 0
        assert stages[-1].stop == len(engine._steps)
        for left, right in zip(stages, stages[1:]):
            assert left.stop == right.start

    def test_body_split_at_heaviest_fused_step(self):
        engine = InferenceEngine(build_network("CNN-M"))
        stages = plan_stages(engine._steps)
        names = [stage.name for stage in stages]
        assert "packed_body" in names and "packed_body_2" in names
        unsplit = plan_stages(engine._steps, split_body=False)
        assert [s.name for s in unsplit].count("packed_body") == 1
        assert "packed_body_2" not in [s.name for s in unsplit]

    def test_single_fused_step_body_not_split(self):
        # one fused step: nothing to split, even with split_body on
        rng = make_rng(1)
        model = BNNModel(
            [Linear(8, 6, rng=rng), BatchNorm(6), SignActivation(),
             BinaryLinear(6, 5, rng=rng), BatchNorm(5), SignActivation(),
             Linear(5, 3, rng=rng)],
            name="one-fused", input_shape=(8,))
        engine = InferenceEngine(model)
        names = [s.name for s in plan_stages(engine._steps)]
        assert "packed_body_2" not in names

    def test_dense_only_plan_is_single_stage(self):
        engine = InferenceEngine(_dense_only(make_rng(2)))
        stages = plan_stages(engine._steps)
        assert len(stages) == 1
        assert StreamingPipeline(engine).num_stages == 1

    def test_plan_signature_distinguishes_batch_size(self):
        engine = InferenceEngine(_small_mlp(make_rng(3)))
        assert plan_signature(engine, 4) != plan_signature(engine, 8)
        assert engine.model.name in plan_signature(engine, 4)


class TestModeResolution:
    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(PIPELINE_ENV, "on")
        assert pipeline_mode("off") == "off"
        assert pipeline_mode(None) == "on"

    def test_env_unset_or_invalid_is_auto(self, monkeypatch):
        monkeypatch.delenv(PIPELINE_ENV, raising=False)
        assert pipeline_mode(None) == "auto"
        monkeypatch.setenv(PIPELINE_ENV, "bogus")
        assert pipeline_mode(None) == "auto"

    def test_invalid_argument_raises(self):
        with pytest.raises(ValueError, match="pipeline"):
            pipeline_mode("bogus")

    def test_forward_batch_rejects_pipeline_with_parallel_knobs(self):
        rng = make_rng(4)
        engine = InferenceEngine(_small_mlp(rng))
        x = rng.uniform(-1, 1, size=(4, 12))
        with pytest.raises(ValueError, match="serial path"):
            engine.forward_batch(x, batch_size=2, pipeline="on",
                                 backend="thread")
        with pytest.raises(ValueError, match="serial path"):
            engine.forward_batch(x, batch_size=2, pipeline="on", workers=2)

    def test_env_on_defers_to_explicit_executor(self, monkeypatch):
        # a fleet-wide REPRO_ENGINE_PIPELINE=on must not break callers
        # that pass chunk-parallel knobs — the env silently defers
        monkeypatch.setenv(PIPELINE_ENV, "on")
        rng = make_rng(5)
        engine = InferenceEngine(_small_mlp(rng))
        x = rng.uniform(-1, 1, size=(5, 12))
        serial = engine.forward_batch(x, batch_size=2, pipeline="off")
        threaded = engine.forward_batch(x, batch_size=2, backend="thread")
        assert serial.tobytes() == threaded.tobytes()


class TestBitExactness:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**16), batch=st.integers(2, 11),
           chunk=st.integers(1, 5))
    def test_mlp_property(self, seed, batch, chunk):
        rng = np.random.default_rng(seed)
        model = _small_mlp(rng)
        model.eval()
        engine = InferenceEngine(model)
        x = rng.uniform(-2, 2, size=(batch, 12))
        _assert_pipeline_exact(engine, x, chunk)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16), flip_ppm=st.integers(1, 200_000),
           chunk=st.integers(1, 4))
    def test_seeded_flip_noise_property(self, seed, flip_ppm, chunk):
        rng = np.random.default_rng(seed)
        model = _small_cnn(rng)
        model.eval()
        engine = InferenceEngine(model, flip_rate=flip_ppm / 1e6, seed=seed)
        x = rng.uniform(-2, 2, size=(9, 3, 8, 8))
        _assert_pipeline_exact(engine, x, chunk)

    @pytest.mark.parametrize("name", list_networks())
    def test_evaluation_networks(self, name):
        model = build_network(name)
        model.eval()
        rng = make_rng(11)
        x = rng.uniform(-1, 1, size=(7, *model.input_shape))
        engine = InferenceEngine(model, flip_rate=0.01, seed=2)
        # 7 rows / 3-row chunks: an odd tail chunk by construction
        _assert_pipeline_exact(engine, x, 3)

    def test_batch_size_one(self):
        rng = make_rng(12)
        model = _small_mlp(rng)
        model.eval()
        engine = InferenceEngine(model, flip_rate=0.05, seed=9)
        x = rng.uniform(-1, 1, size=(6, 12))
        _assert_pipeline_exact(engine, x, 1)

    def test_single_stage_degenerate_plan_falls_back(self):
        rng = make_rng(13)
        model = _dense_only(rng)
        model.eval()
        engine = InferenceEngine(model)
        x = rng.uniform(-1, 1, size=(6, 6))
        assert maybe_stream(engine, x, 2, "on") is None
        _assert_pipeline_exact(engine, x, 2)  # "on" degrades to serial

    def test_single_chunk_falls_back(self):
        rng = make_rng(14)
        engine = InferenceEngine(_small_mlp(rng))
        x = rng.uniform(-1, 1, size=(4, 12))
        assert maybe_stream(engine, x, 8, "on") is None

    def test_direct_run_reports_stage_stats(self):
        rng = make_rng(15)
        engine = InferenceEngine(_small_cnn(rng))
        x = rng.uniform(-1, 1, size=(8, 3, 8, 8))
        pipe = StreamingPipeline(engine)
        out, stats = pipe.run(x, 2)
        assert out.tobytes() == engine.forward_batch(
            x, batch_size=2, pipeline="off").tobytes()
        assert [s.name for s in stats] == [s.name for s in pipe.stages]
        assert all(s.chunks == 4 for s in stats)
        assert all(0.0 <= s.occupancy <= 1.0 for s in stats)


class TestCrash:
    def test_stage_exception_propagates_and_joins_threads(self):
        rng = make_rng(16)
        engine = InferenceEngine(_small_cnn(rng))
        x = rng.uniform(-1, 1, size=(10, 3, 8, 8))
        boom = RuntimeError("stage kaboom")
        original = engine._run_steps

        def exploding(state, offset, start, stop):
            if offset == 4 and start > 0:
                raise boom
            return original(state, offset, start, stop)

        engine._run_steps = exploding
        before = _pipeline_threads()
        with pytest.raises(RuntimeError, match="stage kaboom"):
            StreamingPipeline(engine).run(x, 2)
        assert _pipeline_threads() == before

    def test_crash_in_first_stage_does_not_deadlock(self):
        rng = make_rng(17)
        engine = InferenceEngine(_small_mlp(rng))
        x = rng.uniform(-1, 1, size=(12, 12))

        def exploding(state, offset, start, stop):
            raise ValueError("no stage survives")

        engine._run_steps = exploding
        with pytest.raises(ValueError, match="no stage survives"):
            StreamingPipeline(engine).run(x, 2)
        assert not _pipeline_threads()

    def test_forward_batch_surfaces_the_stage_error(self):
        rng = make_rng(18)
        engine = InferenceEngine(_small_mlp(rng))
        x = rng.uniform(-1, 1, size=(8, 12))
        original = engine._run_steps

        def exploding(state, offset, start, stop):
            if offset == 2:
                raise RuntimeError("mid-stream")
            return original(state, offset, start, stop)

        engine._run_steps = exploding
        with pytest.raises(RuntimeError, match="mid-stream"):
            engine.forward_batch(x, batch_size=2, pipeline="on")


class TestAutoDecision:
    @pytest.fixture(autouse=True)
    def _fresh(self, monkeypatch, tmp_path):
        monkeypatch.setenv(autotune.CACHE_ENV, str(tmp_path / "cache"))
        autotune.reset_cached_params()
        yield
        autotune.reset_cached_params()

    def test_auto_measures_once_then_reuses(self, monkeypatch):
        rng = make_rng(19)
        engine = InferenceEngine(_small_mlp(rng))
        x = rng.uniform(-1, 1, size=(64, 12))
        measured = []

        def fake_measure(eng, data, batch_size, **kwargs):
            measured.append(batch_size)
            return 2.0  # profitable

        from repro.bnn import pipeline as pipeline_mod
        monkeypatch.setattr(pipeline_mod, "measure_speedup", fake_measure)
        out_auto = engine.forward_batch(x, batch_size=16, pipeline="auto")
        assert measured == [16]
        engine.forward_batch(x, batch_size=16, pipeline="auto")
        assert measured == [16]  # decision memoised
        assert out_auto.tobytes() == engine.forward_batch(
            x, batch_size=16, pipeline="off").tobytes()
        decision = autotune.pipeline_decision(plan_signature(engine, 16))
        assert decision is not None and decision["profitable"]

    def test_unprofitable_verdict_keeps_serial_path(self, monkeypatch):
        rng = make_rng(20)
        engine = InferenceEngine(_small_mlp(rng))
        x = rng.uniform(-1, 1, size=(64, 12))
        autotune.record_pipeline_decision(plan_signature(engine, 16), 0.8)
        ran = []

        class NeverRun(StreamingPipeline):
            def run(self, *args, **kwargs):  # pragma: no cover - guard
                ran.append(True)
                return super().run(*args, **kwargs)

        from repro.bnn import pipeline as pipeline_mod
        monkeypatch.setattr(pipeline_mod, "StreamingPipeline", NeverRun)
        engine.forward_batch(x, batch_size=16, pipeline="auto")
        assert not ran

    def test_auto_skips_tiny_batches_without_measuring(self, monkeypatch):
        rng = make_rng(21)
        engine = InferenceEngine(_small_mlp(rng))
        x = rng.uniform(-1, 1, size=(8, 12))

        def exploding_measure(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("tiny batches must not be probed")

        from repro.bnn import pipeline as pipeline_mod
        monkeypatch.setattr(pipeline_mod, "measure_speedup",
                            exploding_measure)
        assert maybe_stream(engine, x, 2, "auto") is None
