"""Tests for synthetic datasets, metrics and the BNN training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bnn.datasets import (
    iterate_minibatches,
    load_dataset,
    synthetic_mnist,
)
from repro.bnn.layers import BatchNorm, BinaryLinear, Linear, SignActivation
from repro.bnn.metrics import (
    accuracy,
    confusion_matrix,
    cross_entropy,
    cross_entropy_grad,
    softmax,
    top_k_accuracy,
)
from repro.bnn.model import BNNModel
from repro.bnn.training import AdamOptimizer, evaluate, train


class TestDatasets:
    def test_mnist_shapes(self, small_mnist):
        assert small_mnist.train_images.shape[1:] == (1, 28, 28)
        assert small_mnist.image_shape == (1, 28, 28)
        assert small_mnist.num_classes == 10

    def test_cifar_shapes(self, small_cifar):
        assert small_cifar.train_images.shape[1:] == (3, 32, 32)

    def test_values_bounded(self, small_mnist):
        assert small_mnist.train_images.min() >= -1.0
        assert small_mnist.train_images.max() <= 1.0

    def test_labels_in_range(self, small_mnist):
        assert small_mnist.train_labels.min() >= 0
        assert small_mnist.train_labels.max() < 10

    def test_deterministic_given_seed(self):
        a = synthetic_mnist(train_size=32, test_size=16, seed=9)
        b = synthetic_mnist(train_size=32, test_size=16, seed=9)
        assert np.array_equal(a.train_images, b.train_images)
        assert np.array_equal(a.train_labels, b.train_labels)

    def test_different_seeds_differ(self):
        a = synthetic_mnist(train_size=32, test_size=16, seed=9)
        b = synthetic_mnist(train_size=32, test_size=16, seed=10)
        assert not np.array_equal(a.train_images, b.train_images)

    def test_flattened_view(self, small_mnist):
        flat = small_mnist.flattened()
        assert flat.train_images.shape == (small_mnist.train_images.shape[0], 784)

    def test_load_dataset_by_name(self):
        assert load_dataset("mnist", train_size=8, test_size=4).name.startswith(
            "synthetic-mnist"
        )
        assert load_dataset("CIFAR10", train_size=8, test_size=4).name.startswith(
            "synthetic-cifar10"
        )
        with pytest.raises(ValueError):
            load_dataset("imagenet")

    def test_classes_are_separable(self, small_mnist):
        """Per-class means should differ — otherwise training is hopeless."""
        means = [
            small_mnist.train_images[small_mnist.train_labels == cls].mean()
            for cls in range(3)
        ]
        assert len(set(np.round(means, 4))) > 1


class TestMinibatches:
    def test_covers_all_samples(self, small_mnist):
        total = 0
        for images, labels in iterate_minibatches(
            small_mnist.train_images, small_mnist.train_labels, 50, shuffle=False
        ):
            total += len(labels)
            assert len(images) == len(labels)
        assert total == len(small_mnist.train_labels)

    def test_batch_size_respected(self, small_mnist):
        sizes = [
            len(labels)
            for _, labels in iterate_minibatches(
                small_mnist.train_images, small_mnist.train_labels, 64, shuffle=False
            )
        ]
        assert all(size <= 64 for size in sizes)
        assert sizes[0] == 64

    def test_mismatched_lengths_raise(self, small_mnist):
        with pytest.raises(ValueError):
            list(iterate_minibatches(
                small_mnist.train_images, small_mnist.train_labels[:-1], 32
            ))

    def test_invalid_batch_size_raises(self, small_mnist):
        with pytest.raises(ValueError):
            list(iterate_minibatches(
                small_mnist.train_images, small_mnist.train_labels, 0
            ))


class TestMetrics:
    def test_accuracy_perfect(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 3])) == 1.0

    def test_accuracy_half(self):
        assert accuracy(np.array([1, 2, 3, 4]), np.array([1, 2, 0, 0])) == 0.5

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1, 2]), np.array([1, 2, 3]))

    def test_confusion_matrix_diagonal(self):
        matrix = confusion_matrix(np.array([0, 1, 2]), np.array([0, 1, 2]), 3)
        assert np.array_equal(matrix, np.eye(3, dtype=np.int64))

    def test_confusion_matrix_off_diagonal(self):
        matrix = confusion_matrix(np.array([1, 1]), np.array([0, 0]), 2)
        assert matrix[0, 1] == 2

    def test_confusion_matrix_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 5]), np.array([0, 1]), 3)

    def test_softmax_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(6, 10)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_softmax_stability_with_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(probs, 0.5)

    def test_cross_entropy_decreases_with_confidence(self):
        labels = np.array([0])
        confident = cross_entropy(np.array([[5.0, -5.0]]), labels)
        unsure = cross_entropy(np.array([[0.1, 0.0]]), labels)
        assert confident < unsure

    def test_cross_entropy_grad_shape_and_sign(self):
        logits = np.array([[2.0, -1.0, 0.5]])
        grad = cross_entropy_grad(logits, np.array([0]))
        assert grad.shape == logits.shape
        assert grad[0, 0] < 0  # push true-class logit up

    def test_top_k_accuracy(self):
        logits = np.array([[0.1, 0.9, 0.5], [0.9, 0.1, 0.5]])
        labels = np.array([2, 2])
        assert top_k_accuracy(logits, labels, k=2) == 1.0
        assert top_k_accuracy(logits, labels, k=1) == 0.0


def _tiny_mlp(seed: int = 0) -> BNNModel:
    return BNNModel(
        [
            Linear(784, 64, rng=seed),
            BatchNorm(64),
            SignActivation(),
            BinaryLinear(64, 64, rng=seed + 1),
            BatchNorm(64),
            SignActivation(),
            Linear(64, 10, rng=seed + 2),
        ],
        name="tiny-mlp",
        input_shape=(784,),
    )


class TestTraining:
    def test_adam_updates_parameters(self, small_mnist):
        model = _tiny_mlp()
        optimizer = AdamOptimizer(model, learning_rate=1e-2)
        model.train()
        flat = small_mnist.flattened()
        before = model.layers[0].params["weight"].copy()
        logits = model.forward(flat.train_images[:32])
        model.backward(cross_entropy_grad(logits, flat.train_labels[:32]))
        optimizer.step()
        assert not np.allclose(before, model.layers[0].params["weight"])

    def test_adam_rejects_bad_learning_rate(self):
        with pytest.raises(ValueError):
            AdamOptimizer(_tiny_mlp(), learning_rate=0.0)

    def test_training_improves_over_chance(self, small_mnist):
        model = _tiny_mlp(seed=3)
        history = train(
            model, small_mnist, epochs=3, batch_size=32, learning_rate=5e-3, seed=1
        )
        assert history.final_test_accuracy > 0.2  # 10 classes -> chance is 0.1

    def test_training_loss_recorded_per_epoch(self, small_mnist):
        model = _tiny_mlp(seed=4)
        history = train(model, small_mnist, epochs=2, batch_size=64)
        assert len(history.train_loss) == 2
        assert len(history.test_accuracy) == 2

    def test_latent_weights_stay_clipped(self, small_mnist):
        model = _tiny_mlp(seed=5)
        train(model, small_mnist, epochs=1, batch_size=64, learning_rate=5e-2)
        binary_layer = model.binary_layers()[0]
        assert np.all(np.abs(binary_layer.params["weight"]) <= 1.0)

    def test_evaluate_runs_in_eval_mode(self, small_mnist):
        model = _tiny_mlp(seed=6)
        flat = small_mnist.flattened()
        acc = evaluate(model, flat.test_images, flat.test_labels)
        assert 0.0 <= acc <= 1.0
        assert not model.layers[0].training

    def test_invalid_epochs_raises(self, small_mnist):
        with pytest.raises(ValueError):
            train(_tiny_mlp(), small_mnist, epochs=0)
