"""Tests for the batched packed inference path.

The contract under test: with noise off, the packed plan (fused
matmul/conv -> integer-threshold sign -> packed activations) is *bit-exact*
with the dense layer-by-layer forward pass, on MLP and CNN workloads, for
every kernel choice — including batch-norm parameter corner cases (negative
and exactly-zero scales) that exercise every folded comparison mode.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bnn.layers import (
    BatchNorm,
    BinaryConv2d,
    BinaryLinear,
    Flatten,
    Linear,
    MaxPool2d,
    SignActivation,
)
from repro.bnn.model import BNNModel, InferenceEngine, fold_batchnorm_sign
from repro.bnn.networks import build_network, list_networks
from repro.bnn.xnor_ops import (
    PackedTensor,
    SIGN_CONST,
    SIGN_GE,
    SIGN_LE,
    SignSpec,
    binary_matmul,
    choose_matmul_kernel,
    fused_matmul_sign,
    pack_linear_weights,
    packed_flatten,
    packed_maxpool2d,
)
from repro.utils.rng import make_rng


def _random_bipolar(rng, shape):
    return np.where(rng.random(shape) < 0.5, -1, 1).astype(np.int8)


def _randomise_batchnorm(bn: BatchNorm, rng: np.random.Generator) -> None:
    """Non-trivial inference statistics, including negative/zero scales."""
    n = bn.num_features
    bn.params["gamma"] = rng.normal(1.0, 0.6, size=n)
    if n >= 3:
        bn.params["gamma"][0] = -abs(bn.params["gamma"][0])  # SIGN_LE path
        bn.params["gamma"][1] = 0.0                          # SIGN_CONST path
    bn.params["beta"] = rng.normal(0.0, 1.5, size=n)
    bn.running_mean = rng.normal(0.0, 3.0, size=n)
    bn.running_var = rng.uniform(0.25, 4.0, size=n)


class TestPackedTensor:
    @settings(max_examples=25, deadline=None)
    @given(batch=st.integers(1, 4), features=st.integers(1, 70),
           seed=st.integers(0, 2**16))
    def test_2d_roundtrip(self, batch, features, seed):
        rng = np.random.default_rng(seed)
        bipolar = _random_bipolar(rng, (batch, features))
        packed = PackedTensor.from_bipolar(bipolar)
        assert packed.shape == (batch, features)
        assert np.array_equal(packed.to_bipolar(), bipolar)

    @settings(max_examples=25, deadline=None)
    @given(batch=st.integers(1, 3), channels=st.integers(1, 20),
           extent=st.integers(1, 6), seed=st.integers(0, 2**16))
    def test_4d_roundtrip(self, batch, channels, extent, seed):
        rng = np.random.default_rng(seed)
        bipolar = _random_bipolar(rng, (batch, channels, extent, extent))
        packed = PackedTensor.from_bipolar(bipolar)
        assert packed.data.shape == (batch, extent, extent, (channels + 7) // 8)
        assert np.array_equal(packed.to_bipolar(), bipolar)

    def test_pack_signs_matches_binarise_then_pack(self):
        rng = make_rng(3)
        dense = rng.normal(size=(4, 5, 6, 6))
        dense[0, 0, 0, 0] = 0.0  # zero maps to +1 (bit 1)
        via_sign = PackedTensor.pack_signs(dense)
        expected = np.where(dense >= 0, 1, -1).astype(np.int8)
        assert np.array_equal(via_sign.to_bipolar(), expected)

    def test_rejects_malformed_metadata(self):
        data = np.zeros((2, 3), dtype=np.uint8)
        with pytest.raises(ValueError, match="does not match"):
            PackedTensor(data, 10, (2, 10))
        with pytest.raises(TypeError, match="uint8"):
            PackedTensor(np.zeros((2, 2), dtype=np.int8), 16, (2, 16))
        with pytest.raises(ValueError, match="2-D or 4-D"):
            PackedTensor(np.zeros((2, 2), dtype=np.uint8), 16, (2, 4, 4))


class TestFusedKernels:
    @settings(max_examples=30, deadline=None)
    @given(batch=st.integers(1, 5), length=st.integers(1, 64),
           outputs=st.integers(1, 9), seed=st.integers(0, 2**16))
    def test_fused_matmul_matches_binary_matmul(self, batch, length, outputs,
                                                seed):
        rng = np.random.default_rng(seed)
        inputs = _random_bipolar(rng, (batch, length))
        weights = _random_bipolar(rng, (outputs, length))
        reference = binary_matmul(inputs, weights)
        packed_in = PackedTensor.from_bipolar(inputs)
        packed_w = pack_linear_weights(weights)
        for kernel in ("auto", "blas", "packed"):
            assert np.array_equal(
                fused_matmul_sign(packed_in, packed_w, kernel=kernel),
                reference,
            ), kernel
            signed = fused_matmul_sign(
                packed_in, packed_w, SignSpec.plain(outputs), kernel=kernel
            )
            assert np.array_equal(
                signed.to_bipolar(), np.where(reference >= 0, 1, -1)
            ), kernel

    def test_operand_mismatch_rejected(self):
        x = PackedTensor.from_bipolar(np.ones((2, 9), dtype=np.int8))
        weights = pack_linear_weights(np.ones((3, 10), dtype=np.int8))
        with pytest.raises(ValueError, match="length mismatch"):
            fused_matmul_sign(x, weights)
        with pytest.raises(ValueError, match="unknown fused kernel"):
            fused_matmul_sign(
                PackedTensor.from_bipolar(np.ones((2, 10), dtype=np.int8)),
                weights, kernel="simd",
            )

    def test_pool_and_flatten_match_dense(self):
        rng = make_rng(11)
        bipolar = _random_bipolar(rng, (3, 13, 7, 7))
        packed = PackedTensor.from_bipolar(bipolar)
        pool = MaxPool2d(kernel_size=3, stride=2)
        dense_pool = pool.forward(bipolar.astype(np.float64))
        assert np.array_equal(
            packed_maxpool2d(packed, 3, 2).to_bipolar(),
            dense_pool.astype(np.int8),
        )
        flat = packed_flatten(packed)
        assert np.array_equal(flat.to_bipolar(), bipolar.reshape(3, -1))

    def test_dispatch_heuristic_prefers_blas_at_scale(self):
        assert choose_matmul_kernel(1024, 128, 1152) == "blas"
        assert choose_matmul_kernel(1, 4, 16) == "packed"
        with pytest.raises(ValueError):
            choose_matmul_kernel(-1, 4, 16)


class TestBatchNormFolding:
    @settings(max_examples=30, deadline=None)
    @given(outputs=st.integers(3, 12), length=st.integers(1, 40),
           batch=st.integers(1, 6), seed=st.integers(0, 2**16))
    def test_folded_threshold_matches_dense_batchnorm_sign(self, outputs,
                                                           length, batch,
                                                           seed):
        rng = np.random.default_rng(seed)
        bn = BatchNorm(outputs)
        _randomise_batchnorm(bn, rng)
        bn.eval()
        spec = fold_batchnorm_sign(bn, outputs, length)
        assert spec.mode[0] == SIGN_LE
        assert spec.mode[1] == SIGN_CONST
        # every reachable popcount value, including the extremes
        accumulators = np.tile(
            np.arange(-length, length + 1, dtype=np.int64), (outputs, 1)
        ).T
        dense = np.where(
            bn.forward(accumulators.astype(np.float64)) >= 0, 1, 0
        ).astype(np.uint8)
        from repro.bnn.xnor_ops import apply_sign_spec
        assert np.array_equal(apply_sign_spec(accumulators, spec), dense)

    def test_plain_spec_without_batchnorm(self):
        spec = fold_batchnorm_sign(None, 5, 16)
        assert np.all(spec.mode == SIGN_GE)
        assert np.all(spec.threshold == 0)

    def test_feature_mismatch_rejected(self):
        with pytest.raises(ValueError, match="do not match"):
            fold_batchnorm_sign(BatchNorm(4), 5, 16)


def _small_mlp(rng) -> BNNModel:
    layers = [
        Linear(12, 10, rng=rng),
        BatchNorm(10),
        SignActivation(),
        BinaryLinear(10, 9, rng=rng),
        BatchNorm(9),
        SignActivation(),
        Linear(9, 4, rng=rng),
    ]
    return BNNModel(layers, name="tiny-mlp", input_shape=(12,))


def _small_cnn(rng) -> BNNModel:
    layers = [
        BinaryConv2d(3, 8, 3, padding=1, rng=rng),
        BatchNorm(8),
        SignActivation(),
        MaxPool2d(2),
        BinaryConv2d(8, 6, 3, rng=rng),
        BatchNorm(6),
        SignActivation(),
        Flatten(),
        BinaryLinear(6 * 2 * 2, 5, rng=rng),
        BatchNorm(5),
        SignActivation(),
        Linear(5, 3, rng=rng),
    ]
    return BNNModel(layers, name="tiny-cnn", input_shape=(3, 8, 8))


class TestInferenceEngine:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**16), batch=st.integers(1, 6))
    def test_mlp_bit_exact_property(self, seed, batch):
        rng = np.random.default_rng(seed)
        model = _small_mlp(rng)
        for layer in model.layers:
            if isinstance(layer, BatchNorm):
                _randomise_batchnorm(layer, rng)
        model.eval()
        x = rng.uniform(-2, 2, size=(batch, 12))
        dense = model.forward(x)
        for kernel in ("auto", "blas", "packed"):
            engine = InferenceEngine(model, kernel=kernel)
            assert np.array_equal(
                engine.forward_batch(x, batch_size=batch), dense
            ), kernel

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16), batch=st.integers(1, 4))
    def test_cnn_bit_exact_property(self, seed, batch):
        rng = np.random.default_rng(seed)
        model = _small_cnn(rng)
        for layer in model.layers:
            if isinstance(layer, BatchNorm):
                _randomise_batchnorm(layer, rng)
        model.eval()
        x = rng.uniform(-2, 2, size=(batch, 3, 8, 8))
        dense = model.forward(x)
        for kernel in ("auto", "blas", "packed"):
            engine = InferenceEngine(model, kernel=kernel)
            assert np.array_equal(
                engine.forward_batch(x, batch_size=batch), dense
            ), kernel

    @pytest.mark.parametrize("name", list_networks())
    def test_evaluation_networks_bit_exact(self, name):
        model = build_network(name)
        model.eval()
        rng = make_rng(17)
        x = rng.uniform(-1, 1, size=(3, *model.input_shape))
        dense = model.forward(x)
        engine = InferenceEngine(model)
        assert np.array_equal(engine.forward_batch(x, batch_size=3), dense)
        assert np.array_equal(
            engine.predict_batch(x, batch_size=3), np.argmax(dense, axis=1)
        )

    def test_predict_batch_convenience_on_model(self):
        model = build_network("MLP-S")
        model.eval()
        rng = make_rng(23)
        x = rng.uniform(-1, 1, size=(5, 784))
        assert np.array_equal(
            model.predict_batch(x, batch_size=5), model.predict(x)
        )

    def test_noise_flips_are_seeded_and_deterministic(self):
        rng = make_rng(29)
        model = _small_mlp(rng)
        model.eval()
        x = rng.uniform(-2, 2, size=(16, 12))
        noisy_a = InferenceEngine(model, flip_rate=0.3, seed=7)
        noisy_b = InferenceEngine(model, flip_rate=0.3, seed=7)
        assert np.array_equal(
            noisy_a.forward_batch(x, batch_size=8),
            noisy_b.forward_batch(x, batch_size=8),
        )
        clean = InferenceEngine(model).forward_batch(x, batch_size=8)
        assert not np.array_equal(
            noisy_a.forward_batch(x, batch_size=8), clean
        )

    def test_flip_rate_callable_resolves_per_layer(self):
        rng = make_rng(31)
        model = _small_cnn(rng)
        lengths = []
        engine = InferenceEngine(
            model, flip_rate=lambda length: lengths.append(length) or 0.01
        )
        # one fused step per binary layer, rates keyed by step
        assert sorted(lengths) == sorted([3 * 9, 8 * 9, 24])
        assert all(rate == 0.01 for rate in engine.noise_flip_rates.values())

    def test_invalid_arguments_rejected(self):
        model = _small_mlp(make_rng(0))
        with pytest.raises(ValueError, match="kernel"):
            InferenceEngine(model, kernel="simd")
        with pytest.raises(ValueError, match="flip rate"):
            InferenceEngine(model, flip_rate=1.5)
        engine = InferenceEngine(model)
        with pytest.raises(ValueError, match="batch_size"):
            engine.forward_batch(np.zeros((2, 12)), batch_size=0)
        with pytest.raises(ValueError, match="at least one sample"):
            engine.forward_batch(np.zeros((0, 12)))

    def test_refresh_picks_up_direct_weight_mutation(self):
        rng = make_rng(41)
        model = _small_mlp(rng)
        model.eval()
        x = rng.uniform(-2, 2, size=(6, 12))
        engine = InferenceEngine(model)
        before = engine.forward_batch(x, batch_size=6)  # populate caches
        for layer in model.layers:
            if isinstance(layer, BinaryLinear):
                layer.params["weight"] *= -1.0
        engine.refresh()  # must drop the stale weight packs
        after = engine.forward_batch(x, batch_size=6)
        assert not np.array_equal(after, before)
        # refresh cleared the layer caches, so the dense pass is fresh too
        assert np.array_equal(after, model.forward(x))

    def test_refresh_picks_up_batchnorm_mutation(self):
        rng = make_rng(37)
        model = _small_mlp(rng)
        model.eval()
        x = rng.uniform(-2, 2, size=(6, 12))
        engine = InferenceEngine(model)
        for layer in model.layers:
            if isinstance(layer, BatchNorm):
                _randomise_batchnorm(layer, rng)
        engine.refresh()
        assert np.array_equal(
            engine.forward_batch(x, batch_size=6), model.forward(x)
        )


class TestWeightPackCache:
    def test_eval_mode_caches_binary_and_packed_weights(self):
        layer = BinaryLinear(16, 8, rng=1)
        layer.eval()
        assert layer.binary_weight is layer.binary_weight
        assert layer.packed_weights is layer.packed_weights

    def test_training_forward_invalidates_after_inplace_update(self):
        layer = BinaryLinear(6, 4, rng=2)
        layer.train()
        x = make_rng(3).uniform(-1, 1, size=(5, 6))
        layer.forward(x)
        stale = layer.binary_weight
        # optimiser-style in-place step flipping every sign
        layer.params["weight"] *= -1.0
        layer.forward(x)  # training-mode forward must re-binarise
        assert np.array_equal(layer.binary_weight, -stale)

    def test_clip_latent_weights_invalidates(self):
        layer = BinaryConv2d(2, 3, 3, rng=4)
        layer.eval()
        stale = layer.binary_weight
        layer.params["weight"] *= -1.0
        assert layer.binary_weight is stale  # documented: explicit mutation
        layer.clip_latent_weights()
        assert np.array_equal(layer.binary_weight, -stale)

    def test_train_switch_invalidates(self):
        layer = BinaryLinear(6, 4, rng=5)
        layer.eval()
        stale = layer.binary_weight
        layer.params["weight"] *= -1.0
        layer.train()
        assert np.array_equal(layer.binary_weight, -stale)

    def test_explicit_invalidate(self):
        layer = BinaryLinear(6, 4, rng=6)
        layer.eval()
        stale = layer.binary_weight
        layer.params["weight"] *= -1.0
        layer.invalidate_weight_cache()
        assert np.array_equal(layer.binary_weight, -stale)

    def test_cached_weights_match_packed_operands(self):
        layer = BinaryConv2d(3, 5, 3, rng=7)
        layer.eval()
        packed = layer.packed_weights
        flat = layer.binary_weight.transpose(0, 2, 3, 1).reshape(5, -1)
        assert np.array_equal(packed.f32, flat.astype(np.float32))
        assert packed.bit_length == 3 * 9


class TestParallelForwardBatch:
    """The per-chunk parallel seam: every runtime backend is bit-exact."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16), total=st.integers(2, 24),
           chunk=st.integers(1, 9))
    def test_thread_backend_bit_exact_property(self, seed, total, chunk):
        rng = np.random.default_rng(seed)
        model = _small_mlp(rng)
        for layer in model.layers:
            if isinstance(layer, BatchNorm):
                _randomise_batchnorm(layer, rng)
        model.eval()
        x = rng.uniform(-2, 2, size=(total, 12))
        engine = InferenceEngine(model)
        serial = engine.forward_batch(x, batch_size=chunk)
        threaded = engine.forward_batch(x, batch_size=chunk,
                                        backend="thread", workers=3)
        assert np.array_equal(serial, threaded)

    @pytest.mark.parametrize("backend,workers", [
        ("thread", 2), ("process", 2), ("queue", 1),
    ])
    def test_all_backends_bit_exact_on_cnn(self, backend, workers):
        rng = make_rng(31)
        model = _small_cnn(rng)
        model.eval()
        x = rng.uniform(-2, 2, size=(10, 3, 8, 8))
        engine = InferenceEngine(model)
        serial = engine.forward_batch(x, batch_size=3)
        parallel = engine.forward_batch(x, batch_size=3, backend=backend,
                                        workers=workers)
        assert np.array_equal(serial, parallel), backend

    def test_legacy_workers_kwarg_selects_process_backend(self):
        rng = make_rng(37)
        model = _small_mlp(rng)
        model.eval()
        x = rng.uniform(-2, 2, size=(12, 12))
        engine = InferenceEngine(model)
        assert np.array_equal(
            engine.forward_batch(x, batch_size=4),
            engine.forward_batch(x, batch_size=4, workers=2),
        )

    def test_noise_streams_independent_of_backend(self):
        """Flip noise derives from chunk offsets, not execution order."""
        rng = make_rng(41)
        model = _small_mlp(rng)
        model.eval()
        x = rng.uniform(-2, 2, size=(20, 12))
        engine = InferenceEngine(model, flip_rate=0.2, seed=7)
        serial = engine.forward_batch(x, batch_size=5)
        threaded = engine.forward_batch(x, batch_size=5, backend="thread",
                                        workers=4)
        processed = engine.forward_batch(x, batch_size=5, backend="process",
                                         workers=2)
        assert np.array_equal(serial, threaded)
        assert np.array_equal(serial, processed)

    def test_engine_with_flip_rate_callable_is_picklable(self):
        import pickle

        from repro.eval.robustness import popcount_flip_rate_fn

        rng = make_rng(43)
        model = _small_mlp(rng)
        model.eval()
        flip = popcount_flip_rate_fn(read_noise_sigma=0.01, seed=3)
        engine = InferenceEngine(model, flip_rate=flip, seed=9)
        clone = pickle.loads(pickle.dumps(engine))
        x = rng.uniform(-2, 2, size=(6, 12))
        assert np.array_equal(
            engine.forward_batch(x, batch_size=2),
            clone.forward_batch(x, batch_size=2),
        )

    def test_caller_owned_executor_reused(self):
        from repro.runtime import ThreadExecutor

        rng = make_rng(47)
        model = _small_mlp(rng)
        model.eval()
        x = rng.uniform(-2, 2, size=(9, 12))
        engine = InferenceEngine(model)
        with ThreadExecutor(2) as executor:
            first = engine.forward_batch(x, batch_size=3, executor=executor)
            second = engine.forward_batch(x, batch_size=3, executor=executor)
        assert np.array_equal(first, second)
        assert np.array_equal(first, engine.forward_batch(x, batch_size=3))

    def test_env_toggle_does_not_reach_the_engine(self, monkeypatch):
        """REPRO_RUNTIME_BACKEND governs the sweep fleet, not chunk loops
        (pool workers cannot spawn children)."""
        from repro.runtime.executors import BACKEND_ENV

        rng = make_rng(53)
        model = _small_mlp(rng)
        model.eval()
        x = rng.uniform(-2, 2, size=(8, 12))
        engine = InferenceEngine(model)
        expected = engine.forward_batch(x, batch_size=4)
        monkeypatch.setenv(BACKEND_ENV, "queue")
        assert np.array_equal(engine.forward_batch(x, batch_size=4), expected)
