"""Equivalence tests: vectorised/bit-packed kernels vs the loop oracles.

The fast paths (`im2col`, the BLAS and packed `binary_matmul` kernels, the
batched `binary_conv2d`) must match the retained reference implementations
bit-for-bit on every shape — Eq. 1 is exact integer arithmetic, so any
deviation is a bug, not a tolerance question.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bnn.layers import MaxPool2d
from repro.bnn.xnor_ops import (
    binary_conv2d,
    binary_conv2d_reference,
    binary_matmul,
    binary_matmul_packed,
    binary_matmul_reference,
    im2col,
    im2col_reference,
    pack_bipolar,
    packed_mismatches,
)


def _random_bipolar(rng, shape):
    return np.where(rng.random(shape) < 0.5, -1, 1).astype(np.int8)


@settings(max_examples=40, deadline=None)
@given(
    batch=st.integers(1, 3),
    channels=st.integers(1, 4),
    height=st.integers(3, 9),
    width=st.integers(3, 9),
    kernel_size=st.integers(1, 3),
    stride=st.integers(1, 3),
    padding=st.integers(0, 2),
    seed=st.integers(0, 2**16),
)
def test_im2col_matches_reference(batch, channels, height, width, kernel_size,
                                  stride, padding, seed):
    rng = np.random.default_rng(seed)
    images = _random_bipolar(rng, (batch, channels, height, width))
    fast, fast_h, fast_w = im2col(images, kernel_size, stride=stride,
                                  padding=padding)
    ref, ref_h, ref_w = im2col_reference(images, kernel_size, stride=stride,
                                         padding=padding)
    assert (fast_h, fast_w) == (ref_h, ref_w)
    assert np.array_equal(fast, ref)


@settings(max_examples=40, deadline=None)
@given(
    batch=st.integers(1, 6),
    length=st.integers(1, 70),
    outputs=st.integers(1, 6),
    seed=st.integers(0, 2**16),
)
def test_matmul_kernels_match_reference(batch, length, outputs, seed):
    rng = np.random.default_rng(seed)
    inputs = _random_bipolar(rng, (batch, length))
    weights = _random_bipolar(rng, (outputs, length))
    reference = binary_matmul_reference(inputs, weights)
    assert np.array_equal(reference, inputs.astype(np.int64) @ weights.T)
    assert np.array_equal(reference, binary_matmul_packed(inputs, weights))
    for kernel in ("auto", "blas", "packed", "reference"):
        assert np.array_equal(
            reference, binary_matmul(inputs, weights, kernel=kernel)
        ), kernel


@settings(max_examples=25, deadline=None)
@given(
    batch=st.integers(1, 2),
    in_channels=st.integers(1, 3),
    out_channels=st.integers(1, 4),
    extent=st.integers(3, 7),
    kernel_size=st.integers(1, 3),
    stride=st.integers(1, 2),
    padding=st.integers(0, 1),
    seed=st.integers(0, 2**16),
)
def test_conv2d_kernels_match_loop_reference(batch, in_channels, out_channels,
                                             extent, kernel_size, stride,
                                             padding, seed):
    rng = np.random.default_rng(seed)
    images = _random_bipolar(rng, (batch, in_channels, extent, extent))
    kernels = _random_bipolar(rng, (out_channels, in_channels,
                                    kernel_size, kernel_size))
    reference = binary_conv2d_reference(images, kernels, stride=stride,
                                        padding=padding)
    for kernel in ("blas", "packed", "reference"):
        fast = binary_conv2d(images, kernels, stride=stride, padding=padding,
                             kernel=kernel)
        assert np.array_equal(reference, fast), kernel


def test_pack_bipolar_pads_to_whole_bytes():
    packed, length = pack_bipolar(np.array([[1, -1, 1]], dtype=np.int8))
    assert length == 3
    assert packed.shape == (1, 1)
    # 101 padded with five zero bits -> 0b10100000
    assert packed[0, 0] == 0b10100000


def test_packed_mismatches_is_hamming_distance():
    rng = np.random.default_rng(7)
    a = _random_bipolar(rng, (5, 37))
    b = _random_bipolar(rng, (4, 37))
    a_packed, _ = pack_bipolar(a)
    b_packed, _ = pack_bipolar(b)
    distances = packed_mismatches(a_packed, b_packed)
    expected = (a[:, None, :] != b[None, :, :]).sum(axis=-1)
    assert np.array_equal(distances, expected)


def test_kernels_agree_on_empty_batch():
    empty = np.empty((0, 8), dtype=np.int8)
    weights = np.ones((3, 8), dtype=np.int8)
    for kernel in ("auto", "blas", "packed", "reference"):
        out = binary_matmul(empty, weights, kernel=kernel)
        assert out.shape == (0, 3), kernel


def test_unknown_kernel_rejected():
    ones = np.ones((1, 4), dtype=np.int8)
    with pytest.raises(ValueError, match="unknown kernel"):
        binary_matmul(ones, ones, kernel="simd")


def test_maxpool_backward_matches_loop_scatter():
    """Vectorised scatter-add backward equals the per-pixel loop, including
    overlapping windows (stride < kernel) where one input feeds several
    outputs."""
    rng = np.random.default_rng(11)
    x = rng.normal(size=(2, 3, 6, 6))
    pool = MaxPool2d(kernel_size=3, stride=2)
    pool.train()
    out = pool.forward(x)
    grad = rng.normal(size=out.shape)
    got = pool.backward(grad)

    argmax, input_shape = pool._cache
    expected = np.zeros(input_shape)
    k, s = pool.kernel_size, pool.stride
    for b in range(grad.shape[0]):
        for c in range(grad.shape[1]):
            for row in range(grad.shape[2]):
                for col in range(grad.shape[3]):
                    dr, dc = divmod(int(argmax[b, c, row, col]), k)
                    expected[b, c, row * s + dr, col * s + dc] += grad[b, c, row, col]
    assert np.allclose(got, expected)
