"""Tests of the assembled service: admission gates over the batcher."""

from __future__ import annotations

import numpy as np
import pytest
from _helpers import FailingEngine, FakeClock, GatedEngine, StubEngine

from repro.serving import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineError,
    InferenceService,
    RateLimitedError,
    RateLimiter,
    ServiceClosedError,
)

SHAPE = (4,)


def _image(value: float) -> np.ndarray:
    return np.full(SHAPE, value)


class TestHappyPath:
    def test_submit_and_predict(self):
        with InferenceService(StubEngine(), max_batch=4, max_delay_ms=1.0,
                              queue_capacity=64) as service:
            # StubEngine logits are [sum, -sum]: positive sums -> class 0
            assert service.predict(_image(1.0), timeout=10.0) == 0
            assert service.predict(_image(-1.0), timeout=10.0) == 1
            result = service.submit(_image(2.0)).result(timeout=10.0)
        np.testing.assert_array_equal(result,
                                      StubEngine.expected(_image(2.0)))

    def test_stats_expose_admission_config(self):
        limiter = RateLimiter(100.0, burst=5)
        breaker = CircuitBreaker()
        with InferenceService(StubEngine(), max_batch=8, max_delay_ms=3.0,
                              queue_capacity=32, deadline_budget_ms=50.0,
                              rate_limiter=limiter,
                              circuit_breaker=breaker) as service:
            stats = service.stats()
        admission = stats["admission"]
        assert admission["queue_capacity"] == 32
        assert admission["max_batch"] == 8
        assert admission["max_delay_ms"] == pytest.approx(3.0)
        assert admission["deadline_budget_ms"] == pytest.approx(50.0)
        assert admission["rate_limiter"]["burst"] == 5
        assert admission["circuit_breaker"]["state"] == "closed"

    def test_stats_are_json_serialisable(self):
        import json

        with InferenceService(StubEngine(), rate_limiter=RateLimiter(10.0),
                              circuit_breaker=CircuitBreaker()) as service:
            service.submit(_image(1.0)).result(timeout=10.0)
            json.dumps(service.stats())


class TestCircuitShedding:
    def test_engine_faults_open_the_circuit_and_shed(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=60.0)
        with InferenceService(FailingEngine(), max_batch=1, max_delay_ms=0.0,
                              circuit_breaker=breaker) as service:
            for _ in range(2):
                future = service.submit(_image(1.0))
                with pytest.raises(RuntimeError, match="engine fault"):
                    future.result(timeout=10.0)
            # two flush failures tripped the breaker: admission now sheds
            with pytest.raises(CircuitOpenError):
                service.submit(_image(1.0))
            stats = service.stats()
        assert stats["admission"]["circuit_breaker"]["state"] == "open"
        assert stats["admission"]["circuit_breaker"]["last_trip_cause"] == \
            "failures"
        assert stats["requests"]["rejected"] == {"circuit_open": 1}

    def test_recovery_after_cooldown_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0,
                                 clock=clock)
        engine = FailingEngine(fail_first=1)
        # the service itself runs on the real clock; only the breaker's
        # cool-down is driven by the fake one
        with InferenceService(engine, max_batch=1, max_delay_ms=0.0,
                              circuit_breaker=breaker) as service:
            with pytest.raises(RuntimeError):
                service.submit(_image(1.0)).result(timeout=10.0)
            with pytest.raises(CircuitOpenError):
                service.submit(_image(1.0))
            clock.advance(5.0)  # cool-down elapses -> half-open probe
            probe = service.submit(_image(2.0)).result(timeout=10.0)
            np.testing.assert_array_equal(probe,
                                          StubEngine.expected(_image(2.0)))
            # the probe's success closed the breaker again
            assert breaker.state == "closed"
            service.submit(_image(3.0)).result(timeout=10.0)


class TestRateLimiting:
    def test_over_budget_submissions_shed(self):
        clock = FakeClock()
        limiter = RateLimiter(1.0, burst=2, clock=clock)
        with InferenceService(StubEngine(), max_batch=1, max_delay_ms=0.0,
                              rate_limiter=limiter) as service:
            service.submit(_image(1.0)).result(timeout=10.0)
            service.submit(_image(2.0)).result(timeout=10.0)
            with pytest.raises(RateLimitedError):
                service.submit(_image(3.0))
            clock.advance(1.0)  # one token refills
            service.submit(_image(4.0)).result(timeout=10.0)
            stats = service.stats()
        assert stats["requests"]["rejected"] == {"rate_limited": 1}


class TestDeadlineBudget:
    def test_estimated_wait_beyond_budget_fast_rejects(self):
        engine = GatedEngine()
        service = InferenceService(engine, max_batch=1, max_delay_ms=20.0,
                                   queue_capacity=100,
                                   deadline_budget_ms=30.0)
        try:
            # depth 0: estimate is one 20ms deadline <= 30ms budget
            first = service.submit(_image(1.0))
            engine.entered.wait(timeout=10.0)  # dispatcher now in-flight
            second = service.submit(_image(2.0))  # depth 0 again: admitted
            # depth 1: ceil(2/1) * 20ms = 40ms > 30ms -> fast-reject
            with pytest.raises(DeadlineError):
                service.submit(_image(3.0))
            assert service.stats()["requests"]["rejected"] == {"deadline": 1}
        finally:
            engine.gate.set()
            service.close()
        first.result(timeout=10.0)
        second.result(timeout=10.0)

    def test_estimate_wait_reflects_flush_policy(self):
        with InferenceService(StubEngine(), max_batch=8,
                              max_delay_ms=5.0) as service:
            assert service.estimate_wait_s() == pytest.approx(0.005)


class TestLifecycle:
    def test_closed_service_rejects_and_counts(self):
        service = InferenceService(StubEngine())
        service.close()
        assert service.closed
        with pytest.raises(ServiceClosedError):
            service.submit(_image(1.0))
        assert service.stats()["requests"]["rejected"] == {"closed": 1}

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            InferenceService(StubEngine(), deadline_budget_ms=0.0)
