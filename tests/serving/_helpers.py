"""Shared fakes for the serving test suite.

Imported by sibling test modules as ``from _helpers import ...`` (pytest
puts each test directory on ``sys.path``, the same idiom as
``tests/runtime/_fleet_helpers.py``).
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np


class FakeClock:
    """Deterministic monotonic clock the tests advance by hand."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


class StubEngine:
    """Deterministic row-wise 'engine': logits = [sum(x), -sum(x)].

    Row-independent on purpose, so any flush composition produces the
    same per-request rows — the reference the batcher tests compare
    against.  Records every batch size it was handed.
    """

    def __init__(self) -> None:
        self.batch_sizes: List[int] = []
        self._lock = threading.Lock()

    def forward_batch(self, x: np.ndarray, *, batch_size: int) -> np.ndarray:
        assert x.shape[0] == batch_size
        with self._lock:
            self.batch_sizes.append(int(batch_size))
        sums = x.reshape(x.shape[0], -1).sum(axis=1)
        return np.stack([sums, -sums], axis=1)

    @staticmethod
    def expected(image: np.ndarray) -> np.ndarray:
        total = float(np.asarray(image).sum())
        return np.array([total, -total])


class GatedEngine(StubEngine):
    """A stub engine that blocks inside ``forward_batch`` until released."""

    def __init__(self) -> None:
        super().__init__()
        self.gate = threading.Event()
        self.entered = threading.Event()

    def forward_batch(self, x: np.ndarray, *, batch_size: int) -> np.ndarray:
        self.entered.set()
        assert self.gate.wait(timeout=30.0), "test forgot to open the gate"
        return super().forward_batch(x, batch_size=batch_size)


class FailingEngine(StubEngine):
    """A stub engine whose first ``fail_first`` calls raise (None = all)."""

    def __init__(self, fail_first: Optional[int] = None) -> None:
        super().__init__()
        self.fail_first = fail_first
        self.calls = 0

    def forward_batch(self, x: np.ndarray, *, batch_size: int) -> np.ndarray:
        self.calls += 1
        if self.fail_first is None or self.calls <= self.fail_first:
            raise RuntimeError(f"engine fault #{self.calls}")
        return super().forward_batch(x, batch_size=batch_size)
