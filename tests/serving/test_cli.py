"""Subprocess tests of the ``python -m repro.serving`` operator CLI."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def _run(args, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro.serving", *args],
        capture_output=True, text=True, env=_env(), cwd=REPO_ROOT,
        timeout=120, **kwargs,
    )


class TestCli:
    def test_help_parses(self):
        result = _run(["--help"])
        assert result.returncode == 0
        assert "--max-batch" in result.stdout
        assert "--max-delay-ms" in result.stdout

    def test_bounded_run_completes_and_reports(self):
        result = _run(["--network", "MLP-S", "--clients", "2",
                       "--requests", "32", "--max-batch", "4",
                       "--max-delay-ms", "2", "--stats-interval-s", "0.2"])
        assert result.returncode == 0, result.stderr
        assert "done: 32 completed, 0 rejected, 0 errors" in result.stdout
        # the final snapshot is one machine-readable JSON line
        snapshots = [json.loads(line) for line in result.stdout.splitlines()
                     if line.startswith("{")]
        assert snapshots, result.stdout
        final = snapshots[-1]
        assert final["requests"]["completed"] == 32
        assert final["batches"]["count"] >= 1

    def test_env_defaults_feed_the_flush_policy(self):
        env = _env()
        env["REPRO_SERVING_MAX_BATCH"] = "5"
        env["REPRO_SERVING_MAX_DELAY_MS"] = "1.5"
        result = subprocess.run(
            [sys.executable, "-m", "repro.serving", "--network", "MLP-S",
             "--clients", "1", "--requests", "4"],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "max_batch=5 max_delay_ms=1.5" in result.stdout

    def test_invalid_env_value_is_a_clean_error(self):
        env = _env()
        env["REPRO_SERVING_MAX_BATCH"] = "many"
        result = subprocess.run(
            [sys.executable, "-m", "repro.serving", "--requests", "1"],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
            timeout=120,
        )
        assert result.returncode != 0
        assert "REPRO_SERVING_MAX_BATCH" in result.stderr

    @pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
    def test_sigterm_drains_gracefully(self):
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.serving", "--network", "MLP-S",
             "--clients", "2", "--requests", "0", "--duration-s", "60",
             "--think-ms", "5", "--stats-interval-s", "0.2"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=_env(), cwd=REPO_ROOT,
        )
        try:
            # wait until the service is demonstrably serving traffic
            header = process.stdout.readline()
            assert "serving MLP-S" in header
            deadline = time.monotonic() + 30.0
            saw_snapshot = False
            while time.monotonic() < deadline and not saw_snapshot:
                line = process.stdout.readline()
                saw_snapshot = line.startswith("{")
            assert saw_snapshot, "no stats snapshot before the signal"
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, stderr
        assert "signal SIGTERM: draining..." in stdout
        assert "done:" in stdout
