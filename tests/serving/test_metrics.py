"""Unit tests of the serving metrics (fake-clock driven)."""

from __future__ import annotations

import numpy as np
import pytest
from _helpers import FakeClock

from repro.serving.metrics import RequestTimestamps, ServingMetrics


def _complete_request(metrics: ServingMetrics, clock: FakeClock, *,
                      queue_s: float, service_s: float,
                      max_batch: int = 8) -> RequestTimestamps:
    stamps = metrics.record_enqueue(queue_depth=1)
    clock.advance(queue_s)
    metrics.record_flush([stamps], queue_depth=0, trigger="deadline")
    clock.advance(service_s)
    metrics.record_batch_done([stamps], max_batch=max_batch)
    return stamps


class TestRequestTimestamps:
    def test_durations_derive_from_stamps(self):
        stamps = RequestTimestamps(enqueue=1.0, flush=1.5, complete=2.25)
        assert stamps.queue_wait_s == pytest.approx(0.5)
        assert stamps.service_s == pytest.approx(0.75)
        assert stamps.latency_s == pytest.approx(1.25)

    def test_half_lived_requests_read_as_none(self):
        stamps = RequestTimestamps(enqueue=1.0)
        assert stamps.queue_wait_s is None
        assert stamps.service_s is None
        assert stamps.latency_s is None
        stamps.flush = 2.0
        assert stamps.queue_wait_s == pytest.approx(1.0)
        assert stamps.latency_s is None


class TestServingMetrics:
    def test_lifecycle_stamps_and_counters(self):
        clock = FakeClock()
        metrics = ServingMetrics(clock=clock)
        stamps = _complete_request(metrics, clock, queue_s=0.010,
                                   service_s=0.005)
        assert stamps.latency_s == pytest.approx(0.015)
        stats = metrics.stats()
        assert stats["requests"]["submitted"] == 1
        assert stats["requests"]["completed"] == 1
        assert stats["requests"]["failed"] == 0
        assert stats["latency_ms"]["p50"] == pytest.approx(15.0)
        assert stats["batches"]["count"] == 1
        assert stats["batches"]["flush_triggers"] == {"deadline": 1}

    def test_flush_trigger_counts_sum_to_total_flushes(self):
        # the adaptive-flush observable: every flush lands in exactly one
        # trigger bucket, so the mix always sums to the batch count
        clock = FakeClock()
        metrics = ServingMetrics(clock=clock)
        mix = {"size": 5, "deadline": 3, "drain": 1}
        for trigger, count in mix.items():
            for _ in range(count):
                stamps = metrics.record_enqueue(queue_depth=1)
                metrics.record_flush([stamps], queue_depth=0,
                                     trigger=trigger)
                metrics.record_batch_done([stamps], max_batch=8)
        stats = metrics.stats()["batches"]
        assert stats["flush_triggers"] == mix
        assert sum(stats["flush_triggers"].values()) == stats["count"] == 9

    def test_percentiles_match_numpy(self):
        clock = FakeClock()
        metrics = ServingMetrics(clock=clock)
        rng = np.random.default_rng(0)
        latencies = rng.uniform(0.001, 0.100, size=97)
        for latency in latencies:
            _complete_request(metrics, clock, queue_s=0.0,
                              service_s=float(latency))
        stats = metrics.stats()["latency_ms"]
        for q, key in ((50, "p50"), (95, "p95"), (99, "p99")):
            assert stats[key] == pytest.approx(
                float(np.percentile(latencies, q)) * 1e3)

    def test_window_ages_out_but_total_counts(self):
        clock = FakeClock()
        metrics = ServingMetrics(latency_window=4, clock=clock)
        for _ in range(10):
            _complete_request(metrics, clock, queue_s=0.0, service_s=0.001)
        stats = metrics.stats()["latency_ms"]
        assert stats["window_samples"] == 4
        assert stats["window_total"] == 10

    def test_old_samples_leave_the_percentiles(self):
        clock = FakeClock()
        metrics = ServingMetrics(latency_window=2, clock=clock)
        _complete_request(metrics, clock, queue_s=0.0, service_s=1.0)
        for _ in range(2):
            _complete_request(metrics, clock, queue_s=0.0, service_s=0.001)
        # the 1s outlier aged out of the 2-sample window
        assert metrics.stats()["latency_ms"]["max"] == pytest.approx(1.0)

    def test_rejections_counted_by_reason(self):
        metrics = ServingMetrics(clock=FakeClock())
        metrics.record_reject("queue_full")
        metrics.record_reject("queue_full")
        metrics.record_reject("rate_limited")
        stats = metrics.stats()["requests"]
        assert stats["rejected"] == {"queue_full": 2, "rate_limited": 1}
        assert stats["rejected_total"] == 3

    def test_failed_batch_counts_failures_not_latencies(self):
        clock = FakeClock()
        metrics = ServingMetrics(clock=clock)
        stamps = metrics.record_enqueue(queue_depth=1)
        metrics.record_flush([stamps], queue_depth=0, trigger="size")
        clock.advance(0.01)
        metrics.record_batch_done([stamps], max_batch=8, failed=True)
        stats = metrics.stats()
        assert stats["requests"]["failed"] == 1
        assert stats["requests"]["completed"] == 0
        assert stats["batches"]["failures"] == 1
        assert stats["latency_ms"]["p50"] is None

    def test_queue_depth_gauges(self):
        metrics = ServingMetrics(clock=FakeClock())
        metrics.record_enqueue(queue_depth=3)
        metrics.record_enqueue(queue_depth=7)
        metrics.set_queue_depth(2)
        stats = metrics.stats()["queue"]
        assert stats["depth"] == 2
        assert stats["peak_depth"] == 7
        assert metrics.queue_depth() == 2

    def test_mean_occupancy(self):
        clock = FakeClock()
        metrics = ServingMetrics(clock=clock)
        for size in (8, 4):
            stamps = [metrics.record_enqueue(queue_depth=1)
                      for _ in range(size)]
            metrics.record_flush(stamps, queue_depth=0, trigger="size")
            metrics.record_batch_done(stamps, max_batch=8)
        assert metrics.stats()["batches"]["mean_occupancy"] == \
            pytest.approx(0.75)

    def test_ewma_throughput_converges(self):
        clock = FakeClock()
        metrics = ServingMetrics(clock=clock, ewma_alpha=0.5)
        # flushes of 10 requests every 0.1s -> 100 req/s steady state
        for _ in range(20):
            stamps = [metrics.record_enqueue(queue_depth=1)
                      for _ in range(10)]
            metrics.record_flush(stamps, queue_depth=0, trigger="size")
            clock.advance(0.1)
            metrics.record_batch_done(stamps, max_batch=10)
        assert metrics.ewma_throughput_rps() == pytest.approx(100.0, rel=0.05)

    def test_p99_ms_respects_min_samples(self):
        clock = FakeClock()
        metrics = ServingMetrics(clock=clock)
        for _ in range(5):
            _complete_request(metrics, clock, queue_s=0.0, service_s=0.002)
        assert metrics.p99_ms(min_samples=10) is None
        assert metrics.p99_ms(min_samples=5) == pytest.approx(2.0)

    def test_stats_is_json_serialisable(self):
        import json

        clock = FakeClock()
        metrics = ServingMetrics(clock=clock)
        _complete_request(metrics, clock, queue_s=0.001, service_s=0.001)
        json.dumps(metrics.stats())

    @pytest.mark.parametrize("kwargs", [
        {"latency_window": 0},
        {"ewma_alpha": 0.0},
        {"ewma_alpha": 1.5},
    ])
    def test_invalid_construction_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServingMetrics(**kwargs)
