"""Unit tests of the admission gates (token bucket, breaker, wait bound)."""

from __future__ import annotations

import random
import threading

import pytest
from _helpers import FakeClock

from repro.runtime.resilience import BackoffPolicy

from repro.serving.admission import (
    CIRCUIT_CLOSED,
    CIRCUIT_HALF_OPEN,
    CIRCUIT_OPEN,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineError,
    QueueFullError,
    RateLimitedError,
    RateLimiter,
    RejectedError,
    ServiceClosedError,
    estimate_wait_s,
)


class TestRejectionHierarchy:
    @pytest.mark.parametrize("cls,reason", [
        (QueueFullError, "queue_full"),
        (RateLimitedError, "rate_limited"),
        (CircuitOpenError, "circuit_open"),
        (DeadlineError, "deadline"),
        (ServiceClosedError, "closed"),
    ])
    def test_reasons_are_distinct_and_catchable(self, cls, reason):
        assert issubclass(cls, RejectedError)
        assert cls.reason == reason


class TestRateLimiter:
    def test_burst_drains_then_rejects(self):
        clock = FakeClock()
        limiter = RateLimiter(10.0, burst=3, clock=clock)
        assert [limiter.try_acquire() for _ in range(4)] == \
            [True, True, True, False]

    def test_tokens_refill_at_rate(self):
        clock = FakeClock()
        limiter = RateLimiter(10.0, burst=2, clock=clock)
        assert limiter.try_acquire() and limiter.try_acquire()
        assert not limiter.try_acquire()
        clock.advance(0.11)  # ~one token at 10/s (float-add slack)
        assert limiter.try_acquire()
        assert not limiter.try_acquire()

    def test_bucket_never_exceeds_burst(self):
        clock = FakeClock()
        limiter = RateLimiter(100.0, burst=2, clock=clock)
        clock.advance(60.0)
        assert limiter.available() == pytest.approx(2.0)

    def test_default_burst_is_ceil_rate(self):
        assert RateLimiter(2.5, clock=FakeClock()).burst == 3
        assert RateLimiter(0.5, clock=FakeClock()).burst == 1

    def test_multi_token_acquire(self):
        clock = FakeClock()
        limiter = RateLimiter(1.0, burst=4, clock=clock)
        assert limiter.try_acquire(tokens=4)
        assert not limiter.try_acquire()

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            RateLimiter(0.0)
        with pytest.raises(ValueError):
            RateLimiter(1.0, burst=0)
        with pytest.raises(ValueError):
            RateLimiter(1.0).try_acquire(tokens=0)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CIRCUIT_CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == CIRCUIT_OPEN
        assert not breaker.allow()
        assert breaker.trips == 1
        assert breaker.last_trip_cause == "failures"

    def test_success_resets_the_failure_streak(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CIRCUIT_CLOSED

    def test_half_open_after_cooldown_limits_probes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0,
                                 half_open_probes=2, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == CIRCUIT_HALF_OPEN
        assert breaker.allow() and breaker.allow()
        assert not breaker.allow()  # probe budget spent

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CIRCUIT_CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=1.0,
                                 clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # a single half-open failure re-opens
        assert breaker.state == CIRCUIT_OPEN
        assert breaker.trips == 2
        clock.advance(0.5)
        assert not breaker.allow()  # cool-down restarted
        clock.advance(0.5)
        assert breaker.allow()

    def test_p99_breach_trips(self):
        clock = FakeClock()
        breaker = CircuitBreaker(p99_threshold_ms=50.0, clock=clock)
        breaker.record_p99(49.0)
        assert breaker.state == CIRCUIT_CLOSED
        breaker.record_p99(50.1)
        assert breaker.state == CIRCUIT_OPEN
        assert breaker.last_trip_cause == "p99"

    def test_p99_ignored_without_threshold_or_data(self):
        breaker = CircuitBreaker(clock=FakeClock())
        breaker.record_p99(1e9)  # no threshold configured
        assert breaker.state == CIRCUIT_CLOSED
        gated = CircuitBreaker(p99_threshold_ms=10.0, clock=FakeClock())
        gated.record_p99(None)  # window not populated yet
        assert gated.state == CIRCUIT_CLOSED

    def test_invalid_arguments(self):
        for kwargs in ({"failure_threshold": 0}, {"reset_timeout_s": 0.0},
                       {"half_open_probes": 0}, {"p99_threshold_ms": 0.0}):
            with pytest.raises(ValueError):
                CircuitBreaker(**kwargs)

    def test_concurrent_half_open_probes_respect_the_budget(self):
        """The probe budget holds under a thundering herd of admitters."""
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0,
                                 half_open_probes=3, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        admitted = []
        barrier = threading.Barrier(16)

        def prober():
            barrier.wait()
            if breaker.allow():
                admitted.append(threading.get_ident())

        threads = [threading.Thread(target=prober) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(admitted) == 3  # exactly the budget, no over-admission
        assert breaker.state == CIRCUIT_HALF_OPEN


class TestBreakerCooldownBackoff:
    """Repeated failed recoveries grow the cool-down (resilience policy)."""

    def _breaker(self, clock, **kwargs):
        kwargs.setdefault("cooldown_backoff",
                          BackoffPolicy(base_delay_s=1.0, max_delay_s=60.0,
                                        multiplier=3.0))
        return CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0,
                              cooldown_rng=random.Random(7), clock=clock,
                              **kwargs)

    def _fail_probe(self, breaker, clock):
        # the epsilon absorbs float round-off in clock accumulation
        clock.advance(breaker.current_cooldown_s + 1e-6)
        assert breaker.allow()  # half-open probe admitted
        breaker.record_failure()

    def test_failed_recoveries_grow_the_cooldown(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        breaker.record_failure()  # fresh trip: cool-down at the baseline
        assert breaker.current_cooldown_s == pytest.approx(1.0)
        seen = [breaker.current_cooldown_s]
        for _ in range(4):
            self._fail_probe(breaker, clock)
            seen.append(breaker.current_cooldown_s)
        # each re-trip redraws from a ceiling 3x the previous cool-down;
        # across a few rounds the schedule must actually have grown
        assert max(seen) > 1.0
        assert all(1.0 <= s <= 60.0 for s in seen)
        # the grown cool-down really gates admission
        clock.advance(breaker.current_cooldown_s / 2)
        assert not breaker.allow()

    def test_successful_probe_resets_the_cooldown(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        breaker.record_failure()
        for _ in range(3):
            self._fail_probe(breaker, clock)
        clock.advance(breaker.current_cooldown_s + 1e-6)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CIRCUIT_CLOSED
        assert breaker.current_cooldown_s == pytest.approx(1.0)

    def test_fresh_outage_starts_from_the_baseline_again(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        breaker.record_failure()
        for _ in range(3):
            self._fail_probe(breaker, clock)
        grown = breaker.current_cooldown_s
        # recover fully, then hit a brand-new outage: this is a fresh
        # incident, not a failed recovery — no carried-over penalty
        clock.advance(grown)
        assert breaker.allow()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CIRCUIT_OPEN
        assert breaker.current_cooldown_s == pytest.approx(1.0)

    def test_seeded_schedule_is_reproducible(self):
        def schedule():
            clock = FakeClock()
            breaker = self._breaker(clock)
            breaker.record_failure()
            out = []
            for _ in range(4):
                self._fail_probe(breaker, clock)
                out.append(breaker.current_cooldown_s)
            return out

        assert schedule() == schedule()

    def test_without_a_policy_the_cooldown_stays_fixed(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=2.0,
                                 clock=clock)
        breaker.record_failure()
        for _ in range(3):
            clock.advance(2.0)
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.current_cooldown_s == pytest.approx(2.0)

    def test_p99_retrip_also_grows_the_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0,
                                 p99_threshold_ms=50.0,
                                 cooldown_backoff=BackoffPolicy(
                                     base_delay_s=1.0, max_delay_s=60.0,
                                     multiplier=3.0),
                                 cooldown_rng=random.Random(3), clock=clock)
        breaker.record_failure()
        grew = False
        for _ in range(4):
            clock.advance(breaker.current_cooldown_s + 1e-6)
            assert breaker.state == CIRCUIT_HALF_OPEN
            breaker.record_p99(51.0)  # latency still breached: re-trip
            assert breaker.state == CIRCUIT_OPEN
            grew = grew or breaker.current_cooldown_s > 1.0
        assert grew


class TestEstimateWait:
    def test_policy_bound_before_any_throughput(self):
        # empty queue: the next request still waits up to one deadline
        assert estimate_wait_s(0, max_batch=8, max_delay_s=0.005,
                               ewma_rps=0.0) == pytest.approx(0.005)
        # 16 ahead + self = 3 batches of 8 at one deadline each
        assert estimate_wait_s(16, max_batch=8, max_delay_s=0.005,
                               ewma_rps=0.0) == pytest.approx(0.015)

    def test_throughput_bound_dominates_when_slower(self):
        # 100 queued at 10 req/s = 10s >> the policy bound
        assert estimate_wait_s(100, max_batch=8, max_delay_s=0.005,
                               ewma_rps=10.0) == pytest.approx(10.0)

    def test_policy_bound_dominates_when_fast(self):
        assert estimate_wait_s(4, max_batch=1, max_delay_s=0.010,
                               ewma_rps=1e6) == pytest.approx(0.050)

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            estimate_wait_s(-1, max_batch=8, max_delay_s=0.005, ewma_rps=0.0)

    def test_cold_ewma_still_yields_a_finite_positive_bound(self):
        """Before the EWMA has observed a single flush (rate 0), the
        flush-policy floor must keep the estimate finite and non-zero —
        a cold service neither rejects everything (infinite estimate)
        nor admits unboundedly (zero estimate)."""
        for depth in (0, 1, 7, 8, 63, 1024):
            wait = estimate_wait_s(depth, max_batch=8, max_delay_s=0.004,
                                   ewma_rps=0.0)
            batches = depth // 8 + 1
            assert wait == pytest.approx(batches * 0.004)
            assert 0.0 < wait < float("inf")

    def test_cold_estimate_grows_monotonically_with_depth(self):
        waits = [estimate_wait_s(d, max_batch=4, max_delay_s=0.002,
                                 ewma_rps=0.0) for d in range(64)]
        assert all(b >= a for a, b in zip(waits, waits[1:]))

    def test_warming_ewma_only_tightens_upward(self):
        # once throughput data exists it may only *raise* the estimate
        # above the policy floor, never lower it below
        cold = estimate_wait_s(32, max_batch=8, max_delay_s=0.004,
                               ewma_rps=0.0)
        warm_fast = estimate_wait_s(32, max_batch=8, max_delay_s=0.004,
                                    ewma_rps=1e6)
        warm_slow = estimate_wait_s(32, max_batch=8, max_delay_s=0.004,
                                    ewma_rps=2.0)
        assert warm_fast == pytest.approx(cold)
        assert warm_slow == pytest.approx(16.0)  # 32 queued at 2/s
