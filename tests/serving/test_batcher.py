"""Concurrency torture tests of the micro-batcher (stub engines)."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from _helpers import FailingEngine, GatedEngine, StubEngine

from repro.serving.admission import QueueFullError, ServiceClosedError
from repro.serving.batcher import (
    TRIGGER_DEADLINE,
    TRIGGER_DRAIN,
    TRIGGER_SIZE,
    MicroBatcher,
)

SHAPE = (4,)


def _image(value: float) -> np.ndarray:
    return np.full(SHAPE, value)


class TestFlushTriggers:
    def test_deadline_flush_of_a_partial_batch(self):
        engine = StubEngine()
        with MicroBatcher(engine, max_batch=100, max_delay_ms=5.0,
                          input_shape=SHAPE) as batcher:
            futures = [batcher.submit(_image(v)) for v in (1.0, 2.0, 3.0)]
            results = [f.result(timeout=10.0) for f in futures]
        for value, result in zip((1.0, 2.0, 3.0), results):
            np.testing.assert_array_equal(result,
                                          StubEngine.expected(_image(value)))
        log = batcher.flush_log()
        assert [record.trigger for record in log].count(TRIGGER_DEADLINE) >= 1
        assert sum(record.size for record in log) == 3

    def test_size_flush_fires_before_the_deadline(self):
        engine = GatedEngine()
        batcher = MicroBatcher(engine, max_batch=4, max_delay_ms=10_000.0,
                               input_shape=SHAPE)
        try:
            futures = [batcher.submit(_image(float(i))) for i in range(4)]
            # a 10s deadline cannot be the trigger inside this timeout
            engine.entered.wait(timeout=10.0)
            engine.gate.set()
            for future in futures:
                future.result(timeout=10.0)
        finally:
            engine.gate.set()
            batcher.close()
        assert batcher.flush_log()[0].trigger == TRIGGER_SIZE
        assert batcher.flush_log()[0].size == 4

    def test_deadline_vs_size_race_under_load(self):
        # larger flushes while the engine is busy, deadline stragglers at
        # the tail — every request must still resolve to its own row
        engine = StubEngine()
        with MicroBatcher(engine, max_batch=8, max_delay_ms=1.0,
                          input_shape=SHAPE, queue_capacity=10_000) as batcher:
            values = [float(i) for i in range(200)]
            futures = [batcher.submit(_image(v)) for v in values]
            results = [f.result(timeout=30.0) for f in futures]
        for value, result in zip(values, results):
            np.testing.assert_array_equal(result,
                                          StubEngine.expected(_image(value)))
        assert all(size <= 8 for size in engine.batch_sizes)
        assert sum(engine.batch_sizes) == 200


class TestProducerTorture:
    @pytest.mark.parametrize("max_batch,max_delay_ms", [(4, 1.0), (32, 0.5)])
    def test_many_producers_each_get_their_own_row(self, max_batch,
                                                   max_delay_ms):
        engine = StubEngine()
        per_producer = 50
        producers = 8
        errors: list = []
        with MicroBatcher(engine, max_batch=max_batch,
                          max_delay_ms=max_delay_ms, input_shape=SHAPE,
                          queue_capacity=10_000) as batcher:

            def produce(base: int) -> None:
                try:
                    for i in range(per_producer):
                        value = float(base * per_producer + i)
                        result = batcher.submit(_image(value)).result(
                            timeout=30.0)
                        np.testing.assert_array_equal(
                            result, StubEngine.expected(_image(value)))
                except Exception as exc:  # noqa: BLE001 - collected for assert
                    errors.append(exc)

            threads = [threading.Thread(target=produce, args=(n,))
                       for n in range(producers)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
        assert not errors
        assert sum(engine.batch_sizes) == producers * per_producer
        stats = batcher.metrics.stats()
        assert stats["requests"]["completed"] == producers * per_producer
        assert stats["requests"]["failed"] == 0


class TestBackpressure:
    def test_full_queue_fast_rejects(self):
        engine = GatedEngine()
        batcher = MicroBatcher(engine, max_batch=1, max_delay_ms=0.0,
                               input_shape=SHAPE, queue_capacity=2)
        try:
            first = batcher.submit(_image(0.0))
            engine.entered.wait(timeout=10.0)  # dispatcher is now blocked
            # the queue (capacity 2) fills behind the in-flight request
            admitted = [first]
            with pytest.raises(QueueFullError):
                for i in range(10):
                    admitted.append(batcher.submit(_image(float(i + 1))))
            assert len(admitted) <= 3  # 1 in flight + 2 queued
            assert batcher.queue_depth() == 2
        finally:
            engine.gate.set()
            batcher.close()
        for future in admitted:
            assert future.result(timeout=10.0) is not None

    def test_submit_rejects_wrong_shape(self):
        engine = StubEngine()
        with MicroBatcher(engine, input_shape=SHAPE) as batcher:
            with pytest.raises(ValueError):
                batcher.submit(np.zeros((2, *SHAPE)))  # pre-batched input
            with pytest.raises(ValueError):
                batcher.submit(np.zeros(3))


class TestLifecycle:
    def test_close_drains_in_flight_requests(self):
        engine = GatedEngine()
        batcher = MicroBatcher(engine, max_batch=2, max_delay_ms=50.0,
                               input_shape=SHAPE, queue_capacity=100)
        futures = [batcher.submit(_image(float(i))) for i in range(7)]
        engine.entered.wait(timeout=10.0)
        closer = threading.Thread(
            target=lambda: batcher.close(drain=True, timeout=30.0))
        closer.start()
        engine.gate.set()
        closer.join(timeout=30.0)
        assert not closer.is_alive()
        for i, future in enumerate(futures):
            np.testing.assert_array_equal(
                future.result(timeout=1.0),
                StubEngine.expected(_image(float(i))))
        assert any(record.trigger == TRIGGER_DRAIN
                   for record in batcher.flush_log())

    def test_close_without_drain_fails_queued_requests(self):
        engine = GatedEngine()
        batcher = MicroBatcher(engine, max_batch=1, max_delay_ms=0.0,
                               input_shape=SHAPE, queue_capacity=100)
        in_flight = batcher.submit(_image(1.0))
        engine.entered.wait(timeout=10.0)
        queued = [batcher.submit(_image(float(i))) for i in range(3)]
        closer = threading.Thread(
            target=lambda: batcher.close(drain=False, timeout=30.0))
        closer.start()
        engine.gate.set()
        closer.join(timeout=30.0)
        assert not closer.is_alive()
        # the batch already inside the engine still completes...
        np.testing.assert_array_equal(in_flight.result(timeout=10.0),
                                      StubEngine.expected(_image(1.0)))
        # ...but everything still queued fails fast
        for future in queued:
            with pytest.raises(ServiceClosedError):
                future.result(timeout=10.0)

    def test_submit_after_close_rejects(self):
        batcher = MicroBatcher(StubEngine(), input_shape=SHAPE)
        batcher.close()
        assert batcher.closed
        with pytest.raises(ServiceClosedError):
            batcher.submit(_image(0.0))

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(StubEngine(), input_shape=SHAPE)
        batcher.close()
        batcher.close()

    def test_futures_carry_request_ids_matching_the_flush_log(self):
        engine = StubEngine()
        with MicroBatcher(engine, max_batch=4, max_delay_ms=1.0,
                          input_shape=SHAPE) as batcher:
            futures = [batcher.submit(_image(float(i))) for i in range(10)]
            for future in futures:
                future.result(timeout=10.0)
        logged = [rid for record in batcher.flush_log()
                  for rid in record.request_ids]
        assert sorted(logged) == sorted(f.request_id for f in futures)


class TestEngineFailures:
    def test_engine_exception_fans_out_to_the_batch(self):
        engine = FailingEngine(fail_first=1)
        # the 50ms deadline comfortably coalesces the three fast submits
        # into one flush even on a loaded CI runner
        with MicroBatcher(engine, max_batch=100, max_delay_ms=50.0,
                          input_shape=SHAPE) as batcher:
            failing = [batcher.submit(_image(float(i))) for i in range(3)]
            for future in failing:
                with pytest.raises(RuntimeError, match="engine fault"):
                    future.result(timeout=10.0)
            # the batcher survives the fault and serves the next flush
            recovered = batcher.submit(_image(7.0)).result(timeout=10.0)
        np.testing.assert_array_equal(recovered,
                                      StubEngine.expected(_image(7.0)))
        stats = batcher.metrics.stats()
        assert stats["requests"]["failed"] == 3
        assert stats["batches"]["failures"] == 1

    def test_after_batch_hook_sees_outcomes(self):
        outcomes = []
        engine = FailingEngine(fail_first=1)
        with MicroBatcher(engine, max_batch=1, max_delay_ms=0.0,
                          input_shape=SHAPE,
                          after_batch=outcomes.append) as batcher:
            failed = batcher.submit(_image(0.0))
            with pytest.raises(RuntimeError):
                failed.result(timeout=10.0)
            batcher.submit(_image(1.0)).result(timeout=10.0)
        assert outcomes[0] is False
        assert True in outcomes


class TestConstruction:
    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0},
        {"max_delay_ms": -1.0},
        {"queue_capacity": 0},
        {"flush_log": 0},
    ])
    def test_invalid_arguments(self, kwargs):
        with pytest.raises(ValueError):
            MicroBatcher(StubEngine(), input_shape=SHAPE, **kwargs)

    def test_input_shape_defaults_from_the_engine_model(self):
        class Model:
            input_shape = (3, 2)

        class Engine(StubEngine):
            model = Model()

        batcher = MicroBatcher(Engine())
        try:
            assert batcher.input_shape == (3, 2)
        finally:
            batcher.close()

    def test_zero_delay_flushes_immediately(self):
        engine = StubEngine()
        with MicroBatcher(engine, max_batch=64, max_delay_ms=0.0,
                          input_shape=SHAPE) as batcher:
            result = batcher.submit(_image(2.0)).result(timeout=10.0)
        np.testing.assert_array_equal(result,
                                      StubEngine.expected(_image(2.0)))


def test_dispatcher_thread_exits_after_close():
    batcher = MicroBatcher(StubEngine(), input_shape=SHAPE)
    batcher.submit(_image(1.0)).result(timeout=10.0)
    batcher.close(timeout=10.0)
    deadline = time.monotonic() + 5.0
    while batcher._dispatcher.is_alive() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert not batcher._dispatcher.is_alive()


class TestStreamingPipeline:
    """The opt-in pipeline= transport: chunked flushes, exact replay."""

    def _engine(self, seed=0):
        from repro.bnn.layers import (
            BatchNorm, BinaryLinear, Linear, SignActivation,
        )
        from repro.bnn.model import BNNModel, InferenceEngine
        from repro.utils.rng import make_rng

        rng = make_rng(seed)
        model = BNNModel(
            [Linear(4, 10, rng=rng), BatchNorm(10), SignActivation(),
             BinaryLinear(10, 9, rng=rng), BatchNorm(9), SignActivation(),
             BinaryLinear(9, 8, rng=rng), BatchNorm(8), SignActivation(),
             Linear(8, 3, rng=rng)],
            name="serving-mlp", input_shape=SHAPE)
        return InferenceEngine(model, flip_rate=0.02, seed=seed)

    def test_pipelined_flush_replays_byte_identical(self):
        engine = self._engine()
        rng = np.random.default_rng(1)
        images = [rng.uniform(-1, 1, size=SHAPE) for _ in range(8)]
        batcher = MicroBatcher(engine, max_batch=8, max_delay_ms=10_000.0,
                               input_shape=SHAPE, pipeline="on",
                               pipeline_chunk=2)
        try:
            futures = [batcher.submit(image) for image in images]
            rows = [f.result(timeout=10.0) for f in futures]
        finally:
            batcher.close()
        record = batcher.flush_log()[0]
        assert record.chunk == 2
        by_id = {f.request_id: row for f, row in zip(futures, rows)}
        stack = np.stack([images[rid] for rid in record.request_ids])
        replay = engine.forward_batch(stack, batch_size=record.chunk)
        for row_index, rid in enumerate(record.request_ids):
            assert replay[row_index].tobytes() == by_id[rid].tobytes()

    def test_default_chunk_splits_the_flush(self):
        engine = self._engine(seed=2)
        rng = np.random.default_rng(3)
        batcher = MicroBatcher(engine, max_batch=8, max_delay_ms=10_000.0,
                               input_shape=SHAPE, pipeline="off")
        try:
            futures = [batcher.submit(rng.uniform(-1, 1, size=SHAPE))
                       for _ in range(8)]
            for f in futures:
                f.result(timeout=10.0)
        finally:
            batcher.close()
        # 8 requests / DEFAULT_PIPELINE_CHUNKS -> 2-row chunks
        assert batcher.flush_log()[0].chunk == 2

    def test_classic_transport_records_no_chunk(self):
        engine = StubEngine()
        with MicroBatcher(engine, max_batch=4, max_delay_ms=1.0,
                          input_shape=SHAPE) as batcher:
            batcher.submit(_image(1.0)).result(timeout=10.0)
        assert batcher.flush_log()[0].chunk is None

    def test_invalid_pipeline_mode_rejected_at_construction(self):
        with pytest.raises(ValueError, match="pipeline"):
            MicroBatcher(StubEngine(), input_shape=SHAPE, pipeline="bogus")
        with pytest.raises(ValueError, match="pipeline_chunk"):
            MicroBatcher(StubEngine(), input_shape=SHAPE, pipeline="on",
                         pipeline_chunk=0)
