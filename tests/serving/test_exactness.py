"""Property tests: the serving layer adds zero numerical artifacts.

Two guarantees, layered:

* **Transport exactness** (every engine, flip noise included): the row a
  future resolves to is byte-identical to calling
  ``engine.forward_batch`` directly on the *same flushed stack* — the
  batcher's :meth:`flush_log` records exactly which requests shared each
  batch, so every served batch is replayed and compared bit for bit.
* **Cross-policy prediction identity** (noise-free engines): arg-max
  predictions match the direct single-call engine across flush policies.
  Cross-policy *logit* identity is deliberately not asserted — the dense
  first/last layers inherit BLAS's batch-shape-dependent last-ulp
  rounding and flip-noise streams derive from chunk offsets, both
  documented in ``docs/serving.md``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bnn.model import InferenceEngine
from repro.bnn.networks import build_network
from repro.serving import InferenceService
from repro.utils.rng import make_rng

#: the two flush-policy flavours the acceptance criteria require: purely
#: deadline-driven singles vs size-driven packed batches
POLICIES = ((1, 4.0), (8, 1.0))

N_IMAGES = 24


@pytest.fixture(scope="module")
def model():
    return build_network("MLP-S")


@pytest.fixture(scope="module")
def engine(model):
    return InferenceEngine(model)


@pytest.fixture(scope="module")
def noisy_engine(model):
    return InferenceEngine(model, flip_rate=0.05, seed=7)


def _serve(service, images):
    futures = [service.submit(image) for image in images]
    results = [future.result(timeout=30.0) for future in futures]
    by_id = {future.request_id: result
             for future, result in zip(futures, results)}
    return results, by_id


def _assert_transport_exact(engine, service, images, by_id):
    """Replay every logged flushed batch directly through the engine."""
    records = service.batcher.flush_log()
    assert sum(record.size for record in records) == len(images)
    for record in records:
        assert record.ok
        stack = np.stack([images[rid] for rid in record.request_ids])
        replay = engine.forward_batch(stack, batch_size=record.size)
        for row, rid in enumerate(record.request_ids):
            np.testing.assert_array_equal(by_id[rid], replay[row])


@pytest.mark.parametrize("max_batch,max_delay_ms", POLICIES)
def test_served_rows_are_byte_identical_to_direct_replay(
        engine, max_batch, max_delay_ms):
    images = make_rng(0).uniform(-1.0, 1.0,
                                 size=(N_IMAGES, *engine.model.input_shape))
    with InferenceService(engine, max_batch=max_batch,
                          max_delay_ms=max_delay_ms) as service:
        _, by_id = _serve(service, images)
    _assert_transport_exact(engine, service, images, by_id)


@pytest.mark.parametrize("max_batch,max_delay_ms", POLICIES)
def test_transport_exactness_holds_under_flip_noise(
        noisy_engine, max_batch, max_delay_ms):
    # flip-noise streams derive from chunk offsets, so replaying the
    # recorded stack reproduces the served rows exactly; request ids map
    # rows through arbitrary flush compositions
    images = make_rng(1).uniform(
        -1.0, 1.0, size=(N_IMAGES, *noisy_engine.model.input_shape))
    with InferenceService(noisy_engine, max_batch=max_batch,
                          max_delay_ms=max_delay_ms) as service:
        _, by_id = _serve(service, images)
    _assert_transport_exact(noisy_engine, service, images, by_id)


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_predictions_match_direct_engine_across_policies(engine, seed):
    """Property: any seeded batch serves to the direct predictions."""
    images = make_rng(seed).uniform(
        -1.0, 1.0, size=(N_IMAGES, *engine.model.input_shape))
    direct_pred = engine.forward_batch(
        images, batch_size=N_IMAGES).argmax(axis=1)
    for max_batch, max_delay_ms in POLICIES:
        with InferenceService(engine, max_batch=max_batch,
                              max_delay_ms=max_delay_ms) as service:
            results, by_id = _serve(service, images)
        served_pred = np.stack(results).argmax(axis=1)
        np.testing.assert_array_equal(served_pred, direct_pred)
        _assert_transport_exact(engine, service, images, by_id)


def test_concurrent_producers_replay_exactly(engine):
    """Producer threads racing the dispatcher stay byte-exact: every
    flushed batch, whatever its composition, replays identically."""
    import threading

    images = make_rng(4).uniform(-1.0, 1.0,
                                 size=(64, *engine.model.input_shape))
    id_to_image = {}
    id_to_result = {}
    lock = threading.Lock()
    with InferenceService(engine, max_batch=8, max_delay_ms=0.5,
                          queue_capacity=256) as service:

        def produce(chunk):
            for image in chunk:
                future = service.submit(image)
                with lock:
                    id_to_image[future.request_id] = image
                result = future.result(timeout=30.0)
                with lock:
                    id_to_result[future.request_id] = result

        threads = [threading.Thread(target=produce, args=(images[k::4],))
                   for k in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
    assert len(id_to_result) == len(images)
    for record in service.batcher.flush_log():
        stack = np.stack([id_to_image[rid] for rid in record.request_ids])
        replay = engine.forward_batch(stack, batch_size=record.size)
        for row, rid in enumerate(record.request_ids):
            np.testing.assert_array_equal(id_to_result[rid], replay[row])
