"""Tests for the file/dir work-queue protocol (the multi-host seam)."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.runtime.queue import (
    QueueExecutor,
    claim_next_task,
    collect_results,
    enqueue_task,
    init_queue_dirs,
    main,
    run_claimed_task,
    serve,
)
from repro.runtime.tasks import WorkList


def double(x):
    return 2 * x


def explode(x):
    raise ValueError(f"bad task {x}")


def _enqueue(root, fn, items):
    init_queue_dirs(root)
    worklist = WorkList.from_items(fn, items)
    for task in worklist:
        enqueue_task(root, task)
    return worklist


class TestProtocol:
    def test_enqueue_claim_run_roundtrip(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, [10, 20])
        claimed = claim_next_task(root)
        assert claimed is not None and claimed.endswith("task-0000000.pkl")
        assert os.path.dirname(claimed).endswith("claims")
        assert run_claimed_task(root, claimed) == 0
        # the claim file is consumed, the result file is published
        assert not os.path.exists(claimed)
        with open(os.path.join(root, "results", "task-0000000.pkl"), "rb") as f:
            index, ok, payload = pickle.load(f)
        assert (index, ok, payload) == (0, True, 20)

    def test_claims_are_exclusive_and_ordered(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, [1, 2, 3])
        first = claim_next_task(root)
        second = claim_next_task(root)
        third = claim_next_task(root)
        assert [os.path.basename(p) for p in (first, second, third)] == [
            "task-0000000.pkl", "task-0000001.pkl", "task-0000002.pkl"
        ]
        assert claim_next_task(root) is None

    def test_serve_drains_everything(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, range(5))
        assert serve(root) == 5
        assert serve(root) == 0  # idempotent on an empty queue
        results = collect_results(root, 5, timeout_s=1.0, poll_interval_s=0.01)
        assert results == [0, 2, 4, 6, 8]

    def test_serve_respects_max_tasks(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, range(4))
        assert serve(root, max_tasks=3) == 3
        assert serve(root) == 1

    def test_worker_error_is_published_and_reraised(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, explode, [1])
        serve(root)
        with pytest.raises(RuntimeError, match="bad task 1"):
            collect_results(root, 1, timeout_s=1.0, poll_interval_s=0.01)

    def test_collect_times_out_without_workers(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, [1])
        with pytest.raises(TimeoutError):
            collect_results(root, 1, timeout_s=0.05, poll_interval_s=0.01)


class TestQueueExecutor:
    def test_inline_worker_end_to_end(self, tmp_path):
        executor = QueueExecutor(str(tmp_path))
        assert executor.map(double, range(7)) == [2 * x for x in range(7)]

    def test_ephemeral_root_is_cleaned_up(self):
        executor = QueueExecutor()
        assert executor.map(double, [3]) == [6]

    def test_external_worker_mode(self, tmp_path):
        # simulate a remote worker: pre-drain the queue with serve() after
        # enqueueing, then let a non-serving executor collect the results
        root = str(tmp_path)
        worklist = _enqueue(root, double, range(3))
        served = serve(root, max_tasks=len(worklist))
        assert served == 3
        executor = QueueExecutor(root, inline_worker=False, timeout_s=1.0)
        results = collect_results(root, 3, timeout_s=1.0,
                                  poll_interval_s=0.01)
        assert results == [0, 2, 4]
        assert executor.inline_worker is False

    def test_task_failure_propagates(self, tmp_path):
        executor = QueueExecutor(str(tmp_path))
        with pytest.raises(RuntimeError, match="bad task"):
            executor.map(explode, [9])

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            QueueExecutor(timeout_s=0)
        with pytest.raises(ValueError):
            QueueExecutor(poll_interval_s=-1)


class TestWorkerCli:
    def test_cli_drains_queue(self, tmp_path, capsys):
        root = str(tmp_path)
        _enqueue(root, double, range(3))
        assert main([root]) == 0
        assert "executed 3 task(s)" in capsys.readouterr().out
        results = collect_results(root, 3, timeout_s=1.0,
                                  poll_interval_s=0.01)
        assert results == [0, 2, 4]

    def test_cli_max_tasks(self, tmp_path, capsys):
        root = str(tmp_path)
        _enqueue(root, double, range(3))
        assert main([root, "--max-tasks", "2"]) == 0
        assert "executed 2 task(s)" in capsys.readouterr().out


def test_subprocess_worker_runs_real_multi_process_round(tmp_path):
    """A genuinely separate OS process drains the queue (the multi-host
    deployment shape, minus the second host).

    Task functions cross the process boundary by pickle, i.e. *by import
    path* — so they must be importable on the worker side.  A builtin
    stands in for the repo's module-level task functions
    (``evaluate_point`` etc.), which satisfy the same rule.
    """
    import subprocess
    import sys

    root = str(tmp_path)
    _enqueue(root, abs, [-1, 2, -3, -4])
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.runtime.queue", root],
        capture_output=True, text=True, env=env, timeout=60,
    )
    assert proc.returncode == 0, proc.stderr
    results = collect_results(root, 4, timeout_s=1.0, poll_interval_s=0.01)
    assert results == [1, 2, 3, 4]


class TestSharedRootReuse:
    """Regression: a reused shared root must never serve stale results."""

    def test_second_run_on_same_root_gets_fresh_results(self, tmp_path):
        root = str(tmp_path)
        first = QueueExecutor(root)
        assert first.map(double, [1, 2, 3]) == [2, 4, 6]
        second = QueueExecutor(root)
        # pre-fix this returned the first run's [2, 4, 6] from results/
        assert second.map(abs, [-7, -8, -9]) == [7, 8, 9]

    def test_runs_with_different_sizes_do_not_collide(self, tmp_path):
        root = str(tmp_path)
        executor = QueueExecutor(root)
        assert executor.map(double, range(5)) == [0, 2, 4, 6, 8]
        assert executor.map(double, range(2)) == [0, 2]

    def test_successful_run_retires_its_namespace(self, tmp_path):
        root = str(tmp_path)
        QueueExecutor(root).map(double, [1])
        leftovers = [n for n in os.listdir(root) if n.startswith("run-")]
        assert leftovers == []

    def test_failed_run_keeps_namespace_for_debugging(self, tmp_path):
        root = str(tmp_path)
        with pytest.raises(RuntimeError):
            QueueExecutor(root).map(explode, [1])
        leftovers = [n for n in os.listdir(root) if n.startswith("run-")]
        assert len(leftovers) == 1

    def test_worker_serve_drains_run_namespaces(self, tmp_path):
        # an external worker pointed at the shared root must find and
        # drain executor-created run-* namespaces
        root = str(tmp_path)
        run_root = os.path.join(root, "run-manual")
        _enqueue(run_root, double, range(3))
        assert serve(root) == 3
        results = collect_results(run_root, 3, timeout_s=1.0,
                                  poll_interval_s=0.01)
        assert results == [0, 2, 4]


def triple(x):
    return 3 * x


class TestSharedFnProtocol:
    """One fn.pkl per run instead of the callable inside every task file."""

    def test_executor_writes_shared_fn_once(self, tmp_path, monkeypatch):
        import repro.runtime.queue as queue_mod

        root = str(tmp_path)
        writes = []
        original = queue_mod.write_shared_fn
        monkeypatch.setattr(
            queue_mod, "write_shared_fn",
            lambda r, fn, **kw: (writes.append(r), original(r, fn, **kw)),
        )
        assert QueueExecutor(root).map(double, range(6)) == [2 * x
                                                            for x in range(6)]
        assert len(writes) == 1

    def test_task_files_omit_the_shared_callable(self, tmp_path):
        from repro.runtime.queue import write_shared_fn

        root = str(tmp_path)
        init_queue_dirs(root)
        worklist = WorkList.from_items(double, [5, 6])
        write_shared_fn(root, double)
        for task in worklist:
            enqueue_task(root, task, shared_fn=True)
        with open(os.path.join(root, "tasks", "task-0000000.pkl"), "rb") as f:
            index, fn, arg = pickle.load(f)
        assert (index, fn, arg) == (0, None, 5)
        assert serve(root) == 2
        assert collect_results(root, 2, timeout_s=1.0,
                               poll_interval_s=0.01) == [10, 12]

    def test_heterogeneous_fns_stay_embedded(self, tmp_path):
        from repro.runtime.tasks import Task

        root = str(tmp_path)
        executor = QueueExecutor(root)
        worklist = WorkList([
            Task(index=0, fn=double, arg=2),
            Task(index=1, fn=triple, arg=2),
        ])
        assert executor.execute(worklist) == [4, 6]


class TestRegistryMultiHostSeam:
    def test_coordinator_mode_requires_shared_root(self):
        with pytest.raises(ValueError, match="explicit shared root"):
            QueueExecutor(inline_worker=False)

    def test_registry_honours_queue_dir_env(self, tmp_path, monkeypatch):
        from repro.runtime.executors import make_executor
        from repro.runtime.queue import QUEUE_DIR_ENV

        monkeypatch.setenv(QUEUE_DIR_ENV, str(tmp_path))
        executor = make_executor("queue")
        assert executor.root == str(tmp_path)
        # the shared root actually carries the run: results come back and
        # the retired namespace leaves the (still shared) root in place
        assert executor.map(double, [1, 2]) == [2, 4]
        assert os.path.isdir(str(tmp_path))

    def test_registry_without_env_is_self_contained(self, monkeypatch):
        from repro.runtime.executors import make_executor
        from repro.runtime.queue import QUEUE_DIR_ENV

        monkeypatch.delenv(QUEUE_DIR_ENV, raising=False)
        executor = make_executor("queue")
        assert executor.root is None
        assert executor.inline_worker is True


class TestLeases:
    def test_claim_writes_lease_sidecar(self, tmp_path):
        import time as _time

        from repro.runtime.queue import read_lease

        root = str(tmp_path)
        _enqueue(root, double, [1])
        before = _time.time()
        claimed = claim_next_task(root, owner="host-x:42", lease_s=12.5)
        lease = read_lease(claimed)
        assert lease["owner"] == "host-x:42"
        assert lease["lease_s"] == 12.5
        # the record carries the ABSOLUTE deadline: now + lease_s, by the
        # claimant's clock — never inferred from storage timestamps
        assert before + 12.5 <= lease["deadline"] <= _time.time() + 12.5

    def test_claim_owner_defaults_to_host_pid(self, tmp_path):
        import os as _os

        from repro.runtime.queue import read_lease

        root = str(tmp_path)
        _enqueue(root, double, [1])
        lease = read_lease(claim_next_task(root))
        assert lease["owner"].endswith(f":{_os.getpid()}")

    def test_claim_resets_the_lease_clock(self, tmp_path):
        # a task that sat queued for an hour must not be born expired:
        # the lease clock starts at the claim, not at enqueue time
        import time as _time

        from repro.runtime.queue import read_lease

        root = str(tmp_path)
        _enqueue(root, double, [1])
        task_path = os.path.join(root, "tasks", "task-0000000.pkl")
        stale = _time.time() - 3600.0
        os.utime(task_path, (stale, stale))
        claimed = claim_next_task(root, lease_s=30.0)
        assert read_lease(claimed)["deadline"] > _time.time()

    def test_heartbeat_extends_deadline_and_reports_lost_claims(
            self, tmp_path):
        import time as _time

        from repro.runtime.queue import heartbeat, read_lease
        from repro.runtime.store import resolve_store

        root = str(tmp_path)
        _enqueue(root, double, [1])
        claimed = claim_next_task(root, lease_s=20.0)
        store = resolve_store()
        # simulate a lease nearing expiry, then renew it
        stale = dict(read_lease(claimed))
        stale["deadline"] = _time.time() + 0.5
        store.write_lease(claimed, stale)
        assert heartbeat(claimed) is True
        renewed = read_lease(claimed)
        assert renewed["deadline"] >= _time.time() + 15.0
        assert renewed["owner"] == stale["owner"]  # renewal keeps identity
        store.delete(claimed)
        assert heartbeat(claimed) is False

    def test_run_claimed_task_consumes_lease_sidecar(self, tmp_path):
        from repro.runtime.queue import _lease_path

        root = str(tmp_path)
        _enqueue(root, double, [2])
        claimed = claim_next_task(root)
        assert os.path.exists(_lease_path(claimed))
        run_claimed_task(root, claimed)
        assert not os.path.exists(_lease_path(claimed))

    def test_run_claimed_task_tolerates_vanished_claim(self, tmp_path):
        # a racing janitor can steal a claim in the claim/sidecar write
        # gap; the worker must report a lost claim, not crash
        root = str(tmp_path)
        _enqueue(root, double, [1])
        claimed = claim_next_task(root)
        os.remove(claimed)
        assert run_claimed_task(root, claimed) is None
        # ...and serve survives the same situation end-to-end
        assert serve(root) == 0

    def test_release_with_missing_sidecar_leaves_claim_alone(self, tmp_path):
        from repro.runtime.queue import _lease_path, _release_claim

        root = str(tmp_path)
        _enqueue(root, double, [1])
        claimed = claim_next_task(root, owner="worker:1")
        os.remove(_lease_path(claimed))
        # missing sidecar = a new claimant mid-write; not ours to delete
        _release_claim(claimed, "worker:1")
        assert os.path.exists(claimed)

    def test_release_skips_claims_stolen_by_another_worker(self, tmp_path):
        from repro.runtime.queue import _release_claim, read_lease

        root = str(tmp_path)
        _enqueue(root, double, [1])
        claimed = claim_next_task(root, owner="thief:2")
        # the original holder ("victim:1") lost the lease; releasing with
        # its identity must leave the thief's claim untouched
        _release_claim(claimed, "victim:1")
        assert os.path.exists(claimed)
        assert read_lease(claimed)["owner"] == "thief:2"
        _release_claim(claimed, "thief:2")
        assert not os.path.exists(claimed)


class TestEnvKnobs:
    def test_defaults_without_env(self, monkeypatch):
        from repro.runtime import queue as queue_mod

        for name in (queue_mod.LEASE_ENV, queue_mod.MAX_RETRIES_ENV,
                     queue_mod.COMPACT_THRESHOLD_ENV):
            monkeypatch.delenv(name, raising=False)
        assert queue_mod.default_lease_s() == queue_mod.DEFAULT_LEASE_S
        assert queue_mod.default_max_retries() == queue_mod.DEFAULT_MAX_RETRIES
        assert (queue_mod.default_compact_threshold()
                == queue_mod.DEFAULT_COMPACT_THRESHOLD)

    def test_env_overrides_flow_into_executor(self, monkeypatch, tmp_path):
        from repro.runtime import queue as queue_mod

        monkeypatch.setenv(queue_mod.LEASE_ENV, "7.5")
        monkeypatch.setenv(queue_mod.MAX_RETRIES_ENV, "9")
        monkeypatch.setenv(queue_mod.COMPACT_THRESHOLD_ENV, "64")
        executor = QueueExecutor(str(tmp_path))
        assert executor.lease_s == 7.5
        assert executor.max_retries == 9
        assert executor.compact_threshold == 64

    def test_explicit_knobs_beat_env(self, monkeypatch, tmp_path):
        from repro.runtime import queue as queue_mod

        monkeypatch.setenv(queue_mod.LEASE_ENV, "7.5")
        executor = QueueExecutor(str(tmp_path), lease_s=2.0)
        assert executor.lease_s == 2.0

    def test_invalid_env_values_fail_loudly(self, monkeypatch):
        from repro.runtime import queue as queue_mod

        monkeypatch.setenv(queue_mod.LEASE_ENV, "soon")
        with pytest.raises(ValueError, match="REPRO_RUNTIME_LEASE_S"):
            queue_mod.default_lease_s()
        monkeypatch.setenv(queue_mod.LEASE_ENV, "-1")
        with pytest.raises(ValueError, match="positive"):
            queue_mod.default_lease_s()

    def test_executor_rejects_invalid_knobs(self, tmp_path):
        with pytest.raises(ValueError):
            QueueExecutor(str(tmp_path), lease_s=0)
        with pytest.raises(ValueError):
            QueueExecutor(str(tmp_path), max_retries=-1)
        with pytest.raises(ValueError):
            QueueExecutor(str(tmp_path), compact_threshold=-5)


def test_shared_fn_cache_is_bounded_to_one_run(tmp_path):
    """Regression: a long-lived worker must not retain one (potentially
    engine-sized) callable per served run."""
    import repro.runtime.queue as queue_mod

    root = str(tmp_path)
    executor = QueueExecutor(root)
    assert executor.map(double, [1]) == [2]
    assert executor.map(triple, [1]) == [3]
    assert executor.map(double, [2]) == [4]
    assert len(queue_mod._SHARED_FN_CACHE) <= 1
