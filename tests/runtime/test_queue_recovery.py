"""Crash/recovery tests for the fleet-hardened queue: real worker deaths.

Workers here are genuine OS processes running the ``python -m
repro.runtime.queue <root> serve`` CLI; the tests SIGKILL them mid-task
(simulated host loss) and SIGTERM them (graceful drain), then assert the
reaper/lease machinery recovers the work with records byte-identical to
the serial oracle — the acceptance criterion of the fleet-hardening PR.

The whole suite is parameterised over **both queue-storage backends**
(the POSIX directory layout and the S3-semantics object store): the
``queue_store`` fixture exports ``REPRO_RUNTIME_STORE``, which the
in-process protocol calls and the worker subprocesses resolve alike, so
every crash scenario exercises rename-based *and* conditional-put-based
state transitions.  The recovery scenarios additionally run under both
lease protocols — classic single-task claims and batched leases
(``tasks_per_claim=8``, exported the same way through
``REPRO_RUNTIME_TASKS_PER_CLAIM``) — because PR 8's batching must keep
every crash-recovery guarantee intact.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import subprocess
import sys
import time

import pytest

import _fleet_helpers as helpers
from repro.runtime import janitor
from repro.runtime.queue import (
    TASKS_PER_CLAIM_ENV,
    collect_results,
    enqueue_task,
    init_queue_dirs,
    main,
    published_indices,
    read_attempts,
)
from repro.runtime.store import STORE_ENV, resolve_store
from repro.runtime.tasks import Task, WorkList

TESTS_RUNTIME_DIR = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(TESTS_RUNTIME_DIR)), "src"
)


@pytest.fixture(params=["dir", "object"])
def queue_store(request, monkeypatch):
    """Run the test once per storage backend, fleet-wide via the env.

    Worker subprocesses inherit ``os.environ``, so exporting
    ``REPRO_RUNTIME_STORE`` here steers the submitting process and every
    external worker onto the same backend — exactly how an operator
    moves a real fleet.
    """
    monkeypatch.setenv(STORE_ENV, request.param)
    return request.param


@pytest.fixture(params=[1, 8], ids=["claim1", "claim8"])
def tasks_per_claim(request, monkeypatch):
    """Run the test under the classic and the batched lease protocol.

    Exported through the environment for the same reason as the store:
    worker subprocesses and in-process ``serve`` calls must agree.  At 1
    no batch marker ever exists (the PR-4/5 wire protocol, unchanged);
    at 8 a worker claims its tasks in batches under one heartbeated
    lease and crash recovery must behave identically.
    """
    monkeypatch.setenv(TASKS_PER_CLAIM_ENV, str(request.param))
    return request.param


def _worker_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC_DIR, TESTS_RUNTIME_DIR, env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    return env


def _start_worker(root, *extra_args):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.runtime.queue", root, "serve",
         *extra_args],
        env=_worker_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )


def _stop_worker(proc, timeout=30):
    if proc.poll() is None:
        proc.terminate()
    try:
        return proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:  # pragma: no cover - CI safety net
        proc.kill()
        proc.communicate()
        raise


def _wait_for(predicate, timeout_s=30.0, interval_s=0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    raise AssertionError("condition not reached within timeout")


def _enqueue_tasks(root, tasks):
    init_queue_dirs(root)
    for task in tasks:
        enqueue_task(root, task)


class TestKilledWorkerRecovery:
    def test_sigkilled_worker_task_is_requeued_and_completed(
            self, tmp_path, queue_store, tasks_per_claim):
        """A worker SIGKILLed mid-task loses its lease; the fleet finishes."""
        root = str(tmp_path / "queue")
        marker = str(tmp_path / "first-attempt.marker")
        tasks = [Task(index=0, fn=helpers.die_once_then_double,
                      arg=(10, marker))]
        tasks += [Task(index=i, fn=helpers.double, arg=i) for i in (1, 2, 3)]
        _enqueue_tasks(root, tasks)

        victim = _start_worker(root, "--watch", "--lease-seconds", "0.5",
                               "--poll-interval", "0.1")
        try:
            # the victim claims task 0 first (sorted order), writes the
            # marker, and SIGKILLs itself mid-task
            _wait_for(lambda: os.path.exists(marker))
            _wait_for(lambda: victim.poll() is not None)
            assert victim.returncode == -signal.SIGKILL

            rescuer = _start_worker(root, "--watch", "--poll-interval", "0.1")
            try:
                results = collect_results(
                    root, 4, timeout_s=120.0, poll_interval_s=0.05,
                    max_retries=5,
                )
            finally:
                _stop_worker(rescuer)
        finally:
            _stop_worker(victim)
        assert results == [20, 2, 4, 6]
        assert read_attempts(root, 0) == 1  # exactly one re-queue

    def test_poison_pill_quarantines_instead_of_crash_looping(
            self, tmp_path, queue_store, tasks_per_claim):
        """A task that kills every worker ends up in failed/, not in a loop."""
        root = str(tmp_path / "queue")
        marker = str(tmp_path / "poison.marker")
        _enqueue_tasks(root, [Task(index=0, fn=helpers.always_kill_worker,
                                   arg=marker)])
        for _ in range(2):  # initial attempt + the single allowed retry
            worker = _start_worker(root, "--lease-seconds", "0.3")
            worker.communicate(timeout=60)
            assert worker.returncode == -signal.SIGKILL
            time.sleep(0.4)  # let the dead worker's lease expire
            janitor.reap(root, max_retries=1)
        with open(marker, encoding="utf-8") as handle:
            assert len(handle.readlines()) == 2  # two attempts, then stop
        with pytest.raises(RuntimeError, match="quarantined after 1"):
            collect_results(root, 1, timeout_s=1.0, poll_interval_s=0.01,
                            max_retries=1)
        store = resolve_store()
        assert store.get(
            os.path.join(root, "failed", "task-0000000.pkl")
        ) is not None
        summary = janitor.status(root)
        assert summary["failed"] == 1 and summary["queued"] == 0

    def test_heartbeat_outlives_short_lease_no_double_execution(
            self, tmp_path, queue_store, tasks_per_claim):
        """A slow-but-live worker keeps its lease; reapers never steal it."""
        root = str(tmp_path / "queue")
        marker = str(tmp_path / "executions.marker")
        _enqueue_tasks(root, [Task(index=0, fn=helpers.record_and_slow_double,
                                   arg=(7, 1.0, marker))])
        worker = _start_worker(root, "--lease-seconds", "0.3")
        try:
            # reap aggressively the whole time the 1.0 s task runs on a
            # 0.3 s lease: heartbeats must keep the claim alive throughout
            stolen = []
            deadline = time.monotonic() + 10.0
            while worker.poll() is None and time.monotonic() < deadline:
                report = janitor.reap(root, max_retries=5)
                stolen.extend(report.requeued + report.quarantined)
                time.sleep(0.05)
        finally:
            out, err = _stop_worker(worker)
        assert worker.returncode == 0, err
        assert stolen == []
        results = collect_results(root, 1, timeout_s=5.0,
                                  poll_interval_s=0.01)
        assert results == [14]
        with open(marker, encoding="utf-8") as handle:
            assert len(handle.readlines()) == 1  # executed exactly once


class TestGracefulDrain:
    def test_sigterm_finishes_in_flight_task_and_exits(
            self, tmp_path, queue_store, tasks_per_claim):
        root = str(tmp_path / "queue")
        _enqueue_tasks(root, [
            Task(index=i, fn=helpers.slow_double, arg=(i, 0.3))
            for i in range(5)
        ])
        worker = _start_worker(root, "--watch", "--poll-interval", "0.1")
        _wait_for(lambda: len(published_indices(root)) >= 1)
        worker.terminate()  # SIGTERM: drain, don't abandon the claim
        out, err = worker.communicate(timeout=60)
        assert worker.returncode == 0, err
        assert "drained on SIGTERM" in out
        # nothing abandoned mid-flight: every claim was either finished
        # (result published) or never started (still queued)
        summary = janitor.status(root)
        assert summary["claimed"] == 0
        assert summary["queued"] + summary["done"] == 5
        assert summary["done"] >= 1


class TestBatchedLeases:
    """Batch-specific crash semantics (``tasks_per_claim > 1``)."""

    def test_sigkill_mid_batch_requeues_whole_unfinished_batch(
            self, tmp_path, queue_store):
        """A dead worker's entire batch re-queues; only the in-flight
        member is charged an attempt."""
        root = str(tmp_path / "queue")
        marker = str(tmp_path / "first-attempt.marker")
        tasks = [Task(index=0, fn=helpers.die_once_then_double,
                      arg=(10, marker))]
        tasks += [Task(index=i, fn=helpers.double, arg=i)
                  for i in range(1, 6)]
        _enqueue_tasks(root, tasks)
        store = resolve_store()

        victim = _start_worker(root, "--tasks-per-claim", "8",
                               "--lease-seconds", "0.5")
        victim.communicate(timeout=60)
        assert victim.returncode == -signal.SIGKILL
        # the victim died inside member 0 holding a lease on all six
        claims = sorted(store.list_dir(os.path.join(root, "claims")))
        assert sum(1 for n in claims if n.startswith("task-")) == 6
        assert any(n.startswith("batch-") and n.endswith(".pkl")
                   for n in claims)

        time.sleep(0.8)  # let the batch lease expire
        report = janitor.reap(root, max_retries=5)
        assert sorted(report.requeued) == [0, 1, 2, 3, 4, 5]
        assert store.list_dir(os.path.join(root, "claims")) == []
        assert sorted(store.list_dir(os.path.join(root, "tasks"))) == [
            f"task-{i:07d}.pkl" for i in range(6)
        ]
        # the in-flight member took the attempt; the five that never
        # started were re-queued without one
        assert read_attempts(root, 0) == 1
        assert [read_attempts(root, i) for i in range(1, 6)] == [0] * 5

        rescuer = _start_worker(root, "--watch", "--poll-interval", "0.1",
                                "--tasks-per-claim", "8")
        try:
            results = collect_results(root, 6, timeout_s=120.0,
                                      poll_interval_s=0.05, max_retries=5)
        finally:
            _stop_worker(rescuer)
        assert results == [20, 2, 4, 6, 8, 10]

    def test_poison_member_quarantines_alone_innocents_complete(
            self, tmp_path, queue_store):
        """A poison pill inside a batch quarantines only itself."""
        root = str(tmp_path / "queue")
        marker = str(tmp_path / "poison.marker")
        tasks = [Task(index=i, fn=helpers.double, arg=i) for i in (0, 1)]
        tasks += [Task(index=2, fn=helpers.always_kill_worker, arg=marker)]
        tasks += [Task(index=3, fn=helpers.double, arg=3)]
        _enqueue_tasks(root, tasks)
        store = resolve_store()

        for _ in range(2):  # initial attempt + the single allowed retry
            worker = _start_worker(root, "--tasks-per-claim", "8",
                                   "--lease-seconds", "0.3")
            worker.communicate(timeout=60)
            assert worker.returncode == -signal.SIGKILL
            time.sleep(0.5)  # let the dead worker's batch lease expire
            janitor.reap(root, max_retries=1)
        with open(marker, encoding="utf-8") as handle:
            assert len(handle.readlines()) == 2  # two attempts, then stop
        # only the poison member sits in failed/; the innocents that rode
        # its batches all completed (0 and 1 in round one, 3 re-queued
        # twice without ever being charged an attempt)
        assert store.get(
            os.path.join(root, "failed", "task-0000002.pkl")
        ) is not None
        assert read_attempts(root, 3) == 0
        worker = _start_worker(root, "--tasks-per-claim", "8")
        worker.communicate(timeout=60)
        with pytest.raises(RuntimeError, match="quarantined after 1"):
            collect_results(root, 4, timeout_s=5.0, poll_interval_s=0.01,
                            max_retries=1)
        assert published_indices(root) == {0, 1, 2, 3}
        summary = janitor.status(root)
        assert summary["failed"] == 1 and summary["queued"] == 0
        assert summary["done"] == 3


class TestSweepFleetAcceptance:
    def test_sweep_with_sigkilled_worker_matches_serial_oracle(
            self, tmp_path, queue_store):
        """The PR's acceptance bar: SIGKILL a worker mid-sweep, records stay
        byte-identical to the serial oracle, and `status` reports the
        queue state."""
        from repro.eval.sweep import SweepGrid, evaluate_point

        grid = SweepGrid(
            networks=("MLP-S",),
            designs=("baseline_epcm", "einsteinbarrier"),
            crossbar_sizes=(128,),
            wdm_capacities=(4,),
            noise_sigmas=(0.0, 0.05),
            noise_trials=2,
            noise_vector_length=32,
            noise_num_outputs=8,
            seed=7,
        )
        specs = grid.points()
        oracle = [evaluate_point(spec) for spec in specs]

        root = str(tmp_path / "queue")
        worklist = WorkList.from_items(helpers.slow_evaluate_point, specs)
        _enqueue_tasks(root, worklist.tasks)

        victim = _start_worker(root, "--watch", "--lease-seconds", "1.0",
                               "--poll-interval", "0.1")
        claims_dir = os.path.join(root, "claims")
        store = resolve_store()
        try:
            # kill the worker while it holds a lease, mid-task (each task
            # sleeps 0.3 s, so "claim visible" means "task in flight")
            _wait_for(lambda: any(
                name.endswith(".pkl")
                for name in store.list_dir(claims_dir)
            ), timeout_s=120.0)
            time.sleep(0.05)
            victim.kill()
            victim.communicate(timeout=60)

            rescuer = _start_worker(root, "--watch", "--poll-interval", "0.1")
            try:
                records = collect_results(
                    root, len(specs), timeout_s=300.0, poll_interval_s=0.05,
                    max_retries=5,
                )
            finally:
                _stop_worker(rescuer)
        finally:
            _stop_worker(victim)

        # byte-identical at the artifact level (the contract PR 3's
        # cross-backend test established): identical JSON serialisation,
        # and identical pickle bytes record-by-record
        assert json.dumps([r.to_dict() for r in records]) == \
            json.dumps([r.to_dict() for r in oracle])
        for recovered, reference in zip(records, oracle):
            assert pickle.dumps(recovered) == pickle.dumps(reference)

    def test_status_cli_reports_counts(self, tmp_path, capsys, queue_store):
        root = str(tmp_path / "queue")
        _enqueue_tasks(root, [Task(index=i, fn=helpers.double, arg=i)
                              for i in range(3)])
        assert main([root, "serve", "--max-tasks", "2"]) == 0
        capsys.readouterr()
        assert main([root, "status"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["queued"] == 1
        assert summary["claimed"] == 0
        assert summary["done"] == 2
        assert summary["failed"] == 0
