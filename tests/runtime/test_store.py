"""Tests for the pluggable queue-storage layer (`repro.runtime.store`).

Covers the `QueueStore` seam itself (resolution, env toggle, executor /
registry / sweep threading), the S3-semantics `ObjectStore` over the
hermetic `LocalObjectStore` fake (conditional-put conflicts, move
rollback, fault/latency injection), the absolute-deadline lease records
(clock-skew independence, legacy mtime fallback), the DirStore layout
compatibility with queues created by the pre-store code, and the
enforcement rule that no direct storage side effects remain in
``queue.py`` / ``janitor.py`` outside the store.
"""

from __future__ import annotations

import ast
import os
import pickle
import time

import pytest

from repro.runtime import janitor
from repro.runtime.queue import (
    QUEUE_DIR_ENV,
    QueueExecutor,
    claim_next_task,
    collect_results,
    enqueue_task,
    init_queue_dirs,
    read_lease,
    serve,
)
from repro.runtime.store import (
    STORE_ENV,
    STORES,
    DirStore,
    LocalObjectStore,
    ObjectStore,
    QueueStore,
    make_store,
    resolve_store,
    store_from_env,
)
from repro.runtime.tasks import WorkList

SRC_RUNTIME_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))),
    "src", "repro", "runtime",
)


def double(x):
    return 2 * x


def _enqueue(root, fn, items, *, store=None):
    init_queue_dirs(root, store=store)
    worklist = WorkList.from_items(fn, items)
    for task in worklist:
        enqueue_task(root, task, store=store)
    return worklist


def _collect(root, n, *, store=None):
    return collect_results(root, n, timeout_s=5.0, poll_interval_s=0.01,
                           store=store)


# --------------------------------------------------------------------------- #
# Store resolution + threading through the stack
# --------------------------------------------------------------------------- #

class TestStoreResolution:
    def test_default_is_the_dir_backend(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV, raising=False)
        assert resolve_store().name == "dir"
        assert store_from_env() is None

    def test_env_toggle_selects_the_object_backend(self, monkeypatch):
        monkeypatch.setenv(STORE_ENV, "object")
        assert store_from_env() == "object"
        assert resolve_store().name == "object"

    def test_invalid_env_value_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(STORE_ENV, "carrier-pigeon")
        with pytest.raises(ValueError, match="REPRO_RUNTIME_STORE"):
            store_from_env()

    def test_explicit_name_and_instance_win_over_env(self, monkeypatch):
        monkeypatch.setenv(STORE_ENV, "object")
        assert resolve_store("dir").name == "dir"
        mine = DirStore()
        assert resolve_store(mine) is mine

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown queue store"):
            make_store("s4")
        with pytest.raises(TypeError):
            resolve_store(42)

    def test_registry_covers_both_backends(self):
        assert STORES == ("dir", "object")
        assert isinstance(make_store("dir"), DirStore)
        assert isinstance(make_store("object"), ObjectStore)

    def test_store_option_threads_through_the_executor_registry(
            self, tmp_path, monkeypatch):
        from repro.runtime.executors import make_executor

        monkeypatch.setenv(QUEUE_DIR_ENV, str(tmp_path))
        executor = make_executor("queue", options={"store": "object"})
        assert executor.store.name == "object"
        assert executor.map(double, [1, 2, 3]) == [2, 4, 6]

    def test_store_env_steers_the_executor(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV, "object")
        executor = QueueExecutor(str(tmp_path))
        assert executor.store.name == "object"
        assert executor.map(double, [5]) == [10]

    def test_backend_options_thread_through_run_sweep(self, monkeypatch):
        from repro.eval.sweep import SweepGrid, run_sweep

        monkeypatch.delenv(STORE_ENV, raising=False)
        grid = SweepGrid(networks=("MLP-S",), crossbar_sizes=(128,),
                         wdm_capacities=(4,))
        serial = run_sweep(grid)
        via_object = run_sweep(grid, backend="queue",
                               backend_options={"store": "object"})
        assert len(via_object.records) == len(serial.records)
        for recovered, reference in zip(via_object.records, serial.records):
            # byte-identical record-by-record (the cross-backend contract)
            assert pickle.dumps(recovered) == pickle.dumps(reference)


# --------------------------------------------------------------------------- #
# LocalObjectStore: the hermetic S3-style fake
# --------------------------------------------------------------------------- #

class TestLocalObjectStore:
    def test_put_get_list_delete_roundtrip(self, tmp_path):
        objects = LocalObjectStore()
        key = str(tmp_path / "bucket" / "a.pkl")
        assert objects.get(key) is None
        objects.put(key, b"payload")
        assert objects.get(key) == b"payload"
        assert objects.list(str(tmp_path / "bucket")) == ["a.pkl"]
        objects.delete(key)
        assert objects.get(key) is None
        objects.delete(key)  # quiet on a missing key

    def test_put_if_absent_is_a_conditional_create(self, tmp_path):
        objects = LocalObjectStore()
        key = str(tmp_path / "bucket" / "a.pkl")
        assert objects.put_if_absent(key, b"first") is True
        assert objects.put_if_absent(key, b"second") is False
        assert objects.get(key) == b"first"

    def test_generation_token_changes_on_every_mutation(self, tmp_path):
        objects = LocalObjectStore()
        key = str(tmp_path / "bucket" / "a.pkl")
        objects.put(key, b"v1")
        _, gen1 = objects.get_with_generation(key)
        objects.put(key, b"v2")
        data, gen2 = objects.get_with_generation(key)
        assert data == b"v2"
        assert gen1 != gen2
        # a guarded delete with the stale token must refuse
        assert objects.delete_if_generation(key, gen1) is False
        assert objects.get(key) == b"v2"
        assert objects.delete_if_generation(key, gen2) is True
        assert objects.get(key) is None

    def test_listings_never_show_locks_or_staging(self, tmp_path):
        objects = LocalObjectStore()
        prefix = str(tmp_path / "bucket")
        objects.put_if_absent(os.path.join(prefix, "a.pkl"), b"x")
        assert objects.list(prefix) == ["a.pkl"]
        children = os.listdir(str(tmp_path))
        assert "bucket" in children  # the hidden lock rides next to it
        assert all(not name.startswith("bucket.") for name in children)

    def test_latency_injection_slows_every_operation(self, tmp_path):
        objects = LocalObjectStore(latency_s=0.02)
        key = str(tmp_path / "bucket" / "a.pkl")
        start = time.perf_counter()
        objects.put(key, b"x")
        assert objects.get(key) == b"x"
        assert time.perf_counter() - start >= 0.04  # two ops, 20 ms each

    def test_every_verb_passes_through_the_hooks(self, tmp_path):
        # head (the existence/heartbeat probe) must be hook-covered like
        # every other verb, or fault/latency injection silently skips
        # the heartbeat and legacy-mtime paths
        seen = []
        objects = LocalObjectStore(fault_hook=lambda op, key:
                                   seen.append(op))
        key = str(tmp_path / "bucket" / "a.pkl")
        objects.put(key, b"x")
        objects.head(key)
        objects.list(str(tmp_path / "bucket"))
        objects.get(key)
        objects.put_if_absent(key, b"y")
        objects.delete_if_generation(key, (0, 0, 0))
        objects.delete(key)
        assert {"put", "head", "list", "get", "put_if_absent",
                "delete_if_generation", "delete"} <= set(seen)
        # conditional verbs charge their hooks exactly once
        assert seen.count("put_if_absent") == 1
        assert seen.count("put") == 1

    def test_fault_hook_simulates_transport_errors(self, tmp_path):
        def fault(op, key):
            if op == "put":
                raise IOError("injected transport fault")

        objects = LocalObjectStore(fault_hook=fault)
        key = str(tmp_path / "bucket" / "a.pkl")
        with pytest.raises(IOError, match="injected"):
            objects.put(key, b"x")
        assert LocalObjectStore().get(key) is None  # nothing half-written


# --------------------------------------------------------------------------- #
# ObjectStore: S3 semantics under the queue protocol
# --------------------------------------------------------------------------- #

class TestObjectStoreProtocol:
    def test_queue_roundtrip_over_object_semantics(self, tmp_path):
        store = ObjectStore(LocalObjectStore())
        root = str(tmp_path)
        _enqueue(root, double, range(5), store=store)
        assert serve(root, store=store) == 5
        assert _collect(root, 5, store=store) == [0, 2, 4, 6, 8]

    def test_double_claim_is_decided_by_the_conditional_put(self, tmp_path):
        # two sequential claimants: the first wins the If-None-Match
        # create, the second finds no pending task
        store = ObjectStore(LocalObjectStore())
        root = str(tmp_path)
        _enqueue(root, double, [7], store=store)
        first = claim_next_task(root, owner="a:1", store=store)
        assert first is not None
        assert claim_next_task(root, owner="b:2", store=store) is None

    def test_conditional_put_conflict_on_double_claim_loses_cleanly(
            self, tmp_path):
        # a racing claimant creates claims/task-N first: our conditional
        # put fails, the claim is not ours, and the task is never lost
        conflicts = []

        def conflict(op, key):
            if op == "put_if_absent" and os.sep + "claims" + os.sep in key:
                conflicts.append((op, key))
                return True
            return False

        store = ObjectStore(LocalObjectStore(conflict_hook=conflict))
        root = str(tmp_path)
        _enqueue(root, double, [7], store=store)
        assert claim_next_task(root, store=store) is None
        assert len(conflicts) == 1
        # the task survived the lost race and is claimable once the
        # contention clears (a hook-free store over the same bucket)
        clean = ObjectStore(LocalObjectStore())
        claimed = claim_next_task(root, store=clean)
        assert claimed is not None
        assert read_lease(claimed, store=clean)["deadline"] > time.time()

    def test_move_rolls_back_when_the_source_changes_hands(self, tmp_path):
        # the generation-guarded delete of the source fails (someone
        # else moved it while we copied): the half-made copy must be
        # rolled back and the move reported lost
        def conflict(op, key):
            return (op == "delete_if_generation"
                    and os.sep + "tasks" + os.sep in key)

        store = ObjectStore(LocalObjectStore(conflict_hook=conflict))
        root = str(tmp_path)
        _enqueue(root, double, [7], store=store)
        assert claim_next_task(root, store=store) is None
        clean = ObjectStore(LocalObjectStore())
        assert clean.list_dir(os.path.join(root, "claims")) == []
        assert len(clean.list_dir(os.path.join(root, "tasks"))) == 1

    def test_move_read_returns_the_moved_bytes(self, tmp_path):
        # the batched claim path reads each member it moves; both
        # backends must hand back exactly the bytes now under target
        for store in (DirStore(), ObjectStore(LocalObjectStore())):
            source = str(tmp_path / store.__class__.__name__ / "a" / "t.pkl")
            target = str(tmp_path / store.__class__.__name__ / "b" / "t.pkl")
            store.put(source, b"payload")
            assert store.move_read(source, target) == b"payload"
            assert store.get(source) is None
            assert store.get(target) == b"payload"

    def test_move_read_lost_race_returns_none(self, tmp_path):
        # a racing mover takes the source first: the prefetch reports
        # the loss the same way move() does, with nothing half-copied
        def conflict(op, key):
            return (op == "put_if_absent"
                    and os.sep + "claims" + os.sep in key)

        store = ObjectStore(LocalObjectStore(conflict_hook=conflict))
        source = str(tmp_path / "tasks" / "t.pkl")
        target = str(tmp_path / "claims" / "t.pkl")
        store.put(source, b"payload")
        assert store.move_read(source, target) is None
        assert store.get(source) == b"payload"
        assert DirStore().move_read(str(tmp_path / "absent.pkl"),
                                    str(tmp_path / "b.pkl")) is None

    def test_rollback_cannot_destroy_a_later_actors_object(self, tmp_path):
        # the rollback delete is guarded by the generation the mover
        # itself created: if another actor replaced the key meanwhile,
        # the stale rollback must be a no-op
        objects = LocalObjectStore()
        key = str(tmp_path / "bucket" / "claims" / "task-0000000.pkl")
        created = objects.put_if_absent_with_generation(key, b"mine")
        assert created is not None
        objects.delete(key)
        objects.put(key, b"theirs")  # a later claimant's object
        assert objects.delete_if_generation(key, created) is False
        assert objects.get(key) == b"theirs"

    def test_lost_heartbeat_expiry_requeues_over_object_store(self, tmp_path):
        # a claimant that stops heartbeating loses the task one lease
        # length after its last renewal — deterministic via now=
        store = ObjectStore(LocalObjectStore())
        root = str(tmp_path)
        _enqueue(root, double, [21], store=store)
        claimed = claim_next_task(root, lease_s=5.0, owner="dead:1",
                                  store=store)
        deadline = read_lease(claimed, store=store)["deadline"]
        assert not janitor.reap_layout(root, now=deadline - 0.1, store=store)
        report = janitor.reap_layout(root, now=deadline + 0.1, store=store)
        assert report.requeued == (0,)
        # the recovered task completes with the oracle result
        assert serve(root, store=store) == 1
        assert _collect(root, 1, store=store) == [42]

    def test_crashed_claim_move_is_absorbed_by_the_reaper(self, tmp_path):
        # a worker that died between the conditional create of the claim
        # and the guarded delete of the task leaves the payload under
        # BOTH keys; re-claims are blocked (the claims key is occupied)
        # until the reaper absorbs the stale orphan and the task runs
        store = ObjectStore(LocalObjectStore())
        root = str(tmp_path)
        _enqueue(root, double, [21], store=store)
        task_key = os.path.join(root, "tasks", "task-0000000.pkl")
        claim_key = os.path.join(root, "claims", "task-0000000.pkl")
        store.put(claim_key, store.get(task_key))  # crash mid-move
        assert claim_next_task(root, store=store) is None  # blocked
        # the sidecar-less orphan expires one default lease after its
        # creation; the absorb path re-queues without losing the task
        report = janitor.reap_layout(
            root, now=time.time() + 2 * 3600.0, store=store
        )
        assert report.requeued == (0,)
        assert store.get(claim_key) is None
        assert store.get(task_key) is not None
        assert serve(root, store=store) == 1
        assert _collect(root, 1, store=store) == [42]

    def test_absorb_defuses_a_stalled_movers_pending_delete(self, tmp_path):
        # the mover may have STALLED (GC pause, SIGSTOP) rather than
        # died: its generation-guarded delete of tasks/T is still
        # pending.  The absorb must bump the surviving copy's
        # generation first, so that pending delete fails instead of
        # removing the task's last copy
        objects = LocalObjectStore()
        store = ObjectStore(objects)
        root = str(tmp_path)
        _enqueue(root, double, [21], store=store)
        task_key = os.path.join(root, "tasks", "task-0000000.pkl")
        claim_key = os.path.join(root, "claims", "task-0000000.pkl")
        # stalled claimant W: read tasks/T (generation G), copy it into
        # claims/T, then stall before the guarded delete of tasks/T
        data, stalled_generation = objects.get_with_generation(task_key)
        store.put(claim_key, data)
        # the reaper absorbs the orphan once its lease expires
        report = janitor.reap_layout(
            root, now=time.time() + 2 * 3600.0, store=store
        )
        assert report.requeued == (0,)
        # W wakes up and fires its pending guarded delete: it must lose
        assert objects.delete_if_generation(
            task_key, stalled_generation) is False
        assert store.get(task_key) is not None  # the task survived
        assert serve(root, store=store) == 1
        assert _collect(root, 1, store=store) == [42]

    def test_crashed_quarantine_move_is_absorbed_too(self, tmp_path):
        # same double-key state, but between claims/ and failed/: the
        # quarantine must complete instead of retrying forever
        store = ObjectStore(LocalObjectStore())
        root = str(tmp_path)
        _enqueue(root, double, [3], store=store)
        claimed = claim_next_task(root, lease_s=5.0, store=store)
        failed_key = os.path.join(root, "failed", "task-0000000.pkl")
        store.put(failed_key, store.get(claimed))  # crash mid-quarantine
        report = janitor.reap_layout(
            root, now=time.time() + 3600.0, max_retries=0, store=store
        )
        assert report.quarantined == (0,)
        assert store.get(claimed) is None
        with pytest.raises(RuntimeError, match="quarantined"):
            _collect(root, 1, store=store)

    def test_executor_end_to_end_with_injected_latency(self, tmp_path):
        # the whole enqueue/claim/heartbeat/collect cycle tolerates a
        # slow object store (every round trip pays 2 ms)
        store = ObjectStore(LocalObjectStore(latency_s=0.002))
        executor = QueueExecutor(str(tmp_path), store=store, lease_s=5.0)
        assert executor.map(double, range(4)) == [0, 2, 4, 6]

    def test_empty_layout_stays_discoverable(self, tmp_path):
        # object stores have no directories: a fully-claimed (momentarily
        # empty) layout must still be found by workers scanning the root
        store = ObjectStore(LocalObjectStore())
        root = str(tmp_path)
        init_queue_dirs(root, store=store)
        assert store.is_layout(root)
        assert store.list_layouts(root, run_prefix="run-") == [root]


# --------------------------------------------------------------------------- #
# Absolute-deadline leases: clock-skew independence + legacy fallback
# --------------------------------------------------------------------------- #

class TestLeaseDeadlines:
    @pytest.mark.parametrize("store_name", STORES)
    def test_deadline_lives_in_the_record_on_every_backend(
            self, tmp_path, store_name):
        store = make_store(store_name)
        root = str(tmp_path)
        _enqueue(root, double, [1], store=store)
        claimed = claim_next_task(root, lease_s=12.0, store=store)
        lease = store.read_lease(claimed)
        assert lease["deadline"] == pytest.approx(time.time() + 12.0, abs=2.0)

    def test_stale_storage_mtime_cannot_expire_a_live_lease(self, tmp_path):
        # the NFS/object-store clock-skew case: the shared dir's mtime
        # reads an hour old, but the lease record's absolute deadline is
        # in the future — the reaper must trust the record
        store = DirStore()
        root = str(tmp_path)
        _enqueue(root, double, [1], store=store)
        claimed = claim_next_task(root, lease_s=30.0, store=store)
        stale = time.time() - 3600.0
        os.utime(claimed, (stale, stale))
        assert not janitor.reap_layout(root, store=store)

    def test_fresh_storage_mtime_cannot_keep_an_expired_lease(self, tmp_path):
        # ...and the mirror image: a fresh mtime (file-server clock ahead)
        # must not keep a lease alive past its recorded deadline
        store = DirStore()
        root = str(tmp_path)
        _enqueue(root, double, [1], store=store)
        claimed = claim_next_task(root, lease_s=5.0, store=store)
        record = dict(store.read_lease(claimed))
        record["deadline"] = time.time() - 100.0
        store.write_lease(claimed, record)
        os.utime(claimed)  # storage says "just renewed"
        assert janitor.reap_layout(root, store=store).requeued == (0,)

    def test_legacy_sidecar_without_deadline_falls_back_to_mtime(
            self, tmp_path):
        # sidecars written by the pre-store code carry {owner, lease_s}
        # only; expiry then derives from the claim mtime, exactly the old
        # behaviour, so mixed-version fleets agree
        store = DirStore()
        root = str(tmp_path)
        _enqueue(root, double, [1], store=store)
        claimed = claim_next_task(root, lease_s=5.0, store=store)
        store.put(claimed + ".lease",
                  pickle.dumps({"owner": "legacy:1", "lease_s": 5.0}))
        assert not janitor.reap_layout(root, store=store)  # mtime is fresh
        stale = time.time() - 1000.0
        os.utime(claimed, (stale, stale))
        assert janitor.reap_layout(root, store=store).requeued == (0,)

    @pytest.mark.parametrize("store_name", STORES)
    def test_corrupt_lease_length_is_tolerated_everywhere(self, tmp_path,
                                                          store_name):
        # a hand-edited/corrupt sidecar with a non-numeric lease_s must
        # not crash status/autoscale/reaping — every consumer falls back
        # to the default lease length
        store = make_store(store_name)
        root = str(tmp_path)
        _enqueue(root, double, [1], store=store)
        claimed = claim_next_task(root, lease_s=30.0, store=store)
        store.write_lease(claimed, {"owner": "odd:1", "lease_s": "soon",
                                    "deadline": time.time() + 30.0})
        summary = janitor.status(root, store=store)
        assert summary["claimed"] == 1
        advisory = janitor.autoscale_advisory(root, store=store)
        assert advisory["live_workers"] == 1
        assert not janitor.reap_layout(root, store=store)

    def test_renewal_preserves_a_new_claimants_identity(self, tmp_path):
        # after an expiry + re-claim, the old holder's heartbeat may still
        # fire once: it must extend the deadline without rewriting the new
        # claimant's owner field
        store = DirStore()
        root = str(tmp_path)
        _enqueue(root, double, [1], store=store)
        claimed = claim_next_task(root, owner="new-holder:2", lease_s=10.0,
                                  store=store)
        assert store.renew_lease(claimed, default_lease_s=10.0)
        assert store.read_lease(claimed)["owner"] == "new-holder:2"


# --------------------------------------------------------------------------- #
# DirStore layout compatibility with queues created by the pre-store code
# --------------------------------------------------------------------------- #

class TestDirStoreLayoutCompat:
    def test_handwritten_legacy_queue_is_served(self, tmp_path):
        # simulate a queue dir written by the PR-4 code: plain pickles in
        # tasks/, no store involved — the new code must drain it as-is
        root = str(tmp_path)
        for sub in ("tasks", "claims", "results", "failed", "attempts",
                    "tmp"):
            os.makedirs(os.path.join(root, sub))
        for index, value in enumerate([4, 5]):
            with open(os.path.join(root, "tasks",
                                   f"task-{index:07d}.pkl"), "wb") as handle:
                pickle.dump((index, double, value), handle)
        assert serve(root, store="dir") == 2
        assert _collect(root, 2, store="dir") == [8, 10]

    def test_new_code_writes_the_same_task_bytes(self, tmp_path):
        legacy = str(tmp_path / "legacy")
        fresh = str(tmp_path / "fresh")
        os.makedirs(os.path.join(legacy, "tasks"))
        with open(os.path.join(legacy, "tasks", "task-0000000.pkl"),
                  "wb") as handle:
            pickle.dump((0, double, 3), handle,
                        protocol=pickle.HIGHEST_PROTOCOL)
        _enqueue(fresh, double, [3], store=DirStore())
        with open(os.path.join(legacy, "tasks", "task-0000000.pkl"),
                  "rb") as handle:
            legacy_bytes = handle.read()
        with open(os.path.join(fresh, "tasks", "task-0000000.pkl"),
                  "rb") as handle:
            fresh_bytes = handle.read()
        assert fresh_bytes == legacy_bytes

    def test_results_remain_plain_loose_pickles(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, [6], store=DirStore())
        serve(root, store="dir", compact_threshold=0)
        with open(os.path.join(root, "results", "task-0000000.pkl"),
                  "rb") as handle:
            assert pickle.load(handle) == (0, True, 12)


# --------------------------------------------------------------------------- #
# Cleanup enforcement: storage side effects live in store.py only
# --------------------------------------------------------------------------- #

#: os attributes that ARE storage side effects (moves, links, deletes,
#: listings, timestamp reads/writes) — the store seam owns all of them
_FORBIDDEN_OS_ATTRS = {
    "rename", "replace", "link", "remove", "unlink", "listdir", "scandir",
    "utime", "makedirs", "mkdir", "rmdir", "stat",
}
_FORBIDDEN_OSPATH_ATTRS = {"getmtime", "getctime", "getatime", "getsize"}


def _storage_side_effects(path: str):
    """(line, offence) pairs of direct storage calls in one module."""
    with open(path, encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    offences = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id == "os" \
                    and node.attr in _FORBIDDEN_OS_ATTRS:
                offences.append((node.lineno, f"os.{node.attr}"))
            if isinstance(base, ast.Attribute) \
                    and isinstance(base.value, ast.Name) \
                    and base.value.id == "os" and base.attr == "path" \
                    and node.attr in _FORBIDDEN_OSPATH_ATTRS:
                offences.append((node.lineno, f"os.path.{node.attr}"))
            if node.attr == "st_mtime" or node.attr == "st_mtime_ns":
                offences.append((node.lineno, node.attr))
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "open":
            offences.append((node.lineno, "open()"))
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            names = [alias.name for alias in node.names]
            if "shutil" in names or "tempfile" in names:
                offences.append((node.lineno, f"import {names}"))
    return offences


@pytest.mark.parametrize("module", ["queue.py", "janitor.py"])
def test_no_direct_storage_side_effects_outside_store(module):
    """The refactor's cleanup rule, enforced: ``queue.py``/``janitor.py``
    contain no renames, links, deletes, listings, mtime reads or raw
    file opens — every storage side effect goes through the QueueStore
    seam in ``store.py``."""
    offences = _storage_side_effects(os.path.join(SRC_RUNTIME_DIR, module))
    assert offences == [], (
        f"direct storage side effects in runtime/{module}: {offences} — "
        "route them through repro.runtime.store.QueueStore instead"
    )


def test_runtime_package_exports_the_store_surface():
    import repro.runtime as runtime

    for name in ("QueueStore", "DirStore", "ObjectStore",
                 "LocalObjectStore", "resolve_store", "make_store",
                 "store_from_env", "STORE_ENV", "STORES"):
        assert name in runtime.__all__
        assert getattr(runtime, name) is not None
    assert issubclass(runtime.DirStore, QueueStore)
    assert issubclass(runtime.ObjectStore, QueueStore)
