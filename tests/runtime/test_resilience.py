"""Unit tests for the centralised resilience policy and fault injection.

Covers :mod:`repro.runtime.resilience` (outage classification, the
decorrelated-jitter schedule, the retry driver, the crash-loop budget),
:mod:`repro.runtime.faults` (the seeded :class:`FaultPlan` schedule and
its JSON/env forms) and the storage layer's adoption of both: the
object fake's native plan hooks, the :class:`ObjectStore` per-primitive
retries, the :class:`FaultInjectingStore` chaos wrapper over the
directory backend, and the ``REPRO_RUNTIME_FAULTS``-aware
:func:`resolve_store` cache.
"""

from __future__ import annotations

import random

import pytest

from repro.runtime.faults import (
    CONDITIONAL_OPS,
    FAULTS_ENV,
    FaultInjected,
    FaultPlan,
)
from repro.runtime.resilience import (
    BackoffPolicy,
    DETERMINISTIC,
    RestartBudget,
    TRANSIENT,
    classify_outage,
    decorrelated_jitter,
    retry_backoff,
    retry_call,
)
from repro.runtime.store import (
    STORE_ENV,
    DirStore,
    FaultInjectingStore,
    LocalObjectStore,
    ObjectStore,
    resolve_store,
)


# --------------------------------------------------------------------------- #
# classify_outage
# --------------------------------------------------------------------------- #

class TestClassifyOutage:
    def test_storage_and_transport_errors_are_transient(self):
        for error in (OSError("disk"), TimeoutError("slow"),
                      ConnectionError("reset")):
            assert classify_outage(error) == TRANSIENT

    def test_task_errors_are_deterministic(self):
        for error in (ValueError("bad"), RuntimeError("bug"),
                      KeyError("missing")):
            assert classify_outage(error) == DETERMINISTIC

    def test_explicit_marker_wins_over_type(self):
        error = ValueError("flaky dependency")
        error.outage_class = TRANSIENT
        assert classify_outage(error) == TRANSIENT
        error = OSError("corrupt superblock")
        error.outage_class = DETERMINISTIC
        assert classify_outage(error) == DETERMINISTIC

    def test_injected_faults_classify_transient(self):
        assert classify_outage(FaultInjected("get", "k", 7)) == TRANSIENT


# --------------------------------------------------------------------------- #
# BackoffPolicy + decorrelated_jitter
# --------------------------------------------------------------------------- #

class TestBackoff:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_delay_s=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(base_delay_s=1.0, max_delay_s=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(max_attempts=0)

    def test_jitter_stays_inside_the_envelope(self):
        policy = BackoffPolicy(base_delay_s=0.1, max_delay_s=1.0,
                               multiplier=3.0)
        rng = random.Random(42)
        delay = None
        for _ in range(200):
            delay = decorrelated_jitter(policy, delay, rng)
            assert 0.1 <= delay <= 1.0

    def test_upper_bound_grows_with_previous_delay(self):
        policy = BackoffPolicy(base_delay_s=0.1, max_delay_s=100.0,
                               multiplier=3.0)
        # first draw is bounded by base * multiplier; a large previous
        # delay raises the ceiling accordingly
        rng = random.Random(0)
        first = [decorrelated_jitter(policy, None, rng) for _ in range(100)]
        assert max(first) <= 0.1 * 3.0
        later = [decorrelated_jitter(policy, 10.0, random.Random(i))
                 for i in range(100)]
        assert max(later) <= 30.0
        assert max(later) > 0.3  # the grown ceiling is actually used

    def test_seeded_stream_is_reproducible(self):
        policy = BackoffPolicy()
        a = [decorrelated_jitter(policy, None, random.Random(5))
             for _ in range(3)]
        b = [decorrelated_jitter(policy, None, random.Random(5))
             for _ in range(3)]
        assert a == b


# --------------------------------------------------------------------------- #
# retry_call / retry_backoff
# --------------------------------------------------------------------------- #

class TestRetryCall:
    def _flaky(self, failures, error=OSError("blip")):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise error
            return "ok"
        return fn, calls

    def test_transient_failures_are_retried(self):
        fn, calls = self._flaky(2)
        slept = []
        result = retry_call(fn, policy=BackoffPolicy(max_attempts=5),
                            rng=random.Random(0), sleep=slept.append)
        assert result == "ok"
        assert calls["n"] == 3
        assert len(slept) == 2 and all(s > 0 for s in slept)

    def test_deterministic_failure_raises_immediately(self):
        fn, calls = self._flaky(5, error=ValueError("bug"))
        with pytest.raises(ValueError):
            retry_call(fn, sleep=lambda s: None)
        assert calls["n"] == 1

    def test_budget_exhaustion_reraises_the_real_error(self):
        fn, calls = self._flaky(100)
        with pytest.raises(OSError, match="blip"):
            retry_call(fn, policy=BackoffPolicy(max_attempts=3),
                       sleep=lambda s: None)
        assert calls["n"] == 3

    def test_on_retry_hook_observes_each_retry(self):
        fn, _ = self._flaky(2)
        seen = []
        retry_call(fn, policy=BackoffPolicy(max_attempts=5),
                   sleep=lambda s: None,
                   on_retry=lambda attempt, error, delay:
                       seen.append((attempt, type(error).__name__)))
        assert seen == [(1, "OSError"), (2, "OSError")]

    def test_decorator_form(self):
        calls = {"n": 0}

        @retry_backoff(BackoffPolicy(max_attempts=3), sleep=lambda s: None)
        def flaky(x):
            calls["n"] += 1
            if calls["n"] < 2:
                raise TimeoutError("slow")
            return x * 2

        assert flaky(21) == 42
        assert calls["n"] == 2


# --------------------------------------------------------------------------- #
# RestartBudget
# --------------------------------------------------------------------------- #

class TestRestartBudget:
    def test_benches_after_max_restarts_in_window(self):
        budget = RestartBudget(max_restarts=3, window_s=60.0)
        assert budget.record(now=0.0) is True
        assert budget.record(now=1.0) is True
        assert budget.record(now=2.0) is False  # third crash: budget spent
        assert budget.crashes_in_window == 3

    def test_crashes_age_out_of_the_window(self):
        budget = RestartBudget(max_restarts=2, window_s=10.0)
        assert budget.record(now=0.0) is True
        assert budget.record(now=11.0) is True  # first crash aged out
        assert budget.crashes_in_window == 1

    def test_reset_redeems_the_history(self):
        budget = RestartBudget(max_restarts=2, window_s=60.0)
        budget.record(now=0.0)
        budget.reset()
        assert budget.crashes_in_window == 0
        assert budget.record(now=1.0) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            RestartBudget(max_restarts=0)
        with pytest.raises(ValueError):
            RestartBudget(window_s=0.0)


# --------------------------------------------------------------------------- #
# FaultPlan
# --------------------------------------------------------------------------- #

class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(seed=99,
                         latency={"rate": 0.1, "min_s": 0.001,
                                  "max_s": 0.01, "ops": ["get"]},
                         errors={"rate": 0.2},
                         conflicts={"rate": 0.3},
                         kill_interval_s=(0.5, 1.5))
        again = FaultPlan.from_json(plan.to_json())
        assert again.to_dict() == plan.to_dict()

    def test_unknown_keys_and_ops_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultPlan keys"):
            FaultPlan.from_dict({"sede": 1})
        with pytest.raises(ValueError, match="unknown fault ops"):
            FaultPlan(errors={"rate": 0.1, "ops": ["teleport"]})
        with pytest.raises(ValueError, match="rate must be in"):
            FaultPlan(errors={"rate": 1.5})
        with pytest.raises(ValueError, match="kill_interval_s"):
            FaultPlan(kill_interval_s=(0.0, 1.0))

    def test_same_seed_same_schedule(self):
        def draws(seed):
            plan = FaultPlan(seed=seed, errors={"rate": 0.5})
            out = []
            for i in range(50):
                try:
                    plan.check_fault("get", f"k{i}")
                    out.append(False)
                except FaultInjected:
                    out.append(True)
            return out

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)
        assert any(draws(7))  # the schedule actually fires

    def test_injected_fault_message_carries_the_seed(self):
        plan = FaultPlan(seed=1234, errors={"rate": 1.0})
        with pytest.raises(FaultInjected) as excinfo:
            plan.check_fault("put", "some/key")
        assert "1234" in str(excinfo.value)
        assert FAULTS_ENV in str(excinfo.value)
        assert excinfo.value.op == "put"
        assert excinfo.value.seed == 1234

    def test_op_filters_limit_the_blast_radius(self):
        plan = FaultPlan(seed=0, errors={"rate": 1.0, "ops": ["put"]})
        plan.check_fault("get", "k")  # not targeted: no raise
        with pytest.raises(FaultInjected):
            plan.check_fault("put", "k")

    def test_forced_conflicts_only_hit_conditional_verbs(self):
        plan = FaultPlan(seed=0, conflicts={"rate": 1.0})
        assert plan.forced_conflict("get", "k") is False
        for op in CONDITIONAL_OPS:
            assert plan.forced_conflict(op, "k") is True

    def test_kill_cadence_draws_inside_the_interval(self):
        assert FaultPlan(seed=0).next_kill_delay_s() is None
        plan = FaultPlan(seed=0, kill_interval_s=(0.5, 1.5))
        for _ in range(50):
            assert 0.5 <= plan.next_kill_delay_s() <= 1.5

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULTS_ENV, '{"seed": 3, "errors": {"rate": 0.5}}')
        plan = FaultPlan.from_env()
        assert plan.seed == 3 and plan.errors.rate == 0.5
        monkeypatch.setenv(FAULTS_ENV, "not json")
        with pytest.raises(ValueError, match="valid JSON"):
            FaultPlan.from_env()


# --------------------------------------------------------------------------- #
# Storage-layer adoption
# --------------------------------------------------------------------------- #

class TestObjectStoreFaults:
    # LocalObjectStore keys are filesystem paths — always root them in
    # tmp_path, or a test run would scatter objects under the repo cwd

    def test_injected_fault_raises_before_the_verb_takes_effect(self,
                                                                tmp_path):
        objects = LocalObjectStore(
            fault_plan=FaultPlan(seed=0, errors={"rate": 1.0, "ops": ["put"]})
        )
        key = str(tmp_path / "bucket" / "key")
        with pytest.raises(FaultInjected):
            objects.put(key, b"payload")
        # fail-fast transport semantics: the failed put left no object
        assert objects.fault_plan.errors.rate == 1.0
        objects.fault_plan = None
        assert objects.get(key) is None

    def test_object_store_retries_mask_a_transient_fault_storm(self,
                                                               tmp_path):
        # a 30% error rate across 40 verbs would almost surely surface
        # without retries; the per-primitive retry policy hides it
        plan = FaultPlan(seed=11, errors={"rate": 0.3})
        store = ObjectStore(LocalObjectStore(fault_plan=plan),
                            retry_rng=random.Random(0))
        for i in range(20):
            store.put(str(tmp_path / f"k{i}"), bytes([i]))
        for i in range(20):
            assert store.get(str(tmp_path / f"k{i}")) == bytes([i])

    def test_object_store_reraises_once_the_retry_budget_is_spent(self,
                                                                  tmp_path):
        plan = FaultPlan(seed=0, errors={"rate": 1.0})
        store = ObjectStore(
            LocalObjectStore(fault_plan=plan),
            retry=BackoffPolicy(base_delay_s=0.001, max_delay_s=0.002,
                                max_attempts=2),
            retry_rng=random.Random(0),
        )
        with pytest.raises(FaultInjected):
            store.put(str(tmp_path / "k"), b"v")

    def test_forced_conflicts_surface_as_lost_conditional_puts(self,
                                                               tmp_path):
        plan = FaultPlan(seed=0, conflicts={"rate": 1.0})
        objects = LocalObjectStore(fault_plan=plan)
        key = str(tmp_path / "k")
        assert objects.put_if_absent(key, b"v") is False
        objects.fault_plan = None
        assert objects.get(key) is None  # the conflict never wrote


class TestFaultInjectingStore:
    def test_wraps_the_directory_backend(self, tmp_path):
        plan = FaultPlan(seed=0, errors={"rate": 1.0, "ops": ["put"]})
        store = FaultInjectingStore(DirStore(), plan)
        assert store.name == "dir"
        with pytest.raises(FaultInjected):
            store.put(str(tmp_path / "obj"), b"payload")
        assert not (tmp_path / "obj").exists()

    def test_forced_conflict_reports_failure_without_touching_substrate(
            self, tmp_path):
        plan = FaultPlan(seed=0, conflicts={"rate": 1.0})
        store = FaultInjectingStore(DirStore(), plan)
        target = str(tmp_path / "exclusive")
        assert store.put_if_absent(target, b"v") is False
        assert store.inner.get(target) is None
        source = tmp_path / "src"
        source.write_bytes(b"data")
        assert store.move(str(source), str(tmp_path / "dst")) is False
        assert source.exists()  # the losing move never moved anything

    def test_clean_plan_delegates_verbatim(self, tmp_path):
        store = FaultInjectingStore(DirStore(), FaultPlan(seed=0))
        path = str(tmp_path / "obj")
        store.put(path, b"payload")
        assert store.get(path) == b"payload"
        assert store.put_if_absent(path, b"other") is False
        assert store.move(path, str(tmp_path / "moved")) is True
        assert store.get(str(tmp_path / "moved")) == b"payload"


class TestResolveStoreChaosWiring:
    def test_env_plan_wraps_name_resolved_stores(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV, raising=False)
        monkeypatch.setenv(FAULTS_ENV, '{"seed": 5, "errors": {"rate": 0.1}}')
        wrapped_dir = resolve_store("dir")
        assert isinstance(wrapped_dir, FaultInjectingStore)
        assert wrapped_dir.plan.seed == 5
        wrapped_obj = resolve_store("object")
        # the object fake consults plans natively — injected at source
        assert isinstance(wrapped_obj, ObjectStore)
        assert wrapped_obj.objects.fault_plan is not None
        assert wrapped_obj.objects.fault_plan.seed == 5

    def test_cache_is_keyed_by_the_plan_payload(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        clean = resolve_store("dir")
        assert resolve_store("dir") is clean  # singleton per key
        assert not isinstance(clean, FaultInjectingStore)
        monkeypatch.setenv(FAULTS_ENV, '{"seed": 1}')
        chaotic = resolve_store("dir")
        assert chaotic is not clean
        monkeypatch.setenv(FAULTS_ENV, '{"seed": 2}')
        assert resolve_store("dir") is not chaotic  # new plan, new store
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert resolve_store("dir") is clean

    def test_explicit_instances_are_never_wrapped(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, '{"seed": 1, "errors": {"rate": 1.0}}')
        mine = DirStore()
        assert resolve_store(mine) is mine
