"""Tests for the repeated-measurement harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.measure import (
    Measurement,
    measure,
    measure_pair,
    percentile,
    percentiles,
)


class TestMeasurement:
    def test_statistics(self):
        m = Measurement(label="x", seconds=(3.0, 1.0, 2.0))
        assert m.reps == 3
        assert m.best == 1.0
        assert m.median == 2.0
        assert m.mean == 2.0

    def test_even_sample_median_interpolates(self):
        m = Measurement(label="x", seconds=(1.0, 2.0, 3.0, 4.0))
        assert m.median == 2.5

    def test_throughput_estimators(self):
        m = Measurement(label="x", seconds=(2.0, 4.0, 2.0))
        assert m.throughput(10) == 5.0
        assert m.throughput(10, estimator="best") == 5.0
        with pytest.raises(ValueError):
            m.throughput(10, estimator="fastest")

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            Measurement(label="x", seconds=())


class TestMeasure:
    def test_counts_calls_including_warmup(self):
        calls = []
        m = measure(lambda: calls.append(1), reps=3, warmup=2, label="c")
        assert len(calls) == 5
        assert m.reps == 3
        assert all(s >= 0.0 for s in m.seconds)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            measure(lambda: None, reps=0)
        with pytest.raises(ValueError):
            measure(lambda: None, reps=1, warmup=-1)

    def test_measure_pair_interleaves_and_reports_speedup(self):
        order = []
        fast_m, slow_m, speedup = measure_pair(
            lambda: order.append("f"), lambda: order.append("s"),
            reps=2, warmup=1, label="ab",
        )
        # warmup does slow+fast once, then reps alternate slow/fast
        assert order == ["s", "f", "s", "f", "s", "f"]
        assert fast_m.reps == slow_m.reps == 2
        assert speedup > 0.0
        assert fast_m.label == "ab/fast" and slow_m.label == "ab/slow"

    def test_measure_pair_rejects_zero_reps(self):
        with pytest.raises(ValueError):
            measure_pair(lambda: None, lambda: None, reps=0)


class TestPercentile:
    def test_matches_numpy_linear_interpolation(self):
        rng = np.random.default_rng(0)
        samples = rng.uniform(0.0, 10.0, size=101).tolist()
        for q in (0.0, 12.5, 50.0, 95.0, 99.0, 100.0):
            assert percentile(samples, q) == pytest.approx(
                float(np.percentile(samples, q)))

    def test_unsorted_input_and_single_sample(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0
        assert percentile([7.0], 99.0) == 7.0

    def test_interpolates_between_ranks(self):
        assert percentile([1.0, 2.0], 50.0) == pytest.approx(1.5)
        assert percentile([0.0, 10.0], 25.0) == pytest.approx(2.5)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)

    def test_percentiles_batch_helper(self):
        samples = [float(v) for v in range(100)]
        out = percentiles(samples, qs=(50.0, 99.0))
        assert out[50.0] == pytest.approx(float(np.percentile(samples, 50)))
        assert out[99.0] == pytest.approx(float(np.percentile(samples, 99)))
        with pytest.raises(ValueError):
            percentiles([])

    def test_measurement_percentile_method(self):
        m = Measurement(label="x", seconds=(1.0, 2.0, 3.0, 4.0))
        assert m.percentile(50.0) == pytest.approx(2.5)
        assert m.percentile(100.0) == 4.0


def _busy():
    """Module-level workload so measure() tasks survive pickling."""
    return sum(range(200))


class TestMeasureAcrossBackends:
    def test_process_and_queue_backends_supported(self):
        from repro.runtime.executors import ProcessExecutor
        from repro.runtime.queue import QueueExecutor

        for factory in (ProcessExecutor, QueueExecutor):
            with factory() as executor:
                m = measure(_busy, reps=3, executor=executor,
                            label=factory.__name__)
                assert m.reps == 3
                assert all(s >= 0.0 for s in m.seconds)
