"""Chaos soak: the full sweep grid under continuous, seeded failure.

The acceptance bar of the supervisor/chaos PR: run a complete
``SweepGrid`` through the queue while

* the **supervisor** (not the test) owns every worker process — spawning
  the fleet, restarting each SIGKILLed worker under jittered backoff,
* a **chaos killer** SIGKILLs random live workers on a seeded cadence
  for the whole run, and
* the **storage layer** injects seeded latency spikes, transient I/O
  errors and conditional-verb conflicts into every store the fleet
  resolves (via ``REPRO_RUNTIME_FAULTS``),

and the collected records come out **byte-identical** to the serial
oracle.  Determinism under chaos is the whole point: leases, the
reaper, idempotent publishes and per-primitive retries must conspire so
that a run soaked in failure is indistinguishable — at the artifact
level — from a clean one.
"""

from __future__ import annotations

import json
import os
import pickle
import random
import threading
import time

import pytest

import _fleet_helpers as helpers
from repro.eval.sweep import SweepGrid, evaluate_point
from repro.runtime.faults import FAULTS_ENV, FaultPlan
from repro.runtime.queue import (
    LEASE_ENV,
    MAX_RETRIES_ENV,
    collect_results,
    enqueue_task,
    init_queue_dirs,
)
from repro.runtime.resilience import BackoffPolicy, retry_call
from repro.runtime.store import STORE_ENV
from repro.runtime.supervisor import Supervisor
from repro.runtime.tasks import WorkList

TESTS_RUNTIME_DIR = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(TESTS_RUNTIME_DIR)), "src"
)

#: the soak's seeded chaos schedule — storage trouble for every verb the
#: fleet (and this collecting process) performs, plus the kill cadence
SOAK_PLAN = FaultPlan(
    seed=20260808,
    latency={"rate": 0.03, "min_s": 0.001, "max_s": 0.01},
    errors={"rate": 0.02},
    conflicts={"rate": 0.03},
    kill_interval_s=(0.5, 1.2),
)


def _soak_grid() -> SweepGrid:
    return SweepGrid(
        networks=("MLP-S",),
        designs=("baseline_epcm", "einsteinbarrier"),
        crossbar_sizes=(128, 256),
        wdm_capacities=(4,),
        noise_sigmas=(0.0, 0.05),
        noise_trials=2,
        noise_vector_length=32,
        noise_num_outputs=8,
        seed=7,
    )


@pytest.fixture(params=["dir", "object"])
def chaos_env(request, monkeypatch):
    """Fleet-wide chaos configuration, inherited by worker subprocesses.

    * ``REPRO_RUNTIME_STORE`` — run the soak on both backends;
    * ``REPRO_RUNTIME_FAULTS`` — one seeded schedule for every process;
    * ``REPRO_RUNTIME_LEASE_S`` — short leases so a SIGKILLed worker's
      task is reaped in seconds, not minutes;
    * ``REPRO_RUNTIME_MAX_RETRIES`` — effectively unlimited re-queues:
      under continuous kills a task may die many times without being a
      poison pill, and quarantining it would corrupt the oracle check;
    * ``PYTHONPATH`` — workers must import the task helpers by path.
    """
    monkeypatch.setenv(STORE_ENV, request.param)
    monkeypatch.setenv(FAULTS_ENV, SOAK_PLAN.to_json())
    monkeypatch.setenv(LEASE_ENV, "2.0")
    monkeypatch.setenv(MAX_RETRIES_ENV, "1000")
    monkeypatch.setenv("PYTHONPATH", os.pathsep.join(
        [SRC_DIR, TESTS_RUNTIME_DIR,
         os.environ.get("PYTHONPATH", "")]).rstrip(os.pathsep))
    return request.param


class ChaosKiller(threading.Thread):
    """SIGKILL a random live worker on the plan's seeded cadence."""

    def __init__(self, supervisor: Supervisor, stop: threading.Event,
                 seed: int = 99) -> None:
        super().__init__(daemon=True)
        self.supervisor = supervisor
        self.stop_event = stop
        self.rng = random.Random(seed)
        self.kills = 0

    def run(self) -> None:
        while not self.stop_event.is_set():
            delay = SOAK_PLAN.next_kill_delay_s()
            if self.stop_event.wait(delay):
                return
            pids = self.supervisor.worker_pids()
            if not pids:
                continue
            victim = self.rng.choice(pids)
            try:
                os.kill(victim, 9)
            except (OSError, ProcessLookupError):
                continue  # the worker died on its own — still chaos
            self.kills += 1


def test_sweep_survives_continuous_chaos_byte_identical(tmp_path,
                                                        chaos_env):
    grid = _soak_grid()
    specs = grid.points()
    oracle = [evaluate_point(spec) for spec in specs]

    root = str(tmp_path / "queue")
    # the producer runs under the same chaos env as everything else, so
    # its storage calls retry like any fleet member's would
    enqueue_policy = BackoffPolicy(base_delay_s=0.01, max_delay_s=0.1,
                                   max_attempts=20)
    retry_call(lambda: init_queue_dirs(root), policy=enqueue_policy)
    worklist = WorkList.from_items(helpers.slow_evaluate_point, specs)
    for task in worklist.tasks:
        retry_call(lambda: enqueue_task(root, task), policy=enqueue_policy)

    events = []
    events_lock = threading.Lock()

    def emit(event):
        with events_lock:
            events.append(event)

    supervisor = Supervisor(
        root,
        store=chaos_env,
        min_workers=2,
        max_workers=3,
        tasks_per_worker=2,
        poll_interval_s=0.2,
        cooldown_s=0.5,
        lease_s=2.0,
        worker_poll_interval_s=0.1,
        restart_backoff=BackoffPolicy(base_delay_s=0.05, max_delay_s=0.3,
                                      multiplier=3.0),
        max_restarts=10,
        restart_window_s=3.0,
        seed=7,
        emit=emit,
    )
    stop = threading.Event()
    runner = threading.Thread(target=supervisor.run, kwargs={"stop": stop},
                              daemon=True)
    killer = ChaosKiller(supervisor, stop)
    runner.start()
    killer.start()
    try:
        # the *test* never runs a worker: if results arrive, the
        # supervisor's restarts kept real capacity alive under fire
        records = collect_results(
            root, len(specs), timeout_s=420.0, poll_interval_s=0.1,
            max_retries=1000, maintenance_interval_s=0.5,
        )
    finally:
        stop.set()
        killer.join(timeout=10.0)
        runner.join(timeout=60.0)
    assert not runner.is_alive(), "supervisor failed to drain"

    # the chaos actually happened…
    assert killer.kills >= 2, (
        f"killer only landed {killer.kills} SIGKILLs — soak too gentle"
    )
    with events_lock:
        kinds = [e["event"] for e in events]
    assert "restart" in kinds, "supervisor never restarted a worker"
    assert supervisor.summary()["restarts"] >= 1

    # …and left no fingerprints: byte-identical to the serial oracle
    assert json.dumps([r.to_dict() for r in records]) == \
        json.dumps([r.to_dict() for r in oracle])
    for recovered, reference in zip(records, oracle):
        assert pickle.dumps(recovered) == pickle.dumps(reference)


def test_soak_plan_round_trips_through_the_env(chaos_env):
    """The exact schedule the soak exports reproduces from its seed."""
    plan = FaultPlan.from_env()
    assert plan is not None
    assert plan.seed == SOAK_PLAN.seed
    assert plan.to_dict() == SOAK_PLAN.to_dict()


def test_killer_waits_out_an_empty_fleet(tmp_path, chaos_env):
    """The chaos killer never crashes when no workers are up yet."""
    supervisor = Supervisor(str(tmp_path), spawn=lambda name: None,
                            advisory_fn=lambda current: {
                                "desired_workers": 0, "queue_depth": 0,
                                "claimed": 0},
                            max_workers=1)
    stop = threading.Event()
    killer = ChaosKiller(supervisor, stop)
    killer.start()
    time.sleep(0.1)
    stop.set()
    killer.join(timeout=5.0)
    assert not killer.is_alive()
    assert killer.kills == 0
