"""Unit tests for the fleet supervisor's control loop.

Every side effect of :class:`repro.runtime.supervisor.Supervisor` sits
behind an injectable seam (``spawn``, ``advisory_fn``, ``clock``,
``emit``), so these tests drive years of fleet weather — scale storms,
crash loops, advisory outages — through the synchronous :meth:`tick`
with fake processes and a fake clock, in milliseconds.  The *real*
subprocess fleet is exercised end-to-end by ``test_chaos_soak.py``.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.runtime.queue import init_queue_dirs, main
from repro.runtime.resilience import BackoffPolicy
from repro.runtime.supervisor import Supervisor, open_event_sink


class FakeProc:
    """A Popen-alike whose death the test scripts explicitly."""

    _pids = iter(range(1000, 100000))

    def __init__(self, name: str) -> None:
        self.name = name
        self.pid = next(FakeProc._pids)
        self.returncode = None
        self.terminated = False
        self.killed = False

    def poll(self):
        return self.returncode

    def terminate(self):
        # fake workers honour SIGTERM instantly (drain is a queue-CLI
        # contract, not the supervisor's concern)
        self.terminated = True
        if self.returncode is None:
            self.returncode = 0

    def kill(self):
        self.killed = True
        self.returncode = -9

    def exit(self, code: int) -> None:
        self.returncode = code


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


class Harness:
    """One supervisor wired entirely to fakes, plus its event log."""

    def __init__(self, **overrides) -> None:
        self.clock = FakeClock()
        self.events = []
        self.procs = []
        self.advisory = {"desired_workers": 0, "queue_depth": 0,
                         "claimed": 0}
        self.spawn_error = None
        kwargs = dict(
            max_workers=4,
            cooldown_s=0.0,
            restart_backoff=BackoffPolicy(base_delay_s=0.1, max_delay_s=0.5,
                                          multiplier=3.0),
            seed=7,
            clock=self.clock,
        )
        kwargs.update(overrides)
        self.supervisor = Supervisor(
            "/fake/queue-root",
            spawn=self._spawn,
            advisory_fn=self._advise,
            emit=self.events.append,
            **kwargs,
        )

    def _spawn(self, name: str):
        if self.spawn_error is not None:
            raise self.spawn_error
        proc = FakeProc(name)
        self.procs.append(proc)
        return proc

    def _advise(self, current_workers: int):
        result = self.advisory
        if isinstance(result, Exception):
            raise result
        return dict(result)

    def want(self, desired: int, queue_depth: int = None) -> None:
        self.advisory["desired_workers"] = desired
        self.advisory["queue_depth"] = (
            desired if queue_depth is None else queue_depth
        )

    def tick(self) -> None:
        self.supervisor.tick(self.clock.now)

    def names(self, event: str):
        return [e for e in self.events if e["event"] == event]


class TestScaling:
    def test_scales_up_to_the_advisory(self):
        h = Harness()
        h.want(2)
        h.tick()
        assert h.supervisor.capacity() == 2
        assert len(h.supervisor.worker_pids()) == 2
        (scale,) = h.names("scale_up")
        assert scale["desired"] == 2 and scale["spawned"] == ["w0", "w1"]
        assert len(h.names("spawn")) == 2

    def test_desired_is_clamped_to_the_slot_table(self):
        h = Harness(max_workers=3)
        h.want(10)
        h.tick()
        assert h.supervisor.capacity() == 3

    def test_min_workers_floor(self):
        h = Harness(min_workers=1)
        h.want(0)
        h.tick()
        assert h.supervisor.capacity() == 1

    def test_cooldown_damps_flapping(self):
        h = Harness(cooldown_s=5.0)
        h.want(2)
        h.tick()
        assert h.supervisor.capacity() == 2
        h.want(0)
        h.clock.advance(1.0)
        h.tick()
        # inside the cooldown the fleet holds its size
        assert h.supervisor.capacity() == 2
        assert any(e["reason"] == "cooldown" for e in h.names("hold"))
        h.clock.advance(5.0)
        h.tick()
        assert h.supervisor.capacity() == 0
        assert len(h.names("scale_down")) == 1

    def test_steady_state_narrates_one_hold_not_a_stream(self):
        h = Harness()
        h.want(1)
        h.tick()
        for _ in range(5):
            h.clock.advance(0.5)
            h.tick()
        holds = h.names("hold")
        assert len(holds) == 1
        assert holds[0]["reason"] == "fleet matches the backlog"

    def test_scale_down_sigterms_newest_first(self):
        h = Harness()
        h.want(1)
        h.tick()
        h.clock.advance(1.0)
        h.want(3)
        h.tick()
        assert h.supervisor.capacity() == 3
        h.clock.advance(1.0)
        h.want(1)
        h.tick()
        (down,) = h.names("scale_down")
        assert sorted(down["retired"]) == ["w1", "w2"]  # the newest pair
        assert h.procs[0].terminated is False  # the warm elder survives
        assert h.procs[1].terminated and h.procs[2].terminated
        # retiring workers are off the chaos menu immediately
        assert h.supervisor.worker_pids() == [h.procs[0].pid]
        h.clock.advance(0.1)
        h.tick()  # reap the retirements
        assert len(h.names("retired")) == 2
        assert h.supervisor.capacity() == 1


class TestCrashRecovery:
    def test_crash_is_restarted_after_a_jittered_backoff(self):
        h = Harness()
        h.want(1)
        h.tick()
        h.clock.advance(1.0)
        h.procs[0].exit(-9)
        h.tick()
        (crash,) = h.names("crash")
        assert crash["worker"] == "w0" and crash["returncode"] == -9
        # the respawn is pending (counted as capacity — no double scale-up)
        assert h.supervisor.capacity() == 1
        assert h.supervisor.worker_pids() == []
        assert h.names("restart") == []
        h.clock.advance(0.6)  # past the 0.1..0.5 backoff envelope
        h.tick()
        (restart,) = h.names("restart")
        assert restart["worker"] == "w0" and restart["delay_s"] > 0
        assert len(h.supervisor.worker_pids()) == 1
        assert h.supervisor.summary()["restarts"] == 1

    def test_restarts_are_exempt_from_the_scaling_cooldown(self):
        h = Harness(cooldown_s=60.0)
        h.want(1)
        h.tick()
        h.clock.advance(1.0)
        h.procs[0].exit(1)
        h.tick()
        h.clock.advance(0.6)
        h.tick()  # still deep inside the scaling cooldown
        assert len(h.names("restart")) == 1

    def test_crash_loop_benches_the_slot(self):
        h = Harness(max_workers=1, max_restarts=2, restart_window_s=60.0)
        h.want(1)
        h.tick()
        for _ in range(2):
            h.clock.advance(0.6)
            h.procs[-1].exit(-6)
            h.tick()
            h.clock.advance(0.6)
            h.tick()
        (bench,) = h.names("bench")
        assert bench["worker"] == "w0"
        assert h.supervisor.benched() == ["w0"]
        assert len(h.names("restart")) == 1  # first crash only
        # the benched slot is never respawned, and with no free slots
        # the advisory can only hold
        h.clock.advance(5.0)
        h.tick()
        assert h.supervisor.capacity() == 0
        assert any(e["reason"] == "no free slots" for e in h.names("hold"))

    def test_a_healthy_window_redeems_the_crash_history(self):
        h = Harness(max_workers=1, max_restarts=2, restart_window_s=10.0)
        h.want(1)
        h.tick()
        h.clock.advance(1.0)
        h.procs[-1].exit(-9)
        h.tick()  # crash 1 of 2: restart allowed
        h.clock.advance(0.6)
        h.tick()
        assert len(h.names("restart")) == 1
        h.clock.advance(30.0)  # runs healthily for 3 windows
        h.procs[-1].exit(-9)
        h.tick()  # history redeemed: this counts as crash 1 again
        assert h.names("bench") == []
        h.clock.advance(0.6)
        h.tick()
        assert len(h.names("restart")) == 2

    def test_scale_down_sheds_pending_restarts_first(self):
        h = Harness()
        h.want(2)
        h.tick()
        h.clock.advance(1.0)
        h.procs[1].exit(-9)
        h.want(1)
        h.tick()
        # the crashed slot's pending respawn is the cheapest capacity
        # to shed — the running worker is never touched
        (down,) = h.names("scale_down")
        assert down["retired"] == ["w1"]
        assert h.procs[0].terminated is False
        assert h.supervisor.capacity() == 1
        h.clock.advance(5.0)
        h.tick()
        assert h.names("restart") == []  # the cancelled respawn never fires

    def test_transient_spawn_failure_enters_the_crash_path(self):
        h = Harness(max_workers=1, max_restarts=3)
        h.spawn_error = OSError("fork: resource temporarily unavailable")
        h.want(1)
        h.tick()
        (spawn_error,) = h.names("spawn_error")
        assert spawn_error["worker"] == "w0"
        assert h.supervisor.capacity() == 1  # pending retry counts
        h.spawn_error = None
        h.clock.advance(0.6)
        h.tick()
        assert len(h.supervisor.worker_pids()) == 1

    def test_deterministic_spawn_failure_raises(self):
        h = Harness()
        h.spawn_error = TypeError("bad argv")
        h.want(1)
        with pytest.raises(TypeError):
            h.tick()


class TestAdvisoryOutages:
    def test_transient_advisory_failure_holds_the_fleet(self):
        h = Harness()
        h.want(2)
        h.tick()
        h.advisory = TimeoutError("store census timed out")
        h.clock.advance(1.0)
        h.tick()
        (error,) = h.names("advisory_error")
        assert "timed out" in error["error"]
        assert h.supervisor.capacity() == 2  # fleet held as-is

    def test_deterministic_advisory_failure_raises(self):
        h = Harness()
        h.advisory = ValueError("corrupt layout")
        with pytest.raises(ValueError):
            h.tick()


class TestLifecycle:
    def test_shutdown_drains_every_worker(self):
        h = Harness()
        h.want(3)
        h.tick()
        h.supervisor.shutdown(timeout_s=5.0)
        (drain,) = h.names("drain")
        assert sorted(drain["workers"]) == ["w0", "w1", "w2"]
        assert all(p.terminated for p in h.procs)
        assert h.supervisor.summary()["running"] == []
        h.supervisor.shutdown(timeout_s=5.0)  # idempotent
        assert len(h.names("drain")) == 1

    def test_shutdown_force_kills_a_worker_that_ignores_sigterm(self):
        h = Harness()
        h.want(1)
        h.tick()
        proc = h.procs[0]
        proc.terminate = lambda: None  # ignores SIGTERM
        h.supervisor.shutdown(timeout_s=0.2)
        assert proc.killed
        assert len(h.names("killed")) == 1

    def test_idle_clock_runs_only_while_scaled_to_zero_over_empty_queue(self):
        h = Harness(min_workers=0)
        h.want(0, queue_depth=0)
        h.tick()
        h.clock.advance(3.0)
        assert h.supervisor.idle_for(h.clock.now) == pytest.approx(3.0)
        h.want(1, queue_depth=2)  # work arrives: idleness resets
        h.tick()
        assert h.supervisor.idle_for(h.clock.now) == 0.0

    def test_run_exits_on_its_own_after_the_idle_grace(self):
        h = Harness(poll_interval_s=0.01, clock=time.monotonic)
        h.want(0, queue_depth=0)
        h.supervisor.run(idle_exit_s=0.05)
        assert len(h.names("idle_exit")) == 1

    def test_run_stops_when_the_event_is_set(self):
        h = Harness(poll_interval_s=0.01)
        h.want(0, queue_depth=0)
        stop = threading.Event()
        runner = threading.Thread(target=h.supervisor.run,
                                  kwargs={"stop": stop})
        runner.start()
        stop.set()
        runner.join(timeout=10.0)
        assert not runner.is_alive()
        assert len(h.names("drain")) == 1


class TestEventSinkAndCli:
    def test_open_event_sink_defaults_to_stdout(self):
        import sys

        assert open_event_sink(None) is sys.stdout
        assert open_event_sink("-") is sys.stdout

    def test_supervise_cli_idle_exits_over_an_empty_queue(self, tmp_path,
                                                          capsys):
        root = str(tmp_path / "queue")
        init_queue_dirs(root)
        events_path = str(tmp_path / "events.jsonl")
        assert main([root, "supervise",
                     "--idle-exit-seconds", "0.2",
                     "--poll-interval", "0.05",
                     "--max-workers", "1",
                     "--events", events_path]) == 0
        err = capsys.readouterr().err
        assert "supervisor drained" in err
        with open(events_path, encoding="utf-8") as handle:
            events = [json.loads(line) for line in handle]
        kinds = {e["event"] for e in events}
        assert "idle_exit" in kinds and "drain" in kinds
        # an empty queue never scales up
        assert "scale_up" not in kinds
