"""Tests for the fleet janitor: reaping, quarantine, compaction, status."""

from __future__ import annotations

import os
import pickle
import threading
import time

import pytest

from repro.runtime import janitor
from repro.runtime.queue import (
    QueueExecutor,
    claim_next_task,
    collect_results,
    enqueue_task,
    init_queue_dirs,
    read_attempts,
    read_lease,
    serve,
)
from repro.runtime.store import resolve_store
from repro.runtime.tasks import WorkList


def double(x):
    return 2 * x


def explode(x):
    raise ValueError("boom")


def _enqueue(root, fn, items):
    init_queue_dirs(root)
    worklist = WorkList.from_items(fn, items)
    for task in worklist:
        enqueue_task(root, task)
    return worklist


def _expire(claimed_path, age_s=1000.0, store=None):
    """Backdate a claim's lease deadline so it reads as expired.

    Rewrites the absolute deadline carried in the lease record — the
    authoritative expiry signal on every store backend.
    """
    backend = resolve_store(store)
    record = dict(backend.read_lease(claimed_path) or {})
    record["deadline"] = time.time() - age_s
    backend.write_lease(claimed_path, record)


class TestReaper:
    def test_live_lease_is_left_alone(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, [1])
        claim_next_task(root, lease_s=60.0)
        report = janitor.reap_layout(root)
        assert not report
        assert os.listdir(os.path.join(root, "tasks")) == []

    def test_expired_claim_is_requeued_with_attempt_accounting(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, [1])
        claimed = claim_next_task(root, lease_s=5.0, owner="host-a:1")
        _expire(claimed)
        report = janitor.reap_layout(root)
        assert report.requeued == (0,)
        assert read_attempts(root, 0) == 1
        # the task is claimable again, its old lease sidecar is gone
        assert os.path.exists(os.path.join(root, "tasks", "task-0000000.pkl"))
        assert read_lease(claimed) is None
        # ...and the re-queued task runs to completion
        assert serve(root) == 1
        assert collect_results(root, 1, timeout_s=1.0,
                               poll_interval_s=0.01) == [2]

    def test_requeue_determinism_across_expiries(self, tmp_path):
        # expired-lease re-queue must hand back the *same* task bytes: the
        # re-executed result is identical to an undisturbed run
        root = str(tmp_path)
        _enqueue(root, double, [21])
        with open(os.path.join(root, "tasks", "task-0000000.pkl"), "rb") as f:
            original = f.read()
        claimed = claim_next_task(root, lease_s=5.0)
        _expire(claimed)
        janitor.reap_layout(root)
        with open(os.path.join(root, "tasks", "task-0000000.pkl"), "rb") as f:
            requeued = f.read()
        assert requeued == original

    def test_completed_work_is_released_not_requeued(self, tmp_path):
        # a worker that died after publishing its result but before
        # releasing the claim must not cause a re-execution
        root = str(tmp_path)
        _enqueue(root, double, [3])
        claimed = claim_next_task(root, lease_s=5.0)
        from repro.runtime.queue import _atomic_write

        _atomic_write(root, "results", "task-0000000.pkl", (0, True, 6))
        _expire(claimed)
        report = janitor.reap_layout(root)
        assert report.released == (0,)
        assert report.requeued == ()
        assert not os.path.exists(claimed)
        assert os.listdir(os.path.join(root, "tasks")) == []

    def test_completed_work_inside_a_bundle_is_released_too(self, tmp_path):
        # same scenario, but a compactor already bundled the loose result
        # file away: the reaper must find it in the bundle, not re-execute
        root = str(tmp_path)
        _enqueue(root, double, [3, 4])
        claimed = claim_next_task(root, lease_s=5.0)
        from repro.runtime.queue import _atomic_write, run_claimed_task

        run_claimed_task(root, claim_next_task(root))  # task 1 done
        _atomic_write(root, "results", "task-0000000.pkl", (0, True, 6))
        janitor.compact_layout(root, chunk_size=2, partial=True)
        assert not os.path.exists(
            os.path.join(root, "results", "task-0000000.pkl")
        )
        _expire(claimed)
        report = janitor.reap_layout(root)
        assert report.released == (0,)
        assert report.requeued == () and report.quarantined == ()
        assert os.listdir(os.path.join(root, "tasks")) == []
        assert collect_results(root, 2, timeout_s=1.0,
                               poll_interval_s=0.01) == [6, 8]

    def test_poisoned_task_is_quarantined_after_max_retries(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, [4])
        for _ in range(2):
            claimed = claim_next_task(root, lease_s=5.0, owner="victim:9")
            _expire(claimed)
            report = janitor.reap_layout(root, max_retries=2)
            assert report.requeued == (0,)
        claimed = claim_next_task(root, lease_s=5.0, owner="victim:9")
        _expire(claimed)
        report = janitor.reap_layout(root, max_retries=2)
        assert report.quarantined == (0,)
        # the task file is preserved for debugging...
        assert os.path.exists(os.path.join(root, "failed", "task-0000000.pkl"))
        # ...and collectors fail fast on the published failure result
        with pytest.raises(RuntimeError, match="quarantined after 2"):
            collect_results(root, 1, timeout_s=1.0, poll_interval_s=0.01)

    def test_quarantine_never_clobbers_a_late_success(self, tmp_path,
                                                      monkeypatch):
        # a stalled final-attempt worker can publish its (good) result
        # after the reaper snapshots the done set; the quarantine must
        # detect it, keep the success, and report the task released
        root = str(tmp_path)
        _enqueue(root, double, [6])
        claimed = claim_next_task(root, lease_s=5.0)
        _expire(claimed)
        from repro.runtime import queue as queue_mod

        real_snapshot = queue_mod.published_indices
        calls = {"n": 0}

        def snapshot_then_publish(r, cache=None, **kwargs):
            result = real_snapshot(r, cache, **kwargs)
            if calls["n"] == 0:
                # simulate the worker finishing right after the reaper's
                # pass-level snapshot was taken
                queue_mod._atomic_write(r, "results", "task-0000000.pkl",
                                        (0, True, 12))
            calls["n"] += 1
            return result

        monkeypatch.setattr(janitor, "published_indices",
                            snapshot_then_publish)
        report = janitor.reap_layout(root, max_retries=0)
        assert report.quarantined == ()
        assert report.released == (0,)
        assert not os.path.exists(
            os.path.join(root, "failed", "task-0000000.pkl")
        )
        assert collect_results(root, 1, timeout_s=1.0,
                               poll_interval_s=0.01) == [12]

    def test_exclusive_result_write_never_overwrites(self, tmp_path):
        from repro.runtime.queue import (
            _atomic_write,
            _atomic_write_exclusive,
            _read_result_entries,
        )

        root = str(tmp_path)
        init_queue_dirs(root)
        _atomic_write(root, "results", "task-0000000.pkl", (0, True, 42))
        assert _atomic_write_exclusive(root, "results", "task-0000000.pkl",
                                       (0, False, "boom")) is False
        assert _read_result_entries(root)[0] == (True, 42)
        assert _atomic_write_exclusive(root, "results", "task-0000001.pkl",
                                       (1, True, 43)) is True

    def test_max_retries_zero_quarantines_first_expiry(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, [5])
        claimed = claim_next_task(root, lease_s=5.0)
        _expire(claimed)
        report = janitor.reap_layout(root, max_retries=0)
        assert report.quarantined == (0,)

    def test_reap_covers_run_namespaces(self, tmp_path):
        root = str(tmp_path)
        run_root = os.path.join(root, "run-abc")
        _enqueue(run_root, double, [1])
        claimed = claim_next_task(run_root, lease_s=5.0)
        _expire(claimed)
        report = janitor.reap(root)
        assert report.requeued == (0,)

    def test_orphan_lease_sidecar_is_cleaned_up(self, tmp_path):
        # an in-flight heartbeat can resurrect a lease sidecar after its
        # claim was released (exists-probe passed, claim finished, the
        # rewrite landed last): the reaper drops sidecars with no claim
        # behind them so long-lived shared roots never accumulate them
        root = str(tmp_path)
        _enqueue(root, double, [1])
        claimed = claim_next_task(root, lease_s=5.0)
        sidecar = claimed + ".lease"
        resolve_store().delete(claimed)  # claim gone, sidecar left behind
        assert os.path.exists(sidecar)
        janitor.reap_layout(root)
        assert not os.path.exists(sidecar)
        # ...but a sidecar whose claim is alive is never touched
        _enqueue(root, double, [2])
        claimed = claim_next_task(root, lease_s=60.0)
        janitor.reap_layout(root)
        assert os.path.exists(claimed + ".lease")

    def test_injected_clock_controls_expiry(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, [1])
        claimed = claim_next_task(root, lease_s=5.0)
        mtime = os.path.getmtime(claimed)
        assert not janitor.reap_layout(root, now=mtime + 4.9)
        assert janitor.reap_layout(root, now=mtime + 5.1).requeued == (0,)


class TestCompaction:
    def _drain(self, root, n):
        _enqueue(root, double, range(n))
        assert serve(root, compact_threshold=0) == n

    def test_below_threshold_is_a_no_op(self, tmp_path):
        root = str(tmp_path)
        self._drain(root, 3)
        assert janitor.compact_layout(root, chunk_size=4) == 0
        assert len(os.listdir(os.path.join(root, "results"))) == 3

    def test_full_chunks_are_bundled_and_loose_files_removed(self, tmp_path):
        root = str(tmp_path)
        self._drain(root, 10)
        assert janitor.compact_layout(root, chunk_size=4) == 2
        names = sorted(os.listdir(os.path.join(root, "results")))
        bundles = [n for n in names if n.startswith("bundle-")]
        loose = [n for n in names if not n.startswith("bundle-")]
        assert len(bundles) == 2 and len(loose) == 2

    def test_partial_bundles_everything(self, tmp_path):
        root = str(tmp_path)
        self._drain(root, 10)
        assert janitor.compact_layout(root, chunk_size=4, partial=True) == 3
        names = os.listdir(os.path.join(root, "results"))
        assert all(n.startswith("bundle-") for n in names)

    def test_compacted_results_equal_uncompacted(self, tmp_path):
        roots = [str(tmp_path / "a"), str(tmp_path / "b")]
        for root in roots:
            self._drain(root, 9)
        janitor.compact_layout(roots[0], chunk_size=4, partial=True)
        compacted = collect_results(roots[0], 9, timeout_s=1.0,
                                    poll_interval_s=0.01)
        plain = collect_results(roots[1], 9, timeout_s=1.0,
                                poll_interval_s=0.01, compact_threshold=0)
        assert pickle.dumps(compacted) == pickle.dumps(plain)

    def test_bundle_overlapping_loose_duplicates_collapse(self, tmp_path):
        # a collector listing the dir mid-compaction can see a bundle AND
        # the loose files it covers; entries collapse by index
        root = str(tmp_path)
        self._drain(root, 4)
        results_dir = os.path.join(root, "results")
        keep = {n: open(os.path.join(results_dir, n), "rb").read()
                for n in os.listdir(results_dir)}
        janitor.compact_layout(root, chunk_size=4, partial=True)
        for name, blob in keep.items():  # resurrect the loose duplicates
            with open(os.path.join(results_dir, name), "wb") as handle:
                handle.write(blob)
        assert collect_results(root, 4, timeout_s=1.0, poll_interval_s=0.01,
                               compact_threshold=0) == [0, 2, 4, 6]

    def test_invalid_chunk_size_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            janitor.compact_layout(str(tmp_path), chunk_size=0)

    def test_executor_auto_compacts_large_runs(self, tmp_path):
        root = str(tmp_path)
        executor = QueueExecutor(root, compact_threshold=8)
        assert executor.map(double, range(20)) == [2 * x for x in range(20)]

    def test_serve_triggers_opportunistic_compaction(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, range(9))
        serve(root, compact_threshold=4)
        names = os.listdir(os.path.join(root, "results"))
        assert any(n.startswith("bundle-") for n in names)
        assert collect_results(root, 9, timeout_s=1.0, poll_interval_s=0.01,
                               compact_threshold=0) == [2 * x
                                                        for x in range(9)]


class TestStatus:
    def test_counts_every_state(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, range(4))
        claim_next_task(root, owner="host-a:7", lease_s=60.0)
        claimed = claim_next_task(root, owner="host-b:8", lease_s=5.0)
        from repro.runtime.queue import run_claimed_task

        run_claimed_task(root, claimed)  # task 1 done
        summary = janitor.status(root)
        assert summary["queued"] == 2
        assert summary["claimed"] == 1
        assert summary["done"] == 1
        assert summary["failed"] == 0
        layout = summary["layouts"]["."]
        assert layout["owners"] == ["host-a:7"]

    def test_done_counts_distinct_indices_across_bundles(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, range(6))
        serve(root, compact_threshold=0)
        janitor.compact_layout(root, chunk_size=3, partial=True)
        summary = janitor.status(root)
        assert summary["done"] == 6
        assert summary["layouts"]["."]["bundles"] == 2
        assert summary["layouts"]["."]["loose_results"] == 0

    def test_quarantined_task_shows_as_failed_not_done(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, [1])
        claimed = claim_next_task(root, lease_s=5.0)
        _expire(claimed)
        janitor.reap_layout(root, max_retries=0)
        summary = janitor.status(root)
        # the quarantine notice is published as an ok=False result, but a
        # quarantined task counts only as failed — done == expected must
        # keep meaning "the run succeeded"
        assert summary["failed"] == 1
        assert summary["done"] == 0

    def test_worker_exception_counts_as_failed(self, tmp_path):
        from repro.runtime.queue import run_claimed_task

        root = str(tmp_path)
        _enqueue(root, explode, [1])
        run_claimed_task(root, claim_next_task(root))
        summary = janitor.status(root)
        assert summary["done"] == 0
        assert summary["failed"] == 1

    def test_status_of_missing_root_is_empty(self, tmp_path):
        summary = janitor.status(str(tmp_path / "nope"))
        assert summary == {"queued": 0, "claimed": 0, "done": 0,
                           "failed": 0, "layouts": {}, "queue_depth": 0,
                           "oldest_claim_age_s": 0.0, "desired_workers": 0}


class TestAutoscaleSignals:
    def test_desired_workers_policy_math(self):
        assert janitor.desired_workers(0, 0) == 0
        assert janitor.desired_workers(0, 0, min_workers=2) == 2
        assert janitor.desired_workers(9, 0, tasks_per_worker=4) == 3
        assert janitor.desired_workers(7, 2, tasks_per_worker=4) == 3
        assert janitor.desired_workers(1000, 0, max_workers=8) == 8
        with pytest.raises(ValueError):
            janitor.desired_workers(1, 0, tasks_per_worker=0)
        with pytest.raises(ValueError):
            janitor.desired_workers(1, 0, min_workers=5, max_workers=2)

    def test_status_carries_the_autoscaling_signals(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, range(9))
        claim_next_task(root, owner="host-a:1", lease_s=60.0)
        summary = janitor.status(root)
        assert summary["queue_depth"] == 8
        assert summary["desired_workers"] == \
            janitor.desired_workers(8, 1)
        assert 0.0 <= summary["oldest_claim_age_s"] < 30.0
        layout = summary["layouts"]["."]
        assert layout["queue_depth"] == 8
        assert "oldest_claim_age_s" in layout

    def test_advisory_scales_up_on_backlog(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, range(8))
        advisory = janitor.autoscale_advisory(root, tasks_per_worker=4)
        assert advisory["action"] == "scale_up"
        assert advisory["desired_workers"] == 2
        assert advisory["live_workers"] == 0
        assert advisory["queue_depth"] == 8
        assert "backlog" in advisory["reason"]

    def test_advisory_holds_when_live_workers_match(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, range(4))
        claim_next_task(root, owner="host-a:1", lease_s=60.0)
        advisory = janitor.autoscale_advisory(root, tasks_per_worker=4)
        assert advisory["live_workers"] == 1
        assert advisory["desired_workers"] == 1
        assert advisory["action"] == "hold"

    def test_advisory_scales_down_past_the_backlog(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, [1, 2])
        claim_next_task(root, owner="host-a:1", lease_s=60.0)
        claim_next_task(root, owner="host-b:2", lease_s=60.0)
        advisory = janitor.autoscale_advisory(root, tasks_per_worker=4)
        assert advisory["live_workers"] == 2
        assert advisory["desired_workers"] == 1
        assert advisory["action"] == "scale_down"

    def test_expired_leases_do_not_count_as_live_workers(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, [1])
        claimed = claim_next_task(root, owner="dead:9", lease_s=5.0)
        _expire(claimed)
        advisory = janitor.autoscale_advisory(root, tasks_per_worker=1)
        assert advisory["live_workers"] == 0
        assert advisory["action"] == "scale_up"
        assert advisory["oldest_claim_age_s"] > 100.0

    def test_advisory_respects_min_workers_floor(self, tmp_path):
        root = str(tmp_path)
        init_queue_dirs(root)
        advisory = janitor.autoscale_advisory(root, min_workers=3)
        assert advisory["desired_workers"] == 3
        assert advisory["action"] == "scale_up"

    def test_empty_root_holds_at_zero(self, tmp_path):
        advisory = janitor.autoscale_advisory(str(tmp_path / "nope"))
        assert advisory["action"] == "hold"
        assert advisory["desired_workers"] == 0

    def test_executor_feeds_the_autoscale_hook(self, tmp_path):
        advisories = []
        executor = QueueExecutor(str(tmp_path),
                                 autoscale_hook=advisories.append)
        assert executor.map(double, range(5)) == [2 * x for x in range(5)]
        assert advisories, "maintenance cycle never fed the hook"
        for advisory in advisories:
            assert advisory["action"] in ("scale_up", "scale_down", "hold")
            assert "desired_workers" in advisory

    def test_autoscale_cli_prints_machine_readable_advisory(self, tmp_path,
                                                            capsys):
        import json

        from repro.runtime.queue import main

        root = str(tmp_path)
        _enqueue(root, double, range(6))
        assert main([root, "autoscale", "--tasks-per-worker", "2",
                     "--max-workers", "2"]) == 0
        advisory = json.loads(capsys.readouterr().out)
        assert advisory["action"] == "scale_up"
        assert advisory["desired_workers"] == 2
        assert advisory["queue_depth"] == 6

    def test_autoscale_cli_rejects_invalid_policy_knobs(self, tmp_path,
                                                        capsys):
        from repro.runtime.queue import main

        root = str(tmp_path)
        init_queue_dirs(root)
        assert main([root, "autoscale", "--tasks-per-worker", "0"]) == 2
        assert "tasks_per_worker" in capsys.readouterr().err
        assert main([root, "autoscale", "--min-workers", "5",
                     "--max-workers", "2"]) == 2
        assert "min_workers" in capsys.readouterr().err


class TestScaleDownHysteresis:
    """Regression tests for boundary oscillation in the scaling policy.

    Without hysteresis a backlog hovering at a ``tasks_per_worker``
    boundary (8 vs 9 tasks at 4/worker) flips the desired count between
    2 and 3 every poll, flapping any scaler that obeys the advisory.
    """

    def test_boundary_backlog_no_longer_flaps(self):
        # the raw policy oscillates across the 8-task boundary...
        assert janitor.desired_workers(9, 0, tasks_per_worker=4) == 3
        assert janitor.desired_workers(8, 0, tasks_per_worker=4) == 2
        # ...anchored to the current fleet, the dip to 8 holds at 3
        # (8 + default hysteresis of 2 still ceils to 3 workers)
        assert janitor.desired_workers(
            8, 0, tasks_per_worker=4, current_workers=3) == 3
        assert janitor.desired_workers(
            9, 0, tasks_per_worker=4, current_workers=3) == 3

    def test_scale_down_happens_once_the_backlog_clearly_falls(self):
        assert janitor.desired_workers(
            6, 0, tasks_per_worker=4, current_workers=3) == 2

    def test_scale_up_is_never_delayed(self):
        # backlog is latency: hysteresis only damps the shrink direction
        assert janitor.desired_workers(
            13, 0, tasks_per_worker=4, current_workers=2) == 4

    def test_empty_backlog_still_scales_to_zero(self):
        assert janitor.desired_workers(
            0, 0, tasks_per_worker=4, current_workers=3) == 0

    def test_explicit_hysteresis_width(self):
        # width 0 restores the raw ceil-divide policy
        assert janitor.desired_workers(
            8, 0, tasks_per_worker=4, current_workers=3,
            hysteresis_tasks=0) == 2
        # a full worker's share holds even a deep dip
        assert janitor.desired_workers(
            5, 0, tasks_per_worker=4, current_workers=3,
            hysteresis_tasks=4) == 3
        with pytest.raises(ValueError):
            janitor.desired_workers(1, 0, hysteresis_tasks=-1)

    def test_advisory_anchors_hysteresis_to_supplied_fleet_size(
            self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, range(8))
        # the lease census sees no workers; the supervisor knows better
        advisory = janitor.autoscale_advisory(
            root, tasks_per_worker=4, current_workers=3)
        assert advisory["desired_workers"] == 3
        assert advisory["action"] == "hold"
        dropped = janitor.autoscale_advisory(
            root, tasks_per_worker=4, current_workers=3, hysteresis_tasks=0)
        assert dropped["desired_workers"] == 2
        assert dropped["action"] == "scale_down"

    def test_advisory_defaults_anchor_to_live_leases(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, range(8))
        claim_next_task(root, owner="host-a:1", lease_s=60.0)
        claim_next_task(root, owner="host-b:2", lease_s=60.0)
        claim_next_task(root, owner="host-c:3", lease_s=60.0)
        # 8 outstanding over 3 live workers sits just under the 9-task
        # boundary: the raw policy would flip to 2, hysteresis holds
        advisory = janitor.autoscale_advisory(root, tasks_per_worker=4)
        assert advisory["live_workers"] == 3
        assert advisory["desired_workers"] == 3
        assert advisory["action"] == "hold"

    def test_autoscale_cli_exposes_the_hysteresis_knob(self, tmp_path,
                                                       capsys):
        import json

        from repro.runtime.queue import main

        root = str(tmp_path)
        _enqueue(root, double, range(8))
        assert main([root, "autoscale", "--tasks-per-worker", "4",
                     "--hysteresis-tasks", "0"]) == 0
        advisory = json.loads(capsys.readouterr().out)
        assert advisory["desired_workers"] == 2
        assert main([root, "autoscale", "--hysteresis-tasks", "-1"]) == 2
        assert "hysteresis_tasks" in capsys.readouterr().err


class TestDoubleClaimRaces:
    def test_concurrent_claimants_partition_the_tasks(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, range(24))
        claims_by_thread = [[] for _ in range(4)]

        def worker(bucket):
            while True:
                claimed = claim_next_task(root, lease_s=60.0)
                if claimed is None:
                    return
                bucket.append(os.path.basename(claimed))

        threads = [threading.Thread(target=worker, args=(bucket,))
                   for bucket in claims_by_thread]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        all_claims = [name for bucket in claims_by_thread for name in bucket]
        assert len(all_claims) == 24
        assert len(set(all_claims)) == 24  # every task claimed exactly once

    def test_racing_reapers_requeue_exactly_once(self, tmp_path):
        root = str(tmp_path)
        _enqueue(root, double, [1])
        claimed = claim_next_task(root, lease_s=5.0)
        _expire(claimed)
        reports = [janitor.reap_layout(root) for _ in range(3)]
        assert sum(len(r.requeued) for r in reports) == 1
        assert read_attempts(root, 0) == 1
