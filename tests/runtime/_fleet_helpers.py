"""Task callables for the queue crash/recovery tests.

These live in their own importable module (not the test file) because the
queue protocol ships callables to worker subprocesses by pickle, i.e. *by
import path* — the workers are launched with this directory on their
``PYTHONPATH`` so the pickles resolve.

They simulate the fleet failure modes the reaper must recover from:
workers SIGKILLed mid-task, tasks that poison every worker that touches
them, and slow-but-healthy tasks whose heartbeats must keep their lease
alive past its nominal length.
"""

from __future__ import annotations

import os
import signal
import time


def double(x):
    return 2 * x


def slow_double(arg):
    """``(x, delay_s)`` -> ``2 * x`` after sleeping — a long task."""
    x, delay_s = arg
    time.sleep(delay_s)
    return 2 * x


def die_once_then_double(arg):
    """SIGKILL the hosting worker on the first attempt, succeed after.

    ``arg`` is ``(x, marker_path)``.  The marker file records that the
    fatal first attempt happened, so the re-queued execution (on any
    worker) completes normally — the deterministic "worker crashed
    mid-task, fleet recovered" scenario.
    """
    x, marker_path = arg
    if not os.path.exists(marker_path):
        with open(marker_path, "w", encoding="utf-8") as handle:
            handle.write("first attempt\n")
        os.kill(os.getpid(), signal.SIGKILL)
    return 2 * x


def always_kill_worker(arg):
    """A poison pill: SIGKILL whichever worker claims it, every time."""
    marker_path = arg
    with open(marker_path, "a", encoding="utf-8") as handle:
        handle.write("attempt\n")
    os.kill(os.getpid(), signal.SIGKILL)


def record_and_slow_double(arg):
    """``(x, delay_s, marker_path)`` -> ``2 * x``, logging each execution.

    The marker file gains one line per execution, so a test can prove a
    task ran exactly once even while reapers probed its (heartbeat-kept)
    lease for the whole duration.
    """
    x, delay_s, marker_path = arg
    with open(marker_path, "a", encoding="utf-8") as handle:
        handle.write("execution\n")
    time.sleep(delay_s)
    return 2 * x


def shm_square_rows(arg):
    """``(start, stop, in_desc, out_desc, delay_s, marker_path)``.

    The shared-memory analogue of ``record_and_slow_double``: attaches
    the input segment read-only, sleeps (long enough to SIGKILL the
    hosting worker mid-chunk), squares the ``[start, stop)`` rows into
    the output segment and logs the execution.  Used to prove that a
    worker killed mid-chunk leaks no segment, that the chunk is
    re-executed, and that the recovered bytes match the serial oracle.
    """
    from repro.runtime.shm import attach_view

    start, stop, in_desc, out_desc, delay_s, marker_path = arg
    with open(marker_path, "a", encoding="utf-8") as handle:
        handle.write(f"{start}\n")
    time.sleep(delay_s)
    rows = attach_view(in_desc, readonly=True)[start:stop]
    out = attach_view(out_desc, readonly=False)
    out[start:stop] = rows ** 2
    return (start, None)


def shm_square_rows_die_once(arg):
    """``shm_square_rows`` that SIGKILLs its first hosting worker.

    The kill lands *after* the marker write and the input attach but
    before any output row is written — the worst spot: the worker dies
    holding a live mapping of both segments.
    """
    from repro.runtime.shm import attach_view

    start, stop, in_desc, out_desc, delay_s, marker_path = arg
    first_attempt = not os.path.exists(marker_path)
    with open(marker_path, "a", encoding="utf-8") as handle:
        handle.write(f"{start}\n")
    attach_view(in_desc, readonly=True)
    if first_attempt:
        os.kill(os.getpid(), signal.SIGKILL)
    time.sleep(delay_s)
    rows = attach_view(in_desc, readonly=True)[start:stop]
    out = attach_view(out_desc, readonly=False)
    out[start:stop] = rows ** 2
    return (start, None)


def slow_evaluate_point(spec):
    """A sweep grid point slowed enough to SIGKILL a worker mid-task.

    Returns exactly ``evaluate_point(spec)`` — the slowdown changes the
    timeline, never the record, so recovered runs stay byte-identical to
    the serial oracle.
    """
    from repro.eval.sweep import evaluate_point

    time.sleep(0.3)
    return evaluate_point(spec)
