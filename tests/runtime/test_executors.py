"""Tests for the runtime work-list abstraction and executor backends."""

from __future__ import annotations

import pytest

from repro.runtime.executors import (
    BACKEND_ENV,
    BACKENDS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    backend_from_env,
    make_executor,
    resolve_executor,
)
from repro.runtime.queue import QueueExecutor
from repro.runtime.tasks import Task, WorkList, gather, run_serially


def square(x):
    """Module-level task fn (picklable for the process/queue backends)."""
    return x * x


def explode(x):
    """Task fn that always raises (error-propagation checks)."""
    raise RuntimeError(f"boom on {x}")


ALL_EXECUTORS = [
    SerialExecutor,
    lambda: ThreadExecutor(3),
    lambda: ProcessExecutor(2),
    QueueExecutor,
]


class TestWorkList:
    def test_from_items_preserves_order(self):
        worklist = WorkList.from_items(square, [3, 1, 2])
        assert [t.arg for t in worklist] == [3, 1, 2]
        assert [t.index for t in worklist] == [0, 1, 2]
        assert len(worklist) == 3 and bool(worklist)

    def test_non_contiguous_indices_rejected(self):
        with pytest.raises(ValueError):
            WorkList([Task(index=1, fn=square, arg=0)])

    def test_run_serially_matches_plain_map(self):
        worklist = WorkList.from_items(square, range(10))
        assert run_serially(worklist) == [x * x for x in range(10)]

    def test_empty_worklist(self):
        assert run_serially(WorkList([])) == []


class TestGather:
    def test_reorders_completion_order(self):
        pairs = [(2, "c"), (0, "a"), (1, "b")]
        assert gather(pairs, 3) == ["a", "b", "c"]

    def test_none_results_are_preserved(self):
        assert gather([(0, None), (1, 5)], 2) == [None, 5]

    @pytest.mark.parametrize("pairs,expected", [
        ([(0, "a")], 2),                 # missing
        ([(0, "a"), (0, "b")], 2),       # duplicate
        ([(5, "a")], 2),                 # out of range
    ])
    def test_protocol_violations_raise(self, pairs, expected):
        with pytest.raises(ValueError):
            gather(pairs, expected)


class TestBackends:
    @pytest.mark.parametrize("factory", ALL_EXECUTORS)
    def test_map_is_ordered_and_correct(self, factory):
        with factory() as executor:
            assert executor.map(square, range(17)) == [x * x for x in range(17)]

    @pytest.mark.parametrize("factory", ALL_EXECUTORS)
    def test_errors_propagate(self, factory):
        with factory() as executor:
            with pytest.raises(RuntimeError):
                executor.map(explode, [1, 2])

    @pytest.mark.parametrize("factory", ALL_EXECUTORS)
    def test_empty_and_single_item(self, factory):
        with factory() as executor:
            assert executor.map(square, []) == []
            assert executor.map(square, [7]) == [49]

    def test_thread_executor_reuses_pool_across_maps(self):
        with ThreadExecutor(2) as executor:
            first = executor.map(square, range(8))
            second = executor.map(square, range(8))
        assert first == second

    @pytest.mark.parametrize("cls", [ThreadExecutor, ProcessExecutor])
    def test_invalid_worker_counts_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(0)


class TestRegistry:
    def test_registry_covers_all_backends(self):
        assert BACKENDS == ("process", "queue", "serial", "thread")

    @pytest.mark.parametrize("name,cls", [
        ("serial", SerialExecutor),
        ("thread", ThreadExecutor),
        ("process", ProcessExecutor),
        ("queue", QueueExecutor),
    ])
    def test_make_executor(self, name, cls):
        assert isinstance(make_executor(name), cls)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_executor("gpu")

    def test_queue_backend_accepts_fleet_options(self):
        executor = make_executor("queue", options={
            "lease_s": 4.5, "max_retries": 7, "compact_threshold": 32,
        })
        assert executor.lease_s == 4.5
        assert executor.max_retries == 7
        assert executor.compact_threshold == 32

    @pytest.mark.parametrize("name", ["serial", "thread", "process"])
    def test_optionless_backends_reject_options(self, name):
        with pytest.raises(ValueError, match="takes no options"):
            make_executor(name, options={"lease_s": 1.0})


class TestResolveExecutor:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert isinstance(resolve_executor(), SerialExecutor)

    @pytest.mark.parametrize("workers", [None, 0, 1])
    def test_small_worker_counts_stay_serial(self, workers, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert isinstance(resolve_executor(workers=workers), SerialExecutor)

    def test_legacy_workers_select_process_backend(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        executor = resolve_executor(workers=4)
        assert isinstance(executor, ProcessExecutor)
        assert executor.workers == 4

    def test_explicit_backend_wins_over_workers(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        executor = resolve_executor(backend="thread", workers=3)
        assert isinstance(executor, ThreadExecutor)
        assert executor.workers == 3

    def test_env_toggle_applies_when_no_backend_given(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")
        assert isinstance(resolve_executor(), ProcessExecutor)
        assert backend_from_env() == "process"

    def test_explicit_backend_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")
        assert isinstance(resolve_executor(backend="serial"), SerialExecutor)

    def test_env_opt_out(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")
        assert isinstance(resolve_executor(env=False), SerialExecutor)

    def test_invalid_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "gpu")
        with pytest.raises(ValueError):
            resolve_executor()

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            resolve_executor(workers=-1)

    def test_options_flow_to_env_selected_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "queue")
        executor = resolve_executor(options={"lease_s": 2.0})
        assert isinstance(executor, QueueExecutor)
        assert executor.lease_s == 2.0

    def test_options_without_backend_are_rejected(self, monkeypatch):
        # the legacy workers= path would silently drop them otherwise
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        with pytest.raises(ValueError, match="no backend was resolved"):
            resolve_executor(workers=4, options={"lease_s": 2.0})


def negate(x):
    """Second module-level fn for heterogeneous-worklist coverage."""
    return -x


class PickleCountingIdentity:
    """Identity callable that counts its own pickling round trips.

    Module-level so child processes can rebuild it by import path.
    """

    def __init__(self):
        self.pickles = 0

    def __getstate__(self):
        self.pickles += 1
        return {"pickles": self.pickles}

    def __setstate__(self, state):
        self.pickles = state["pickles"]

    def __call__(self, x):
        return x


class TestProcessExecutorFnSharing:
    """The shared-fn fast path and the mixed-fn fallback."""

    def test_heterogeneous_fns_fall_back_to_pairs(self):
        worklist = WorkList([
            Task(index=0, fn=square, arg=3),
            Task(index=1, fn=negate, arg=3),
            Task(index=2, fn=square, arg=4),
        ])
        with ProcessExecutor(2) as executor:
            assert executor.execute(worklist) == [9, -3, 16]

    def test_shared_fn_path_matches_serial(self):
        worklist = WorkList.from_items(square, range(12))
        with ProcessExecutor(2) as executor:
            assert executor.execute(worklist) == run_serially(worklist)

    def test_heavy_shared_callable_pickles_per_batch_not_per_task(self):
        # with the shared-fn path the parent-side pickle count stays well
        # below one per task (pool.map pickles the fn per dispatch batch)
        fn = PickleCountingIdentity()
        with ProcessExecutor(2) as executor:
            assert executor.map(fn, range(32)) == list(range(32))
        assert 0 < fn.pickles < 32
