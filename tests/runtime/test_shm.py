"""Tests for the shared-memory chunk transport (PR 8 tentpole, layer 1).

Three contracts:

* :class:`SharedArrayPool` ownership — the parent creates, the parent
  unlinks; descriptors are picklable handles; closing is idempotent and
  leaves nothing under ``/dev/shm``.
* ``forward_batch`` over a process pool with the transport on stays
  **bit-exact** with ``SerialExecutor`` — including seeded flip noise,
  whose streams derive from each chunk's true row offset.
* Crash safety: a worker SIGKILLed mid-chunk (holding live mappings of
  both segments) leaks no segment after shutdown, the chunk is
  re-executed by the surviving fleet, and the recovered bytes match the
  serial oracle.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

import _fleet_helpers as helpers
from repro.bnn.model import InferenceEngine
from repro.bnn.networks import build_network
from repro.runtime import (
    ProcessExecutor,
    QueueExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.runtime.queue import collect_results, enqueue_task, init_queue_dirs
from repro.runtime.shm import (
    SHM_ENV,
    ArrayDescriptor,
    SharedArrayPool,
    attach_view,
    shm_mode,
    use_shm_transport,
)
from repro.runtime.tasks import Task

TESTS_RUNTIME_DIR = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(TESTS_RUNTIME_DIR)), "src"
)

_DEV_SHM = "/dev/shm"


def _segment_names():
    """Current shared-memory segment names (empty off-Linux)."""
    try:
        return {name for name in os.listdir(_DEV_SHM)
                if name.startswith("psm_")}
    except OSError:  # pragma: no cover - non-Linux dev box
        return set()


@pytest.fixture
def leak_check():
    """Assert the test leaves no new segment behind."""
    before = _segment_names()
    yield
    leaked = _segment_names() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


class TestSharedArrayPool:
    def test_share_read_roundtrip(self, leak_check):
        array = np.arange(24, dtype=np.float64).reshape(4, 6)
        with SharedArrayPool() as pool:
            descriptor = pool.share(array)
            assert descriptor.shape == (4, 6)
            assert np.dtype(descriptor.dtype) == np.float64
            assert descriptor.nbytes == array.nbytes
            np.testing.assert_array_equal(pool.read(descriptor), array)

    def test_allocate_then_fill_through_view(self, leak_check):
        with SharedArrayPool() as pool:
            descriptor = pool.allocate((3, 2), np.int64)
            pool.view(descriptor)[...] = 7
            assert (pool.read(descriptor) == 7).all()

    def test_descriptor_pickles_small(self, leak_check):
        with SharedArrayPool() as pool:
            descriptor = pool.share(np.zeros((1000, 1000)))
            wire = pickle.dumps(descriptor)
            assert len(wire) < 200  # the point of the transport
            assert pickle.loads(wire) == descriptor

    def test_attach_view_is_readonly_by_default(self, leak_check):
        array = np.arange(10.0)
        with SharedArrayPool() as pool:
            descriptor = pool.share(array)
            view = attach_view(descriptor)
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0] = 1.0
            writable = attach_view(descriptor, readonly=False)
            writable[0] = 42.0
            assert pool.read(descriptor)[0] == 42.0

    def test_close_unlinks_and_is_idempotent(self):
        pool = SharedArrayPool()
        descriptor = pool.share(np.zeros(8))
        assert descriptor.name.lstrip("/") in _segment_names() \
            or not os.path.isdir(_DEV_SHM)
        pool.close()
        pool.close()
        assert descriptor.name.lstrip("/") not in _segment_names()
        with pytest.raises(RuntimeError):
            pool.share(np.zeros(4))

    def test_view_of_foreign_descriptor_raises(self, leak_check):
        with SharedArrayPool() as pool:
            pool.share(np.zeros(4))
            foreign = ArrayDescriptor("psm_not_ours", "<f8", (4,))
            with pytest.raises(KeyError):
                pool.view(foreign)


class TestTransportGating:
    def test_mode_resolution(self, monkeypatch):
        monkeypatch.delenv(SHM_ENV, raising=False)
        assert shm_mode() == "auto"
        for raw, expected in (("on", "on"), ("OFF", "off"),
                              ("auto", "auto"), ("bogus", "auto")):
            monkeypatch.setenv(SHM_ENV, raw)
            assert shm_mode() == expected

    def test_auto_enables_process_only(self, monkeypatch, tmp_path):
        monkeypatch.delenv(SHM_ENV, raising=False)
        assert not use_shm_transport(SerialExecutor())
        assert not use_shm_transport(ThreadExecutor(workers=2))
        assert use_shm_transport(ProcessExecutor(workers=2))
        assert not use_shm_transport(QueueExecutor(str(tmp_path / "q")))

    def test_on_adds_queue_off_disables_all(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SHM_ENV, "on")
        assert use_shm_transport(QueueExecutor(str(tmp_path / "q")))
        assert use_shm_transport(ProcessExecutor(workers=2))
        monkeypatch.setenv(SHM_ENV, "off")
        assert not use_shm_transport(ProcessExecutor(workers=2))
        assert not use_shm_transport(QueueExecutor(str(tmp_path / "q")))


class TestForwardBatchBitExact:
    @pytest.mark.parametrize("flip_rate", [0.0, 0.02])
    def test_process_pool_shm_matches_serial(self, leak_check, monkeypatch,
                                             flip_rate):
        """The acceptance bar: multi-worker + shm == serial, bit for bit."""
        monkeypatch.delenv(SHM_ENV, raising=False)
        model = build_network("MLP-S", seed=3)
        engine = InferenceEngine(model, seed=11, flip_rate=flip_rate)
        x = np.random.default_rng(5).standard_normal((130, 784))
        serial = engine.forward_batch(x, batch_size=32, backend="serial")
        with ProcessExecutor(workers=2) as executor:
            assert use_shm_transport(executor)
            parallel = engine.forward_batch(x, batch_size=32,
                                            executor=executor)
        np.testing.assert_array_equal(serial, parallel)

    def test_queue_executor_shm_matches_serial(self, leak_check, monkeypatch,
                                               tmp_path):
        monkeypatch.setenv(SHM_ENV, "on")
        model = build_network("MLP-S", seed=3)
        engine = InferenceEngine(model, seed=11, flip_rate=0.02)
        x = np.random.default_rng(5).standard_normal((96, 784))
        serial = engine.forward_batch(x, batch_size=16, backend="serial")
        with QueueExecutor(str(tmp_path / "queue"),
                           timeout_s=120.0) as executor:
            assert use_shm_transport(executor)
            parallel = engine.forward_batch(x, batch_size=16,
                                            executor=executor)
        np.testing.assert_array_equal(serial, parallel)

    def test_zero_row_probe_predicts_output_rows(self):
        # the overlap fix rests on the dry run matching the real rows
        for name in ("MLP-S", "CNN-S"):
            model = build_network(name, seed=3)
            engine = InferenceEngine(model, seed=11, flip_rate=0.02)
            x = np.random.default_rng(5).standard_normal(
                (4, *model.input_shape))
            probe = engine._probe_rows(x)
            real = engine._run_chunk(x, 0)
            assert probe is not None
            assert probe.shape == (0, *real.shape[1:])
            assert probe.dtype == real.dtype

    def test_failed_probe_falls_back_and_still_matches(self, leak_check,
                                                       monkeypatch):
        # with the dry run broken, the first real chunk resumes the
        # probing role (the pre-fix ordering) — results unchanged
        monkeypatch.delenv(SHM_ENV, raising=False)
        model = build_network("MLP-S", seed=3)
        engine = InferenceEngine(model, seed=11, flip_rate=0.02)
        monkeypatch.setattr(InferenceEngine, "_probe_rows",
                            lambda self, x: None)
        x = np.random.default_rng(5).standard_normal((96, 784))
        serial = engine.forward_batch(x, batch_size=32, backend="serial")
        with ProcessExecutor(workers=2) as executor:
            assert use_shm_transport(executor)
            parallel = engine.forward_batch(x, batch_size=32,
                                            executor=executor)
        np.testing.assert_array_equal(serial, parallel)

    def test_off_mode_pickles_and_still_matches(self, leak_check,
                                                monkeypatch):
        monkeypatch.setenv(SHM_ENV, "off")
        model = build_network("MLP-S", seed=3)
        engine = InferenceEngine(model, seed=11, flip_rate=0.02)
        x = np.random.default_rng(5).standard_normal((96, 784))
        serial = engine.forward_batch(x, batch_size=32, backend="serial")
        with ProcessExecutor(workers=2) as executor:
            assert not use_shm_transport(executor)
            parallel = engine.forward_batch(x, batch_size=32,
                                            executor=executor)
        np.testing.assert_array_equal(serial, parallel)


def _worker_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC_DIR, TESTS_RUNTIME_DIR, env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    return env


def _start_worker(root, *extra_args):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.runtime.queue", root, "serve",
         *extra_args],
        env=_worker_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )


def _stop_worker(proc, timeout=30):
    if proc.poll() is None:
        proc.terminate()
    try:
        return proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:  # pragma: no cover - CI safety net
        proc.kill()
        proc.communicate()
        raise


class TestCrashSafety:
    def test_sigkilled_worker_mid_chunk_leaks_nothing_and_recovers(
            self, tmp_path, leak_check):
        """SIGKILL a queue worker holding live segment mappings.

        The dead worker's chunk must be re-executed by the rescuer, the
        output bytes must match the serial oracle, and closing the pool
        must leave ``/dev/shm`` clean — the SIGKILLed attach cannot leak
        because workers never own segments.
        """
        root = str(tmp_path / "queue")
        marker = str(tmp_path / "executions.marker")
        rows, cols, chunk = 8, 16, 2
        data = np.random.default_rng(0).standard_normal((rows, cols))
        with SharedArrayPool() as pool:
            in_desc = pool.share(data)
            out_desc = pool.allocate((rows, cols), np.float64)
            init_queue_dirs(root)
            for index, start in enumerate(range(0, rows, chunk)):
                fn = (helpers.shm_square_rows_die_once if index == 0
                      else helpers.shm_square_rows)
                enqueue_task(root, Task(
                    index=index, fn=fn,
                    arg=(start, start + chunk, in_desc, out_desc, 0.05,
                         marker),
                ))
            victim = _start_worker(root, "--watch", "--lease-seconds", "0.5",
                                   "--poll-interval", "0.1")
            try:
                victim.communicate(timeout=60)
                assert victim.returncode == -signal.SIGKILL
                rescuer = _start_worker(root, "--watch",
                                        "--poll-interval", "0.1")
                try:
                    results = collect_results(
                        root, rows // chunk, timeout_s=120.0,
                        poll_interval_s=0.05, max_retries=5,
                    )
                finally:
                    _stop_worker(rescuer)
            finally:
                _stop_worker(victim)
            assert results == [(start, None)
                               for start in range(0, rows, chunk)]
            recovered = pool.read(out_desc)
        np.testing.assert_array_equal(recovered, data ** 2)
        with open(marker, encoding="utf-8") as handle:
            executions = [int(line) for line in handle.read().split()]
        # chunk 0 ran twice (the fatal first attempt + the re-queue);
        # every other chunk exactly once
        assert sorted(executions) == [0, 0, 2, 4, 6]

    def test_worker_subprocess_attach_does_not_unlink_on_exit(
            self, tmp_path, leak_check):
        """An attach-only process exiting must not destroy the segment

        (the Python <= 3.12 resource-tracker over-tracking bug the
        transport works around)."""
        with SharedArrayPool() as pool:
            descriptor = pool.share(np.arange(6.0))
            script = (
                "import pickle, sys\n"
                "from repro.runtime.shm import attach_view\n"
                "d = pickle.loads(bytes.fromhex(sys.argv[1]))\n"
                "print(attach_view(d).sum())\n"
            )
            proc = subprocess.run(
                [sys.executable, "-c", script,
                 pickle.dumps(descriptor).hex()],
                env=_worker_env(), capture_output=True, text=True,
                timeout=60,
            )
            assert proc.returncode == 0, proc.stderr
            assert float(proc.stdout) == 15.0
            time.sleep(0.1)  # give any (buggy) tracker unlink time to land
            np.testing.assert_array_equal(pool.read(descriptor),
                                          np.arange(6.0))
