"""Tests for the individual photonic component models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.photonics.components import (
    Demux,
    Laser,
    MicroResonatorComb,
    Mux,
    Photodiode,
    TransimpedanceAmplifier,
    VariableOpticalAttenuator,
    Waveguide,
    db_to_linear,
    linear_to_db,
)


class TestDbConversions:
    def test_3db_is_half(self):
        assert db_to_linear(3.0103) == pytest.approx(0.5, rel=1e-3)

    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == 1.0

    def test_round_trip(self):
        assert linear_to_db(db_to_linear(7.5)) == pytest.approx(7.5)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)


class TestLaser:
    def test_emit_single_line(self):
        laser = Laser(output_power=0.01, wavelength_nm=1550.0)
        signal = laser.emit()
        assert signal == {1550.0: 0.01}

    def test_electrical_power_exceeds_optical(self):
        laser = Laser(output_power=0.01, wall_plug_efficiency=0.25)
        assert laser.electrical_power == pytest.approx(0.04)

    def test_rejects_zero_efficiency(self):
        with pytest.raises(ValueError):
            Laser(wall_plug_efficiency=0.0)

    def test_rejects_nonpositive_power(self):
        with pytest.raises(ValueError):
            Laser(output_power=0.0)


class TestComb:
    def test_generates_requested_line_count(self):
        comb = MicroResonatorComb(num_lines=8)
        lines = comb.generate(Laser().emit())
        assert len(lines) == 8

    def test_lines_equally_spaced(self):
        comb = MicroResonatorComb(num_lines=4, line_spacing_nm=1.0)
        lines = sorted(comb.generate(Laser(wavelength_nm=1550).emit()))
        spacings = np.diff(lines)
        assert np.allclose(spacings, 1.0)

    def test_total_power_conserves_efficiency(self):
        laser = Laser(output_power=0.01)
        comb = MicroResonatorComb(num_lines=16, conversion_efficiency=0.3)
        lines = comb.generate(laser.emit())
        assert sum(lines.values()) == pytest.approx(0.003)

    def test_rejects_multiline_pump(self):
        comb = MicroResonatorComb()
        with pytest.raises(ValueError):
            comb.generate({1550.0: 0.01, 1551.0: 0.01})

    def test_rejects_invalid_line_count(self):
        with pytest.raises(ValueError):
            MicroResonatorComb(num_lines=0)


class TestMuxDemux:
    def test_demux_splits_channels(self):
        demux = Demux(insertion_loss_db=0.0)
        split = demux.split({1550.0: 1.0, 1551.0: 2.0})
        assert split[1550.0] == {1550.0: 1.0}
        assert split[1551.0] == {1551.0: 2.0}

    def test_demux_applies_loss(self):
        demux = Demux(insertion_loss_db=3.0103)
        split = demux.split({1550.0: 1.0})
        assert split[1550.0][1550.0] == pytest.approx(0.5, rel=1e-3)

    def test_mux_combines_disjoint_channels(self):
        mux = Mux(insertion_loss_db=0.0)
        combined = mux.combine([{1550.0: 1.0}, {1551.0: 2.0}])
        assert combined == {1550.0: 1.0, 1551.0: 2.0}

    def test_mux_rejects_wavelength_collision(self):
        mux = Mux()
        with pytest.raises(ValueError):
            mux.combine([{1550.0: 1.0}, {1550.0: 2.0}])


class TestVOA:
    def test_bit_one_passes_with_insertion_loss(self):
        voa = VariableOpticalAttenuator(insertion_loss_db=0.0)
        assert voa.modulate({1550.0: 1.0}, 1)[1550.0] == pytest.approx(1.0)

    def test_bit_zero_heavily_attenuated(self):
        voa = VariableOpticalAttenuator(insertion_loss_db=0.0,
                                        extinction_ratio_db=20.0)
        assert voa.modulate({1550.0: 1.0}, 0)[1550.0] == pytest.approx(0.01)

    def test_rejects_invalid_bit(self):
        with pytest.raises(ValueError):
            VariableOpticalAttenuator().modulate({1550.0: 1.0}, 2)

    def test_rejects_multiline_input(self):
        with pytest.raises(ValueError):
            VariableOpticalAttenuator().modulate({1550.0: 1.0, 1551.0: 1.0}, 1)


class TestWaveguidePhotodiodeTIA:
    def test_waveguide_loss_scales_with_length(self):
        short = Waveguide(length_mm=1.0, loss_db_per_cm=2.0)
        long = Waveguide(length_mm=10.0, loss_db_per_cm=2.0)
        assert long.total_loss_db == pytest.approx(10 * short.total_loss_db)

    def test_waveguide_propagate_attenuates(self):
        waveguide = Waveguide(length_mm=5.0, loss_db_per_cm=2.0)
        out = waveguide.propagate({1550.0: 1.0})
        assert out[1550.0] == pytest.approx(10 ** (-0.1))

    def test_photodiode_sums_wavelengths(self):
        photodiode = Photodiode(responsivity_a_per_w=0.8, dark_current_a=0.0)
        current = photodiode.detect({1550.0: 1e-3, 1551.0: 1e-3})
        assert current == pytest.approx(1.6e-3)

    def test_photodiode_dark_current_floor(self):
        photodiode = Photodiode(dark_current_a=1e-9)
        assert photodiode.detect({}) == pytest.approx(1e-9)

    def test_tia_gain(self):
        tia = TransimpedanceAmplifier(gain_ohm=1e4)
        assert tia.amplify(1e-4) == pytest.approx(1.0)

    def test_tia_rejects_negative_current(self):
        with pytest.raises(ValueError):
            TransimpedanceAmplifier().amplify(-1e-6)

    def test_tia_default_power_is_2mw(self):
        """Eq. 2 relies on the 2 mW per-TIA constant."""
        assert TransimpedanceAmplifier().power == pytest.approx(2e-3)
