"""Tests for the WDM plan, the transmitter assembly, Eq. 2/3 and link budget."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.photonics.components import Laser
from repro.photonics.link import OpticalLink, evaluate_link_budget, max_rows_for_closure
from repro.photonics.power import (
    DEFAULT_LASER_POWER_W,
    TIA_POWER_W,
    crossbar_receiver_power,
    total_optical_overhead_power,
    transmitter_power,
)
from repro.photonics.transmitter import Transmitter, TransmitterConfig
from repro.photonics.wdm import PAPER_WDM_CAPACITY, WDMChannelPlan, WDMConfig


class TestWDMPlan:
    def test_paper_capacity_is_sixteen(self):
        assert PAPER_WDM_CAPACITY == 16

    def test_default_effective_capacity_reaches_paper_value(self):
        assert WDMChannelPlan().effective_capacity() == 16

    def test_wavelength_count(self):
        plan = WDMChannelPlan(WDMConfig(capacity=8))
        assert len(plan.wavelengths()) == 8
        assert len(plan.wavelengths(3)) == 3

    def test_wavelengths_equally_spaced(self):
        plan = WDMChannelPlan(WDMConfig(capacity=8, channel_spacing_nm=0.5))
        wavelengths = plan.wavelengths()
        assert np.allclose(np.diff(wavelengths), 0.5)

    def test_isolation_grows_with_distance(self):
        plan = WDMChannelPlan()
        assert plan.isolation_db(4) > plan.isolation_db(1)

    def test_aggregate_crosstalk_worsens_with_channel_count(self):
        plan = WDMChannelPlan()
        assert plan.aggregate_crosstalk_db(2) > plan.aggregate_crosstalk_db(16)

    def test_single_channel_has_no_crosstalk(self):
        assert WDMChannelPlan().aggregate_crosstalk_db(1) == float("inf")

    def test_poor_isolation_reduces_effective_capacity(self):
        plan = WDMChannelPlan(WDMConfig(
            crosstalk_floor_db=10.0, crosstalk_rolloff_db_per_channel=0.5,
            detection_margin_db=12.0,
        ))
        assert plan.effective_capacity() < 16

    def test_channels_per_activation_caps_at_capacity(self):
        plan = WDMChannelPlan()
        assert plan.channels_per_activation(100) == 16
        assert plan.channels_per_activation(5) == 5
        assert plan.channels_per_activation(0) == 0

    def test_invalid_requests_rejected(self):
        plan = WDMChannelPlan()
        with pytest.raises(ValueError):
            plan.wavelengths(0)
        with pytest.raises(ValueError):
            plan.aggregate_crosstalk_db(17)
        with pytest.raises(ValueError):
            plan.channels_per_activation(-1)


class TestTransmitter:
    def _transmitter(self, rows=16):
        return Transmitter(TransmitterConfig(num_rows=rows))

    def test_encode_produces_one_signal_per_row(self, rng):
        transmitter = self._transmitter(rows=16)
        vectors = rng.integers(0, 2, size=(4, 16))
        assert len(transmitter.encode(vectors)) == 16

    def test_encode_decode_round_trip(self, rng):
        transmitter = self._transmitter(rows=32)
        vectors = rng.integers(0, 2, size=(8, 32))
        signals = transmitter.encode(vectors)
        wavelengths = sorted(signals[0].keys())
        for index in range(8):
            recovered = transmitter.decode_reference(signals, wavelengths[index])
            assert np.array_equal(recovered, vectors[index])

    def test_encode_rejects_too_many_vectors(self, rng):
        transmitter = self._transmitter(rows=8)
        with pytest.raises(ValueError):
            transmitter.encode(rng.integers(0, 2, size=(17, 8)))

    def test_encode_rejects_wrong_length(self, rng):
        transmitter = self._transmitter(rows=8)
        with pytest.raises(ValueError):
            transmitter.encode(rng.integers(0, 2, size=(2, 9)))

    def test_carrier_lines_match_wdm_capacity(self):
        transmitter = self._transmitter()
        assert len(transmitter.carrier_lines()) == 16

    def test_electrical_power_matches_equation_three(self):
        """The structural transmitter model and Eq. 3 agree on defaults."""
        rows = 64
        transmitter = Transmitter(TransmitterConfig(num_rows=rows))
        structural = transmitter.electrical_power()
        closed_form = transmitter_power(16, rows)
        assert structural == pytest.approx(closed_form, rel=1e-9)

    def test_power_grows_with_active_wavelengths(self):
        transmitter = self._transmitter(rows=64)
        assert (
            transmitter.electrical_power(active_wavelengths=16)
            > transmitter.electrical_power(active_wavelengths=2)
        )

    def test_invalid_wavelength_count_rejected(self):
        with pytest.raises(ValueError):
            self._transmitter().electrical_power(active_wavelengths=0)


class TestPowerEquations:
    def test_equation_two_linear_in_columns(self):
        assert crossbar_receiver_power(0) == 0.0
        assert crossbar_receiver_power(1) == pytest.approx(TIA_POWER_W)
        assert crossbar_receiver_power(512) == pytest.approx(512 * TIA_POWER_W)

    def test_equation_two_matches_paper_example(self):
        """N = 256 columns -> 512 mW of TIA power."""
        assert crossbar_receiver_power(256) == pytest.approx(0.512)

    def test_equation_three_structure(self):
        k, m = 16, 256
        expected = (
            DEFAULT_LASER_POWER_W
            + 3e-3 * k * m
            + (k * m + 1) / k * 45e-3
        )
        assert transmitter_power(k, m) == pytest.approx(expected)

    def test_equation_three_grows_with_k_and_m(self):
        assert transmitter_power(16, 256) > transmitter_power(8, 256)
        assert transmitter_power(16, 256) > transmitter_power(16, 128)

    def test_equation_three_custom_constants(self):
        power = transmitter_power(
            2, 4, laser_power=0.0, tuning_group_size=1,
            modulator_power=1e-3, tuning_block_power=2e-3,
        )
        assert power == pytest.approx(8e-3 + 9 * 2e-3)

    def test_total_overhead_combines_both(self):
        total = total_optical_overhead_power(16, 256, 256)
        assert total == pytest.approx(
            transmitter_power(16, 256) + crossbar_receiver_power(256)
        )

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            crossbar_receiver_power(-1)
        with pytest.raises(ValueError):
            transmitter_power(0, 16)
        with pytest.raises(ValueError):
            transmitter_power(4, 0)
        with pytest.raises(ValueError):
            transmitter_power(4, 4, tuning_group_size=0)

    @given(st.integers(1, 32), st.integers(1, 1024))
    @settings(max_examples=50)
    def test_equation_three_monotone_in_rows_property(self, k, m):
        """Driving more rows never reduces transmitter power (Eq. 3 has
        dP/dM = 3K + 45 mW > 0; monotonicity in K does not hold in general
        because the tuning term is shared across a group of K modulators)."""
        assert transmitter_power(k, m + 1) >= transmitter_power(k, m)


class TestLinkBudget:
    def test_default_budget_closes_at_paper_scale(self):
        budget = evaluate_link_budget(OpticalLink(), num_rows=256, wdm_capacity=16)
        assert budget.closes
        assert budget.margin_db > 0

    def test_budget_margin_shrinks_with_rows(self):
        link = OpticalLink()
        small = evaluate_link_budget(link, num_rows=64, wdm_capacity=16)
        large = evaluate_link_budget(link, num_rows=1024, wdm_capacity=16)
        assert small.margin_db > large.margin_db

    def test_budget_fails_with_weak_laser(self):
        link = OpticalLink(laser=Laser(output_power=1e-6))
        budget = evaluate_link_budget(link, num_rows=1024, wdm_capacity=16)
        assert not budget.closes

    def test_max_rows_for_closure_consistent(self):
        link = OpticalLink()
        limit = max_rows_for_closure(link, wdm_capacity=16)
        assert limit >= 256
        assert evaluate_link_budget(link, num_rows=limit, wdm_capacity=16).closes
        assert not evaluate_link_budget(
            link, num_rows=limit + 1, wdm_capacity=16
        ).closes

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            evaluate_link_budget(OpticalLink(), num_rows=0, wdm_capacity=16)
        with pytest.raises(ValueError):
            evaluate_link_budget(OpticalLink(), num_rows=16, wdm_capacity=0)
