"""Tests for the shared utility helpers (units, RNG, validation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import derive_seed, make_rng, spawn_rngs
from repro.utils.units import (
    format_energy,
    format_power,
    format_time,
    joules_to_pj,
    ns,
    pJ,
    seconds_to_ns,
    watts_to_mw,
)
from repro.utils.validation import (
    check_binary,
    check_bipolar,
    check_in_choices,
    check_positive,
    check_power_of_two,
    check_probability,
    check_shape,
)


class TestUnits:
    def test_round_trip_time(self):
        assert seconds_to_ns(5 * ns) == pytest.approx(5.0)

    def test_round_trip_energy(self):
        assert joules_to_pj(3 * pJ) == pytest.approx(3.0)

    def test_watts_to_mw(self):
        assert watts_to_mw(0.002) == pytest.approx(2.0)

    def test_format_time_picks_unit(self):
        assert "ns" in format_time(5e-9)
        assert "us" in format_time(5e-6)
        assert "ms" in format_time(5e-3)
        assert format_time(0) == "0 s"

    def test_format_energy_picks_unit(self):
        assert "pJ" in format_energy(2e-12)
        assert "nJ" in format_energy(2e-9)
        assert "uJ" in format_energy(2e-6)

    def test_format_power_picks_unit(self):
        assert "mW" in format_power(2e-3)
        assert "uW" in format_power(2e-6)


class TestRng:
    def test_default_seed_is_deterministic(self):
        assert make_rng().integers(0, 100) == make_rng().integers(0, 100)

    def test_int_seed(self):
        assert make_rng(7).integers(0, 1000) == make_rng(7).integers(0, 1000)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(3)
        assert make_rng(generator) is generator

    def test_invalid_seed_type_rejected(self):
        with pytest.raises(TypeError):
            make_rng("seed")

    def test_spawn_rngs_independent_streams(self):
        a, b = spawn_rngs(0, 2)
        assert a.integers(0, 2**31) != b.integers(0, 2**31)

    def test_spawn_rngs_count_validated(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_derive_seed_depends_on_salt(self):
        assert derive_seed(0, "alpha") != derive_seed(0, "beta")


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.5) == 1.5
        with pytest.raises(ValueError):
            check_positive("x", 0.0)
        assert check_positive("x", 0.0, allow_zero=True) == 0.0
        with pytest.raises(ValueError):
            check_positive("x", float("nan"))

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_binary(self):
        out = check_binary("b", np.array([0, 1, 1]))
        assert out.dtype == np.int8
        with pytest.raises(ValueError):
            check_binary("b", np.array([0, 2]))
        with pytest.raises(ValueError):
            check_binary("b", np.array([]))

    def test_check_bipolar(self):
        assert check_bipolar("b", np.array([-1, 1])).dtype == np.int8
        with pytest.raises(ValueError):
            check_bipolar("b", np.array([0, 1]))

    def test_check_shape(self):
        arr = np.zeros((2, 3))
        assert check_shape("a", arr, (2, 3)) is not None
        assert check_shape("a", arr, (-1, 3)) is not None
        with pytest.raises(ValueError):
            check_shape("a", arr, (3, 2))
        with pytest.raises(ValueError):
            check_shape("a", arr, (2, 3, 1))

    def test_check_power_of_two(self):
        assert check_power_of_two("n", 64) == 64
        with pytest.raises(ValueError):
            check_power_of_two("n", 65)

    def test_check_in_choices(self):
        assert check_in_choices("m", "a", ["a", "b"]) == "a"
        with pytest.raises(ValueError):
            check_in_choices("m", "c", ["a", "b"])

    @given(st.integers(0, 62))
    def test_powers_of_two_property(self, exponent):
        assert check_power_of_two("n", 2 ** exponent) == 2 ** exponent
