"""Tests for the cross-PR benchmark trend recorder CLI."""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


@pytest.fixture(scope="module")
def cli():
    path = os.path.join(REPO_ROOT, "benchmarks", "record_trend.py")
    spec = importlib.util.spec_from_file_location("record_trend", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write_artifacts(root, *, smoke=False, img_per_s=100.0, serving_rps=900.0):
    suffix = ".smoke.json" if smoke else ".json"
    sweep = {
        "smoke": smoke,
        "conv_kernel_bench": {"kernels": {
            "blas": {"speedup_vs_loop_reference": 800.0},
            "packed": {"speedup_vs_loop_reference": 200.0},
        }},
        "sweep_warm_seconds": 0.5,
    }
    inference = {
        "smoke": smoke,
        "networks": {"CNN-M": {"packed_images_per_s": img_per_s,
                               "speedup_vs_dense": 5.0}},
        "parallel_forward_batch": {"speedup_vs_serial": 1.5},
    }
    serving = {
        "smoke": smoke,
        "policies": {
            "b8_d2000us": {"requests_per_s": serving_rps, "p50_ms": 1.1,
                           "p99_ms": 4.2},
            "b1_d500us": {"requests_per_s": serving_rps / 3.0,
                          "p50_ms": 2.0, "p99_ms": 6.0},
        },
        "best": {"policy": "b8_d2000us", "requests_per_s": serving_rps,
                 "p50_ms": 1.1, "p99_ms": 4.2},
    }
    sweep_path = os.path.join(root, f"BENCH_sweep{suffix}")
    inference_path = os.path.join(root, f"BENCH_inference{suffix}")
    serving_path = os.path.join(root, f"BENCH_serving{suffix}")
    with open(sweep_path, "w", encoding="utf-8") as handle:
        json.dump(sweep, handle)
    with open(inference_path, "w", encoding="utf-8") as handle:
        json.dump(inference, handle)
    with open(serving_path, "w", encoding="utf-8") as handle:
        json.dump(serving, handle)
    return (os.path.join(root, "BENCH_sweep.json"),
            os.path.join(root, "BENCH_inference.json"),
            os.path.join(root, "BENCH_serving.json"))


def _write_chaos_artifact(root, *, smoke=False, goodput_ratio=0.4):
    suffix = ".smoke.json" if smoke else ".json"
    chaos = {
        "smoke": smoke,
        "benchmark": "chaos_recovery",
        "chaos": {"goodput_ratio": goodput_ratio, "mean_recovery_s": 0.3,
                  "max_recovery_s": 0.5, "kills": 5, "restarts": 6},
        "baseline": {"goodput_tasks_per_s": 25.0},
    }
    path = os.path.join(root, f"BENCH_chaos{suffix}")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chaos, handle)
    return os.path.join(root, "BENCH_chaos.json")


class TestExtractMetrics:
    def test_flattens_tracked_and_network_metrics(self, cli, tmp_path):
        _write_artifacts(str(tmp_path))
        sweep = json.load(open(tmp_path / "BENCH_sweep.json"))
        inference = json.load(open(tmp_path / "BENCH_inference.json"))
        metrics = cli.extract_metrics(sweep, inference)
        assert metrics["conv_blas_speedup_vs_loop"] == 800.0
        assert metrics["CNN-M.packed_images_per_s"] == 100.0
        assert metrics["parallel_chunk_speedup"] == 1.5

    def test_missing_artifacts_yield_partial_metrics(self, cli, tmp_path):
        _write_artifacts(str(tmp_path))
        inference = json.load(open(tmp_path / "BENCH_inference.json"))
        metrics = cli.extract_metrics(None, inference)
        assert "conv_blas_speedup_vs_loop" not in metrics
        assert "serving_best_rps" not in metrics
        assert metrics["CNN-M.speedup_vs_dense"] == 5.0

    def test_serving_policies_flatten_per_policy(self, cli, tmp_path):
        _write_artifacts(str(tmp_path), serving_rps=1200.0)
        serving = json.load(open(tmp_path / "BENCH_serving.json"))
        metrics = cli.extract_metrics(None, None, serving)
        assert metrics["serving_best_rps"] == 1200.0
        assert metrics["serving_best_p99_ms"] == 4.2
        assert metrics["serving.b8_d2000us.requests_per_s"] == 1200.0
        assert metrics["serving.b1_d500us.p50_ms"] == 2.0

    def test_chaos_metrics_flatten_from_the_chaos_artifact(self, cli,
                                                           tmp_path):
        _write_chaos_artifact(str(tmp_path), goodput_ratio=0.37)
        chaos = json.load(open(tmp_path / "BENCH_chaos.json"))
        metrics = cli.extract_metrics(None, None, None, chaos)
        assert metrics["chaos_goodput_ratio"] == 0.37
        assert metrics["chaos_mean_recovery_s"] == 0.3
        assert metrics["chaos_max_recovery_s"] == 0.5
        assert metrics["chaos_restarts"] == 6
        # no other artifact contributed anything
        assert "serving_best_rps" not in metrics
        assert "conv_blas_speedup_vs_loop" not in metrics


class TestAppendEntry:
    def test_appends_and_replaces_same_label_tail(self, cli, tmp_path):
        trend = str(tmp_path / "trend.json")
        cli.append_entry(trend, {"label": "a", "metrics": {"m": 1.0}})
        cli.append_entry(trend, {"label": "b", "metrics": {"m": 2.0}})
        entries = cli.append_entry(trend, {"label": "b",
                                           "metrics": {"m": 3.0}})
        assert [e["label"] for e in entries] == ["a", "b"]
        assert entries[-1]["metrics"]["m"] == 3.0

    def test_corrupt_trend_file_starts_fresh(self, cli, tmp_path):
        trend = tmp_path / "trend.json"
        trend.write_text("{not json")
        entries = cli.append_entry(str(trend), {"label": "x", "metrics": {}})
        assert len(entries) == 1


class TestCliMain:
    def test_end_to_end_with_delta(self, cli, tmp_path, capsys):
        sweep, inference, serving = _write_artifacts(str(tmp_path))
        trend = str(tmp_path / "trend.json")
        assert cli.main(["--sweep", sweep, "--inference", inference,
                         "--serving", serving,
                         "--trend", trend, "--label", "one"]) == 0
        _write_artifacts(str(tmp_path), img_per_s=120.0)
        assert cli.main(["--sweep", sweep, "--inference", inference,
                         "--serving", serving,
                         "--trend", trend, "--label", "two"]) == 0
        out = capsys.readouterr().out
        assert "delta vs previous entry 'one'" in out
        assert "+20.0%" in out
        assert "serving_best_rps" in out

    def test_serving_round_trips_through_the_trend_file(self, cli, tmp_path):
        """BENCH_serving.json keys survive record -> load -> delta."""
        sweep, inference, serving = _write_artifacts(str(tmp_path),
                                                     serving_rps=800.0)
        trend = str(tmp_path / "trend.json")
        assert cli.main(["--sweep", sweep, "--inference", inference,
                         "--serving", serving,
                         "--trend", trend, "--label", "one"]) == 0
        entries = cli.load_trend(trend)
        assert entries[-1]["metrics"]["serving_best_rps"] == 800.0
        assert entries[-1]["metrics"]["serving.b8_d2000us.p99_ms"] == 4.2
        # and the delta printer compares the serving metrics entry-to-entry
        _write_artifacts(str(tmp_path), serving_rps=1000.0)
        assert cli.main(["--sweep", sweep, "--inference", inference,
                         "--serving", serving,
                         "--trend", trend, "--label", "two"]) == 0
        lines = "\n".join(cli.format_delta(cli.load_trend(trend)))
        assert "serving_best_rps: 1000.000 (+25.0% vs 800.000)" in lines

    def test_smoke_defaults_to_smoke_trend_path(self, cli, tmp_path,
                                                monkeypatch, capsys):
        """Regression: --smoke without --trend must never touch the
        committed BENCH_trend.json."""
        _write_artifacts(str(tmp_path), smoke=True)
        committed = tmp_path / "BENCH_trend.json"
        smoke_trend = tmp_path / "BENCH_trend.smoke.json"
        monkeypatch.setattr(cli, "DEFAULT_TREND_PATH", str(committed))
        monkeypatch.setattr(cli, "SMOKE_TREND_PATH", str(smoke_trend))
        sweep = str(tmp_path / "BENCH_sweep.json")
        inference = str(tmp_path / "BENCH_inference.json")
        serving = str(tmp_path / "BENCH_serving.json")
        assert cli.main(["--sweep", sweep, "--inference", inference,
                         "--serving", serving,
                         "--smoke", "--label", "ci"]) == 0
        assert not committed.exists()
        entries = json.load(open(smoke_trend))["entries"]
        assert entries[0]["label"] == "ci" and entries[0]["smoke"] is True
        assert "serving_best_rps" in entries[0]["metrics"]

    def test_chaos_round_trips_through_the_trend_file(self, cli, tmp_path,
                                                      capsys):
        """A chaos-only run records an entry and deltas PR-over-PR."""
        chaos = _write_chaos_artifact(str(tmp_path), goodput_ratio=0.4)
        trend = str(tmp_path / "trend.json")
        absent = str(tmp_path / "nope.json")
        base = ["--sweep", absent, "--inference", absent, "--serving",
                absent, "--chaos", chaos, "--trend", trend]
        assert cli.main(base + ["--label", "one"]) == 0
        entries = cli.load_trend(trend)
        assert entries[-1]["metrics"]["chaos_goodput_ratio"] == 0.4
        _write_chaos_artifact(str(tmp_path), goodput_ratio=0.5)
        assert cli.main(base + ["--label", "two"]) == 0
        lines = "\n".join(cli.format_delta(cli.load_trend(trend)))
        assert "chaos_goodput_ratio: 0.500 (+25.0% vs 0.400)" in lines

    def test_smoke_swaps_the_chaos_artifact_suffix(self, cli, tmp_path):
        """--smoke reads BENCH_chaos.smoke.json, never the full artifact."""
        _write_chaos_artifact(str(tmp_path), smoke=True, goodput_ratio=0.2)
        chaos = str(tmp_path / "BENCH_chaos.json")
        absent = str(tmp_path / "nope.json")
        trend = str(tmp_path / "trend.json")
        assert cli.main(["--sweep", absent, "--inference", absent,
                         "--serving", absent, "--chaos", chaos,
                         "--smoke", "--trend", trend,
                         "--label", "ci"]) == 0
        entries = cli.load_trend(trend)
        assert entries[0]["smoke"] is True
        assert entries[0]["metrics"]["chaos_goodput_ratio"] == 0.2

    def test_missing_artifacts_fail_cleanly(self, cli, tmp_path, capsys):
        assert cli.main(["--sweep", str(tmp_path / "nope.json"),
                         "--inference", str(tmp_path / "nope2.json"),
                         "--serving", str(tmp_path / "nope3.json"),
                         "--chaos", str(tmp_path / "nope4.json"),
                         "--trend", str(tmp_path / "trend.json")]) == 1
        assert "no artifacts found" in capsys.readouterr().out
