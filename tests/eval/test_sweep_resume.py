"""Kill/resume equivalence for sharded sweeps: the PR's acceptance bar.

A sharded sweep is submitted into a root, real worker subprocesses
(``python -m repro.runtime.queue <root> serve``) drain its ``part-*``
partitions, and the suite SIGKILLs them mid-partition.  Resuming into
the same root must then (a) never re-execute an identity that was
already published at resume time — proven through the execution ledger
of ``_shard_helpers.logged_evaluate_identified_point`` — and (b) finish
with records byte-identical to an uninterrupted serial oracle, at the
per-record pickle level and at the JSON-artifact level.

Parameterised over both queue-storage backends, like every fleet test.

The default grid keeps tier-1 fast; the CI ``sweep-scale`` job exports
``REPRO_SWEEP_SCALE=full`` to run the same scenario at the acceptance
scale (>= 10^4 grid points across >= 8 partitions).
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import time

import pytest

import _shard_helpers as helpers
from repro.eval import shard
from repro.eval.columnar import RECORD_SCHEMA_VERSION, task_identity
from repro.eval.shard import (
    aggregate_sweep,
    drain_and_aggregate,
    identified_points,
    partition_namespace,
    prepare_sweep,
    run_sharded_sweep,
)
from repro.eval.sweep import (
    SweepGrid,
    SweepResult,
    evaluate_point,
    write_sweep_json,
)
from repro.runtime import janitor
from repro.runtime.queue import PART_PREFIX
from repro.runtime.store import STORE_ENV, resolve_store

TESTS_EVAL_DIR = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(TESTS_EVAL_DIR)), "src"
)

#: ``REPRO_SWEEP_SCALE=full`` switches to the >= 10^4-point acceptance
#: grid (the CI sweep-scale job); anything else keeps tier-1 quick
SCALE = os.environ.get("REPRO_SWEEP_SCALE", "").strip().lower() == "full"


@pytest.fixture(params=["dir", "object"])
def queue_store(request, monkeypatch):
    """Once per storage backend, fleet-wide via the environment.

    Worker subprocesses inherit ``os.environ``, so exporting
    ``REPRO_RUNTIME_STORE`` steers the submitter and every external
    worker onto the same backend — how an operator moves a real fleet.
    """
    monkeypatch.setenv(STORE_ENV, request.param)
    return request.param


def _resume_grid() -> SweepGrid:
    """The kill/resume grid: 48 points by default, 12 000 under SCALE."""
    if SCALE:
        return SweepGrid(
            networks=("MLP-S",),
            designs=("baseline_epcm", "einsteinbarrier"),
            crossbar_sizes=(64, 128),
            wdm_capacities=(4, 8),
            noise_sigmas=tuple(i / 100 for i in range(10)),
            thermal_sigmas=tuple(i / 50 for i in range(10)),
            shot_factors=tuple(i / 20 for i in range(10)),
            ir_drop_alphas=(0.0, 0.1),
            noise_trials=1,
            noise_vector_length=16,
            noise_num_outputs=4,
            seed=11,
        )
    return SweepGrid(
        networks=("MLP-S",),
        designs=("baseline_epcm", "einsteinbarrier"),
        crossbar_sizes=(64,),
        wdm_capacities=(4,),
        noise_sigmas=(0.0, 0.02, 0.04),
        thermal_sigmas=(0.0, 0.1),
        shot_factors=(0.0, 0.05),
        ir_drop_alphas=(0.0, 0.1),
        noise_trials=1,
        noise_vector_length=16,
        noise_num_outputs=4,
        seed=11,
    )


def _small_grid(crossbar_sizes=(64,)) -> SweepGrid:
    """A cheap grid for the inline (no-subprocess) resume scenarios."""
    return SweepGrid(
        networks=("MLP-S",),
        designs=("baseline_epcm", "einsteinbarrier"),
        crossbar_sizes=crossbar_sizes,
        wdm_capacities=(4, 8),
        noise_sigmas=(0.0, 0.05),
        noise_trials=1,
        noise_vector_length=16,
        noise_num_outputs=4,
        seed=3,
    )


def _worker_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC_DIR, TESTS_EVAL_DIR, env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    return env


def _start_worker(root, *extra_args):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.runtime.queue", root, "serve",
         *extra_args],
        env=_worker_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )


def _wait_for(predicate, timeout_s=120.0, interval_s=0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    raise AssertionError("condition not reached within timeout")


def _published_identities_now(root):
    """Everything durably published at this instant: columnar rows plus
    successful results still sitting in leftover partition namespaces
    (the next ``prepare_sweep`` salvages those without re-executing)."""
    backend = resolve_store()
    published = shard.columnar_store(root).published_identities()
    for layout in backend.list_layouts(root, run_prefix=PART_PREFIX):
        if os.path.normpath(layout) == os.path.normpath(root):
            continue
        for _, (ok, payload) in janitor.result_entries(
                layout, store=backend).items():
            if ok:
                published.add(payload[0])
    return published


def _assert_matches_oracle(result, oracle, tmp_path):
    """Byte-identity at the record level and the artifact level.

    Per-record pickle bytes (not one list-level pickle: pickle memoises
    shared strings, so two lists of equal records serialise differently)
    plus the deterministic JSON artifact — the repo's established
    equivalence contract.
    """
    assert len(result.records) == len(oracle.records)
    for got, want in zip(result.records, oracle.records):
        assert pickle.dumps(got) == pickle.dumps(want)
    got_path = str(tmp_path / "sharded.json")
    want_path = str(tmp_path / "oracle.json")
    write_sweep_json(got_path, result)
    write_sweep_json(want_path, oracle)
    with open(got_path, "rb") as handle:
        got_bytes = handle.read()
    with open(want_path, "rb") as handle:
        want_bytes = handle.read()
    assert got_bytes == want_bytes


class TestKillResumeEquivalence:
    def test_sigkilled_fleet_resumes_with_zero_recompute(
            self, tmp_path, queue_store, monkeypatch):
        """SIGKILL workers mid-partition; resume recomputes nothing."""
        grid = _resume_grid()
        points = identified_points(grid)
        partitions = 8
        kill_after = 1500 if SCALE else 8
        if SCALE:
            assert len(points) >= 10_000

        oracle = SweepResult(
            grid=grid,
            records=[evaluate_point(spec) for spec in grid.points()],
        )

        root = str(tmp_path / "sweep")
        phase1_log = str(tmp_path / "phase1.log")
        phase2_log = str(tmp_path / "phase2.log")
        monkeypatch.setenv(helpers.EXEC_LOG_ENV, phase1_log)
        if not SCALE:
            # slow each point down so the kill lands mid-partition
            monkeypatch.setenv(helpers.SLEEP_ENV, "0.04")

        plan = prepare_sweep(
            grid, root, partitions=partitions,
            point_fn=helpers.logged_evaluate_identified_point,
        )
        assert len(plan.partitions) == partitions
        assert plan.skipped == 0 and plan.pending == len(points)

        workers = [
            _start_worker(root, "--watch", "--poll-interval", "0.05",
                          "--lease-seconds", "1.0")
            for _ in range(2)
        ]
        try:
            _wait_for(lambda: len(helpers.read_exec_log(phase1_log))
                      >= kill_after)
            for worker in workers:
                worker.kill()
        finally:
            for worker in workers:
                worker.communicate(timeout=60)

        published_before = _published_identities_now(root)
        assert published_before, "the fleet published nothing before dying"
        assert len(published_before) < len(points), \
            "the kill landed after the sweep already finished"

        monkeypatch.setenv(helpers.EXEC_LOG_ENV, phase2_log)
        monkeypatch.delenv(helpers.SLEEP_ENV, raising=False)
        result = run_sharded_sweep(
            grid, root, partitions=partitions,
            point_fn=helpers.logged_evaluate_identified_point,
            timeout_s=600.0,
        )

        # zero recomputation: nothing published at resume time executed
        # again, and the resume covered exactly the unpublished rest
        executed = set(helpers.read_exec_log(phase2_log))
        assert executed.isdisjoint(published_before)
        assert executed == {identity for identity, _ in points
                            if identity not in published_before}

        _assert_matches_oracle(result, oracle, tmp_path)

        # the partitions retired as they drained and the store is clean
        backend = resolve_store()
        leftovers = [
            layout for layout in
            backend.list_layouts(root, run_prefix=PART_PREFIX)
            if os.path.normpath(layout) != os.path.normpath(root)
        ]
        assert leftovers == []
        report = shard.columnar_store(root).scan()
        assert not report.corrupt and not report.orphans

    def test_resubmitting_a_complete_sweep_enqueues_nothing(
            self, tmp_path, queue_store, monkeypatch):
        """Submitting the same grid into a finished root is a no-op."""
        grid = _small_grid()
        root = str(tmp_path / "sweep")
        first = run_sharded_sweep(grid, root, partitions=4)

        log_path = str(tmp_path / "resubmit.log")
        monkeypatch.setenv(helpers.EXEC_LOG_ENV, log_path)
        plan = prepare_sweep(
            grid, root, partitions=4,
            point_fn=helpers.logged_evaluate_identified_point,
        )
        assert plan.pending == 0
        assert plan.skipped == plan.total_points == len(grid.points())
        again = drain_and_aggregate(root, plan)
        assert helpers.read_exec_log(log_path) == []
        for got, want in zip(again.records, first.records):
            assert pickle.dumps(got) == pickle.dumps(want)

    def test_extended_grid_computes_only_the_new_points(
            self, tmp_path, queue_store, monkeypatch):
        """Growing an axis resumes the sweep instead of restarting it."""
        root = str(tmp_path / "sweep")
        run_sharded_sweep(_small_grid(), root, partitions=4)
        published_before = _published_identities_now(root)

        extended = _small_grid(crossbar_sizes=(64, 128))
        log_path = str(tmp_path / "extend.log")
        monkeypatch.setenv(helpers.EXEC_LOG_ENV, log_path)
        result = run_sharded_sweep(
            extended, root, partitions=4,
            point_fn=helpers.logged_evaluate_identified_point,
        )

        new_identities = {
            identity for identity, _ in identified_points(extended)
            if identity not in published_before
        }
        assert new_identities, "extending the grid added no points"
        assert set(helpers.read_exec_log(log_path)) == new_identities

        oracle = SweepResult(
            grid=extended,
            records=[evaluate_point(spec) for spec in extended.points()],
        )
        _assert_matches_oracle(result, oracle, tmp_path)

    def test_incomplete_sweep_aggregation_names_the_resume_path(
            self, tmp_path, queue_store):
        """Partial roots fail loudly with the resume instruction."""
        grid = _small_grid()
        root = str(tmp_path / "sweep")
        pairs = identified_points(grid)
        store = shard.columnar_store(root)
        from repro.eval.columnar import sweep_records_to_array
        store.append(sweep_records_to_array(
            [(pairs[0][0], evaluate_point(pairs[0][1]))]
        ))
        with pytest.raises(RuntimeError,
                           match="unpublished.*run_sharded_sweep"):
            aggregate_sweep(root, grid)


class TestTaskIdentity:
    """Property tests for the content-addressed task identity."""

    def _spec(self):
        return _small_grid().points()[0]

    def test_identity_ignores_mapping_order(self):
        from dataclasses import asdict

        spec = self._spec()
        fields = asdict(spec)
        shuffled = dict(reversed(list(fields.items())))
        assert list(shuffled) != list(fields)
        assert task_identity(fields) == task_identity(shuffled)
        assert task_identity(fields) == task_identity(spec)

    def test_identity_stable_across_processes(self, tmp_path):
        """Same spec, fresh interpreter, adversarial hash seed: same hash.

        ``PYTHONHASHSEED`` is forced to a different value in the child so
        any dependence on dict/set iteration order would show up.
        """
        spec = self._spec()
        spec_path = str(tmp_path / "spec.pkl")
        with open(spec_path, "wb") as handle:
            pickle.dump(spec, handle)
        script = (
            "import pickle, sys\n"
            "from repro.eval.columnar import task_identity\n"
            "with open(sys.argv[1], 'rb') as handle:\n"
            "    spec = pickle.load(handle)\n"
            "print(task_identity(spec))\n"
        )
        env = _worker_env()
        env["PYTHONHASHSEED"] = "12345"
        out = subprocess.run(
            [sys.executable, "-c", script, spec_path],
            env=env, capture_output=True, text=True, check=True, timeout=60,
        )
        assert out.stdout.strip() == task_identity(spec)

    def test_identity_distinct_for_every_changed_axis(self):
        from dataclasses import asdict

        spec = self._spec()
        base_fields = asdict(spec)
        base = task_identity(spec)
        seen = {base}
        for name, value in base_fields.items():
            perturbed = dict(base_fields)
            if isinstance(value, bool):  # pragma: no cover - no bool axes
                perturbed[name] = not value
            elif isinstance(value, int):
                perturbed[name] = value + 1
            elif isinstance(value, float):
                perturbed[name] = value + 0.125
            elif isinstance(value, str):
                perturbed[name] = value + "-x"
            else:  # Optional axes currently at None
                perturbed[name] = 1
            changed = task_identity(perturbed)
            assert changed != base, f"changing {name} kept the identity"
            assert changed not in seen, f"{name} collided with another axis"
            seen.add(changed)

    def test_schema_bump_changes_every_identity(self):
        spec = self._spec()
        assert task_identity(spec) == task_identity(
            spec, schema_version=RECORD_SCHEMA_VERSION)
        assert task_identity(spec) != task_identity(
            spec, schema_version=RECORD_SCHEMA_VERSION + 1)

    def test_identity_rejects_non_point_values(self):
        with pytest.raises(TypeError, match="dataclass instance or a map"):
            task_identity(["not", "a", "point"])


class TestSweepResultBest:
    def test_best_on_empty_records_explains_itself(self):
        result = SweepResult(grid=_small_grid(), records=[])
        with pytest.raises(ValueError) as excinfo:
            result.best()
        message = str(excinfo.value)
        assert "empty SweepResult" in message
        assert "'speedup_vs_baseline'" in message
        assert "columnar" in message  # points at the sharded-sweep store


def test_partition_namespace_layout():
    assert partition_namespace("/mnt/sweep", 3) == "/mnt/sweep/part-0003"
    assert os.path.basename(partition_namespace("", 12)).startswith(
        PART_PREFIX)
