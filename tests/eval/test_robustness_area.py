"""Tests for the noise-robustness study and the area model."""

from __future__ import annotations

import pytest

from repro.arch.area import AreaBreakdown, estimate_area
from repro.arch.config import (
    baseline_epcm_config,
    einsteinbarrier_config,
    tacitmap_epcm_config,
)
from repro.bnn.networks import build_network
from repro.bnn.workload import extract_workload
from repro.eval.robustness import (
    level_error_rate,
    noise_sweep,
    popcount_error_rate,
)


@pytest.fixture(scope="module")
def mlp_s_workload():
    return extract_workload(build_network("MLP-S"))


class TestLevelErrorRate:
    def test_zero_noise_is_error_free(self):
        assert level_error_rate(2, read_noise_sigma=0.0, rng=0) == 0.0
        assert level_error_rate(8, read_noise_sigma=0.0, rng=0) == 0.0

    def test_binary_cells_tolerate_realistic_noise(self):
        """Sec. II-C: binary states stay separable at realistic noise."""
        assert level_error_rate(2, read_noise_sigma=0.05, rng=1) < 0.01

    def test_multilevel_cells_fail_at_same_noise(self):
        """Sec. II-C / Cardoso et al.: multi-level read-out degrades."""
        binary = level_error_rate(2, read_noise_sigma=0.05, rng=2)
        eight_level = level_error_rate(8, read_noise_sigma=0.05, rng=2)
        assert eight_level > 10 * max(binary, 1e-4)

    def test_error_rate_monotone_in_levels(self):
        rates = [
            level_error_rate(levels, read_noise_sigma=0.08, rng=3)
            for levels in (2, 4, 8, 16)
        ]
        assert rates == sorted(rates)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            level_error_rate(1, read_noise_sigma=0.01)
        with pytest.raises(ValueError):
            level_error_rate(2, read_noise_sigma=-0.1)
        with pytest.raises(ValueError):
            level_error_rate(2, read_noise_sigma=0.1, trials=0)


class TestPopcountErrorRate:
    def test_default_noise_gives_exact_popcounts(self):
        assert popcount_error_rate(vector_length=64, num_outputs=16,
                                   trials=4, rng=0) == 0.0

    def test_heavy_thermal_noise_corrupts_popcounts(self):
        noisy = popcount_error_rate(
            vector_length=64, num_outputs=16, trials=4,
            thermal_sigma=0.2, rng=1,
        )
        assert noisy > 0.1

    def test_opcm_backend_supported(self):
        assert popcount_error_rate(
            vector_length=32, num_outputs=8, trials=2,
            technology="opcm", rng=2,
        ) == 0.0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            popcount_error_rate(vector_length=0)


class TestNoiseSweep:
    def test_sweep_structure(self):
        points = noise_sweep((0.0, 0.05), vector_length=32, rng=0)
        assert [p.read_noise_sigma for p in points] == [0.0, 0.05]
        for point in points:
            assert 0.0 <= point.binary_cell_error <= 1.0
            assert 0.0 <= point.multilevel_cell_error <= 1.0
            assert 0.0 <= point.popcount_error <= 1.0

    def test_binary_never_worse_than_multilevel(self):
        for point in noise_sweep((0.02, 0.05, 0.1), vector_length=32, rng=1):
            assert point.binary_cell_error <= point.multilevel_cell_error

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            noise_sweep((-0.1,))
        with pytest.raises(ValueError):
            noise_sweep((0.1,), multilevel_bits=0)


class TestAreaModel:
    def test_breakdown_total(self, mlp_s_workload):
        area = estimate_area(einsteinbarrier_config(), mlp_s_workload)
        assert isinstance(area, AreaBreakdown)
        assert area.total == pytest.approx(
            area.crossbar + area.readout + area.drivers + area.digital
            + area.photonics
        )

    def test_only_photonic_design_has_photonics_area(self, mlp_s_workload):
        assert estimate_area(
            einsteinbarrier_config(), mlp_s_workload
        ).photonics > 0
        assert estimate_area(
            tacitmap_epcm_config(), mlp_s_workload
        ).photonics == 0.0
        assert estimate_area(
            baseline_epcm_config(), mlp_s_workload
        ).photonics == 0.0

    def test_adc_readout_larger_than_pcsa_readout(self, mlp_s_workload):
        """The ADC periphery is the area (and energy) price of TacitMap."""
        tacit = estimate_area(tacitmap_epcm_config(), mlp_s_workload)
        baseline = estimate_area(baseline_epcm_config(), mlp_s_workload)
        assert tacit.readout > baseline.readout

    def test_larger_network_needs_more_area(self):
        small = estimate_area(
            tacitmap_epcm_config(), extract_workload(build_network("MLP-S"))
        )
        large = estimate_area(
            tacitmap_epcm_config(), extract_workload(build_network("MLP-L"))
        )
        assert large.crossbar > small.crossbar
        assert large.total > small.total
