"""Round-trip, integrity and schema-bump tests for the columnar store.

The append-only ``.npz``-segment + JSON-manifest format replaces pickle
bundles and the monolithic sweep JSON at scale, so these tests pin its
contracts: lossless round-trips (dtypes, NaN/None nullables, unicode
fields), loud detection and quarantine of torn segments (never a silent
drop), streaming reads identical to the in-memory payload, and the
schema-version supersede that forces recompute instead of reusing stale
rows.
"""

from __future__ import annotations

import json
import os
import pickle

import numpy as np
import pytest

from repro.eval.columnar import (
    ColumnarStore,
    CorruptSegmentError,
    SWEEP_RECORD_DTYPE,
    array_to_sweep_records,
    iter_sweep_rows,
    sweep_records_to_array,
    task_identity,
)
from repro.eval.sweep import SweepGrid, SweepRecord, run_sweep
from repro.eval.shard import identified_points


def _record(**overrides) -> SweepRecord:
    values = dict(
        network="MLP-S",
        design="einsteinbarrier",
        crossbar_size=128,
        wdm_capacity=4,
        noise_sigma=0.05,
        latency_s=1.25e-6,
        energy_j=3.5e-9,
        speedup_vs_baseline=12.5,
        energy_ratio_vs_baseline=0.2,
        popcount_error=0.015625,
    )
    values.update(overrides)
    return SweepRecord(**values)


def _pairs(records):
    return [(task_identity({"row": index}), record)
            for index, record in enumerate(records)]


class TestSweepRoundTrip:
    def test_append_then_stream_read_is_lossless(self, tmp_path):
        """dtypes, None-as-NaN nullables and unicode all survive."""
        records = [
            _record(),
            _record(network="MLP-Ünïcødé-网", noise_sigma=None,
                    popcount_error=None, node_utilisation=0.875),
            _record(design="baseline_epcm", latency_s=float("inf")),
        ]
        pairs = _pairs(records)
        store = ColumnarStore(str(tmp_path / "columnar"))
        store.append(sweep_records_to_array(pairs[:2]))
        store.append(sweep_records_to_array(pairs[2:]))

        assert store.rows == 3
        assert len(store.segments()) == 2
        streamed = list(iter_sweep_rows(store))
        assert [identity for identity, _ in streamed] == \
            [identity for identity, _ in pairs]
        for (_, got), (_, want) in zip(streamed, pairs):
            assert got == want
            assert pickle.dumps(got) == pickle.dumps(want)
        # None came back as None, not as NaN
        assert streamed[1][1].noise_sigma is None
        assert streamed[1][1].popcount_error is None
        assert streamed[1][1].network == "MLP-Ünïcødé-网"
        assert store.published_identities() == \
            {identity for identity, _ in pairs}

    def test_generic_structured_dtype_round_trips(self, tmp_path):
        """The store is generic over any identity-first structured dtype."""
        dtype = np.dtype([
            ("identity", "U64"), ("label", "U16"),
            ("value", "f8"), ("count", "i4"),
        ])
        arr = np.array([
            ("a" * 64, "ünïcødé", 1.5, 7),
            ("b" * 64, "plain", np.nan, -3),
        ], dtype=dtype)
        store = ColumnarStore(str(tmp_path / "generic"))
        store.append(arr)
        (back,) = list(store.iter_segments())
        assert back.dtype == dtype
        assert list(back["label"]) == ["ünïcødé", "plain"]
        assert back["value"][0] == 1.5 and np.isnan(back["value"][1])
        assert list(back["count"]) == [7, -3]

    def test_identical_appends_are_byte_idempotent(self, tmp_path):
        """Same rows -> same segment bytes (the content-hash suffix)."""
        arr = sweep_records_to_array(_pairs([_record()]))
        store = ColumnarStore(str(tmp_path / "columnar"))
        first, second = store.append(arr), store.append(arr)
        assert first.sha256 == second.sha256
        assert first.name != second.name  # distinct sequence numbers

    def test_streaming_reader_matches_in_memory_sweep_result(self, tmp_path):
        """iter_sweep_rows over a real sweep == SweepResult.to_payload."""
        grid = SweepGrid(
            networks=("MLP-S",),
            designs=("baseline_epcm", "einsteinbarrier"),
            crossbar_sizes=(64,),
            wdm_capacities=(4, 8),
            noise_sigmas=(0.0, 0.05),
            noise_trials=1,
            noise_vector_length=16,
            noise_num_outputs=4,
            seed=5,
        )
        result = run_sweep(grid)
        pairs = list(zip(
            [identity for identity, _ in identified_points(grid)],
            result.records,
        ))
        store = ColumnarStore(str(tmp_path / "columnar"))
        # split across segments the way a sharded drain would
        store.append(sweep_records_to_array(pairs[: len(pairs) // 2]))
        store.append(sweep_records_to_array(pairs[len(pairs) // 2:]))
        streamed = [record.to_dict() for _, record in iter_sweep_rows(store)]
        assert json.dumps(streamed, sort_keys=True) == json.dumps(
            result.to_payload()["records"], sort_keys=True)

    def test_empty_append_is_a_no_op(self, tmp_path):
        store = ColumnarStore(str(tmp_path / "columnar"))
        assert store.append(np.empty(0, dtype=SWEEP_RECORD_DTYPE)) is None
        assert store.segments() == [] and store.rows == 0


class TestIntegrity:
    def _store_with_two_segments(self, tmp_path):
        store = ColumnarStore(str(tmp_path / "columnar"))
        pairs = _pairs([_record(), _record(crossbar_size=256)])
        store.append(sweep_records_to_array(pairs[:1]))
        store.append(sweep_records_to_array(pairs[1:]))
        return store, pairs

    def test_truncated_tail_segment_is_detected_and_quarantined(
            self, tmp_path):
        """A torn tail raises on read and quarantines on repair —
        loudly reported, never silently dropped."""
        store, pairs = self._store_with_two_segments(tmp_path)
        tail = store.segments()[-1]
        tail_path = os.path.join(store.root, tail.name)
        with open(tail_path, "rb") as handle:
            blob = handle.read()
        with open(tail_path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])  # the torn write

        with pytest.raises(CorruptSegmentError, match="checksum"):
            list(store.iter_segments())
        report = store.scan()
        assert report.corrupt == (tail.name,)
        assert report.quarantined == ()  # scan alone never mutates

        report = store.scan(repair=True)
        assert report.quarantined == (tail.name,)
        assert os.path.exists(
            os.path.join(store.root, "quarantine", tail.name))
        # the survivor still reads; the torn rows are unpublished again
        assert [segment.name for segment in store.segments()] == \
            [report.ok[0]]
        assert store.published_identities() == {pairs[0][0]}
        assert store.scan().corrupt == ()

    def test_orphan_segment_is_reported_and_quarantined(self, tmp_path):
        """A segment file the manifest never adopted (crash between the
        two append steps) is an orphan, not data."""
        store, pairs = self._store_with_two_segments(tmp_path)
        orphan = "seg-0000042-deadbeef.npz"
        with open(os.path.join(store.root, orphan), "wb") as handle:
            handle.write(b"half-written garbage")
        report = store.scan()
        assert report.orphans == (orphan,)
        assert store.scan(repair=True).quarantined == (orphan,)
        assert os.path.exists(
            os.path.join(store.root, "quarantine", orphan))
        assert store.published_identities() == \
            {identity for identity, _ in pairs}

    def test_missing_segment_bytes_raise_not_skip(self, tmp_path):
        store, _ = self._store_with_two_segments(tmp_path)
        os.remove(os.path.join(store.root, store.segments()[0].name))
        with pytest.raises(CorruptSegmentError, match="missing"):
            list(store.iter_segments())


class TestSchemaSupersede:
    def test_schema_bump_archives_and_forces_recompute(self, tmp_path):
        root = str(tmp_path / "columnar")
        pairs = _pairs([_record()])
        old = ColumnarStore(root, schema_version=1)
        old.append(sweep_records_to_array(pairs))
        assert old.published_identities()

        new = ColumnarStore(root, schema_version=2)
        # the store restarts empty: nothing published, so every point of
        # a resuming sweep recomputes (identities hash the version too)
        assert new.rows == 0
        assert new.published_identities() == set()
        archives = [name for name in os.listdir(root)
                    if name.startswith("superseded-v1-")]
        assert len(archives) == 1
        archived = os.listdir(os.path.join(root, archives[0]))
        assert "manifest.json" in archived
        assert any(name.startswith("seg-") for name in archived)

    def test_reopening_same_schema_keeps_rows(self, tmp_path):
        root = str(tmp_path / "columnar")
        ColumnarStore(root).append(
            sweep_records_to_array(_pairs([_record()])))
        assert ColumnarStore(root).rows == 1


def test_array_round_trip_survives_helper_inverse():
    """array_to_sweep_records exactly inverts sweep_records_to_array."""
    pairs = _pairs([
        _record(noise_sigma=None, popcount_error=None),
        _record(network="Δ-net", nodes_required=12, node_utilisation=0.5),
    ])
    assert array_to_sweep_records(sweep_records_to_array(pairs)) == pairs
