"""Picklable point callables for the sharded-sweep resume tests.

Queue tasks pickle their callable by import path, so anything a worker
subprocess executes must live in an importable module — this one rides
the worker's ``PYTHONPATH`` next to ``src/``.  The wrapper keeps the
``(identity, spec) -> (identity, record)`` contract of
:func:`repro.eval.shard.evaluate_identified_point` and adds an
execution ledger: every call appends its task identity to the file
named by :data:`EXEC_LOG_ENV`, which is how the kill/resume suite
proves that already-published identities are *never* re-executed.
"""

from __future__ import annotations

import os
import time

from repro.eval.shard import evaluate_identified_point

#: file the wrapper appends each executed identity to (one per line);
#: lines are short, so O_APPEND keeps concurrent workers' writes atomic
EXEC_LOG_ENV = "REPRO_SWEEP_EXEC_LOG"

#: optional per-point sleep (seconds) so a SIGKILL lands mid-partition
SLEEP_ENV = "REPRO_SWEEP_EXEC_SLEEP"


def read_exec_log(path):
    """The identities executed so far, in execution order."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return [line.strip() for line in handle if line.strip()]
    except OSError:
        return []


def logged_evaluate_identified_point(pair):
    """Log the identity, optionally dawdle, then evaluate the point."""
    identity, _ = pair
    log_path = os.environ.get(EXEC_LOG_ENV)
    if log_path:
        fd = os.open(log_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, (identity + "\n").encode("utf-8"))
        finally:
            os.close(fd)
    delay = float(os.environ.get(SLEEP_ENV, "0") or "0")
    if delay > 0:
        time.sleep(delay)
    return evaluate_identified_point(pair)
