"""Tests for the declarative design-space sweep subsystem."""

from __future__ import annotations

import json

import pytest

from repro.eval.sweep import (
    SweepGrid,
    clear_sweep_caches,
    evaluate_point,
    get_accelerator_model,
    run_sweep,
    write_sweep_json,
)


@pytest.fixture()
def small_grid():
    return SweepGrid(
        networks=("MLP-S",),
        designs=("baseline_epcm", "einsteinbarrier"),
        crossbar_sizes=(128, 256),
        wdm_capacities=(4, 16),
        noise_sigmas=(0.0, 0.05),
        noise_trials=2,
        noise_vector_length=32,
        noise_num_outputs=8,
        seed=42,
    )


class TestSweepGrid:
    def test_wdm_axis_collapses_for_electronic_designs(self, small_grid):
        points = small_grid.points()
        baseline = [p for p in points if p.design == "baseline_epcm"]
        einstein = [p for p in points if p.design == "einsteinbarrier"]
        # baseline: 2 sizes x 2 sigmas at K=1; einstein: 2 sizes x 2 K x 2 sigmas
        assert len(baseline) == 4
        assert all(p.wdm_capacity == 1 for p in baseline)
        assert len(einstein) == 8
        assert {p.wdm_capacity for p in einstein} == {4, 16}

    def test_empty_noise_axis_yields_single_none_sigma(self):
        grid = SweepGrid(networks=("MLP-S",), designs=("baseline_epcm",),
                         crossbar_sizes=(256,))
        points = grid.points()
        assert len(points) == 1
        assert points[0].noise_sigma is None

    def test_sequences_are_normalised_to_tuples(self):
        grid = SweepGrid(networks=["MLP-S"], designs=["baseline_epcm"],
                         crossbar_sizes=[128], wdm_capacities=[4])
        assert grid.networks == ("MLP-S",)
        assert grid.crossbar_sizes == (128,)

    @pytest.mark.parametrize("kwargs", [
        {"networks": ()},
        {"designs": ()},
        {"crossbar_sizes": ()},
        {"wdm_capacities": ()},
        {"designs": ("not_a_design",)},
        {"crossbar_sizes": (1,)},
        {"wdm_capacities": (0,)},
        {"noise_sigmas": (-0.1,)},
        {"noise_sigmas": (1.5,)},
        {"noise_trials": 0},
    ])
    def test_invalid_grids_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SweepGrid(**kwargs)

    def test_points_are_seeded_distinctly(self, small_grid):
        seeds = [p.seed for p in small_grid.points()]
        assert len(set(seeds)) == len(seeds)


class TestRunSweep:
    def test_deterministic_across_runs_and_workers(self, small_grid):
        serial = run_sweep(small_grid)
        again = run_sweep(small_grid)
        parallel = run_sweep(small_grid, workers=2)
        assert serial.records == again.records
        assert serial.records == parallel.records

    def test_caches_do_not_change_results(self, small_grid):
        clear_sweep_caches()
        cold = run_sweep(small_grid)
        warm = run_sweep(small_grid)
        assert cold.records == warm.records

    def test_einsteinbarrier_wins_and_baseline_is_unity(self, small_grid):
        result = run_sweep(small_grid)
        for record in result.records:
            if record.design == "baseline_epcm":
                assert record.speedup_vs_baseline == pytest.approx(1.0)
                assert record.energy_ratio_vs_baseline == pytest.approx(1.0)
        best = result.best()
        assert best.design == "einsteinbarrier"
        assert best.speedup_vs_baseline > 1.0

    def test_noise_axis_populates_popcount_error(self, small_grid):
        result = run_sweep(small_grid)
        assert all(r.popcount_error is not None for r in result.records)
        # the swept sigma must actually reach the functional simulation:
        # heavy read noise produces strictly more errors than the ideal point
        for design in small_grid.designs:
            quiet = sum(r.popcount_error for r in result.records
                        if r.design == design and r.noise_sigma == 0.0)
            noisy = sum(r.popcount_error for r in result.records
                        if r.design == design and r.noise_sigma == 0.05)
            assert noisy > quiet, design

    def test_evaluate_point_matches_run_sweep(self, small_grid):
        point = small_grid.points()[0]
        record = evaluate_point(point)
        assert record == run_sweep(small_grid).records[0]


class TestArtifacts:
    def test_json_roundtrip_is_byte_identical(self, small_grid, tmp_path):
        result = run_sweep(small_grid)
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        payload = write_sweep_json(str(first), result)
        write_sweep_json(str(second), run_sweep(small_grid, workers=2))
        assert first.read_bytes() == second.read_bytes()
        loaded = json.loads(first.read_text())
        assert loaded == json.loads(json.dumps(payload))
        assert len(loaded["records"]) == len(result.records)
        assert loaded["grid"]["networks"] == ["MLP-S"]


class TestModelCache:
    def test_models_are_shared(self):
        clear_sweep_caches()
        first = get_accelerator_model("einsteinbarrier", crossbar_size=256,
                                      wdm_capacity=16)
        second = get_accelerator_model("einsteinbarrier", crossbar_size=256,
                                       wdm_capacity=16)
        assert first is second

    def test_wdm_ignored_for_electronic_designs(self):
        clear_sweep_caches()
        first = get_accelerator_model("tacitmap_epcm", wdm_capacity=16)
        second = get_accelerator_model("tacitmap_epcm", wdm_capacity=4)
        assert first is second
        assert first.config.wdm_capacity == 1

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError, match="unknown design"):
            get_accelerator_model("gpu")
