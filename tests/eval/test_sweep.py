"""Tests for the declarative design-space sweep subsystem."""

from __future__ import annotations

import json

import pytest

from repro.eval.sweep import (
    AccuracySweepGrid,
    SweepGrid,
    clear_sweep_caches,
    evaluate_point,
    get_accelerator_model,
    run_accuracy_sweep,
    run_sweep,
    write_accuracy_sweep_json,
    write_sweep_json,
)
from repro.runtime.executors import BACKEND_ENV, ThreadExecutor
from repro.utils.rng import derive_seed


@pytest.fixture()
def small_grid():
    return SweepGrid(
        networks=("MLP-S",),
        designs=("baseline_epcm", "einsteinbarrier"),
        crossbar_sizes=(128, 256),
        wdm_capacities=(4, 16),
        noise_sigmas=(0.0, 0.05),
        noise_trials=2,
        noise_vector_length=32,
        noise_num_outputs=8,
        seed=42,
    )


class TestSweepGrid:
    def test_wdm_axis_collapses_for_electronic_designs(self, small_grid):
        points = small_grid.points()
        baseline = [p for p in points if p.design == "baseline_epcm"]
        einstein = [p for p in points if p.design == "einsteinbarrier"]
        # baseline: 2 sizes x 2 sigmas at K=1; einstein: 2 sizes x 2 K x 2 sigmas
        assert len(baseline) == 4
        assert all(p.wdm_capacity == 1 for p in baseline)
        assert len(einstein) == 8
        assert {p.wdm_capacity for p in einstein} == {4, 16}

    def test_empty_noise_axis_yields_single_none_sigma(self):
        grid = SweepGrid(networks=("MLP-S",), designs=("baseline_epcm",),
                         crossbar_sizes=(256,))
        points = grid.points()
        assert len(points) == 1
        assert points[0].noise_sigma is None

    def test_sequences_are_normalised_to_tuples(self):
        grid = SweepGrid(networks=["MLP-S"], designs=["baseline_epcm"],
                         crossbar_sizes=[128], wdm_capacities=[4])
        assert grid.networks == ("MLP-S",)
        assert grid.crossbar_sizes == (128,)

    @pytest.mark.parametrize("kwargs", [
        {"networks": ()},
        {"designs": ()},
        {"crossbar_sizes": ()},
        {"wdm_capacities": ()},
        {"designs": ("not_a_design",)},
        {"crossbar_sizes": (1,)},
        {"wdm_capacities": (0,)},
        {"noise_sigmas": (-0.1,)},
        {"noise_sigmas": (1.5,)},
        {"noise_trials": 0},
    ])
    def test_invalid_grids_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SweepGrid(**kwargs)

    def test_points_are_seeded_distinctly(self, small_grid):
        seeds = [p.seed for p in small_grid.points()]
        assert len(set(seeds)) == len(seeds)


class TestRunSweep:
    def test_deterministic_across_runs_and_workers(self, small_grid):
        serial = run_sweep(small_grid)
        again = run_sweep(small_grid)
        parallel = run_sweep(small_grid, workers=2)
        assert serial.records == again.records
        assert serial.records == parallel.records

    def test_caches_do_not_change_results(self, small_grid):
        clear_sweep_caches()
        cold = run_sweep(small_grid)
        warm = run_sweep(small_grid)
        assert cold.records == warm.records

    def test_einsteinbarrier_wins_and_baseline_is_unity(self, small_grid):
        result = run_sweep(small_grid)
        for record in result.records:
            if record.design == "baseline_epcm":
                assert record.speedup_vs_baseline == pytest.approx(1.0)
                assert record.energy_ratio_vs_baseline == pytest.approx(1.0)
        best = result.best()
        assert best.design == "einsteinbarrier"
        assert best.speedup_vs_baseline > 1.0

    def test_noise_axis_populates_popcount_error(self, small_grid):
        result = run_sweep(small_grid)
        assert all(r.popcount_error is not None for r in result.records)
        # the swept sigma must actually reach the functional simulation:
        # heavy read noise produces strictly more errors than the ideal point
        for design in small_grid.designs:
            quiet = sum(r.popcount_error for r in result.records
                        if r.design == design and r.noise_sigma == 0.0)
            noisy = sum(r.popcount_error for r in result.records
                        if r.design == design and r.noise_sigma == 0.05)
            assert noisy > quiet, design

    def test_evaluate_point_matches_run_sweep(self, small_grid):
        point = small_grid.points()[0]
        record = evaluate_point(point)
        assert record == run_sweep(small_grid).records[0]


class TestArtifacts:
    def test_json_roundtrip_is_byte_identical(self, small_grid, tmp_path):
        result = run_sweep(small_grid)
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        payload = write_sweep_json(str(first), result)
        write_sweep_json(str(second), run_sweep(small_grid, workers=2))
        assert first.read_bytes() == second.read_bytes()
        loaded = json.loads(first.read_text())
        assert loaded == json.loads(json.dumps(payload))
        assert len(loaded["records"]) == len(result.records)
        assert loaded["grid"]["networks"] == ["MLP-S"]


class TestExtendedAxes:
    @pytest.fixture()
    def noisy_grid(self):
        return SweepGrid(
            networks=("MLP-S",),
            designs=("baseline_epcm", "tacitmap_epcm"),
            crossbar_sizes=(128,),
            noise_sigmas=(0.0,),
            thermal_sigmas=(0.0, 0.05),
            shot_factors=(0.0, 0.1),
            ir_drop_alphas=(0.0, 0.2),
            columns_per_adc=(None, 4),
            noise_trials=2,
            noise_vector_length=32,
            noise_num_outputs=8,
            seed=13,
        )

    def test_cartesian_expansion_with_design_collapse(self, noisy_grid):
        points = noisy_grid.points()
        baseline = [p for p in points if p.design == "baseline_epcm"]
        tacitmap = [p for p in points if p.design == "tacitmap_epcm"]
        # baseline: ADC axis collapses -> 1 x 2 x 2 x 2; tacitmap: 2 x 2 x 2 x 2
        assert len(baseline) == 8
        assert all(p.columns_per_adc is None for p in baseline)
        assert len(tacitmap) == 16
        assert {p.columns_per_adc for p in tacitmap} == {None, 4}
        assert len({p.seed for p in points}) == len(points)

    def test_default_axes_keep_pre_extension_seeds(self):
        grid = SweepGrid(networks=("MLP-S",), designs=("baseline_epcm",),
                         crossbar_sizes=(128,), noise_sigmas=(0.05,), seed=21)
        point = grid.points()[0]
        # the salt of an all-default-axes point is the pre-extension format,
        # so grids written before the new axes keep their derived streams
        assert point.seed == derive_seed(21, "MLP-S/baseline_epcm/128/1/0.05")

    def test_records_carry_axis_values_and_resolved_adc(self, noisy_grid):
        result = run_sweep(noisy_grid)
        assert [r.thermal_sigma for r in result.records] \
            == [p.thermal_sigma for p in noisy_grid.points()]
        tacitmap = [r for r in result.records if r.design == "tacitmap_epcm"]
        # None resolves to the tacitmap factory default of 8
        assert {r.columns_per_adc for r in tacitmap} == {4, 8}
        baseline = [r for r in result.records if r.design == "baseline_epcm"]
        assert {r.columns_per_adc for r in baseline} == {1}

    def test_dense_noise_axes_drive_popcount_error(self, noisy_grid):
        result = run_sweep(noisy_grid)
        # read noise axis is 0.0 only, but the dense axes activate the
        # functional simulation for every point
        assert all(r.popcount_error is not None for r in result.records)
        quiet = [r.popcount_error for r in result.records
                 if r.thermal_sigma == 0.0 and r.shot_factor == 0.0
                 and r.ir_drop_alpha == 0.0]
        loud = [r.popcount_error for r in result.records
                if r.thermal_sigma == 0.05 and r.shot_factor == 0.1
                and r.ir_drop_alpha == 0.2]
        assert sum(loud) > sum(quiet)

    def test_ideal_axes_skip_functional_simulation(self):
        grid = SweepGrid(networks=("MLP-S",), designs=("baseline_epcm",),
                         crossbar_sizes=(128,))
        result = run_sweep(grid)
        assert all(r.popcount_error is None for r in result.records)

    def test_deterministic_across_workers_and_json_roundtrip(self, noisy_grid,
                                                             tmp_path):
        serial = run_sweep(noisy_grid)
        parallel = run_sweep(noisy_grid, workers=2)
        assert serial.records == parallel.records
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        write_sweep_json(str(first), serial)
        write_sweep_json(str(second), parallel)
        assert first.read_bytes() == second.read_bytes()
        loaded = json.loads(first.read_text())
        assert loaded["records"][0].keys() >= {
            "thermal_sigma", "shot_factor", "ir_drop_alpha", "columns_per_adc"
        }

    @pytest.mark.parametrize("kwargs", [
        {"thermal_sigmas": ()},
        {"thermal_sigmas": (-0.1,)},
        {"shot_factors": (-1.0,)},
        {"ir_drop_alphas": (1.0,)},
        {"columns_per_adc": (0,)},
    ])
    def test_invalid_axes_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SweepGrid(**kwargs)

    def test_columns_per_adc_reaches_model(self):
        clear_sweep_caches()
        model = get_accelerator_model("tacitmap_epcm", columns_per_adc=4)
        assert model.config.tile.columns_per_adc == 4
        default = get_accelerator_model("tacitmap_epcm")
        assert default.config.tile.columns_per_adc == 8
        assert model is not default
        # baseline has no sharing knob: the override collapses
        collapsed = get_accelerator_model("baseline_epcm", columns_per_adc=4)
        assert collapsed is get_accelerator_model("baseline_epcm")


class TestAccuracySweep:
    @pytest.fixture()
    def accuracy_grid(self):
        return AccuracySweepGrid(
            networks=("MLP-S",),
            read_noise_sigmas=(0.0, 0.02),
            train_epochs=1,
            num_images=48,
            batch_size=24,
            seed=3,
        )

    def test_points_expand_and_share_training_seed(self, accuracy_grid):
        points = accuracy_grid.points()
        assert len(points) == 2
        assert len({p.train_seed for p in points}) == 1
        assert len({p.seed for p in points}) == 2

    def test_deterministic_regardless_of_worker_count(self, accuracy_grid):
        clear_sweep_caches()
        serial = run_accuracy_sweep(accuracy_grid)
        clear_sweep_caches()
        again = run_accuracy_sweep(accuracy_grid)
        parallel = run_accuracy_sweep(accuracy_grid, workers=2)
        assert serial.records == again.records
        assert serial.records == parallel.records

    def test_noise_degrades_accuracy_toward_chance(self, accuracy_grid):
        result = run_accuracy_sweep(accuracy_grid)
        curve = dict(result.curve("MLP-S"))
        assert curve[0.0] > 0.5      # quick training learns the synthetic set
        assert curve[0.02] < curve[0.0]  # garbled columns lose the signal
        noisy_record = [r for r in result.records
                        if r.read_noise_sigma == 0.02][0]
        assert noisy_record.mean_flip_rate > 0.0
        clean_record = [r for r in result.records
                        if r.read_noise_sigma == 0.0][0]
        assert clean_record.mean_flip_rate == 0.0

    def test_json_roundtrip(self, accuracy_grid, tmp_path):
        result = run_accuracy_sweep(accuracy_grid)
        path = tmp_path / "accuracy.json"
        payload = write_accuracy_sweep_json(str(path), result)
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(payload))
        assert len(loaded["records"]) == 2
        assert loaded["grid"]["networks"] == ["MLP-S"]

    def test_untrained_evaluation_is_supported(self):
        grid = AccuracySweepGrid(networks=("MLP-S",),
                                 read_noise_sigmas=(0.0,),
                                 train_epochs=0, num_images=16,
                                 batch_size=16)
        result = run_accuracy_sweep(grid)
        assert 0.0 <= result.records[0].accuracy <= 1.0

    @pytest.mark.parametrize("kwargs", [
        {"networks": ()},
        {"technologies": ("tcam",)},
        {"read_noise_sigmas": (2.0,)},
        {"train_epochs": -1},
        {"num_images": 0},
        {"flip_trials": 0},
    ])
    def test_invalid_grids_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AccuracySweepGrid(**kwargs)


class TestModelCache:
    def test_models_are_shared(self):
        clear_sweep_caches()
        first = get_accelerator_model("einsteinbarrier", crossbar_size=256,
                                      wdm_capacity=16)
        second = get_accelerator_model("einsteinbarrier", crossbar_size=256,
                                       wdm_capacity=16)
        assert first is second

    def test_wdm_ignored_for_electronic_designs(self):
        clear_sweep_caches()
        first = get_accelerator_model("tacitmap_epcm", wdm_capacity=16)
        second = get_accelerator_model("tacitmap_epcm", wdm_capacity=4)
        assert first is second
        assert first.config.wdm_capacity == 1

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError, match="unknown design"):
            get_accelerator_model("gpu")


class TestRuntimeBackends:
    """run_sweep / run_accuracy_sweep through the unified runtime layer."""

    @pytest.fixture()
    def tiny_grid(self):
        return SweepGrid(
            networks=("MLP-S",),
            designs=("baseline_epcm", "einsteinbarrier"),
            crossbar_sizes=(128,),
            wdm_capacities=(4, 16),
            noise_sigmas=(0.0, 0.05),
            noise_trials=2,
            noise_vector_length=32,
            noise_num_outputs=8,
            seed=11,
        )

    def test_records_byte_identical_across_backends(self, tiny_grid, tmp_path):
        paths = {}
        for backend in ("serial", "thread", "process"):
            result = run_sweep(tiny_grid, backend=backend, workers=2)
            path = tmp_path / f"{backend}.json"
            write_sweep_json(str(path), result)
            paths[backend] = path.read_bytes()
        assert paths["serial"] == paths["thread"] == paths["process"]

    def test_queue_backend_matches_serial(self, tiny_grid):
        serial = run_sweep(tiny_grid)
        queued = run_sweep(tiny_grid, backend="queue")
        assert serial.records == queued.records

    def test_queue_backend_options_thread_through(self, tiny_grid, tmp_path):
        # the fleet-hardening knobs (short lease, tiny compaction chunks)
        # must not perturb the records
        serial = run_sweep(tiny_grid)
        queued = run_sweep(tiny_grid, backend="queue", backend_options={
            "lease_s": 5.0, "max_retries": 1, "compact_threshold": 2,
        })
        assert serial.records == queued.records

    def test_backend_options_rejected_without_backend(self, tiny_grid,
                                                      monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        with pytest.raises(ValueError, match="no backend was resolved"):
            run_sweep(tiny_grid, backend_options={"lease_s": 5.0})

    def test_backend_options_rejected_with_explicit_executor(self, tiny_grid):
        # a pre-built executor carries its own knobs; silently dropping
        # options alongside it would hide misconfiguration
        executor = ThreadExecutor(2)
        with pytest.raises(ValueError, match="cannot be combined"):
            run_sweep(tiny_grid, executor=executor,
                      backend_options={"lease_s": 5.0})
        executor.close()

    def test_caller_owned_executor_is_reused_not_closed(self, tiny_grid):
        executor = ThreadExecutor(2)
        first = run_sweep(tiny_grid, executor=executor)
        second = run_sweep(tiny_grid, executor=executor)
        assert first.records == second.records
        # still usable after the sweeps: run_sweep must not close it
        assert executor.map(len, [[1, 2]]) == [2]
        executor.close()

    def test_env_toggle_selects_backend(self, tiny_grid, monkeypatch):
        serial = run_sweep(tiny_grid)
        monkeypatch.setenv(BACKEND_ENV, "process")
        forced = run_sweep(tiny_grid)
        assert serial.records == forced.records

    def test_accuracy_sweep_backends_match(self):
        grid = AccuracySweepGrid(networks=("MLP-S",),
                                 read_noise_sigmas=(0.0, 0.02),
                                 train_epochs=1, num_images=32,
                                 batch_size=16, seed=5)
        serial = run_accuracy_sweep(grid)
        threaded = run_accuracy_sweep(grid, backend="thread", workers=2)
        processed = run_accuracy_sweep(grid, backend="process", workers=2)
        assert serial.records == threaded.records == processed.records

    def test_invalid_backend_rejected(self, tiny_grid):
        with pytest.raises(ValueError, match="unknown runtime backend"):
            run_sweep(tiny_grid, backend="gpu")


class TestHierarchyAxes:
    @pytest.fixture()
    def hierarchy_grid(self):
        return SweepGrid(
            networks=("MLP-S",),
            designs=("baseline_epcm", "tacitmap_epcm", "einsteinbarrier"),
            crossbar_sizes=(128,),
            wdm_capacities=(4,),
            vcores_per_ecore=(None, 2),
            ecores_per_tile=(None, 4),
            tiles_per_node=(None, 1),
            seed=17,
        )

    def test_axes_collapse_for_the_baseline(self, hierarchy_grid):
        points = hierarchy_grid.points()
        baseline = [p for p in points if p.design == "baseline_epcm"]
        tacitmap = [p for p in points if p.design == "tacitmap_epcm"]
        einstein = [p for p in points if p.design == "einsteinbarrier"]
        assert len(baseline) == 1
        assert baseline[0].hierarchy == (None, None, None)
        # 2 x 2 x 2 hierarchy combinations for the PUMA-like designs
        assert len(tacitmap) == 8
        assert len(einstein) == 8
        assert len({p.seed for p in points}) == len(points)

    def test_default_hierarchy_keeps_pre_extension_seeds(self):
        grid = SweepGrid(networks=("MLP-S",), designs=("einsteinbarrier",),
                         crossbar_sizes=(128,), wdm_capacities=(4,),
                         noise_sigmas=(0.05,), seed=21)
        point = grid.points()[0]
        assert point.seed == derive_seed(21, "MLP-S/einsteinbarrier/128/4/0.05")

    def test_records_resolve_hierarchy_and_provisioning(self, hierarchy_grid):
        result = run_sweep(hierarchy_grid)
        for record in result.records:
            assert record.vcores_required > 0
            assert record.nodes_required >= 1
            assert 0.0 < record.node_utilisation <= 1.0
            provisioned = (record.vcores_per_ecore * record.ecores_per_tile
                           * record.tiles_per_node * record.nodes_required)
            assert record.node_utilisation \
                == pytest.approx(record.vcores_required / provisioned)
        tacitmap = [r for r in result.records if r.design == "tacitmap_epcm"]
        # None components resolve to the factory default of 8
        assert {r.vcores_per_ecore for r in tacitmap} == {2, 8}
        assert {r.ecores_per_tile for r in tacitmap} == {4, 8}
        assert {r.tiles_per_node for r in tacitmap} == {1, 8}

    def test_smaller_nodes_raise_utilisation(self, hierarchy_grid):
        result = run_sweep(hierarchy_grid)
        for design in ("tacitmap_epcm", "einsteinbarrier"):
            picks = [r for r in result.records if r.design == design]
            default = next(r for r in picks if (r.vcores_per_ecore,
                                                r.ecores_per_tile,
                                                r.tiles_per_node) == (8, 8, 8))
            smallest = next(r for r in picks if (r.vcores_per_ecore,
                                                 r.ecores_per_tile,
                                                 r.tiles_per_node) == (2, 4, 1))
            assert smallest.node_utilisation >= default.node_utilisation

    def test_hierarchy_does_not_change_latency_or_energy(self, hierarchy_grid):
        result = run_sweep(hierarchy_grid)
        for design in ("tacitmap_epcm", "einsteinbarrier"):
            picks = [r for r in result.records if r.design == design]
            assert len({r.latency_s for r in picks}) == 1
            assert len({r.energy_j for r in picks}) == 1

    def test_hierarchy_reaches_model_and_cache_distinguishes(self):
        clear_sweep_caches()
        sized = get_accelerator_model("einsteinbarrier", vcores_per_ecore=2,
                                      tiles_per_node=1)
        default = get_accelerator_model("einsteinbarrier")
        assert sized is not default
        assert sized.config.vcores_per_ecore == 2
        assert sized.config.tiles_per_node == 1
        assert sized.config.ecores_per_tile == 8
        # the baseline has no hierarchy knob: the override collapses
        collapsed = get_accelerator_model("baseline_epcm", vcores_per_ecore=2)
        assert collapsed is get_accelerator_model("baseline_epcm")

    def test_deterministic_across_backends(self, hierarchy_grid):
        serial = run_sweep(hierarchy_grid)
        parallel = run_sweep(hierarchy_grid, workers=2)
        assert serial.records == parallel.records

    @pytest.mark.parametrize("kwargs", [
        {"vcores_per_ecore": ()},
        {"vcores_per_ecore": (0,)},
        {"ecores_per_tile": (-1,)},
        {"tiles_per_node": (0,)},
    ])
    def test_invalid_hierarchy_axes_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SweepGrid(**kwargs)
