"""Tests for the ablation sweeps and the reporting helpers."""

from __future__ import annotations

import pytest

from repro.eval.ablations import (
    sweep_adc_sharing,
    sweep_crossbar_size,
    sweep_wdm_capacity,
)
from repro.eval.reporting import format_ratio_summary, format_series, format_table


class TestWDMSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_wdm_capacity("CNN-S", capacities=(1, 4, 16))

    def test_one_point_per_capacity(self, sweep):
        assert [point.parameter for point in sweep] == [1.0, 4.0, 16.0]

    def test_latency_never_increases_with_k(self, sweep):
        latencies = [point.latency for point in sweep]
        assert latencies == sorted(latencies, reverse=True)

    def test_speedup_grows_with_k(self, sweep):
        speedups = [point.speedup_vs_baseline for point in sweep]
        assert speedups[-1] > speedups[0]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            sweep_wdm_capacity("MLP-S", capacities=(0,))


class TestCrossbarSizeSweep:
    def test_larger_arrays_help_the_proposed_designs(self):
        sweep = sweep_crossbar_size("MLP-S", sizes=(64, 256), design="tacitmap_epcm")
        assert sweep[-1].speedup_vs_baseline > sweep[0].speedup_vs_baseline

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            sweep_crossbar_size("MLP-S", design="tpu")

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            sweep_crossbar_size("MLP-S", sizes=(1,))


class TestADCSharingSweep:
    def test_more_sharing_means_more_latency(self):
        sweep = sweep_adc_sharing("CNN-S", columns_per_adc=(1, 8, 32))
        latencies = [point.latency for point in sweep]
        assert latencies == sorted(latencies)

    def test_energy_roughly_unchanged_by_sharing(self):
        sweep = sweep_adc_sharing("MLP-S", columns_per_adc=(1, 32))
        assert sweep[0].energy == pytest.approx(sweep[-1].energy, rel=0.05)

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            sweep_adc_sharing("MLP-S", design="baseline_epcm")

    def test_invalid_share_rejected(self):
        with pytest.raises(ValueError):
            sweep_adc_sharing("MLP-S", columns_per_adc=(0,))


class TestReporting:
    def test_table_contains_headers_and_values(self):
        table = format_table(["net", "x"], [["MLP-S", 1.5], ["CNN-L", 2.0]])
        assert "net" in table and "MLP-S" in table and "1.5" in table

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_series_formatting(self):
        line = format_series("speedup", [1, 2], [10.0, 20.0],
                             x_label="K", y_label="x")
        assert "speedup" in line and "(1, 10)" in line and "(2, 20)" in line

    def test_series_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series("s", [1, 2], [1.0])

    def test_ratio_summary(self):
        line = format_ratio_summary("avg", {"tacitmap": 78.0})
        assert "avg" in line and "tacitmap=78x" in line
