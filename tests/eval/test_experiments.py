"""Tests for the Fig. 7 / Fig. 8 experiment runners and headline numbers.

These are the closest thing to "does the reproduction reproduce the paper":
they assert the qualitative claims of the evaluation section (who wins,
roughly by how much, where the crossovers fall) on the full six-network
suite.  They are slower than unit tests but still run in a few seconds
because the models are analytical.
"""

from __future__ import annotations

import pytest

from repro.bnn.networks import list_networks
from repro.bnn.workload import extract_workload
from repro.bnn.networks import build_network
from repro.eval.experiments import headline_numbers, run_fig7, run_fig8


@pytest.fixture(scope="module")
def fig7():
    return run_fig7()


@pytest.fixture(scope="module")
def fig8():
    return run_fig8()


class TestFig7:
    def test_covers_all_six_networks(self, fig7):
        assert fig7.networks == list_networks()

    def test_every_design_beats_baseline_everywhere(self, fig7):
        """Fig. 7 observation 1: both proposed designs improve latency over
        Baseline-ePCM irrespective of the underlying network."""
        for design in ("tacitmap_epcm", "einsteinbarrier"):
            for improvement in fig7.improvements(design):
                assert improvement > 1.0

    def test_einsteinbarrier_beats_tacitmap_everywhere(self, fig7):
        for result in fig7.per_network:
            assert (
                result.latency["einsteinbarrier"] < result.latency["tacitmap_epcm"]
            )

    def test_improvement_is_network_dependent(self, fig7):
        """Fig. 7 observation 2: the improvement varies strongly from BNN to
        BNN (the paper reports a ~22x..~3113x spread for EinsteinBarrier)."""
        improvements = fig7.improvements("einsteinbarrier")
        assert max(improvements) / min(improvements) > 10

    def test_tacitmap_improvement_magnitude(self, fig7):
        """Paper: up to ~154x and ~78x on average.  The reproduction must land
        in the same decade (tens to low hundreds)."""
        assert 10 < fig7.average_improvement("tacitmap_epcm") < 400
        assert 50 < fig7.max_improvement("tacitmap_epcm") < 1000

    def test_einsteinbarrier_improvement_magnitude(self, fig7):
        """Paper: ~1205x average, ~3113x max; reproduction must reach the
        hundreds-to-thousands range with the max above the TacitMap max."""
        assert fig7.average_improvement("einsteinbarrier") > 100
        assert fig7.max_improvement("einsteinbarrier") > 1000
        assert (
            fig7.max_improvement("einsteinbarrier")
            > fig7.max_improvement("tacitmap_epcm")
        )

    def test_gpu_crossover(self, fig7):
        """Fig. 7 observation 4: Baseline-ePCM beats the GPU on the first CNN
        but loses to it on the large MLP."""
        ratios = fig7.gpu_vs_baseline()  # baseline latency / gpu latency
        assert ratios["CNN-S"] < 1.0   # baseline faster than GPU
        assert ratios["MLP-L"] > 1.0   # baseline slower than GPU

    def test_larger_networks_gain_more(self, fig7):
        """Fig. 7 observation 2: larger BNNs contain more parallel
        XNOR+Popcount operations, hence larger improvements."""
        by_network = dict(zip(fig7.networks, fig7.improvements("einsteinbarrier")))
        assert by_network["CNN-L"] > by_network["CNN-S"]
        assert by_network["MLP-L"] > by_network["MLP-S"]

    def test_subset_of_networks_supported(self):
        result = run_fig7(["MLP-S", "CNN-S"])
        assert result.networks == ["MLP-S", "CNN-S"]

    def test_precomputed_workloads_supported(self):
        workloads = {"MLP-S": extract_workload(build_network("MLP-S"))}
        result = run_fig7(["MLP-S"], workloads=workloads)
        assert result.networks == ["MLP-S"]


class TestFig8:
    def test_covers_all_six_networks(self, fig8):
        assert fig8.networks == list_networks()

    def test_tacitmap_epcm_costs_more_energy_on_average(self, fig8):
        """Fig. 8 observation 1: TacitMap-ePCM increases energy versus the
        baseline because of its power-hungry ADCs."""
        assert fig8.average_ratio("tacitmap_epcm") > 1.0

    def test_einsteinbarrier_beats_tacitmap_on_energy(self, fig8):
        """Fig. 8 observation 2: EinsteinBarrier consumes less energy than
        TacitMap-ePCM because it amortises the same periphery over K
        wavelengths.  In the reproduction this holds on average and on every
        network except the smallest CNN, where the transmitter overhead
        cannot amortise (documented in EXPERIMENTS.md)."""
        assert (
            fig8.average_ratio("einsteinbarrier")
            < fig8.average_ratio("tacitmap_epcm")
        )
        by_network = dict(zip(fig8.networks, fig8.per_network))
        for name in ("CNN-M", "CNN-L", "MLP-M", "MLP-L"):
            result = by_network[name]
            assert (
                result.energy["einsteinbarrier"] < result.energy["tacitmap_epcm"]
            ), name

    def test_einsteinbarrier_close_to_or_below_baseline(self, fig8):
        """Abstract: EinsteinBarrier keeps energy within ~60% of the CIM
        baseline; the reproduction must keep the average ratio near or below
        parity (and clearly below TacitMap-ePCM's)."""
        eb = fig8.average_ratio("einsteinbarrier")
        assert eb < 1.3
        assert eb < fig8.average_ratio("tacitmap_epcm")

    def test_large_cnn_shows_einsteinbarrier_energy_win(self, fig8):
        by_network = dict(zip(fig8.networks, fig8.ratios("einsteinbarrier")))
        assert by_network["CNN-L"] < 1.0


class TestHeadlineNumbers:
    def test_contains_all_keys(self, fig7, fig8):
        numbers = headline_numbers(fig7, fig8)
        assert set(numbers) == {
            "tacitmap_avg", "tacitmap_max",
            "einsteinbarrier_avg", "einsteinbarrier_max", "einsteinbarrier_min",
            "einsteinbarrier_over_tacitmap",
            "tacitmap_energy_ratio", "einsteinbarrier_energy_ratio",
        }

    def test_ordering_relations_hold(self, fig7, fig8):
        numbers = headline_numbers(fig7, fig8)
        assert numbers["einsteinbarrier_avg"] > numbers["tacitmap_avg"]
        assert numbers["einsteinbarrier_max"] >= numbers["einsteinbarrier_avg"]
        assert numbers["einsteinbarrier_min"] <= numbers["einsteinbarrier_avg"]
        assert numbers["einsteinbarrier_over_tacitmap"] > 1.0
        assert numbers["tacitmap_energy_ratio"] > 1.0
        assert (
            numbers["einsteinbarrier_energy_ratio"]
            < numbers["tacitmap_energy_ratio"]
        )


class TestWorkloadMemoisation:
    def test_memoised_default_matches_fresh_extraction(self, fig7):
        """Hoisting workload extraction through get_workload must not change
        any figure series: rerunning Fig. 7 with explicitly fresh (un-cached)
        extractions yields identical latencies and energies."""
        fresh_workloads = {
            name: extract_workload(build_network(name))
            for name in list_networks()
        }
        fresh = run_fig7(workloads=fresh_workloads)
        assert fresh.networks == fig7.networks
        for cached_result, fresh_result in zip(fig7.per_network, fresh.per_network):
            assert cached_result.latency == fresh_result.latency
            assert cached_result.energy == fresh_result.energy
