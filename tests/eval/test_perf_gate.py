"""Tests for the CI perf regression gate and its CLI wrapper."""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

from repro.eval.perf_gate import (
    check_artifacts,
    check_payload,
    effective_bounds,
    load_thresholds,
    resolve_metric,
)
from repro.eval.reporting import host_info

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


class TestResolveMetric:
    def test_nested_lookup(self):
        payload = {"a": {"b": {"c": 3.5}}}
        assert resolve_metric(payload, "a.b.c") == 3.5

    def test_missing_segments_return_none(self):
        payload = {"a": {"b": 1.0}}
        assert resolve_metric(payload, "a.c") is None
        assert resolve_metric(payload, "a.b.c") is None
        assert resolve_metric({}, "a") is None

    def test_non_numeric_leaves_return_none(self):
        assert resolve_metric({"a": "fast"}, "a") is None
        assert resolve_metric({"a": True}, "a") is None
        assert resolve_metric({"a": [1.0]}, "a") is None


class TestCheckPayload:
    def test_pass_fail_and_missing(self):
        payload = {"kernels": {"blas": {"speedup": 10.0}}}
        checks = check_payload("bench.json", payload, {
            "kernels.blas.speedup": 5.0,
            "kernels.packed.speedup": 5.0,
        })
        by_metric = {check.metric: check for check in checks}
        assert by_metric["kernels.blas.speedup"].passed
        assert not by_metric["kernels.packed.speedup"].passed
        assert by_metric["kernels.packed.speedup"].actual is None

    def test_regression_fails(self):
        payload = {"speedup": 4.9}
        checks = check_payload("bench.json", payload, {"speedup": 5.0})
        assert not checks[0].passed
        assert checks[0].actual == pytest.approx(4.9)

    def test_describe_lines(self):
        missing = check_payload("b.json", {}, {"x": 1.0})[0]
        assert "FAIL" in missing.describe() and "missing" in missing.describe()
        passing = check_payload("b.json", {"x": 2.0}, {"x": 1.0})[0]
        assert "ok" in passing.describe()


class TestBoundedThresholds:
    """Object-form bounds: {"min": x} floors and {"max": y} ceilings."""

    def test_max_bound_gates_latency_ceilings(self):
        payload = {"best": {"p99_ms": 12.0}}
        ok = check_payload("b.json", payload, {"best.p99_ms": {"max": 25.0}})[0]
        assert ok.passed
        breach = check_payload("b.json", payload,
                               {"best.p99_ms": {"max": 10.0}})[0]
        assert not breach.passed
        assert "maximum 10.000" in breach.describe()

    def test_min_object_form_matches_bare_number(self):
        payload = {"rps": 500.0}
        bare = check_payload("b.json", payload, {"rps": 400.0})[0]
        obj = check_payload("b.json", payload, {"rps": {"min": 400.0}})[0]
        assert bare.passed and obj.passed
        assert bare.minimum == obj.minimum == 400.0

    def test_min_and_max_band(self):
        thresholds = {"v": {"min": 1.0, "max": 2.0}}
        assert check_payload("b.json", {"v": 1.5}, thresholds)[0].passed
        assert not check_payload("b.json", {"v": 0.5}, thresholds)[0].passed
        assert not check_payload("b.json", {"v": 2.5}, thresholds)[0].passed

    def test_missing_metric_fails_max_only_bounds_too(self):
        check = check_payload("b.json", {}, {"v": {"max": 2.0}})[0]
        assert not check.passed and check.actual is None


class TestMulticoreBounds:
    """Host-conditional floors: "min_multicore" replaces "min" when the
    artifact's host header reports two or more effective CPUs."""

    BOUND = {"min": 0.95, "min_multicore": 1.3}

    def test_single_core_host_keeps_plain_min(self):
        payload = {"host": {"effective_cpus": 1}}
        assert effective_bounds(self.BOUND, payload) == (0.95, None)

    def test_multicore_host_raises_the_floor(self):
        payload = {"host": {"effective_cpus": 4}}
        assert effective_bounds(self.BOUND, payload) == (1.3, None)

    def test_missing_host_header_keeps_plain_min(self):
        # artifacts written before the header existed stay gated leniently
        assert effective_bounds(self.BOUND, {}) == (0.95, None)
        assert effective_bounds(self.BOUND, {"host": {}}) == (0.95, None)

    def test_bound_without_min_multicore_ignores_host(self):
        payload = {"host": {"effective_cpus": 8}}
        assert effective_bounds({"min": 0.95}, payload) == (0.95, None)
        assert effective_bounds(2.0, payload) == (2.0, None)

    def test_max_is_preserved_alongside_conditional_min(self):
        bound = {"min": 0.9, "max": 5.0, "min_multicore": 1.3}
        payload = {"host": {"effective_cpus": 2}}
        assert effective_bounds(bound, payload) == (1.3, 5.0)

    def test_check_payload_applies_conditional_floor(self):
        thresholds = {"parallel.speedup": self.BOUND}
        single = {"parallel": {"speedup": 1.0},
                  "host": {"effective_cpus": 1}}
        multi = {"parallel": {"speedup": 1.0},
                 "host": {"effective_cpus": 4}}
        assert check_payload("b.json", single, thresholds)[0].passed
        assert not check_payload("b.json", multi, thresholds)[0].passed

    def test_min_multicore_accepted_by_validation(self, tmp_path):
        path = tmp_path / "thresholds.json"
        spec = {"bench.json": {"a": {"min": 0.9, "min_multicore": 1.3}}}
        path.write_text(json.dumps(spec))
        assert load_thresholds(str(path)) == spec

    def test_non_numeric_min_multicore_rejected(self, tmp_path):
        path = tmp_path / "thresholds.json"
        path.write_text(json.dumps(
            {"bench.json": {"a": {"min_multicore": "fast"}}}))
        with pytest.raises(ValueError):
            load_thresholds(str(path))


class TestHostInfo:
    def test_reports_positive_cpu_counts(self):
        info = host_info()
        assert info["cpu_count"] >= 1
        assert info["effective_cpus"] >= 1
        assert info["effective_cpus"] <= info["cpu_count"]

    def test_json_serialisable(self):
        # the header is embedded verbatim into every BENCH_*.json payload
        assert json.loads(json.dumps(host_info())) == host_info()


class TestCheckArtifacts:
    def test_reads_artifacts_from_root(self, tmp_path):
        artifact = {"networks": {"CNN-M": {"speedup_vs_dense": 6.0}}}
        (tmp_path / "BENCH_x.json").write_text(json.dumps(artifact))
        checks = check_artifacts(str(tmp_path), {
            "BENCH_x.json": {"networks.CNN-M.speedup_vs_dense": 5.0},
        })
        assert len(checks) == 1 and checks[0].passed

    def test_missing_artifact_fails_all_its_checks(self, tmp_path):
        checks = check_artifacts(str(tmp_path), {
            "BENCH_absent.json": {"a": 1.0, "b": 2.0},
        })
        assert len(checks) == 2
        assert not any(check.passed for check in checks)

    @pytest.mark.parametrize("content", ['{"trunca', "[1, 2, 3]", ""])
    def test_corrupt_artifact_fails_cleanly(self, tmp_path, content):
        # a benchmark job killed mid-write must fail the gate, not crash it
        (tmp_path / "BENCH_bad.json").write_text(content)
        checks = check_artifacts(str(tmp_path), {
            "BENCH_bad.json": {"metric": 1.0},
        })
        assert len(checks) == 1
        assert not checks[0].passed
        assert checks[0].actual is None


class TestLoadThresholds:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "thresholds.json"
        spec = {"bench.json": {"a.b": 2.0}}
        path.write_text(json.dumps(spec))
        assert load_thresholds(str(path)) == spec

    def test_bounded_specs_roundtrip(self, tmp_path):
        path = tmp_path / "thresholds.json"
        spec = {"bench.json": {"a": {"min": 1.0, "max": 5.0},
                               "b": {"max": 2.0}, "c": 3.0}}
        path.write_text(json.dumps(spec))
        assert load_thresholds(str(path)) == spec

    @pytest.mark.parametrize("bad", [
        [],
        {"bench.json": {}},
        {"bench.json": []},
        {"bench.json": {"a": "fast"}},
        {"bench.json": {"a": True}},
        {"bench.json": {"a": {}}},
        {"bench.json": {"a": {"maximum": 2.0}}},
        {"bench.json": {"a": {"max": "slow"}}},
        {"bench.json": {"a": {"min": 3.0, "max": 1.0}}},
    ])
    def test_invalid_specs_rejected(self, bad, tmp_path):
        path = tmp_path / "thresholds.json"
        path.write_text(json.dumps(bad))
        with pytest.raises(ValueError):
            load_thresholds(str(path))

    def test_committed_thresholds_file_is_valid(self):
        path = os.path.join(REPO_ROOT, "benchmarks", "perf_thresholds.json")
        spec = load_thresholds(path)
        assert "BENCH_sweep.smoke.json" in spec
        assert "BENCH_inference.smoke.json" in spec
        assert "BENCH_serving.smoke.json" in spec
        serving = spec["BENCH_serving.smoke.json"]
        assert "max" in serving["best.p99_ms"]
        assert "min" in serving["best.requests_per_s"]
        chaos = spec["BENCH_chaos.smoke.json"]
        assert "min" in chaos["chaos.goodput_ratio"]
        assert "max" in chaos["chaos.mean_recovery_s"]
        assert "min" in chaos["chaos.restarts"]


class TestCli:
    def _load_cli(self):
        path = os.path.join(REPO_ROOT, "benchmarks", "check_perf_regression.py")
        spec = importlib.util.spec_from_file_location("check_perf_regression",
                                                      path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_exit_codes(self, tmp_path, capsys):
        cli = self._load_cli()
        artifact = {"metric": 4.0}
        (tmp_path / "bench.json").write_text(json.dumps(artifact))
        thresholds = tmp_path / "thresholds.json"
        thresholds.write_text(json.dumps({"bench.json": {"metric": 3.0}}))
        assert cli.main(["--thresholds", str(thresholds),
                         "--root", str(tmp_path)]) == 0
        assert "perf gate passed" in capsys.readouterr().out
        thresholds.write_text(json.dumps({"bench.json": {"metric": 5.0}}))
        assert cli.main(["--thresholds", str(thresholds),
                         "--root", str(tmp_path)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_only_restricts_the_gate_to_named_artifacts(self, tmp_path,
                                                        capsys):
        """--only lets a single-artifact CI job gate just its own bench
        without the other committed thresholds failing as missing."""
        cli = self._load_cli()
        (tmp_path / "present.json").write_text(json.dumps({"metric": 4.0}))
        thresholds = tmp_path / "thresholds.json"
        thresholds.write_text(json.dumps({
            "present.json": {"metric": 3.0},
            "absent.json": {"metric": 1.0},
        }))
        # the unrestricted gate fails on the missing sibling artifact…
        assert cli.main(["--thresholds", str(thresholds),
                         "--root", str(tmp_path)]) == 1
        capsys.readouterr()
        # …but --only scopes the run to the artifact this job produced
        assert cli.main(["--thresholds", str(thresholds),
                         "--root", str(tmp_path),
                         "--only", "present.json"]) == 0
        out = capsys.readouterr().out
        assert "perf gate passed: 1 checks" in out
        assert "absent.json" not in out

    def test_only_rejects_unknown_artifact_names(self, tmp_path, capsys):
        """A typo in --only must fail loudly, not silently gate nothing."""
        cli = self._load_cli()
        thresholds = tmp_path / "thresholds.json"
        thresholds.write_text(json.dumps({"bench.json": {"metric": 1.0}}))
        assert cli.main(["--thresholds", str(thresholds),
                         "--root", str(tmp_path),
                         "--only", "typo.json"]) == 2
        assert "typo.json" in capsys.readouterr().out


def test_cli_import_does_not_mutate_sys_path():
    """Regression: loading the gate CLI must not prepend benchmarks/ to
    the process-wide sys.path (top-level names like `record_trend` or
    `conftest` would shadow installed packages forever).  pytest itself
    may have benchmarks/ on sys.path from conftest collection, so the
    assertion is that the *load* leaves sys.path exactly as it found it."""
    import sys

    before = list(sys.path)
    path = os.path.join(REPO_ROOT, "benchmarks", "check_perf_regression.py")
    spec = importlib.util.spec_from_file_location("check_perf_regression",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert sys.path == before
    assert callable(module.format_delta)
