"""Tests for the electronic PCM device model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices.pcm import EPCMConfig, EPCMDeviceArray


class TestEPCMConfig:
    def test_default_on_off_ratio_large(self):
        config = EPCMConfig()
        assert config.on_off_ratio > 10

    def test_rejects_on_below_off(self):
        with pytest.raises(ValueError):
            EPCMConfig(g_on=1e-6, g_off=2e-6)

    def test_rejects_negative_g_off(self):
        with pytest.raises(ValueError):
            EPCMConfig(g_off=-1e-6)

    def test_rejects_invalid_sigma(self):
        with pytest.raises(ValueError):
            EPCMConfig(programming_sigma=1.5)

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ValueError):
            EPCMConfig(read_latency=0.0)


class TestEPCMDeviceArray:
    def test_program_and_read_back_bits(self, rng):
        array = EPCMDeviceArray(8, 8, rng=1)
        bits = rng.integers(0, 2, size=(8, 8))
        array.program(bits)
        assert np.array_equal(array.stored_bits, bits)

    def test_programmed_conductances_separate_states(self, rng):
        config = EPCMConfig(programming_sigma=0.02, read_noise_sigma=0.0)
        array = EPCMDeviceArray(16, 16, config=config, rng=2)
        bits = rng.integers(0, 2, size=(16, 16))
        array.program(bits)
        conductance = array.conductances(with_read_noise=False)
        threshold = (config.g_on + config.g_off) / 2
        recovered = (conductance > threshold).astype(np.int8)
        assert np.array_equal(recovered, bits)

    def test_read_before_program_raises(self):
        array = EPCMDeviceArray(4, 4)
        with pytest.raises(RuntimeError):
            array.conductances()

    def test_program_shape_mismatch_raises(self):
        array = EPCMDeviceArray(4, 4)
        with pytest.raises(ValueError):
            array.program(np.zeros((3, 4), dtype=np.int8) if True else None)

    def test_program_rejects_non_binary(self):
        array = EPCMDeviceArray(2, 2)
        with pytest.raises(ValueError):
            array.program(np.array([[0, 2], [1, 0]]))

    def test_program_cost_scales_with_rows(self):
        small = EPCMDeviceArray(4, 8).program(np.ones((4, 8), dtype=np.int8))
        large = EPCMDeviceArray(8, 8).program(np.ones((8, 8), dtype=np.int8))
        assert large["latency"] == pytest.approx(2 * small["latency"])
        assert large["energy"] == pytest.approx(2 * small["energy"])

    def test_drift_reduces_amorphous_conductance(self):
        config = EPCMConfig(programming_sigma=0.0, read_noise_sigma=0.0,
                            drift_nu_amorphous=0.1)
        array = EPCMDeviceArray(2, 2, config=config, rng=3)
        array.program(np.array([[0, 1], [0, 1]]))
        fresh = array.conductances(with_read_noise=False)
        aged = array.conductances(time_since_program=1e6, with_read_noise=False)
        # amorphous (bit 0) cells decay, crystalline cells do not
        assert np.all(aged[:, 0] < fresh[:, 0])
        assert np.allclose(aged[:, 1], fresh[:, 1])

    def test_negative_drift_time_rejected(self):
        array = EPCMDeviceArray(2, 2)
        array.program(np.zeros((2, 2), dtype=np.int8))
        with pytest.raises(ValueError):
            array.conductances(time_since_program=-1.0)

    def test_read_noise_perturbs_but_preserves_sign(self):
        config = EPCMConfig(programming_sigma=0.0, read_noise_sigma=0.02)
        array = EPCMDeviceArray(8, 8, config=config, rng=4)
        bits = np.ones((8, 8), dtype=np.int8)
        array.program(bits)
        noisy = array.conductances()
        clean = array.conductances(with_read_noise=False)
        assert not np.allclose(noisy, clean)
        assert np.all(noisy >= 0.0)

    def test_read_cost_validates_rows(self):
        array = EPCMDeviceArray(4, 4)
        array.program(np.zeros((4, 4), dtype=np.int8))
        with pytest.raises(ValueError):
            array.read_cost(0)
        with pytest.raises(ValueError):
            array.read_cost(5)
        cost = array.read_cost(4)
        assert cost["latency"] > 0 and cost["energy"] > 0

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            EPCMDeviceArray(0, 4)
