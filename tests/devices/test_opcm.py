"""Tests for the optical PCM device model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices.opcm import OPCMConfig, OPCMDeviceArray
from repro.devices.pcm import EPCMConfig


class TestOPCMConfig:
    def test_default_extinction_ratio_positive(self):
        assert OPCMConfig().extinction_ratio_db > 3.0

    def test_rejects_high_below_low(self):
        with pytest.raises(ValueError):
            OPCMConfig(t_high=0.1, t_low=0.5)

    def test_rejects_transmission_above_one(self):
        with pytest.raises(ValueError):
            OPCMConfig(t_high=1.5)

    def test_rejects_negative_insertion_loss(self):
        with pytest.raises(ValueError):
            OPCMConfig(insertion_loss_db=-0.1)

    def test_optical_read_is_faster_than_electronic(self):
        """The oPCM read latency must undercut the ePCM read latency —
        this is one of the two levers behind EinsteinBarrier's gain."""
        assert OPCMConfig().read_latency < EPCMConfig().read_latency


class TestOPCMDeviceArray:
    def test_program_and_read_back_bits(self, rng):
        array = OPCMDeviceArray(8, 8, rng=1)
        bits = rng.integers(0, 2, size=(8, 8))
        array.program(bits)
        assert np.array_equal(array.stored_bits, bits)

    def test_transmissions_separate_states(self, rng):
        config = OPCMConfig(programming_sigma=0.01, read_noise_sigma=0.0)
        array = OPCMDeviceArray(16, 16, config=config, rng=2)
        bits = rng.integers(0, 2, size=(16, 16))
        array.program(bits)
        transmission = array.transmissions(with_read_noise=False)
        threshold = (config.t_high + config.t_low) / 2
        assert np.array_equal((transmission > threshold).astype(np.int8), bits)

    def test_transmissions_bounded_in_unit_interval(self, rng):
        array = OPCMDeviceArray(8, 8, rng=3)
        array.program(rng.integers(0, 2, size=(8, 8)))
        transmission = array.transmissions()
        assert transmission.min() >= 0.0 and transmission.max() <= 1.0

    def test_read_before_program_raises(self):
        with pytest.raises(RuntimeError):
            OPCMDeviceArray(4, 4).transmissions()

    def test_program_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            OPCMDeviceArray(4, 4).program(np.zeros((4, 5), dtype=np.int8))

    def test_read_cost_validates_rows(self):
        array = OPCMDeviceArray(4, 4)
        array.program(np.zeros((4, 4), dtype=np.int8))
        with pytest.raises(ValueError):
            array.read_cost(10)
        assert array.read_cost(2)["latency"] > 0

    def test_read_energy_cheaper_than_epcm(self):
        """Per-cell read energy of the optical device is far below ePCM."""
        assert (
            OPCMConfig().read_energy_per_cell < EPCMConfig().read_energy_per_cell
        )
