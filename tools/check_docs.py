"""Docs gate: intra-repo links resolve and quoted CLI examples parse.

Two checks over ``README.md`` and ``docs/*.md``:

* **links** — every relative markdown link target exists in the repo
  (external ``http(s)``/``mailto`` links and pure ``#anchor`` links are
  skipped; a trailing ``#anchor`` on a file link is stripped).
* **stale examples** — every ``python ...`` invocation quoted in a
  fenced code block actually parses: ``python -m some.module ...`` must
  succeed as ``python -m some.module --help`` and ``python path/to.py
  ...`` must name an existing file whose ``--help`` succeeds.  Docs that
  advertise a CLI that no longer exists (or whose flags module fails to
  import) fail CI instead of rotting.

Run from the repo root: ``PYTHONPATH=src python tools/check_docs.py``.
"""

from __future__ import annotations

import os
import re
import shlex
import subprocess
import sys
from typing import Dict, Iterable, List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"^```")
_ENV_ASSIGNMENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*=\S*$")

#: placeholders allowed in quoted commands (substituted before parsing)
_PLACEHOLDER_RE = re.compile(r"<[^>]+>")


def doc_files() -> List[str]:
    """README.md plus every markdown file under docs/."""
    files = [os.path.join(REPO_ROOT, "README.md")]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs_dir):
        files.extend(
            os.path.join(docs_dir, name)
            for name in sorted(os.listdir(docs_dir))
            if name.endswith(".md")
        )
    return files


def check_links(path: str) -> List[str]:
    """Relative link targets of one markdown file that do not exist."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    errors = []
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), relative)
        )
        if not os.path.exists(resolved):
            errors.append(
                f"{os.path.relpath(path, REPO_ROOT)}: broken link "
                f"{target!r} (resolved to {os.path.relpath(resolved, REPO_ROOT)})"
            )
    return errors


def fenced_command_lines(path: str) -> Iterable[str]:
    """Logical lines inside fenced code blocks (continuations joined)."""
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    in_fence = False
    pending = ""
    for line in lines:
        if _FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            pending = ""
            continue
        if not in_fence:
            continue
        stripped = line.strip()
        if stripped.endswith("\\"):
            pending += stripped[:-1] + " "
            continue
        yield (pending + stripped).strip()
        pending = ""


def python_invocation(line: str) -> List[str]:
    """The ``python ...`` argv quoted on a doc line ([] when not one)."""
    line = line.lstrip("$ ").strip()
    if not line or line.startswith("#"):
        return []
    try:
        tokens = shlex.split(_PLACEHOLDER_RE.sub("PLACEHOLDER", line))
    except ValueError:
        return []
    while tokens and _ENV_ASSIGNMENT_RE.match(tokens[0]):
        tokens = tokens[1:]
    if not tokens or tokens[0] not in ("python", "python3"):
        return []
    return tokens


def help_target(tokens: List[str]) -> Tuple[str, List[str]]:
    """Map a quoted ``python`` argv to a ``--help`` probe.

    Returns ``(key, argv)`` where ``key`` deduplicates probes and an
    empty argv means "nothing to probe" (e.g. a bare ``python``).
    """
    if len(tokens) >= 3 and tokens[1] == "-m":
        module = tokens[2]
        return (f"-m {module}",
                [sys.executable, "-m", module, "--help"])
    if len(tokens) >= 2 and tokens[1].endswith(".py"):
        script = tokens[1]
        return (script, [sys.executable, script, "--help"])
    return ("", [])


def check_examples(paths: List[str]) -> List[str]:
    """Probe every distinct quoted CLI once; return failure messages."""
    probes: Dict[str, Tuple[List[str], str]] = {}
    for path in paths:
        for line in fenced_command_lines(path):
            tokens = python_invocation(line)
            if not tokens:
                continue
            key, argv = help_target(tokens)
            if argv and key not in probes:
                probes[key] = (argv, os.path.relpath(path, REPO_ROOT))
    errors = []
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    for key, (argv, source) in sorted(probes.items()):
        if argv[1] != "-m" and not os.path.exists(
                os.path.join(REPO_ROOT, argv[1])):
            errors.append(f"{source}: quoted script {key!r} does not exist")
            continue
        proc = subprocess.run(
            argv, cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=120,
        )
        if proc.returncode != 0:
            detail = (proc.stderr or proc.stdout).strip().splitlines()
            errors.append(
                f"{source}: quoted command `python {key}` fails --help "
                f"(rc {proc.returncode}): {detail[-1] if detail else ''}"
            )
        else:
            print(f"ok: python {key} --help  (quoted in {source})")
    return errors


def main() -> int:
    paths = doc_files()
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"missing doc files: {missing}", file=sys.stderr)
        return 1
    errors: List[str] = []
    for path in paths:
        errors.extend(check_links(path))
    errors.extend(check_examples(paths))
    if errors:
        print(f"\n{len(errors)} docs problem(s):", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 1
    print(f"\nchecked {len(paths)} file(s): links resolve, examples parse")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
