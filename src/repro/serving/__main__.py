"""Operator CLI: serve a workload under synthetic client load.

``python -m repro.serving`` builds a packed
:class:`~repro.bnn.model.InferenceEngine` for the chosen network, wraps
it in an :class:`~repro.serving.service.InferenceService`, drives it
with closed-loop client threads (each submits one image, waits for its
logits, repeats), and prints a machine-readable stats snapshot (one JSON
line) every ``--stats-interval-s``.  The run ends after ``--requests``
completions, after ``--duration-s`` seconds, or on SIGTERM/SIGINT —
whichever comes first — and always drains in-flight work gracefully
before printing the final snapshot.

The flush-policy knobs default from the ``REPRO_SERVING_MAX_BATCH`` /
``REPRO_SERVING_MAX_DELAY_MS`` environment toggles so a fleet can be
re-tuned without editing unit files; explicit flags win.  See
``docs/serving.md`` for the tuning guide.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
from typing import List, Optional

import numpy as np

from repro.bnn.model import InferenceEngine
from repro.bnn.networks import build_network, list_networks
from repro.serving.admission import CircuitBreaker, RateLimiter, RejectedError
from repro.serving.service import InferenceService
from repro.utils.rng import make_rng

#: environment defaults of the flush-policy knobs (flags win)
MAX_BATCH_ENV = "REPRO_SERVING_MAX_BATCH"
MAX_DELAY_ENV = "REPRO_SERVING_MAX_DELAY_MS"

#: distinct synthetic images the clients cycle through
_IMAGE_POOL = 128


def _env_default(name: str, fallback: float, cast) -> float:
    value = os.environ.get(name, "").strip()
    if not value:
        return fallback
    try:
        return cast(value)
    except ValueError as exc:
        raise SystemExit(f"{name}={value!r} is not a valid number") from exc


class _Client(threading.Thread):
    """Closed-loop synthetic client: submit, wait, think, repeat."""

    def __init__(self, index: int, service: InferenceService,
                 images: np.ndarray, stop: threading.Event,
                 budget: "_RequestBudget", think_s: float) -> None:
        super().__init__(name=f"repro-serving-client-{index}", daemon=True)
        self.service = service
        self.images = images
        self.stop_event = stop
        self.budget = budget
        self.think_s = think_s
        self.completed = 0
        self.rejected = 0
        self.errors = 0
        self._cursor = index  # de-phase the clients across the pool

    def run(self) -> None:
        while not self.stop_event.is_set() and self.budget.take():
            image = self.images[self._cursor % len(self.images)]
            self._cursor += 1
            try:
                self.service.submit(image).result(timeout=60.0)
                self.completed += 1
            except RejectedError:
                self.rejected += 1
                # admission said "not now": back off for one flush period
                self.stop_event.wait(self.service.batcher.max_delay_s or 1e-3)
            except Exception:  # noqa: BLE001 - keep driving under faults
                self.errors += 1
            if self.think_s > 0.0:
                self.stop_event.wait(self.think_s)


class _RequestBudget:
    """Thread-safe countdown of the total request budget (None =∞)."""

    def __init__(self, total: Optional[int]) -> None:
        self._remaining = total
        self._lock = threading.Lock()

    def take(self) -> bool:
        with self._lock:
            if self._remaining is None:
                return True
            if self._remaining <= 0:
                return False
            self._remaining -= 1
            return True


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--network", default="MLP-S", choices=list_networks(),
                        help="workload to serve (default: %(default)s)")
    parser.add_argument(
        "--max-batch", type=int,
        default=int(_env_default(MAX_BATCH_ENV, 32, int)),
        help=f"flush when this many requests are queued (default: "
             f"%(default)s, env {MAX_BATCH_ENV})")
    parser.add_argument(
        "--max-delay-ms", type=float,
        default=_env_default(MAX_DELAY_ENV, 5.0, float),
        help=f"flush when the oldest request waited this long (default: "
             f"%(default)s, env {MAX_DELAY_ENV})")
    parser.add_argument("--queue-capacity", type=int, default=256,
                        help="bounded request-queue size (default: %(default)s)")
    parser.add_argument("--deadline-budget-ms", type=float, default=None,
                        help="fast-reject when estimated wait exceeds this "
                             "(default: disabled)")
    parser.add_argument("--rate", type=float, default=None,
                        help="token-bucket rate limit, requests/sec "
                             "(default: unlimited)")
    parser.add_argument("--burst", type=int, default=None,
                        help="token-bucket burst size (default: ceil(rate))")
    parser.add_argument("--breaker-failures", type=int, default=3,
                        help="consecutive engine failures tripping the "
                             "circuit breaker (default: %(default)s)")
    parser.add_argument("--breaker-p99-ms", type=float, default=None,
                        help="p99 latency tripping the breaker (default: off)")
    parser.add_argument("--breaker-reset-s", type=float, default=5.0,
                        help="breaker cool-down before half-open probes "
                             "(default: %(default)s)")
    parser.add_argument("--clients", type=int, default=4,
                        help="closed-loop client threads (default: %(default)s)")
    parser.add_argument("--requests", type=int, default=512,
                        help="total request budget across clients; 0 means "
                             "unlimited (default: %(default)s)")
    parser.add_argument("--duration-s", type=float, default=None,
                        help="stop after this many seconds (default: until "
                             "the request budget is spent)")
    parser.add_argument("--think-ms", type=float, default=0.0,
                        help="per-client pause between requests (default: 0)")
    parser.add_argument("--stats-interval-s", type=float, default=1.0,
                        help="seconds between stats snapshots (default: "
                             "%(default)s)")
    parser.add_argument("--flip-rate", type=float, default=0.0,
                        help="per-popcount bit-flip rate of the engine "
                             "(default: 0 — bit-exact)")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed of the synthetic images and flip noise")
    parser.add_argument("--pipeline", default=None,
                        choices=["auto", "on", "off"],
                        help="stream flushed micro-batches through the "
                             "engine's stage pipeline (default: classic "
                             "single-chunk flushes)")
    parser.add_argument("--pipeline-chunk", type=int, default=None,
                        help="rows per streaming chunk (default: flush "
                             "size / 4)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.clients < 1:
        raise SystemExit("--clients must be >= 1")
    if args.requests < 0:
        raise SystemExit("--requests must be non-negative")

    model = build_network(args.network)
    engine = InferenceEngine(model, flip_rate=args.flip_rate, seed=args.seed)
    rng = make_rng(args.seed)
    images = rng.uniform(-1.0, 1.0,
                         size=(_IMAGE_POOL, *model.input_shape))

    limiter = RateLimiter(args.rate, args.burst) if args.rate else None
    breaker = CircuitBreaker(
        failure_threshold=args.breaker_failures,
        reset_timeout_s=args.breaker_reset_s,
        p99_threshold_ms=args.breaker_p99_ms,
    )
    service = InferenceService(
        engine, max_batch=args.max_batch, max_delay_ms=args.max_delay_ms,
        queue_capacity=args.queue_capacity,
        deadline_budget_ms=args.deadline_budget_ms,
        rate_limiter=limiter, circuit_breaker=breaker,
        pipeline=args.pipeline, pipeline_chunk=args.pipeline_chunk,
    )
    print(f"serving {args.network}: max_batch={args.max_batch} "
          f"max_delay_ms={args.max_delay_ms:g} "
          f"queue_capacity={args.queue_capacity} clients={args.clients}",
          flush=True)

    stop = threading.Event()

    def _handle_signal(signum, _frame) -> None:
        print(f"signal {signal.Signals(signum).name}: draining...",
              flush=True)
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, _handle_signal)

    budget = _RequestBudget(args.requests if args.requests > 0 else None)
    clients = [
        _Client(index, service, images, stop, budget,
                think_s=args.think_ms / 1e3)
        for index in range(args.clients)
    ]
    started = time.monotonic()
    for client in clients:
        client.start()

    deadline = (started + args.duration_s
                if args.duration_s is not None else None)
    try:
        while any(client.is_alive() for client in clients):
            if deadline is not None and time.monotonic() >= deadline:
                stop.set()
            for client in clients:
                client.join(timeout=args.stats_interval_s / len(clients))
            if any(client.is_alive() for client in clients):
                print(json.dumps(service.stats(), sort_keys=True), flush=True)
    finally:
        stop.set()
        for client in clients:
            client.join(timeout=30.0)
        service.close(drain=True, timeout=30.0)

    final = service.stats()
    print(json.dumps(final, sort_keys=True), flush=True)
    completed = sum(client.completed for client in clients)
    rejected = sum(client.rejected for client in clients)
    errors = sum(client.errors for client in clients)
    elapsed = time.monotonic() - started
    print(f"done: {completed} completed, {rejected} rejected, "
          f"{errors} errors in {elapsed:.2f}s "
          f"({completed / max(elapsed, 1e-9):.1f} req/s)", flush=True)
    return 0 if errors == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
