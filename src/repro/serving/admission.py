"""Admission control and robustness for the serving front door.

Three independent gates run, cheapest first, before a request may enter
the micro-batch queue (the adaptation of the ``aetherops`` queue idiom —
``queue_health`` / ``estimate_wait_time`` / ``RateLimiter`` /
``CircuitBreaker`` — to this repo's packed-inference serving path):

1. :class:`CircuitBreaker` — sheds every request while the engine is
   erroring or the service's p99 latency has breached its threshold,
   instead of queueing work that is doomed to time out.  Classic three
   states: *closed* (healthy), *open* (shedding), *half-open* (after a
   cool-down, a limited number of probe requests test recovery).
2. :class:`RateLimiter` — a token bucket smoothing bursts to a sustained
   requests/sec budget.
3. Wait-budget fast-reject — :func:`estimate_wait_s` projects how long a
   new request would sit in the queue from the current depth, the EWMA
   throughput and the flush deadline; when that exceeds the configured
   deadline budget the request is rejected *now*, at submit, rather than
   after burning its latency budget in the queue (bounded-queue
   admission control).

Every rejection raises a :class:`RejectedError` subclass carrying a
machine-readable ``reason`` that the metrics count per reason.  All
components take an injectable monotonic ``clock`` so the tests drive
state transitions deterministically.
"""

from __future__ import annotations

import math
import random
import threading
import time
from typing import Callable, Optional

from repro.runtime.resilience import BackoffPolicy, decorrelated_jitter

#: circuit-breaker state names (exposed via :attr:`CircuitBreaker.state`)
CIRCUIT_CLOSED = "closed"
CIRCUIT_OPEN = "open"
CIRCUIT_HALF_OPEN = "half-open"


class RejectedError(RuntimeError):
    """A request was refused admission; ``reason`` keys the metrics."""

    reason = "rejected"


class QueueFullError(RejectedError):
    """The bounded request queue is at capacity."""

    reason = "queue_full"


class RateLimitedError(RejectedError):
    """The token bucket is empty — the caller exceeded its rate budget."""

    reason = "rate_limited"


class CircuitOpenError(RejectedError):
    """The circuit breaker is shedding load (engine errors / p99 breach)."""

    reason = "circuit_open"


class DeadlineError(RejectedError):
    """Estimated queue wait exceeds the request's deadline budget."""

    reason = "deadline"


class ServiceClosedError(RejectedError):
    """The service is draining or closed; no new work is accepted."""

    reason = "closed"


class RateLimiter:
    """Token-bucket rate limiter: sustained ``rate_per_s``, burst ``burst``.

    The bucket starts full and refills continuously; :meth:`try_acquire`
    never blocks — serving rejects instead of queueing at the rate gate,
    so a slow client cannot grow an invisible second queue.
    """

    def __init__(self, rate_per_s: float, burst: Optional[int] = None, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate_per_s <= 0.0:
            raise ValueError("rate_per_s must be positive")
        self.rate_per_s = float(rate_per_s)
        self.burst = int(burst) if burst is not None else max(
            1, int(math.ceil(rate_per_s)))
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = float(self.burst)
        self._last_refill = clock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_refill
        if elapsed > 0.0:
            self._tokens = min(float(self.burst),
                               self._tokens + elapsed * self.rate_per_s)
            self._last_refill = now

    def try_acquire(self, tokens: int = 1) -> bool:
        """Take ``tokens`` if available; never blocks."""
        if tokens < 1:
            raise ValueError("tokens must be >= 1")
        now = self._clock()
        with self._lock:
            self._refill(now)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def available(self) -> float:
        """Current token count (after refill) — a gauge, not a guarantee."""
        now = self._clock()
        with self._lock:
            self._refill(now)
            return self._tokens

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RateLimiter(rate_per_s={self.rate_per_s}, burst={self.burst})"


class CircuitBreaker:
    """Load shedding on engine failures or a p99 latency breach.

    *Closed* admits everything.  ``failure_threshold`` consecutive engine
    failures — or any :meth:`record_p99` observation above
    ``p99_threshold_ms`` — trip it *open*: every admission is refused for
    ``reset_timeout_s``.  The first ``half_open_probes`` admissions after
    the cool-down pass through as probes (*half-open*); a recorded
    success closes the breaker, a failure (or another p99 breach) re-opens
    it and restarts the cool-down.

    The batcher reports outcomes per flushed micro-batch:
    :meth:`record_success` / :meth:`record_failure` after each engine
    call, and :meth:`record_p99` with the streaming percentile once the
    latency window holds enough samples to be meaningful.

    ``cooldown_backoff`` (a
    :class:`~repro.runtime.resilience.BackoffPolicy`) makes repeated
    failed recoveries *grow* the cool-down: each half-open→open re-trip
    draws the next cool-down from the decorrelated-jitter schedule
    seeded off the current one, so a persistently broken engine is
    probed ever less often instead of at a fixed cadence.  A recorded
    success — or a fresh trip from *closed* (a new outage, not a failed
    recovery) — resets the cool-down to ``reset_timeout_s``.  Without a
    policy the cool-down stays fixed (the pre-existing behaviour).
    """

    def __init__(self, *, failure_threshold: int = 3,
                 reset_timeout_s: float = 5.0,
                 p99_threshold_ms: Optional[float] = None,
                 half_open_probes: int = 1,
                 cooldown_backoff: Optional[BackoffPolicy] = None,
                 cooldown_rng: Optional[random.Random] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0.0:
            raise ValueError("reset_timeout_s must be positive")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        if p99_threshold_ms is not None and p99_threshold_ms <= 0.0:
            raise ValueError("p99_threshold_ms must be positive")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self.p99_threshold_ms = p99_threshold_ms
        self.half_open_probes = int(half_open_probes)
        self.cooldown_backoff = cooldown_backoff
        self._cooldown_rng = cooldown_rng
        self._cooldown_s = float(reset_timeout_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CIRCUIT_CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        self._trips = 0
        self._last_trip_cause: Optional[str] = None

    @property
    def state(self) -> str:
        """Current state (recomputes open→half-open on the clock)."""
        with self._lock:
            self._maybe_half_open(self._clock())
            return self._state

    @property
    def trips(self) -> int:
        """How many times the breaker has opened since construction."""
        with self._lock:
            return self._trips

    @property
    def last_trip_cause(self) -> Optional[str]:
        """``"failures"`` or ``"p99"`` — whatever last opened the breaker."""
        with self._lock:
            return self._last_trip_cause

    @property
    def current_cooldown_s(self) -> float:
        """The cool-down the breaker will observe for its current/next open."""
        with self._lock:
            return self._cooldown_s

    def _maybe_half_open(self, now: float) -> None:
        if (self._state == CIRCUIT_OPEN and self._opened_at is not None
                and now - self._opened_at >= self._cooldown_s):
            self._state = CIRCUIT_HALF_OPEN
            self._probes_in_flight = 0

    def _trip(self, now: float, cause: str) -> None:
        if self._state == CIRCUIT_HALF_OPEN and self.cooldown_backoff is not None:
            # A failed recovery: grow the cool-down (decorrelated jitter)
            # so a persistently broken engine gets probed less often.
            self._cooldown_s = decorrelated_jitter(
                self.cooldown_backoff, self._cooldown_s, self._cooldown_rng)
        else:
            self._cooldown_s = self.reset_timeout_s
        self._state = CIRCUIT_OPEN
        self._opened_at = now
        self._trips += 1
        self._last_trip_cause = cause
        self._probes_in_flight = 0

    def allow(self) -> bool:
        """Whether one admission may pass right now (counts probes)."""
        now = self._clock()
        with self._lock:
            self._maybe_half_open(now)
            if self._state == CIRCUIT_CLOSED:
                return True
            if self._state == CIRCUIT_HALF_OPEN:
                if self._probes_in_flight < self.half_open_probes:
                    self._probes_in_flight += 1
                    return True
                return False
            return False

    def record_success(self) -> None:
        """An engine call (or probe) succeeded — close from half-open."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state == CIRCUIT_HALF_OPEN:
                self._state = CIRCUIT_CLOSED
                self._probes_in_flight = 0
                self._cooldown_s = self.reset_timeout_s

    def record_failure(self) -> None:
        """An engine call failed — trip after the consecutive threshold."""
        now = self._clock()
        with self._lock:
            self._maybe_half_open(now)
            self._consecutive_failures += 1
            if self._state == CIRCUIT_HALF_OPEN:
                self._trip(now, "failures")
            elif (self._state == CIRCUIT_CLOSED
                  and self._consecutive_failures >= self.failure_threshold):
                self._trip(now, "failures")

    def record_p99(self, p99_ms: Optional[float]) -> None:
        """Feed the streaming p99; above the threshold trips the breaker."""
        if self.p99_threshold_ms is None or p99_ms is None:
            return
        now = self._clock()
        with self._lock:
            self._maybe_half_open(now)
            if (p99_ms > self.p99_threshold_ms
                    and self._state in (CIRCUIT_CLOSED, CIRCUIT_HALF_OPEN)):
                self._trip(now, "p99")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CircuitBreaker(state={self.state!r}, "
                f"failure_threshold={self.failure_threshold}, "
                f"reset_timeout_s={self.reset_timeout_s})")


def estimate_wait_s(queue_depth: int, *, max_batch: int, max_delay_s: float,
                    ewma_rps: float) -> float:
    """Projected queue wait of the *next* admitted request, in seconds.

    Two independent projections, the larger wins (pessimism keeps the
    fast-reject honest under both failure shapes):

    * **throughput-based** — ``depth / ewma_rps``: how long the backlog
      takes to drain at the currently observed service rate (0 until the
      EWMA has data);
    * **flush-policy-based** — ``ceil((depth + 1) / max_batch) *
      max_delay_s``: even an idle service holds a request up to one
      deadline per batch ahead of it, so this floor applies before any
      throughput has been observed.
    """
    if queue_depth < 0:
        raise ValueError("queue_depth must be non-negative")
    batches_ahead = (queue_depth + 1 + max(max_batch, 1) - 1) // max(max_batch, 1)
    policy_bound = batches_ahead * max(max_delay_s, 0.0)
    throughput_bound = queue_depth / ewma_rps if ewma_rps > 0.0 else 0.0
    return max(policy_bound, throughput_bound)
