"""Online inference serving: micro-batching, backpressure, observability.

The serving layer turns the repository's batch-oriented packed inference
path (:class:`repro.bnn.model.InferenceEngine`) into a long-lived,
thread-based front door for concurrent single-image clients — the
accelerator modelled here amortises its dense-prefix and ADC costs
across packed batches, so coalescing request traffic into
deadline-flushed micro-batches is what the hardware economics want:

* :mod:`repro.serving.batcher` — :class:`MicroBatcher`: bounded request
  queue, a dispatcher thread flushing size- or deadline-triggered
  batches through ``forward_batch``, futures fanning results back out.
* :mod:`repro.serving.admission` — backpressure and robustness:
  wait-budget fast-reject, token-bucket :class:`RateLimiter`,
  three-state :class:`CircuitBreaker`, the typed rejection errors.
* :mod:`repro.serving.metrics` — :class:`ServingMetrics`: per-request
  monotonic timestamps, streaming p50/p95/p99, queue/occupancy gauges,
  EWMA throughput, one machine-readable ``stats()`` snapshot.
* :mod:`repro.serving.service` — :class:`InferenceService` composing
  the three, and the graceful-drain lifecycle.
* ``python -m repro.serving`` — the operator CLI: serve a workload
  under synthetic client load and stream stats snapshots
  (``docs/serving.md`` is the runbook).

``benchmarks/bench_serving.py`` sweeps the flush policy into
``BENCH_serving.json`` and CI gates its smoke p99/rps via
``benchmarks/perf_thresholds.json``.
"""

from repro.serving.admission import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineError,
    QueueFullError,
    RateLimitedError,
    RateLimiter,
    RejectedError,
    ServiceClosedError,
    estimate_wait_s,
)
from repro.serving.batcher import FlushRecord, MicroBatcher
from repro.serving.metrics import RequestTimestamps, ServingMetrics
from repro.serving.service import InferenceService

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineError",
    "FlushRecord",
    "InferenceService",
    "MicroBatcher",
    "QueueFullError",
    "RateLimitedError",
    "RateLimiter",
    "RejectedError",
    "RequestTimestamps",
    "ServiceClosedError",
    "ServingMetrics",
    "estimate_wait_s",
]
