"""The assembled serving front door: admission → micro-batcher → engine.

:class:`InferenceService` is what operators run (and what
``python -m repro.serving`` wraps): one compiled
:class:`~repro.bnn.model.InferenceEngine`, one
:class:`~repro.serving.batcher.MicroBatcher`, one
:class:`~repro.serving.metrics.ServingMetrics`, and the admission gates
of :mod:`repro.serving.admission` composed in front of ``submit`` in
cheapest-first order:

1. closed check (draining services accept nothing),
2. circuit breaker (shed while the engine errors or p99 is breached),
3. token-bucket rate limiter,
4. wait-budget fast-reject (estimated queue wait vs the deadline
   budget),
5. the batcher's own bounded-queue capacity check.

Every gate raises a distinct
:class:`~repro.serving.admission.RejectedError` subclass and is counted
per reason in the metrics, so backpressure is observable, not silent.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from typing import Callable, Dict, Optional

import numpy as np

from repro.serving.admission import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineError,
    RateLimitedError,
    RateLimiter,
    RejectedError,
    ServiceClosedError,
    estimate_wait_s,
)
from repro.serving.batcher import MicroBatcher
from repro.serving.metrics import ServingMetrics

#: streaming p99 is only fed to the breaker once the window holds this
#: many samples — a handful of warm-up requests must not trip it
DEFAULT_MIN_P99_SAMPLES = 32


class InferenceService:
    """Long-lived online inference over one shared packed engine.

    Parameters
    ----------
    engine:
        The compiled :class:`~repro.bnn.model.InferenceEngine` (or any
        object honouring its ``forward_batch`` contract).
    max_batch / max_delay_ms / queue_capacity:
        The flush policy and queue bound, forwarded to
        :class:`~repro.serving.batcher.MicroBatcher`.
    deadline_budget_ms:
        Fast-reject budget: a submission whose *estimated* queue wait
        (see :func:`~repro.serving.admission.estimate_wait_s`) exceeds
        this is refused immediately.  ``None`` disables the gate.
    rate_limiter / circuit_breaker:
        Optional :class:`~repro.serving.admission.RateLimiter` /
        :class:`~repro.serving.admission.CircuitBreaker` instances; both
        gates are skipped when omitted.  The breaker is wired to the
        batcher's per-flush outcomes and to the streaming p99.
    min_p99_samples:
        Latency-window population required before p99 feeds the breaker.
    metrics:
        Injectable :class:`~repro.serving.metrics.ServingMetrics`.
    clock:
        Injectable monotonic clock, shared with every component built
        here.
    pipeline / pipeline_chunk:
        Streaming-pipeline knobs forwarded to
        :class:`~repro.serving.batcher.MicroBatcher`: when ``pipeline``
        is set, flushed micro-batches are split into
        ``pipeline_chunk``-row chunks that stream through the engine's
        stage pipeline instead of blocking on the full plan.
    """

    def __init__(self, engine, *, max_batch: int = 32,
                 max_delay_ms: float = 5.0, queue_capacity: int = 256,
                 deadline_budget_ms: Optional[float] = None,
                 rate_limiter: Optional[RateLimiter] = None,
                 circuit_breaker: Optional[CircuitBreaker] = None,
                 min_p99_samples: int = DEFAULT_MIN_P99_SAMPLES,
                 metrics: Optional[ServingMetrics] = None,
                 clock: Callable[[], float] = time.monotonic,
                 pipeline: Optional[str] = None,
                 pipeline_chunk: Optional[int] = None) -> None:
        if deadline_budget_ms is not None and deadline_budget_ms <= 0.0:
            raise ValueError("deadline_budget_ms must be positive")
        self.engine = engine
        self.metrics = metrics if metrics is not None else \
            ServingMetrics(clock=clock)
        self.rate_limiter = rate_limiter
        self.circuit_breaker = circuit_breaker
        self.deadline_budget_s = (float(deadline_budget_ms) / 1e3
                                  if deadline_budget_ms is not None else None)
        self.min_p99_samples = int(min_p99_samples)
        self.batcher = MicroBatcher(
            engine, max_batch=max_batch, max_delay_ms=max_delay_ms,
            queue_capacity=queue_capacity, metrics=self.metrics,
            after_batch=self._after_batch, clock=clock,
            pipeline=pipeline, pipeline_chunk=pipeline_chunk,
        )

    # ------------------------------------------------------------------ #
    # Breaker feedback from the dispatcher
    # ------------------------------------------------------------------ #
    def _after_batch(self, ok: bool) -> None:
        breaker = self.circuit_breaker
        if breaker is None:
            return
        if ok:
            breaker.record_success()
            breaker.record_p99(self.metrics.p99_ms(self.min_p99_samples))
        else:
            breaker.record_failure()

    # ------------------------------------------------------------------ #
    # Client surface
    # ------------------------------------------------------------------ #
    def submit(self, image: np.ndarray) -> Future:
        """Admit one image and return the future of its logits row.

        Raises a :class:`~repro.serving.admission.RejectedError`
        subclass when any admission gate refuses; each rejection is
        counted per reason in :meth:`stats`.
        """
        try:
            if self.batcher.closed:
                raise ServiceClosedError("the service is closed")
            if self.circuit_breaker is not None \
                    and not self.circuit_breaker.allow():
                raise CircuitOpenError(
                    f"circuit open "
                    f"(cause: {self.circuit_breaker.last_trip_cause})"
                )
            if self.rate_limiter is not None \
                    and not self.rate_limiter.try_acquire():
                raise RateLimitedError(
                    f"over the {self.rate_limiter.rate_per_s:g} req/s budget"
                )
            if self.deadline_budget_s is not None:
                estimate = self.estimate_wait_s()
                if estimate > self.deadline_budget_s:
                    raise DeadlineError(
                        f"estimated wait {estimate * 1e3:.1f} ms exceeds the "
                        f"{self.deadline_budget_s * 1e3:.1f} ms budget"
                    )
            return self.batcher.submit(image)
        except RejectedError as exc:
            self.metrics.record_reject(exc.reason)
            raise

    def predict(self, image: np.ndarray, *,
                timeout: Optional[float] = None) -> int:
        """Blocking convenience: submit one image, return its arg-max."""
        logits = self.submit(image).result(timeout=timeout)
        return int(np.argmax(logits))

    def estimate_wait_s(self) -> float:
        """Projected queue wait of the next admitted request."""
        return estimate_wait_s(
            self.batcher.queue_depth(),
            max_batch=self.batcher.max_batch,
            max_delay_s=self.batcher.max_delay_s,
            ewma_rps=self.metrics.ewma_throughput_rps(),
        )

    def stats(self) -> Dict[str, object]:
        """The metrics snapshot plus admission/backpressure state."""
        snapshot = self.metrics.stats()
        admission: Dict[str, object] = {
            "queue_capacity": self.batcher.queue_capacity,
            "max_batch": self.batcher.max_batch,
            "max_delay_ms": self.batcher.max_delay_s * 1e3,
            "deadline_budget_ms": (self.deadline_budget_s * 1e3
                                   if self.deadline_budget_s is not None
                                   else None),
            "estimated_wait_ms": self.estimate_wait_s() * 1e3,
        }
        if self.rate_limiter is not None:
            admission["rate_limiter"] = {
                "rate_per_s": self.rate_limiter.rate_per_s,
                "burst": self.rate_limiter.burst,
                "tokens": self.rate_limiter.available(),
            }
        if self.circuit_breaker is not None:
            admission["circuit_breaker"] = {
                "state": self.circuit_breaker.state,
                "trips": self.circuit_breaker.trips,
                "last_trip_cause": self.circuit_breaker.last_trip_cause,
            }
        snapshot["admission"] = admission
        return snapshot

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, *, drain: bool = True,
              timeout: Optional[float] = None) -> None:
        """Stop admitting; drain (default) or fail the queued requests."""
        self.batcher.close(drain=drain, timeout=timeout)

    @property
    def closed(self) -> bool:
        return self.batcher.closed

    def __enter__(self) -> "InferenceService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"InferenceService({self.batcher!r}, "
                f"breaker={self.circuit_breaker is not None}, "
                f"limiter={self.rate_limiter is not None})")
