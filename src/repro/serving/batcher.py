"""Micro-batching front door over :class:`~repro.bnn.model.InferenceEngine`.

Concurrent producers call :meth:`MicroBatcher.submit` with one image
each; a single dispatcher thread coalesces the bounded request queue
into packed micro-batches and runs each through
``engine.forward_batch(batch, batch_size=len(batch))`` — one contiguous
chunk, exactly as a direct caller would — then fans the per-request rows
back out through :class:`concurrent.futures.Future` objects.  With the
opt-in ``pipeline=`` mode each flush is instead split into
``pipeline_chunk``-row chunks that stream through the engine's stage
pipeline (:mod:`repro.bnn.pipeline`), overlapping the dense prefix of
one chunk with the binary body of the previous one; the flush log
records the chunk size so any served batch replays byte-for-byte.

A flush fires when either

* **size** — ``max_batch`` requests are waiting (throughput bound), or
* **deadline** — the *oldest* queued request has waited ``max_delay_ms``
  (latency bound), or
* **drain** — the batcher is closing and flushes whatever remains.

Transport exactness is the core guarantee, and it is property-tested:
the rows a future resolves to are byte-identical to calling
``engine.forward_batch`` directly on the flushed stack (the batcher adds
zero numerical artifacts, flip-noise engines included).  Because the
engine derives flip-noise streams from chunk offsets and the dense
first/last layers inherit BLAS's shape-dependent rounding, *logits* may
differ in the last ulp between different flush compositions — arg-max
predictions are composition-independent in practice, which is the
cross-policy property the serving tests pin down.  The
:meth:`flush_log` records which requests shared each batch so tests (and
operators) can replay any served batch directly.

The batcher is transport only: admission control (queue budget
fast-reject, rate limiting, circuit breaking) lives in
:mod:`repro.serving.admission` and is composed in front of ``submit`` by
:class:`repro.serving.service.InferenceService`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.admission import QueueFullError, ServiceClosedError
from repro.serving.metrics import RequestTimestamps, ServingMetrics

#: flush triggers recorded into the metrics and the flush log
TRIGGER_SIZE = "size"
TRIGGER_DEADLINE = "deadline"
TRIGGER_DRAIN = "drain"

#: default bound of the in-memory flush log (old entries age out)
DEFAULT_FLUSH_LOG = 256

#: chunks a flushed batch is split into when the streaming pipeline is
#: enabled and no explicit ``pipeline_chunk`` was given: enough in-flight
#: chunks to keep every stage busy without shrinking chunks into
#: per-chunk-overhead territory
DEFAULT_PIPELINE_CHUNKS = 4


@dataclass(frozen=True)
class FlushRecord:
    """One flushed micro-batch, for replay/debugging.

    ``request_ids`` are the monotonically increasing ids assigned at
    submit (also set as the ``request_id`` attribute of each returned
    future), in batch-row order — row ``i`` of the flushed stack was
    request ``request_ids[i]``.

    ``chunk`` is the engine chunk size the flush ran with: ``None`` for
    the classic one-contiguous-chunk call, the streaming chunk size when
    the batcher's pipeline mode was enabled.  Replaying
    ``engine.forward_batch(stack, batch_size=chunk or size)`` reproduces
    the served rows byte-for-byte either way (the pipeline is bit-exact
    with the serial path at the same chunking).
    """

    request_ids: Tuple[int, ...]
    trigger: str
    ok: bool
    chunk: Optional[int] = None

    @property
    def size(self) -> int:
        return len(self.request_ids)


class _Request:
    """One queued request: its image, future, stamps and id."""

    __slots__ = ("image", "future", "stamps", "request_id")

    def __init__(self, image: np.ndarray, future: Future,
                 stamps: RequestTimestamps, request_id: int) -> None:
        self.image = image
        self.future = future
        self.stamps = stamps
        self.request_id = request_id


class MicroBatcher:
    """Deadline-flushed micro-batching over a shared inference engine.

    Parameters
    ----------
    engine:
        Anything with ``forward_batch(x, batch_size=...)`` — in
        production an :class:`~repro.bnn.model.InferenceEngine` (the
        thread-safety contract documented there is what makes one shared
        engine safe here); tests inject slow/failing stubs.
    max_batch:
        Flush as soon as this many requests are queued; also the size
        cap of every flushed batch.
    max_delay_ms:
        Flush when the oldest queued request has waited this long —
        the per-request latency the operator trades for occupancy.
    queue_capacity:
        Bound of the request queue; :meth:`submit` raises
        :class:`~repro.serving.admission.QueueFullError` beyond it
        instead of blocking (backpressure surfaces at the caller).
    input_shape:
        Expected per-sample shape.  Defaults to the engine model's
        ``input_shape``; submissions with any other shape are rejected
        before they can poison a whole batch.
    metrics:
        A :class:`~repro.serving.metrics.ServingMetrics` to stamp
        requests into (a private one is created when omitted).
    after_batch:
        Optional ``callable(ok: bool)`` invoked after every flush —
        the seam the service's circuit breaker listens on.
    flush_log:
        How many recent :class:`FlushRecord` entries to retain.
    clock:
        Injectable monotonic clock shared with the metrics.
    pipeline:
        ``None`` (default) keeps the classic transport: each flush is
        one contiguous ``forward_batch`` chunk.  ``"on"``/``"auto"``/
        ``"off"`` feed flushes to the engine's streaming packed pipeline
        instead: the stack is split into ``pipeline_chunk``-row chunks
        that stream through the plan stages (see
        :mod:`repro.bnn.pipeline`), so a micro-batch's BLAS prefix
        overlaps the previous chunk's XNOR body.  Requires a real
        :class:`~repro.bnn.model.InferenceEngine` (the kwarg is only
        passed when this is set, so duck-typed stub engines keep
        working).
    pipeline_chunk:
        Rows per streaming chunk; defaults to splitting each flush into
        :data:`DEFAULT_PIPELINE_CHUNKS` chunks.
    """

    def __init__(self, engine, *, max_batch: int = 32,
                 max_delay_ms: float = 5.0, queue_capacity: int = 256,
                 input_shape: Optional[Sequence[int]] = None,
                 metrics: Optional[ServingMetrics] = None,
                 after_batch: Optional[Callable[[bool], None]] = None,
                 flush_log: int = DEFAULT_FLUSH_LOG,
                 clock: Callable[[], float] = time.monotonic,
                 pipeline: Optional[str] = None,
                 pipeline_chunk: Optional[int] = None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay_ms < 0.0:
            raise ValueError("max_delay_ms must be non-negative")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if flush_log < 1:
            raise ValueError("flush_log must be >= 1")
        if pipeline is not None:
            from repro.bnn.pipeline import pipeline_mode

            pipeline_mode(pipeline)  # validates the mode string
        if pipeline_chunk is not None and pipeline_chunk < 1:
            raise ValueError("pipeline_chunk must be >= 1")
        self.pipeline = pipeline
        self.pipeline_chunk = (int(pipeline_chunk)
                               if pipeline_chunk is not None else None)
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_ms) / 1e3
        self.queue_capacity = int(queue_capacity)
        if input_shape is None:
            model = getattr(engine, "model", None)
            input_shape = getattr(model, "input_shape", None)
        self.input_shape = (tuple(int(d) for d in input_shape)
                            if input_shape is not None else None)
        self.metrics = metrics if metrics is not None else \
            ServingMetrics(clock=clock)
        self._after_batch = after_batch
        self._clock = clock
        self._cond = threading.Condition()
        self._pending: Deque[_Request] = deque()
        self._next_id = 0
        self._closed = False
        self._drain_on_close = True
        self._flush_log: Deque[FlushRecord] = deque(maxlen=int(flush_log))
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serving-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def submit(self, image: np.ndarray) -> Future:
        """Enqueue one image; the future resolves to its logits row.

        Never blocks: a full queue raises
        :class:`~repro.serving.admission.QueueFullError`, a closed
        batcher :class:`~repro.serving.admission.ServiceClosedError`.
        The returned future carries the assigned ``request_id``
        attribute, matching :meth:`flush_log` entries.
        """
        x = np.asarray(image)
        if self.input_shape is not None and tuple(x.shape) != self.input_shape:
            raise ValueError(
                f"expected one sample of shape {self.input_shape}, got "
                f"{tuple(x.shape)} (batching is the service's job)"
            )
        future: Future = Future()
        with self._cond:
            if self._closed:
                raise ServiceClosedError("the batcher is closed")
            if len(self._pending) >= self.queue_capacity:
                raise QueueFullError(
                    f"request queue at capacity ({self.queue_capacity})"
                )
            stamps = self.metrics.record_enqueue(len(self._pending) + 1)
            request = _Request(x, future, stamps, self._next_id)
            future.request_id = self._next_id
            self._next_id += 1
            self._pending.append(request)
            self._cond.notify_all()
        return future

    def queue_depth(self) -> int:
        """Number of requests currently waiting for a flush."""
        with self._cond:
            return len(self._pending)

    def flush_log(self) -> List[FlushRecord]:
        """Recent flushed batches, oldest first (bounded window)."""
        with self._cond:
            return list(self._flush_log)

    # ------------------------------------------------------------------ #
    # Dispatcher side
    # ------------------------------------------------------------------ #
    def _take_batch(self) -> Tuple[Optional[List[_Request]], str, int]:
        """Block until a flush is due; pop it.  ``(None, ..)`` = shut down."""
        with self._cond:
            while True:
                if self._pending:
                    if len(self._pending) >= self.max_batch:
                        trigger = TRIGGER_SIZE
                        break
                    if self._closed:
                        trigger = TRIGGER_DRAIN
                        break
                    now = self._clock()
                    oldest = self._pending[0].stamps.enqueue
                    deadline = oldest + self.max_delay_s
                    if now >= deadline:
                        trigger = TRIGGER_DEADLINE
                        break
                    self._cond.wait(timeout=deadline - now)
                else:
                    if self._closed:
                        return None, "", 0
                    self._cond.wait()
            size = min(self.max_batch, len(self._pending))
            batch = [self._pending.popleft() for _ in range(size)]
            if self._closed and not self._drain_on_close:
                for request in batch:
                    request.future.set_exception(
                        ServiceClosedError("closed without draining"))
                return self._take_batch_tail()
            return batch, trigger, len(self._pending)

    def _take_batch_tail(self) -> Tuple[Optional[List[_Request]], str, int]:
        """Continue the non-draining close: fail everything left."""
        while self._pending:
            self._pending.popleft().future.set_exception(
                ServiceClosedError("closed without draining"))
        return None, "", 0

    def _dispatch_loop(self) -> None:
        while True:
            batch, trigger, depth_after = self._take_batch()
            if batch is None:
                return
            self._flush(batch, trigger, depth_after)

    def _flush(self, batch: List[_Request], trigger: str,
               depth_after: int) -> None:
        stamps = [request.stamps for request in batch]
        self.metrics.record_flush(stamps, queue_depth=depth_after,
                                  trigger=trigger)
        stack = np.stack([request.image for request in batch])
        chunk: Optional[int] = None
        try:
            if self.pipeline is None:
                logits = self.engine.forward_batch(stack,
                                                   batch_size=len(batch))
            else:
                chunk = self.pipeline_chunk or max(
                    1, -(-len(batch) // DEFAULT_PIPELINE_CHUNKS))
                logits = self.engine.forward_batch(
                    stack, batch_size=chunk, pipeline=self.pipeline)
        except Exception as exc:  # noqa: BLE001 - futures carry the cause
            self.metrics.record_batch_done(stamps, max_batch=self.max_batch,
                                           failed=True)
            self._log_flush(batch, trigger, ok=False, chunk=chunk)
            # the hook runs before the futures resolve so a client that
            # observed the outcome sees the breaker already updated
            if self._after_batch is not None:
                self._after_batch(False)
            for request in batch:
                request.future.set_exception(exc)
            return
        self.metrics.record_batch_done(stamps, max_batch=self.max_batch)
        self._log_flush(batch, trigger, ok=True, chunk=chunk)
        if self._after_batch is not None:
            self._after_batch(True)
        for row, request in enumerate(batch):
            # a private row copy: futures must not alias one shared batch
            # output (or each other) once handed to client threads
            request.future.set_result(np.array(logits[row]))

    def _log_flush(self, batch: List[_Request], trigger: str, *,
                   ok: bool, chunk: Optional[int] = None) -> None:
        record = FlushRecord(
            request_ids=tuple(request.request_id for request in batch),
            trigger=trigger, ok=ok, chunk=chunk,
        )
        with self._cond:
            self._flush_log.append(record)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting work; by default flush everything in flight.

        ``drain=True`` (the default) lets the dispatcher flush every
        queued request — their futures resolve normally — before the
        thread exits.  ``drain=False`` fails queued requests with
        :class:`~repro.serving.admission.ServiceClosedError` instead.
        Idempotent; ``timeout`` bounds the join.
        """
        with self._cond:
            self._closed = True
            self._drain_on_close = bool(drain)
            self._cond.notify_all()
        self._dispatcher.join(timeout)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MicroBatcher(max_batch={self.max_batch}, "
                f"max_delay_ms={self.max_delay_s * 1e3:g}, "
                f"queue_capacity={self.queue_capacity})")
