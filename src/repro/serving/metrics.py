"""Per-request observability for the online serving layer.

Every request is stamped with monotonic-clock timestamps at the three
points of its life the operator can tune — **enqueue** (admission),
**flush** (the dispatcher pulled it into a micro-batch) and **complete**
(its future resolved) — and :class:`ServingMetrics` aggregates those
stamps into the machine-readable :meth:`~ServingMetrics.stats` snapshot:

* streaming p50/p95/p99 end-to-end latency percentiles over a bounded
  window of recent requests (ring buffer; the percentile rule is the
  shared :func:`repro.runtime.measure.percentile` helper);
* queue-depth and batch-occupancy gauges (current, peak, lifetime mean);
* EWMA and lifetime requests/sec throughput;
* counters for submissions, completions, engine failures and rejections
  split by admission reason.

All mutators take one internal lock and do O(1) work, so the serving hot
path (client threads + the dispatcher) never blocks on a snapshot reader
for long; :meth:`stats` copies the latency window under the lock and
sorts outside the caller-visible contention window.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.runtime.measure import percentile

#: default number of recent request latencies kept for the percentile window
DEFAULT_LATENCY_WINDOW = 2048

#: default smoothing factor of the EWMA throughput estimate — per *flush*
#: update, so ~20 flushes of history dominate the estimate
DEFAULT_EWMA_ALPHA = 0.1


@dataclass
class RequestTimestamps:
    """Monotonic-clock stamps of one request's life cycle.

    ``enqueue`` is set at admission, ``flush`` when the dispatcher pulls
    the request into a micro-batch, ``complete`` when its future
    resolves.  Derived durations return ``None`` until both endpoints
    exist, so half-lived requests (rejected, in flight) stay readable.
    """

    enqueue: float
    flush: Optional[float] = None
    complete: Optional[float] = None

    @property
    def queue_wait_s(self) -> Optional[float]:
        """Seconds spent waiting in the request queue."""
        if self.flush is None:
            return None
        return self.flush - self.enqueue

    @property
    def service_s(self) -> Optional[float]:
        """Seconds between flush and completion (batch compute + fan-out)."""
        if self.flush is None or self.complete is None:
            return None
        return self.complete - self.flush

    @property
    def latency_s(self) -> Optional[float]:
        """End-to-end seconds from enqueue to completion."""
        if self.complete is None:
            return None
        return self.complete - self.enqueue


@dataclass
class _LatencyWindow:
    """Fixed-size ring buffer of recent latency samples (seconds)."""

    capacity: int
    samples: List[float] = field(default_factory=list)
    _next: int = 0
    total: int = 0

    def add(self, value: float) -> None:
        if len(self.samples) < self.capacity:
            self.samples.append(value)
        else:
            self.samples[self._next] = value
            self._next = (self._next + 1) % self.capacity
        self.total += 1

    def snapshot(self) -> List[float]:
        return list(self.samples)


class ServingMetrics:
    """Thread-safe aggregate view of one serving front door.

    Parameters
    ----------
    latency_window:
        Number of recent end-to-end latencies retained for the streaming
        percentiles.  Old samples age out, so the percentiles track the
        service's *current* behaviour — which is also what lets a tripped
        p99 circuit breaker see recovery after the slow period drains.
    ewma_alpha:
        Smoothing factor of the exponentially-weighted throughput
        estimate, applied once per completed flush.
    clock:
        Injectable monotonic clock (tests freeze it).
    """

    def __init__(self, *, latency_window: int = DEFAULT_LATENCY_WINDOW,
                 ewma_alpha: float = DEFAULT_EWMA_ALPHA,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if latency_window < 1:
            raise ValueError("latency_window must be >= 1")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self._clock = clock
        self._lock = threading.Lock()
        self._started = clock()
        self._window = _LatencyWindow(int(latency_window))
        self._ewma_alpha = float(ewma_alpha)
        self._ewma_rps = 0.0
        self._last_flush_done: Optional[float] = None
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._rejected: Dict[str, int] = {}
        self._queue_depth = 0
        self._queue_depth_peak = 0
        self._batches = 0
        self._batch_failures = 0
        self._occupancy_sum = 0.0
        self._last_batch_size = 0
        self._flush_triggers: Dict[str, int] = {}

    def now(self) -> float:
        """The metrics clock (monotonic unless a test injected one)."""
        return self._clock()

    # ------------------------------------------------------------------ #
    # Recording hooks (called by the batcher / admission layer)
    # ------------------------------------------------------------------ #
    def record_enqueue(self, queue_depth: int) -> RequestTimestamps:
        """Stamp one admitted request; returns its timestamp record."""
        now = self._clock()
        with self._lock:
            self._submitted += 1
            self._queue_depth = int(queue_depth)
            self._queue_depth_peak = max(self._queue_depth_peak, queue_depth)
        return RequestTimestamps(enqueue=now)

    def record_reject(self, reason: str) -> None:
        """Count one rejected submission by admission reason."""
        with self._lock:
            self._rejected[reason] = self._rejected.get(reason, 0) + 1

    def record_flush(self, stamps: List[RequestTimestamps], *,
                     queue_depth: int, trigger: str) -> None:
        """Stamp the requests of one micro-batch at dispatch time."""
        now = self._clock()
        for stamp in stamps:
            stamp.flush = now
        with self._lock:
            self._queue_depth = int(queue_depth)
            self._flush_triggers[trigger] = \
                self._flush_triggers.get(trigger, 0) + 1

    def record_batch_done(self, stamps: List[RequestTimestamps], *,
                          max_batch: int, failed: bool = False) -> None:
        """Stamp a completed (or failed) micro-batch and its requests."""
        now = self._clock()
        for stamp in stamps:
            stamp.complete = now
        with self._lock:
            self._batches += 1
            self._last_batch_size = len(stamps)
            self._occupancy_sum += len(stamps) / max(max_batch, 1)
            if failed:
                self._batch_failures += 1
                self._failed += len(stamps)
            else:
                self._completed += len(stamps)
                for stamp in stamps:
                    latency = stamp.latency_s
                    if latency is not None:
                        self._window.add(latency)
            if self._last_flush_done is not None:
                interval = now - self._last_flush_done
                if interval > 0.0:
                    rate = len(stamps) / interval
                    if self._ewma_rps == 0.0:
                        self._ewma_rps = rate
                    else:
                        self._ewma_rps += self._ewma_alpha * (rate - self._ewma_rps)
            self._last_flush_done = now

    def set_queue_depth(self, depth: int) -> None:
        """Refresh the queue-depth gauge outside enqueue/flush events."""
        with self._lock:
            self._queue_depth = int(depth)
            self._queue_depth_peak = max(self._queue_depth_peak, depth)

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #
    def latency_percentile(self, q: float) -> Optional[float]:
        """Current ``q``-th latency percentile in seconds (None: no data)."""
        with self._lock:
            samples = self._window.snapshot()
        if not samples:
            return None
        return percentile(samples, q)

    def p99_ms(self, min_samples: int = 1) -> Optional[float]:
        """Streaming p99 in milliseconds, or ``None`` below ``min_samples``.

        The circuit breaker reads this after every flush; the
        ``min_samples`` floor keeps a handful of cold-start requests
        from tripping a latency breaker that has not seen real traffic.
        """
        with self._lock:
            samples = self._window.snapshot()
        if len(samples) < max(min_samples, 1):
            return None
        return percentile(samples, 99.0) * 1e3

    def ewma_throughput_rps(self) -> float:
        """Smoothed requests/sec over recently completed flushes."""
        with self._lock:
            return self._ewma_rps

    def queue_depth(self) -> int:
        """Last observed request-queue depth."""
        with self._lock:
            return self._queue_depth

    def stats(self) -> Dict[str, object]:
        """One machine-readable snapshot of every gauge and counter.

        Latency values are reported in milliseconds (the unit operators
        tune ``max_delay_ms`` in); percentiles are ``None`` until at
        least one request completed.
        """
        with self._lock:
            samples = self._window.snapshot()
            window_total = self._window.total
            snapshot: Dict[str, object] = {
                "uptime_s": self._clock() - self._started,
                "requests": {
                    "submitted": self._submitted,
                    "completed": self._completed,
                    "failed": self._failed,
                    "rejected": dict(sorted(self._rejected.items())),
                    "rejected_total": sum(self._rejected.values()),
                },
                "queue": {
                    "depth": self._queue_depth,
                    "peak_depth": self._queue_depth_peak,
                },
                "batches": {
                    "count": self._batches,
                    "failures": self._batch_failures,
                    "last_size": self._last_batch_size,
                    "mean_occupancy": (self._occupancy_sum / self._batches
                                       if self._batches else None),
                    "flush_triggers": dict(sorted(self._flush_triggers.items())),
                },
                "throughput_rps": {
                    "ewma": self._ewma_rps,
                    "lifetime": (self._completed
                                 / max(self._clock() - self._started, 1e-9)),
                },
            }
        ordered = sorted(samples)
        snapshot["latency_ms"] = {
            "p50": percentile(ordered, 50.0) * 1e3 if ordered else None,
            "p95": percentile(ordered, 95.0) * 1e3 if ordered else None,
            "p99": percentile(ordered, 99.0) * 1e3 if ordered else None,
            "mean": (sum(ordered) / len(ordered)) * 1e3 if ordered else None,
            "max": max(ordered) * 1e3 if ordered else None,
            "window_samples": len(ordered),
            "window_total": window_total,
        }
        return snapshot
