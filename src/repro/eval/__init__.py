"""Evaluation harness regenerating the paper's figures and headline numbers.

* :mod:`repro.eval.experiments` — Fig. 7 (normalized latency improvement) and
  Fig. 8 (normalized energy) across the six evaluation BNNs, plus the
  abstract's headline ratios.
* :mod:`repro.eval.ablations` — design-space sweeps the paper fixes or leaves
  to future work: WDM capacity, crossbar size, ADC sharing.
* :mod:`repro.eval.reporting` — plain-text table/series formatting used by
  the benchmarks and examples.
"""

from repro.eval.ablations import (
    sweep_adc_sharing,
    sweep_crossbar_size,
    sweep_wdm_capacity,
)
from repro.eval.experiments import (
    Fig7Result,
    Fig8Result,
    NetworkResult,
    headline_numbers,
    run_fig7,
    run_fig8,
)
from repro.eval.reporting import format_series, format_table
from repro.eval.robustness import (
    RobustnessPoint,
    level_error_rate,
    noise_sweep,
    popcount_error_rate,
)

__all__ = [
    "RobustnessPoint",
    "level_error_rate",
    "noise_sweep",
    "popcount_error_rate",
    "sweep_adc_sharing",
    "sweep_crossbar_size",
    "sweep_wdm_capacity",
    "Fig7Result",
    "Fig8Result",
    "NetworkResult",
    "headline_numbers",
    "run_fig7",
    "run_fig8",
    "format_series",
    "format_table",
]
