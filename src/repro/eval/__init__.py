"""Evaluation harness regenerating the paper's figures and headline numbers.

* :mod:`repro.eval.experiments` — Fig. 7 (normalized latency improvement) and
  Fig. 8 (normalized energy) across the six evaluation BNNs, plus the
  abstract's headline ratios.
* :mod:`repro.eval.ablations` — design-space sweeps the paper fixes or leaves
  to future work: WDM capacity, crossbar size, ADC sharing.
* :mod:`repro.eval.sweep` — the declarative multi-axis grid runner (network x
  design x crossbar size x WDM capacity x noise) with memoised models,
  optional multiprocessing, and JSON artifacts.
* :mod:`repro.eval.reporting` — plain-text table/series formatting and JSON
  artifact helpers used by the benchmarks and examples.
"""

from repro.eval.ablations import (
    sweep_adc_sharing,
    sweep_crossbar_size,
    sweep_wdm_capacity,
)
from repro.eval.experiments import (
    Fig7Result,
    Fig8Result,
    NetworkResult,
    headline_numbers,
    run_fig7,
    run_fig8,
)
from repro.eval.reporting import (
    format_series,
    format_sweep_table,
    format_table,
    write_json_report,
)
from repro.eval.perf_gate import check_artifacts, load_thresholds
from repro.eval.robustness import (
    RobustnessPoint,
    level_error_rate,
    noise_sweep,
    popcount_error_rate,
    popcount_flip_rate_fn,
)
from repro.eval.sweep import (
    AccuracyRecord,
    AccuracySweepGrid,
    AccuracySweepResult,
    SweepGrid,
    SweepRecord,
    SweepResult,
    get_accelerator_model,
    run_accuracy_sweep,
    run_sweep,
    write_accuracy_sweep_json,
    write_sweep_json,
)

__all__ = [
    "SweepGrid",
    "SweepRecord",
    "SweepResult",
    "AccuracySweepGrid",
    "AccuracySweepResult",
    "AccuracyRecord",
    "get_accelerator_model",
    "run_sweep",
    "run_accuracy_sweep",
    "write_sweep_json",
    "write_accuracy_sweep_json",
    "popcount_flip_rate_fn",
    "check_artifacts",
    "load_thresholds",
    "format_sweep_table",
    "write_json_report",
    "RobustnessPoint",
    "level_error_rate",
    "noise_sweep",
    "popcount_error_rate",
    "sweep_adc_sharing",
    "sweep_crossbar_size",
    "sweep_wdm_capacity",
    "Fig7Result",
    "Fig8Result",
    "NetworkResult",
    "headline_numbers",
    "run_fig7",
    "run_fig8",
    "format_series",
    "format_table",
]
