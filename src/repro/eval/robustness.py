"""Noise-robustness study: why the paper insists on *binary* PCM states.

Section II-C motivates both contributions with the observation (Cardoso et
al., DATE 2023) that at realistic noise levels multi-level PCM read-out
corrupts scalar multiplication, while binary states remain separable — "the
binary usage of PCM provides the easiest solution for differentiating between
the states", which is exactly what BNN vectors need.  The paper also defers
"extending TacitMap on multi-bit cells" to future work (Sec. VI-C).

This module quantifies both statements with the device/crossbar models of the
reproduction:

* :func:`level_error_rate` — probability of mis-reading one cell programmed
  to one of ``num_levels`` equally spaced states under read noise (the
  Cardoso-style scalar-multiplication robustness argument);
* :func:`popcount_error_rate` — probability that a full TacitMap column
  read (an Eq. 1 popcount) comes back wrong on the analog crossbar, as a
  function of the read-noise level;
* :func:`noise_sweep` — the series used by the robustness benchmark: popcount
  error rate of binary cells vs the equivalent multi-level encoding across a
  noise sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.bnn.xnor_ops import xnor_popcount
from repro.crossbar.array import CrossbarArray
from repro.crossbar.noise import NoiseConfig
from repro.devices.opcm import OPCMConfig
from repro.devices.pcm import EPCMConfig
from repro.utils.rng import RngLike, derive_seed, make_rng


def level_error_rate(num_levels: int, *, read_noise_sigma: float,
                     trials: int = 2000, rng: RngLike = None) -> float:
    """Probability of mis-reading a single multi-level PCM cell.

    The cell is programmed to one of ``num_levels`` equally spaced
    conductance states between ``g_off`` and ``g_on``; a read adds Gaussian
    noise with standard deviation ``read_noise_sigma * g_on`` and the reader
    picks the nearest nominal level.  With 2 levels this is the binary case
    the paper relies on; with more levels the spacing shrinks and the error
    rate climbs — the Cardoso et al. observation.
    """
    if num_levels < 2:
        raise ValueError("num_levels must be >= 2")
    if read_noise_sigma < 0:
        raise ValueError("read_noise_sigma must be non-negative")
    if trials < 1:
        raise ValueError("trials must be >= 1")
    generator = make_rng(rng)
    config = EPCMConfig()
    levels = np.linspace(config.g_off, config.g_on, num_levels)
    programmed_index = generator.integers(0, num_levels, size=trials)
    programmed = levels[programmed_index]
    noisy = programmed + generator.normal(
        0.0, read_noise_sigma * config.g_on, size=trials
    )
    recovered = np.argmin(np.abs(noisy[:, None] - levels[None, :]), axis=1)
    return float(np.mean(recovered != programmed_index))


def popcount_error_rate(*, vector_length: int = 128, num_outputs: int = 32,
                        thermal_sigma: float = 0.0,
                        shot_factor: float = 0.0,
                        ir_drop_alpha: float = 0.0,
                        read_noise_sigma: float = 0.005,
                        programming_sigma: float = 0.02,
                        technology: str = "epcm",
                        trials: int = 8, rng: RngLike = None) -> float:
    """Fraction of TacitMap column popcounts read back incorrectly.

    Programs ``num_outputs`` random weight vectors in the TacitMap layout,
    applies ``trials`` random activation vectors through the analog crossbar
    model with the given noise knobs (device read noise plus the thermal,
    shot and IR-drop terms of :class:`~repro.crossbar.noise.NoiseConfig`),
    and compares the recovered counts to the exact
    ``popcount(XNOR(x, w))``.
    """
    if vector_length < 1 or num_outputs < 1 or trials < 1:
        raise ValueError("vector_length, num_outputs and trials must be >= 1")
    generator = make_rng(rng)
    weights = generator.integers(0, 2, size=(num_outputs, vector_length))
    layout = np.vstack([weights.T, 1 - weights.T])
    device_cls = EPCMConfig if technology == "epcm" else OPCMConfig
    device = device_cls(
        programming_sigma=programming_sigma,
        read_noise_sigma=read_noise_sigma,
    )
    array = CrossbarArray(
        2 * vector_length, num_outputs, technology=technology,
        device_config=device,
        noise=NoiseConfig(thermal_sigma=thermal_sigma,
                          shot_factor=shot_factor,
                          ir_drop_alpha=ir_drop_alpha),
        rng=generator,
    )
    array.program(layout)
    wrong = 0
    total = 0
    for _ in range(trials):
        x = generator.integers(0, 2, size=vector_length)
        counts = array.match_counts(np.concatenate([x, 1 - x]))
        expected = np.array([xnor_popcount(x, w) for w in weights])
        wrong += int(np.sum(counts != expected))
        total += num_outputs
    return wrong / total


@dataclass
class PopcountFlipRate:
    """Per-layer bit-flip rate callable for the packed inference engine.

    Maps a binary layer's XNOR vector length to a bit-flip probability
    derived from the functional popcount error rate of a crossbar column of
    that length under the given noise knobs — the parameterisation
    :class:`repro.bnn.model.InferenceEngine` accepts as ``flip_rate``.  A
    miscount flips the downstream sign bit only when it crosses the
    binarisation threshold, which holds for roughly half of the
    (symmetrically distributed) miscounts, so the flip probability is half
    the error rate; at a fully garbled read (error rate 1) the bit becomes
    a fair coin rather than a deterministic inversion.

    Rates are memoised per vector length and seeded per length via
    :func:`repro.utils.rng.derive_seed`, so the same configuration always
    produces the same rates regardless of which layer asks first.  The
    object is a plain (picklable) dataclass rather than a closure so an
    engine carrying it can cross process boundaries — the runtime layer's
    process/queue backends ship engines and sweep points by pickle.
    """

    read_noise_sigma: float
    thermal_sigma: float = 0.0
    shot_factor: float = 0.0
    ir_drop_alpha: float = 0.0
    technology: str = "epcm"
    num_outputs: int = 16
    trials: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        self._cache: Dict[int, float] = {}

    def __call__(self, vector_length: int) -> float:
        if vector_length not in self._cache:
            self._cache[vector_length] = 0.5 * popcount_error_rate(
                vector_length=vector_length,
                num_outputs=self.num_outputs,
                read_noise_sigma=self.read_noise_sigma,
                thermal_sigma=self.thermal_sigma,
                shot_factor=self.shot_factor,
                ir_drop_alpha=self.ir_drop_alpha,
                technology=self.technology,
                trials=self.trials,
                rng=derive_seed(self.seed, f"flip/{vector_length}"),
            )
        return self._cache[vector_length]


def popcount_flip_rate_fn(*, read_noise_sigma: float,
                          thermal_sigma: float = 0.0,
                          shot_factor: float = 0.0,
                          ir_drop_alpha: float = 0.0,
                          technology: str = "epcm",
                          num_outputs: int = 16, trials: int = 4,
                          seed: int = 0) -> Callable[[int], float]:
    """Build a :class:`PopcountFlipRate` (kept for call-site compatibility)."""
    return PopcountFlipRate(
        read_noise_sigma=read_noise_sigma,
        thermal_sigma=thermal_sigma,
        shot_factor=shot_factor,
        ir_drop_alpha=ir_drop_alpha,
        technology=technology,
        num_outputs=num_outputs,
        trials=trials,
        seed=seed,
    )


@dataclass(frozen=True)
class RobustnessPoint:
    """One point of the binary-vs-multi-level robustness sweep."""

    read_noise_sigma: float
    binary_cell_error: float
    multilevel_cell_error: float
    popcount_error: float


def noise_sweep(noise_sigmas: Sequence[float] = (0.0, 0.01, 0.02, 0.05, 0.1),
                *, multilevel_bits: int = 2, vector_length: int = 128,
                rng: RngLike = 0) -> List[RobustnessPoint]:
    """Binary vs multi-level robustness across a read-noise sweep.

    ``multilevel_bits`` selects the density of the hypothetical multi-bit
    cell (2 bits = 4 conductance levels), matching the multi-level PCM the
    paper's discussion section defers to future work.
    """
    if multilevel_bits < 1:
        raise ValueError("multilevel_bits must be >= 1")
    generator = make_rng(rng)
    points: List[RobustnessPoint] = []
    for sigma in noise_sigmas:
        if sigma < 0:
            raise ValueError("noise sigmas must be non-negative")
        binary = level_error_rate(2, read_noise_sigma=sigma, rng=generator)
        multilevel = level_error_rate(
            2 ** multilevel_bits, read_noise_sigma=sigma, rng=generator
        )
        popcount = popcount_error_rate(
            vector_length=vector_length, read_noise_sigma=sigma,
            rng=generator,
        )
        points.append(RobustnessPoint(
            read_noise_sigma=float(sigma),
            binary_cell_error=binary,
            multilevel_cell_error=multilevel,
            popcount_error=popcount,
        ))
    return points
