"""Declarative design-space sweeps with memoised models and parallel workers.

The ablation helpers in :mod:`repro.eval.ablations` sweep one parameter at a
time.  Production design-space exploration needs the full cross product —
*which network, on which design, at which crossbar size, with how many
wavelengths, under how much read noise* — evaluated quickly and repeatably.
This module provides that as a small subsystem:

* :class:`SweepGrid` — a declarative description of the grid.  Axes that do
  not apply to a design are collapsed automatically (only EinsteinBarrier
  sweeps WDM capacity; the electronic designs are evaluated once at K = 1).
* :func:`run_sweep` — evaluates every grid point, either serially or on a
  :mod:`multiprocessing` pool.  Workloads, accelerator models and inference
  reports are memoised (`repro.bnn.workload.get_workload`, the model/report
  caches here, and the layer-schedule cache in :mod:`repro.core.schedule`),
  so repeated structure across the grid is built exactly once per process.
* :class:`SweepRecord` / :class:`SweepResult` — structured results with a
  JSON-ready payload (:meth:`SweepResult.to_payload`,
  :func:`write_sweep_json`) consumed by the benchmarks and CI artifacts.

Determinism: every stochastic quantity (the optional popcount-error metric)
is seeded per grid point with :func:`repro.utils.rng.derive_seed`, so results
are identical run-to-run and independent of worker count or execution order.

Example
-------
>>> grid = SweepGrid(networks=("MLP-S",), designs=("einsteinbarrier",),
...                  crossbar_sizes=(128, 256), wdm_capacities=(4, 16))
>>> result = run_sweep(grid)
>>> len(result.records)
4
"""

from __future__ import annotations

import multiprocessing
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.accelerator import AcceleratorModel, InferenceReport
from repro.arch.config import (
    baseline_epcm_config,
    einsteinbarrier_config,
    tacitmap_epcm_config,
)
from repro.bnn.workload import get_workload
from repro.eval.robustness import popcount_error_rate
from repro.eval.reporting import write_json_report
from repro.utils.rng import derive_seed

#: config factory per design key (the paper's three evaluated designs)
DESIGN_FACTORIES = {
    "baseline_epcm": baseline_epcm_config,
    "tacitmap_epcm": tacitmap_epcm_config,
    "einsteinbarrier": einsteinbarrier_config,
}

#: designs whose WDM capacity axis is meaningful (photonic crossbars only)
WDM_DESIGNS = frozenset({"einsteinbarrier"})

_MODEL_CACHE: Dict[Tuple[str, int, int], AcceleratorModel] = {}
_REPORT_CACHE: Dict[Tuple[str, int, int, str], InferenceReport] = {}


def clear_sweep_caches() -> None:
    """Empty the per-process model and inference-report caches."""
    _MODEL_CACHE.clear()
    _REPORT_CACHE.clear()


def get_accelerator_model(design: str, *, crossbar_size: int = 256,
                          wdm_capacity: int = 1) -> AcceleratorModel:
    """Memoised :class:`AcceleratorModel` for one design configuration.

    Model construction instantiates the latency/energy/hierarchy models;
    sharing instances across grid points (and with the figure-regeneration
    experiments) is safe because the models are stateless after ``__init__``.
    """
    if design not in DESIGN_FACTORIES:
        raise ValueError(
            f"unknown design {design!r}; choose from {sorted(DESIGN_FACTORIES)}"
        )
    effective_wdm = wdm_capacity if design in WDM_DESIGNS else 1
    key = (design, crossbar_size, effective_wdm)
    model = _MODEL_CACHE.get(key)
    if model is None:
        factory = DESIGN_FACTORIES[design]
        if design in WDM_DESIGNS:
            config = factory(crossbar_size=crossbar_size,
                             wdm_capacity=effective_wdm)
        else:
            config = factory(crossbar_size=crossbar_size)
        model = AcceleratorModel(config)
        _MODEL_CACHE[key] = model
    return model


def _cached_report(design: str, crossbar_size: int, wdm_capacity: int,
                   network: str) -> InferenceReport:
    effective_wdm = wdm_capacity if design in WDM_DESIGNS else 1
    key = (design, crossbar_size, effective_wdm, network)
    report = _REPORT_CACHE.get(key)
    if report is None:
        model = get_accelerator_model(
            design, crossbar_size=crossbar_size, wdm_capacity=effective_wdm
        )
        report = model.run_inference(get_workload(network))
        _REPORT_CACHE[key] = report
    return report


@dataclass(frozen=True)
class SweepGrid:
    """Declarative description of a design-space parameter grid.

    Attributes
    ----------
    networks:
        Evaluation network names (see :func:`repro.bnn.networks.list_networks`).
    designs:
        Design keys from :data:`DESIGN_FACTORIES`.
    crossbar_sizes:
        Square crossbar array sizes to sweep.
    wdm_capacities:
        WDM capacities K; applied only to designs in :data:`WDM_DESIGNS`,
        the electronic designs contribute one point at K = 1.
    noise_sigmas:
        Read-noise levels for the optional popcount-error metric.  Empty
        (the default) skips the functional noise simulation entirely and
        every record carries ``popcount_error = None``.
    noise_trials, noise_vector_length, noise_num_outputs:
        Size of the functional popcount-error simulation per point.
    seed:
        Base seed; every point derives its own stream so results do not
        depend on evaluation order or worker count.
    """

    networks: Tuple[str, ...] = ("CNN-L",)
    designs: Tuple[str, ...] = tuple(DESIGN_FACTORIES)
    crossbar_sizes: Tuple[int, ...] = (256,)
    wdm_capacities: Tuple[int, ...] = (16,)
    noise_sigmas: Tuple[float, ...] = ()
    noise_trials: int = 4
    noise_vector_length: int = 64
    noise_num_outputs: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("networks", "designs", "crossbar_sizes",
                     "wdm_capacities", "noise_sigmas"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        for name in ("networks", "designs", "crossbar_sizes", "wdm_capacities"):
            if not getattr(self, name):
                raise ValueError(f"{name} must be non-empty")
        for design in self.designs:
            if design not in DESIGN_FACTORIES:
                raise ValueError(
                    f"unknown design {design!r}; choose from "
                    f"{sorted(DESIGN_FACTORIES)}"
                )
        if any(size < 2 for size in self.crossbar_sizes):
            raise ValueError("crossbar sizes must be >= 2")
        if any(capacity < 1 for capacity in self.wdm_capacities):
            raise ValueError("WDM capacities must be >= 1")
        if any(not 0 <= sigma <= 1 for sigma in self.noise_sigmas):
            # fail fast here rather than deep inside a pool worker: the
            # device configs bound read_noise_sigma to [0, 1]
            raise ValueError("noise sigmas must be within [0, 1]")
        if self.noise_trials < 1:
            raise ValueError("noise_trials must be >= 1")

    def points(self) -> List["SweepPointSpec"]:
        """Expand the grid into self-contained, picklable point specs."""
        sigmas: Tuple[Optional[float], ...] = self.noise_sigmas or (None,)
        specs: List[SweepPointSpec] = []
        for network in self.networks:
            for design in self.designs:
                capacities = (
                    self.wdm_capacities if design in WDM_DESIGNS else (1,)
                )
                for size in self.crossbar_sizes:
                    for capacity in capacities:
                        for sigma in sigmas:
                            salt = (
                                f"{network}/{design}/{size}/{capacity}/{sigma}"
                            )
                            specs.append(SweepPointSpec(
                                network=network,
                                design=design,
                                crossbar_size=size,
                                wdm_capacity=capacity,
                                noise_sigma=sigma,
                                noise_trials=self.noise_trials,
                                noise_vector_length=self.noise_vector_length,
                                noise_num_outputs=self.noise_num_outputs,
                                seed=derive_seed(self.seed, salt),
                            ))
        return specs


@dataclass(frozen=True)
class SweepPointSpec:
    """One fully resolved grid point (self-contained and picklable)."""

    network: str
    design: str
    crossbar_size: int
    wdm_capacity: int
    noise_sigma: Optional[float]
    noise_trials: int
    noise_vector_length: int
    noise_num_outputs: int
    seed: int


@dataclass(frozen=True)
class SweepRecord:
    """Evaluated metrics of one grid point.

    ``speedup_vs_baseline`` and ``energy_ratio_vs_baseline`` compare against
    Baseline-ePCM at the *same* crossbar size, so the ratios always compare
    equal-capacity arrays.  ``popcount_error`` is the functional TacitMap
    column read error rate under the point's read noise (``None`` when the
    grid carries no noise axis).
    """

    network: str
    design: str
    crossbar_size: int
    wdm_capacity: int
    noise_sigma: Optional[float]
    latency_s: float
    energy_j: float
    speedup_vs_baseline: float
    energy_ratio_vs_baseline: float
    popcount_error: Optional[float]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dictionary of this record."""
        return asdict(self)


def evaluate_point(spec: SweepPointSpec) -> SweepRecord:
    """Evaluate one grid point (deterministic given the spec)."""
    report = _cached_report(
        spec.design, spec.crossbar_size, spec.wdm_capacity, spec.network
    )
    baseline = _cached_report(
        "baseline_epcm", spec.crossbar_size, 1, spec.network
    )
    popcount_error: Optional[float] = None
    if spec.noise_sigma is not None:
        model = get_accelerator_model(
            spec.design, crossbar_size=spec.crossbar_size,
            wdm_capacity=spec.wdm_capacity,
        )
        popcount_error = popcount_error_rate(
            vector_length=spec.noise_vector_length,
            num_outputs=spec.noise_num_outputs,
            read_noise_sigma=spec.noise_sigma,
            technology=model.config.technology,
            trials=spec.noise_trials,
            rng=spec.seed,
        )
    return SweepRecord(
        network=spec.network,
        design=spec.design,
        crossbar_size=spec.crossbar_size,
        wdm_capacity=spec.wdm_capacity,
        noise_sigma=spec.noise_sigma,
        latency_s=report.latency.total,
        energy_j=report.energy.total,
        speedup_vs_baseline=baseline.latency.total / report.latency.total,
        energy_ratio_vs_baseline=report.energy.total / baseline.energy.total,
        popcount_error=popcount_error,
    )


@dataclass(frozen=True)
class SweepResult:
    """All records of one sweep, in grid (row-major) order."""

    grid: SweepGrid
    records: List[SweepRecord] = field(default_factory=list)

    def to_payload(self) -> Dict[str, object]:
        """JSON-ready payload: the grid definition plus every record."""
        return {
            "grid": asdict(self.grid),
            "records": [record.to_dict() for record in self.records],
        }

    def best(self, metric: str = "speedup_vs_baseline") -> SweepRecord:
        """Record maximising ``metric`` across the whole grid."""
        if not self.records:
            raise ValueError("sweep produced no records")
        return max(self.records, key=lambda r: getattr(r, metric))


def run_sweep(grid: SweepGrid, *, workers: Optional[int] = None) -> SweepResult:
    """Evaluate every point of ``grid``.

    Parameters
    ----------
    grid:
        The parameter grid to evaluate.
    workers:
        ``None``/``0``/``1`` evaluates serially in-process (sharing the
        memoisation caches with the caller); larger values fan the points
        out over a :class:`multiprocessing.Pool`.  Results are identical
        either way — each point is self-contained and seeded.
    """
    points = grid.points()
    if workers is not None and workers > 1:
        with multiprocessing.Pool(processes=workers) as pool:
            records = pool.map(evaluate_point, points)
    else:
        records = [evaluate_point(point) for point in points]
    return SweepResult(grid=grid, records=records)


def write_sweep_json(path: str, result: SweepResult) -> Dict[str, object]:
    """Serialise a sweep result to ``path`` and return the payload."""
    payload = result.to_payload()
    write_json_report(path, payload)
    return payload
