"""Declarative design-space sweeps with memoised models and parallel workers.

The ablation helpers in :mod:`repro.eval.ablations` sweep one parameter at a
time.  Production design-space exploration needs the full cross product —
*which network, on which design, at which crossbar size, with how many
wavelengths, under how much read noise* — evaluated quickly and repeatably.
This module provides that as a small subsystem:

* :class:`SweepGrid` — a declarative description of the grid.  Axes that do
  not apply to a design are collapsed automatically (only EinsteinBarrier
  sweeps WDM capacity; the electronic designs are evaluated once at K = 1).
* :func:`run_sweep` — evaluates every grid point through the unified
  runtime layer (:mod:`repro.runtime`): ``backend=`` selects the executor
  (serial / thread / process / queue), ``workers=`` keeps the historical
  ``multiprocessing`` semantics, and the ``REPRO_RUNTIME_BACKEND``
  environment variable can force a backend fleet-wide (CI uses it to run
  the tier-1 suite over the process backend).  Workloads, accelerator
  models and inference reports are memoised
  (`repro.bnn.workload.get_workload`, the model/report caches here, and the
  layer-schedule cache in :mod:`repro.core.schedule`), so repeated
  structure across the grid is built exactly once per process.
* :class:`SweepRecord` / :class:`SweepResult` — structured results with a
  JSON-ready payload (:meth:`SweepResult.to_payload`,
  :func:`write_sweep_json`) consumed by the benchmarks and CI artifacts.
* :class:`AccuracySweepGrid` / :func:`run_accuracy_sweep` — the *functional*
  scenario: end-to-end accuracy of (optionally quickly trained) evaluation
  networks under per-popcount read-noise bit flips, produced through the
  batched packed :class:`~repro.bnn.model.InferenceEngine` so whole
  accuracy-vs-noise curves sweep in seconds.

Beyond read noise, the analytical grid exposes the remaining noise axes of
:class:`repro.crossbar.noise.NoiseConfig` (thermal, shot, IR drop), the
ADC-sharing factor ``columns_per_adc`` and the spatial hierarchy sizing
(``vcores_per_ecore`` / ``ecores_per_tile`` / ``tiles_per_node`` of
:mod:`repro.arch.hierarchy`) as first-class axes; axes that do not apply to
a design are collapsed automatically, exactly like the WDM axis.  The
hierarchy axes surface provisioning metrics (nodes required, VCore
utilisation) in every record.

Determinism: every stochastic quantity (the optional popcount-error metric,
the accuracy scenario's training/noise streams) is seeded per grid point
with :func:`repro.utils.rng.derive_seed`, so results are identical
run-to-run and independent of worker count or execution order.

Example
-------
>>> grid = SweepGrid(networks=("MLP-S",), designs=("einsteinbarrier",),
...                  crossbar_sizes=(128, 256), wdm_capacities=(4, 16))
>>> result = run_sweep(grid)
>>> len(result.records)
4
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from itertools import product
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.accelerator import AcceleratorModel, InferenceReport
from repro.arch.config import (
    baseline_epcm_config,
    einsteinbarrier_config,
    tacitmap_epcm_config,
)
from repro.bnn.datasets import load_dataset
from repro.bnn.model import BNNModel, InferenceEngine
from repro.bnn.networks import build_network, dataset_for_network
from repro.bnn.training import train
from repro.bnn.workload import get_workload
from repro.eval.robustness import popcount_error_rate, popcount_flip_rate_fn
from repro.eval.reporting import write_json_report
from repro.runtime.executors import Executor, resolve_executor
from repro.utils.rng import derive_seed

#: config factory per design key (the paper's three evaluated designs)
DESIGN_FACTORIES = {
    "baseline_epcm": baseline_epcm_config,
    "tacitmap_epcm": tacitmap_epcm_config,
    "einsteinbarrier": einsteinbarrier_config,
}

#: designs whose WDM capacity axis is meaningful (photonic crossbars only)
WDM_DESIGNS = frozenset({"einsteinbarrier"})

#: designs whose column ADCs can be shared (ADC read-out; the baseline's
#: per-column PCSAs have no sharing knob, so the axis collapses for it)
ADC_SHARING_DESIGNS = frozenset({"tacitmap_epcm", "einsteinbarrier"})

#: designs whose VCore/ECore/Tile hierarchy sizing is a provisioning knob
#: (the PUMA-like TacitMap machines of Fig. 4; the baseline's fixed
#: crossbar organisation contributes one point at its factory default,
#: mirroring the WDM and ADC collapses)
HIERARCHY_DESIGNS = frozenset({"tacitmap_epcm", "einsteinbarrier"})

#: hierarchy sizing triple (VCores/ECore, ECores/Tile, Tiles/Node); ``None``
#: components keep the design factory's default
Hierarchy = Tuple[Optional[int], Optional[int], Optional[int]]

_DEFAULT_HIERARCHY: Hierarchy = (None, None, None)

_ModelKey = Tuple[str, int, int, Optional[int], Hierarchy]
_MODEL_CACHE: Dict[_ModelKey, AcceleratorModel] = {}
_REPORT_CACHE: Dict[Tuple[_ModelKey, str], InferenceReport] = {}
_TRAINED_CACHE: Dict[Tuple[str, int, int], BNNModel] = {}


def clear_sweep_caches() -> None:
    """Empty the per-process model, inference-report and trained-net caches."""
    _MODEL_CACHE.clear()
    _REPORT_CACHE.clear()
    _TRAINED_CACHE.clear()


def _effective_columns_per_adc(design: str,
                               columns_per_adc: Optional[int]) -> Optional[int]:
    return columns_per_adc if design in ADC_SHARING_DESIGNS else None


def _effective_hierarchy(design: str, hierarchy: Hierarchy) -> Hierarchy:
    return hierarchy if design in HIERARCHY_DESIGNS else _DEFAULT_HIERARCHY


def _model_key(design: str, crossbar_size: int, wdm_capacity: int,
               columns_per_adc: Optional[int],
               hierarchy: Hierarchy) -> _ModelKey:
    effective_wdm = wdm_capacity if design in WDM_DESIGNS else 1
    return (design, crossbar_size, effective_wdm,
            _effective_columns_per_adc(design, columns_per_adc),
            _effective_hierarchy(design, hierarchy))


def get_accelerator_model(design: str, *, crossbar_size: int = 256,
                          wdm_capacity: int = 1,
                          columns_per_adc: Optional[int] = None,
                          vcores_per_ecore: Optional[int] = None,
                          ecores_per_tile: Optional[int] = None,
                          tiles_per_node: Optional[int] = None
                          ) -> AcceleratorModel:
    """Memoised :class:`AcceleratorModel` for one design configuration.

    Model construction instantiates the latency/energy/hierarchy models;
    sharing instances across grid points (and with the figure-regeneration
    experiments) is safe because the models are stateless after ``__init__``.
    ``columns_per_adc = None`` keeps each design's factory default; explicit
    values apply only to the ADC-readout designs (the baseline's PCSAs have
    no sharing knob, mirroring how the WDM axis collapses for ePCM).  The
    hierarchy sizing triple behaves the same way: ``None`` components keep
    the factory default, and explicit values apply only to the PUMA-like
    designs in :data:`HIERARCHY_DESIGNS`.
    """
    if design not in DESIGN_FACTORIES:
        raise ValueError(
            f"unknown design {design!r}; choose from {sorted(DESIGN_FACTORIES)}"
        )
    hierarchy = (vcores_per_ecore, ecores_per_tile, tiles_per_node)
    key = _model_key(design, crossbar_size, wdm_capacity, columns_per_adc,
                     hierarchy)
    model = _MODEL_CACHE.get(key)
    if model is None:
        _, _, effective_wdm, effective_adc, effective_hier = key
        factory = DESIGN_FACTORIES[design]
        kwargs: Dict[str, int] = {"crossbar_size": crossbar_size}
        if design in WDM_DESIGNS:
            kwargs["wdm_capacity"] = effective_wdm
        if effective_adc is not None:
            kwargs["columns_per_adc"] = effective_adc
        for name, value in zip(
            ("vcores_per_ecore", "ecores_per_tile", "tiles_per_node"),
            effective_hier,
        ):
            if value is not None:
                kwargs[name] = value
        model = AcceleratorModel(factory(**kwargs))
        _MODEL_CACHE[key] = model
    return model


def _cached_report(design: str, crossbar_size: int, wdm_capacity: int,
                   columns_per_adc: Optional[int], hierarchy: Hierarchy,
                   network: str) -> InferenceReport:
    key = (_model_key(design, crossbar_size, wdm_capacity, columns_per_adc,
                      hierarchy), network)
    report = _REPORT_CACHE.get(key)
    if report is None:
        model = get_accelerator_model(
            design, crossbar_size=crossbar_size, wdm_capacity=wdm_capacity,
            columns_per_adc=columns_per_adc,
            vcores_per_ecore=hierarchy[0],
            ecores_per_tile=hierarchy[1],
            tiles_per_node=hierarchy[2],
        )
        report = model.run_inference(get_workload(network))
        _REPORT_CACHE[key] = report
    return report


@dataclass(frozen=True)
class SweepGrid:
    """Declarative description of a design-space parameter grid.

    Attributes
    ----------
    networks:
        Evaluation network names (see :func:`repro.bnn.networks.list_networks`).
    designs:
        Design keys from :data:`DESIGN_FACTORIES`.
    crossbar_sizes:
        Square crossbar array sizes to sweep.
    wdm_capacities:
        WDM capacities K; applied only to designs in :data:`WDM_DESIGNS`,
        the electronic designs contribute one point at K = 1.
    noise_sigmas:
        Read-noise levels for the optional popcount-error metric.  Empty
        (the default) skips the functional noise simulation entirely and
        every record carries ``popcount_error = None`` — unless one of the
        dense noise axes below is non-ideal, in which case the simulation
        runs with zero read noise.
    thermal_sigmas, shot_factors, ir_drop_alphas:
        The remaining noise axes of
        :class:`repro.crossbar.noise.NoiseConfig`, applied to the
        functional popcount-error simulation.  Defaults are the ideal
        single point, leaving existing grids (and their derived seeds)
        unchanged.
    columns_per_adc:
        ADC-sharing factors to sweep; ``None`` keeps each design's factory
        default.  Applies only to designs in :data:`ADC_SHARING_DESIGNS`
        (the baseline's PCSA read-out contributes one point per
        combination, like the WDM collapse).
    vcores_per_ecore, ecores_per_tile, tiles_per_node:
        Spatial hierarchy sizing axes (:mod:`repro.arch.hierarchy`);
        ``None`` keeps each design factory's default (8/8/8).  They apply
        only to designs in :data:`HIERARCHY_DESIGNS` — the baseline's
        fixed organisation contributes one point per combination — and
        they surface as provisioning metrics (``nodes_required``,
        ``node_utilisation``) on every record.
    noise_trials, noise_vector_length, noise_num_outputs:
        Size of the functional popcount-error simulation per point.
    seed:
        Base seed; every point derives its own stream so results do not
        depend on evaluation order or worker count.
    """

    networks: Tuple[str, ...] = ("CNN-L",)
    designs: Tuple[str, ...] = tuple(DESIGN_FACTORIES)
    crossbar_sizes: Tuple[int, ...] = (256,)
    wdm_capacities: Tuple[int, ...] = (16,)
    noise_sigmas: Tuple[float, ...] = ()
    thermal_sigmas: Tuple[float, ...] = (0.0,)
    shot_factors: Tuple[float, ...] = (0.0,)
    ir_drop_alphas: Tuple[float, ...] = (0.0,)
    columns_per_adc: Tuple[Optional[int], ...] = (None,)
    vcores_per_ecore: Tuple[Optional[int], ...] = (None,)
    ecores_per_tile: Tuple[Optional[int], ...] = (None,)
    tiles_per_node: Tuple[Optional[int], ...] = (None,)
    noise_trials: int = 4
    noise_vector_length: int = 64
    noise_num_outputs: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("networks", "designs", "crossbar_sizes",
                     "wdm_capacities", "noise_sigmas", "thermal_sigmas",
                     "shot_factors", "ir_drop_alphas", "columns_per_adc",
                     "vcores_per_ecore", "ecores_per_tile", "tiles_per_node"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        for name in ("networks", "designs", "crossbar_sizes", "wdm_capacities",
                     "thermal_sigmas", "shot_factors", "ir_drop_alphas",
                     "columns_per_adc", "vcores_per_ecore", "ecores_per_tile",
                     "tiles_per_node"):
            if not getattr(self, name):
                raise ValueError(f"{name} must be non-empty")
        for design in self.designs:
            if design not in DESIGN_FACTORIES:
                raise ValueError(
                    f"unknown design {design!r}; choose from "
                    f"{sorted(DESIGN_FACTORIES)}"
                )
        if any(size < 2 for size in self.crossbar_sizes):
            raise ValueError("crossbar sizes must be >= 2")
        if any(capacity < 1 for capacity in self.wdm_capacities):
            raise ValueError("WDM capacities must be >= 1")
        if any(not 0 <= sigma <= 1 for sigma in self.noise_sigmas):
            # fail fast here rather than deep inside a pool worker: the
            # device configs bound read_noise_sigma to [0, 1]
            raise ValueError("noise sigmas must be within [0, 1]")
        if any(sigma < 0 for sigma in self.thermal_sigmas):
            raise ValueError("thermal sigmas must be non-negative")
        if any(factor < 0 for factor in self.shot_factors):
            raise ValueError("shot factors must be non-negative")
        if any(not 0 <= alpha < 1 for alpha in self.ir_drop_alphas):
            # NoiseConfig bounds ir_drop_alpha to [0, 1)
            raise ValueError("IR-drop alphas must be within [0, 1)")
        if any(cols is not None and cols < 1 for cols in self.columns_per_adc):
            raise ValueError("columns_per_adc values must be None or >= 1")
        for name in ("vcores_per_ecore", "ecores_per_tile", "tiles_per_node"):
            if any(v is not None and v < 1 for v in getattr(self, name)):
                raise ValueError(f"{name} values must be None or >= 1")
        if self.noise_trials < 1:
            raise ValueError("noise_trials must be >= 1")

    def points(self) -> List["SweepPointSpec"]:
        """Expand the grid into self-contained, picklable point specs.

        Expansion is row-major over (network, design, crossbar size, WDM
        capacity, ADC sharing, hierarchy sizing, read noise, thermal, shot,
        IR drop), with the WDM, ADC and hierarchy axes collapsed for designs
        they do not apply to.  Point seeds are salted with the axis values;
        the salt of a point whose new axes sit at their defaults is
        identical to the pre-extension salt, so adding axes to the grid
        never reshuffles existing points' derived seeds.
        """
        sigmas: Tuple[Optional[float], ...] = self.noise_sigmas or (None,)
        specs: List[SweepPointSpec] = []
        for network in self.networks:
            for design in self.designs:
                capacities = (
                    self.wdm_capacities if design in WDM_DESIGNS else (1,)
                )
                adc_sharings = (
                    self.columns_per_adc
                    if design in ADC_SHARING_DESIGNS else (None,)
                )
                hierarchies: Tuple[Hierarchy, ...]
                if design in HIERARCHY_DESIGNS:
                    hierarchies = tuple(product(
                        self.vcores_per_ecore, self.ecores_per_tile,
                        self.tiles_per_node,
                    ))
                else:
                    hierarchies = (_DEFAULT_HIERARCHY,)
                axes = product(
                    self.crossbar_sizes, capacities, adc_sharings,
                    hierarchies, sigmas, self.thermal_sigmas,
                    self.shot_factors, self.ir_drop_alphas,
                )
                for (size, capacity, cols, hierarchy, sigma, thermal,
                     shot, alpha) in axes:
                    specs.append(self._point(
                        network, design, size, capacity, cols, hierarchy,
                        sigma, thermal, shot, alpha,
                    ))
        return specs

    def _point(self, network: str, design: str, size: int, capacity: int,
               cols: Optional[int], hierarchy: Hierarchy,
               sigma: Optional[float], thermal: float,
               shot: float, alpha: float) -> "SweepPointSpec":
        salt = f"{network}/{design}/{size}/{capacity}/{sigma}"
        if (thermal, shot, alpha, cols) != (0.0, 0.0, 0.0, None):
            salt += f"/{thermal}/{shot}/{alpha}/{cols}"
        if hierarchy != _DEFAULT_HIERARCHY:
            salt += f"/h{hierarchy[0]}/{hierarchy[1]}/{hierarchy[2]}"
        return SweepPointSpec(
            network=network,
            design=design,
            crossbar_size=size,
            wdm_capacity=capacity,
            columns_per_adc=cols,
            vcores_per_ecore=hierarchy[0],
            ecores_per_tile=hierarchy[1],
            tiles_per_node=hierarchy[2],
            noise_sigma=sigma,
            thermal_sigma=thermal,
            shot_factor=shot,
            ir_drop_alpha=alpha,
            noise_trials=self.noise_trials,
            noise_vector_length=self.noise_vector_length,
            noise_num_outputs=self.noise_num_outputs,
            seed=derive_seed(self.seed, salt),
        )


@dataclass(frozen=True)
class SweepPointSpec:
    """One fully resolved grid point (self-contained and picklable)."""

    network: str
    design: str
    crossbar_size: int
    wdm_capacity: int
    noise_sigma: Optional[float]
    noise_trials: int
    noise_vector_length: int
    noise_num_outputs: int
    seed: int
    columns_per_adc: Optional[int] = None
    vcores_per_ecore: Optional[int] = None
    ecores_per_tile: Optional[int] = None
    tiles_per_node: Optional[int] = None
    thermal_sigma: float = 0.0
    shot_factor: float = 0.0
    ir_drop_alpha: float = 0.0

    @property
    def hierarchy(self) -> Hierarchy:
        """Hierarchy sizing triple (``None`` components = factory default)."""
        return (self.vcores_per_ecore, self.ecores_per_tile,
                self.tiles_per_node)

    @property
    def has_functional_noise(self) -> bool:
        """Whether the point requires the functional popcount simulation."""
        return (self.noise_sigma is not None
                or self.thermal_sigma > 0.0
                or self.shot_factor > 0.0
                or self.ir_drop_alpha > 0.0)


@dataclass(frozen=True)
class SweepRecord:
    """Evaluated metrics of one grid point.

    ``speedup_vs_baseline`` and ``energy_ratio_vs_baseline`` compare against
    Baseline-ePCM at the *same* crossbar size, so the ratios always compare
    equal-capacity arrays.  ``popcount_error`` is the functional TacitMap
    column read error rate under the point's noise knobs (``None`` when the
    grid carries no active noise axis).  ``columns_per_adc`` is the value
    actually configured — the design's factory default when the grid left
    the axis at ``None`` or the design has no sharing knob.
    """

    network: str
    design: str
    crossbar_size: int
    wdm_capacity: int
    noise_sigma: Optional[float]
    latency_s: float
    energy_j: float
    speedup_vs_baseline: float
    energy_ratio_vs_baseline: float
    popcount_error: Optional[float]
    columns_per_adc: int = 1
    thermal_sigma: float = 0.0
    shot_factor: float = 0.0
    ir_drop_alpha: float = 0.0
    vcores_per_ecore: int = 8
    ecores_per_tile: int = 8
    tiles_per_node: int = 8
    vcores_required: int = 0
    nodes_required: int = 1
    node_utilisation: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dictionary of this record."""
        return asdict(self)


def evaluate_point(spec: SweepPointSpec) -> SweepRecord:
    """Evaluate one grid point (deterministic given the spec)."""
    report = _cached_report(
        spec.design, spec.crossbar_size, spec.wdm_capacity,
        spec.columns_per_adc, spec.hierarchy, spec.network
    )
    baseline = _cached_report(
        "baseline_epcm", spec.crossbar_size, 1, None, _DEFAULT_HIERARCHY,
        spec.network
    )
    model = get_accelerator_model(
        spec.design, crossbar_size=spec.crossbar_size,
        wdm_capacity=spec.wdm_capacity,
        columns_per_adc=spec.columns_per_adc,
        vcores_per_ecore=spec.vcores_per_ecore,
        ecores_per_tile=spec.ecores_per_tile,
        tiles_per_node=spec.tiles_per_node,
    )
    popcount_error: Optional[float] = None
    if spec.has_functional_noise:
        popcount_error = popcount_error_rate(
            vector_length=spec.noise_vector_length,
            num_outputs=spec.noise_num_outputs,
            read_noise_sigma=spec.noise_sigma or 0.0,
            thermal_sigma=spec.thermal_sigma,
            shot_factor=spec.shot_factor,
            ir_drop_alpha=spec.ir_drop_alpha,
            technology=model.config.technology,
            trials=spec.noise_trials,
            rng=spec.seed,
        )
    return SweepRecord(
        network=spec.network,
        design=spec.design,
        crossbar_size=spec.crossbar_size,
        wdm_capacity=spec.wdm_capacity,
        noise_sigma=spec.noise_sigma,
        latency_s=report.latency.total,
        energy_j=report.energy.total,
        speedup_vs_baseline=baseline.latency.total / report.latency.total,
        energy_ratio_vs_baseline=report.energy.total / baseline.energy.total,
        popcount_error=popcount_error,
        columns_per_adc=model.config.tile.columns_per_adc,
        thermal_sigma=spec.thermal_sigma,
        shot_factor=spec.shot_factor,
        ir_drop_alpha=spec.ir_drop_alpha,
        vcores_per_ecore=model.config.vcores_per_ecore,
        ecores_per_tile=model.config.ecores_per_tile,
        tiles_per_node=model.config.tiles_per_node,
        vcores_required=report.allocation.vcores_required,
        nodes_required=report.allocation.nodes_required,
        node_utilisation=report.allocation.node_utilisation,
    )


@dataclass(frozen=True)
class SweepResult:
    """All records of one sweep, in grid (row-major) order."""

    grid: SweepGrid
    records: List[SweepRecord] = field(default_factory=list)

    def to_payload(self) -> Dict[str, object]:
        """JSON-ready payload: the grid definition plus every record."""
        return {
            "grid": asdict(self.grid),
            "records": [record.to_dict() for record in self.records],
        }

    def best(self, metric: str = "speedup_vs_baseline") -> SweepRecord:
        """Record maximising ``metric`` across the whole grid."""
        if not self.records:
            raise ValueError(
                f"best({metric!r}) on an empty SweepResult: the sweep "
                f"published no records yet.  A partially-resumed or "
                f"still-running sharded sweep has its published rows in "
                f"the root's columnar store (repro.eval.shard."
                f"aggregate_sweep raises with the resume instruction); "
                f"an ordinary run_sweep returning empty means the grid "
                f"expanded to zero points."
            )
        return max(self.records, key=lambda r: getattr(r, metric))


def _run_points(fn, points, *, workers: Optional[int],
                backend: Optional[str],
                executor: Optional[Executor],
                backend_options: Optional[Dict[str, object]] = None
                ) -> List[object]:
    """Fan grid points out over the runtime layer (ordered results).

    An explicitly supplied ``executor`` is used as-is and left open (the
    caller owns its lifecycle); otherwise the backend is resolved from
    ``backend=``, the ``REPRO_RUNTIME_BACKEND`` environment variable, or
    the historical ``workers=`` semantics, and closed after the run.
    """
    if executor is not None:
        if backend_options:
            # same fail-loud rule resolve_executor applies to the legacy
            # workers= path: a pre-built executor carries its own knobs,
            # so options passed alongside it would be silently ignored
            raise ValueError(
                "backend_options cannot be combined with an explicit "
                "executor=; construct the executor with those knobs instead"
            )
        return executor.map(fn, points)
    with resolve_executor(backend=backend, workers=workers,
                          options=backend_options) as runner:
        return runner.map(fn, points)


def run_sweep(grid: SweepGrid, *, workers: Optional[int] = None,
              backend: Optional[str] = None,
              executor: Optional[Executor] = None,
              backend_options: Optional[Dict[str, object]] = None
              ) -> SweepResult:
    """Evaluate every point of ``grid`` through the runtime layer.

    Parameters
    ----------
    grid:
        The parameter grid to evaluate.
    workers:
        Backward-compatible worker count: ``None``/``0``/``1`` evaluates
        serially in-process (sharing the memoisation caches with the
        caller); larger values fan the points out over the process backend
        — exactly the old :class:`multiprocessing.Pool` behaviour.
    backend:
        Runtime backend name (``"serial"``, ``"thread"``, ``"process"``,
        ``"queue"``); overrides the ``workers`` heuristic and the
        ``REPRO_RUNTIME_BACKEND`` environment toggle.
    executor:
        A pre-built :class:`repro.runtime.Executor` to reuse across calls
        (the caller keeps ownership; it is not closed).
    backend_options:
        Backend-specific constructor keywords, e.g. the queue backend's
        fleet-hardening knobs (``lease_s``, ``max_retries``,
        ``compact_threshold``, ``timeout_s``), its storage backend
        (``store="dir"``/``"object"`` — S3-style conditional-put
        semantics via :mod:`repro.runtime.store`) and ``autoscale_hook``
        for huge multi-host grids.

    Records are bit-identical for any backend and worker count — each
    point is self-contained and seeded, and every backend returns results
    in submission order (the queue backend additionally recovers tasks
    from crashed workers without perturbing the records).
    """
    records = _run_points(evaluate_point, grid.points(), workers=workers,
                          backend=backend, executor=executor,
                          backend_options=backend_options)
    return SweepResult(grid=grid, records=records)


def write_sweep_json(path: str, result: SweepResult) -> Dict[str, object]:
    """Serialise a sweep result to ``path`` and return the payload."""
    payload = result.to_payload()
    write_json_report(path, payload)
    return payload


# --------------------------------------------------------------------------- #
# Accuracy-vs-noise sweeps through the batched packed inference engine
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class AccuracySweepGrid:
    """Grid of the functional accuracy-under-read-noise scenario.

    Every point runs whole image batches through the batched packed
    :class:`~repro.bnn.model.InferenceEngine` with per-popcount bit-flip
    rates taken from the functional crossbar simulation
    (:func:`repro.eval.robustness.popcount_flip_rate_fn`), yielding one
    accuracy measurement per (network, technology, read-noise sigma).

    Attributes
    ----------
    networks:
        Evaluation network names.
    technologies:
        PCM technologies whose device noise profile parameterises the flip
        rates (``"epcm"`` / ``"opcm"``).
    read_noise_sigmas:
        Read-noise levels; 0.0 gives the clean reference accuracy.  Column
        noise accumulates over the whole vector, so the interesting range
        sits around the device default (0.005) — by 0.02 long columns are
        already fully garbled and accuracy saturates at chance.
    train_epochs:
        Quick-training epochs per network on its synthetic dataset before
        evaluating (0 evaluates the untrained network — fast, but accuracy
        hovers at chance).  Training is seeded per network, so every worker
        reproduces the identical model.
    num_images:
        Test images evaluated per point (the synthetic test split size).
    batch_size:
        Engine chunk size; part of the determinism contract (flip streams
        are derived per chunk).
    flip_trials, flip_num_outputs:
        Size of the per-layer flip-rate estimation.
    seed:
        Base seed; per-point streams derive from it, so results are
        independent of worker count and evaluation order.
    """

    networks: Tuple[str, ...] = ("MLP-S",)
    technologies: Tuple[str, ...] = ("epcm",)
    read_noise_sigmas: Tuple[float, ...] = (0.0, 0.002, 0.005, 0.01, 0.02)
    train_epochs: int = 1
    num_images: int = 128
    batch_size: int = 64
    flip_trials: int = 4
    flip_num_outputs: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("networks", "technologies", "read_noise_sigmas"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
            if not getattr(self, name):
                raise ValueError(f"{name} must be non-empty")
        for technology in self.technologies:
            if technology not in ("epcm", "opcm"):
                raise ValueError(
                    f"unknown technology {technology!r}; choose 'epcm' or 'opcm'"
                )
        if any(not 0 <= sigma <= 1 for sigma in self.read_noise_sigmas):
            raise ValueError("read-noise sigmas must be within [0, 1]")
        if self.train_epochs < 0:
            raise ValueError("train_epochs must be non-negative")
        if self.num_images < 1 or self.batch_size < 1:
            raise ValueError("num_images and batch_size must be >= 1")
        if self.flip_trials < 1 or self.flip_num_outputs < 1:
            raise ValueError("flip_trials and flip_num_outputs must be >= 1")

    def points(self) -> List["AccuracyPointSpec"]:
        """Expand into self-contained, picklable point specs."""
        specs: List[AccuracyPointSpec] = []
        for network in self.networks:
            train_seed = derive_seed(self.seed, f"train/{network}")
            for technology in self.technologies:
                for sigma in self.read_noise_sigmas:
                    salt = f"accuracy/{network}/{technology}/{sigma}"
                    specs.append(AccuracyPointSpec(
                        network=network,
                        technology=technology,
                        read_noise_sigma=sigma,
                        train_epochs=self.train_epochs,
                        train_seed=train_seed,
                        num_images=self.num_images,
                        batch_size=self.batch_size,
                        flip_trials=self.flip_trials,
                        flip_num_outputs=self.flip_num_outputs,
                        seed=derive_seed(self.seed, salt),
                    ))
        return specs


@dataclass(frozen=True)
class AccuracyPointSpec:
    """One fully resolved accuracy-sweep point (picklable)."""

    network: str
    technology: str
    read_noise_sigma: float
    train_epochs: int
    train_seed: int
    num_images: int
    batch_size: int
    flip_trials: int
    flip_num_outputs: int
    seed: int


@dataclass(frozen=True)
class AccuracyRecord:
    """Accuracy of one network/technology under one read-noise level."""

    network: str
    technology: str
    read_noise_sigma: float
    accuracy: float
    mean_flip_rate: float
    num_images: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dictionary of this record."""
        return asdict(self)


def _trained_network(network: str, train_epochs: int,
                     train_seed: int, num_images: int) -> BNNModel:
    """Per-process memoised (quickly trained) evaluation network.

    Training is fully seeded, so every process materialises the identical
    model no matter which sweep points it happens to evaluate.
    """
    key = (network, train_epochs, train_seed)
    model = _TRAINED_CACHE.get(key)
    if model is None:
        model = build_network(network)
        if train_epochs > 0:
            data = _accuracy_dataset(network, num_images)
            train(model, data, epochs=train_epochs, batch_size=64,
                  seed=train_seed)
        model.eval()
        _TRAINED_CACHE[key] = model
    return model


def _accuracy_dataset(network: str, num_images: int):
    return load_dataset(
        dataset_for_network(network), train_size=512, test_size=num_images
    )


def evaluate_accuracy_point(spec: AccuracyPointSpec) -> AccuracyRecord:
    """Evaluate one accuracy point (deterministic given the spec)."""
    model = _trained_network(
        spec.network, spec.train_epochs, spec.train_seed, spec.num_images
    )
    data = _accuracy_dataset(spec.network, spec.num_images)
    images = data.test_images
    if len(model.input_shape) == 1:
        images = images.reshape(images.shape[0], -1)
    flip_rate = 0.0
    if spec.read_noise_sigma > 0.0:
        flip_rate = popcount_flip_rate_fn(
            read_noise_sigma=spec.read_noise_sigma,
            technology=spec.technology,
            num_outputs=spec.flip_num_outputs,
            trials=spec.flip_trials,
            seed=spec.seed,
        )
    engine = InferenceEngine(model, flip_rate=flip_rate, seed=spec.seed)
    predictions = engine.predict_batch(images, batch_size=spec.batch_size)
    rates = list(engine.noise_flip_rates.values())
    return AccuracyRecord(
        network=spec.network,
        technology=spec.technology,
        read_noise_sigma=spec.read_noise_sigma,
        accuracy=float(np.mean(predictions == data.test_labels)),
        mean_flip_rate=float(np.mean(rates)) if rates else 0.0,
        num_images=spec.num_images,
    )


@dataclass(frozen=True)
class AccuracySweepResult:
    """All accuracy records of one sweep, in grid (row-major) order."""

    grid: AccuracySweepGrid
    records: List[AccuracyRecord] = field(default_factory=list)

    def to_payload(self) -> Dict[str, object]:
        """JSON-ready payload: the grid definition plus every record."""
        return {
            "grid": asdict(self.grid),
            "records": [record.to_dict() for record in self.records],
        }

    def curve(self, network: str, technology: str = "epcm"
              ) -> List[Tuple[float, float]]:
        """(sigma, accuracy) pairs of one network's accuracy-vs-noise curve."""
        return [
            (record.read_noise_sigma, record.accuracy)
            for record in self.records
            if record.network == network and record.technology == technology
        ]


def run_accuracy_sweep(grid: AccuracySweepGrid, *,
                       workers: Optional[int] = None,
                       backend: Optional[str] = None,
                       executor: Optional[Executor] = None,
                       backend_options: Optional[Dict[str, object]] = None
                       ) -> AccuracySweepResult:
    """Evaluate every accuracy point of ``grid`` through the runtime layer.

    ``workers``/``backend``/``executor``/``backend_options`` behave
    exactly like :func:`run_sweep`; each point is self-contained and
    seeded (and quick training is seeded per network), so the records are
    identical for any backend and worker count.
    """
    records = _run_points(evaluate_accuracy_point, grid.points(),
                          workers=workers, backend=backend,
                          executor=executor,
                          backend_options=backend_options)
    return AccuracySweepResult(grid=grid, records=records)


def write_accuracy_sweep_json(path: str,
                              result: AccuracySweepResult) -> Dict[str, object]:
    """Serialise an accuracy sweep result to ``path``, returning the payload."""
    payload = result.to_payload()
    write_json_report(path, payload)
    return payload
