"""Regeneration of the paper's evaluation figures (Fig. 7 and Fig. 8).

Fig. 7 reports, for each of the six BNNs, the latency *improvement* of
TacitMap-ePCM and EinsteinBarrier normalised to Baseline-ePCM (log scale),
plus the Baseline-GPU reference.  Fig. 8 reports the energy consumption of
the same designs normalised to Baseline-ePCM.  The functions here compute the
same series with the reproduction's analytical models and return structured
results the benchmarks print and EXPERIMENTS.md records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.arch.accelerator import AcceleratorModel
from repro.arch.config import (
    AcceleratorConfig,
    baseline_epcm_config,
    einsteinbarrier_config,
    tacitmap_epcm_config,
)
from repro.baselines.gpu import GPUConfig, GPUModel
from repro.bnn.networks import list_networks
from repro.bnn.workload import NetworkWorkload, get_workload

#: design keys in the order the paper reports them
DESIGN_KEYS = ("baseline_epcm", "tacitmap_epcm", "einsteinbarrier")


def _geomean(values: Sequence[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class NetworkResult:
    """Per-network absolute metrics for every design (latency s, energy J)."""

    network: str
    latency: Dict[str, float]
    energy: Dict[str, float]

    def latency_improvement(self, design: str) -> float:
        """Latency improvement of ``design`` normalised to Baseline-ePCM."""
        return self.latency["baseline_epcm"] / self.latency[design]

    def energy_ratio(self, design: str) -> float:
        """Energy of ``design`` normalised to Baseline-ePCM (lower is better)."""
        return self.energy[design] / self.energy["baseline_epcm"]


@dataclass(frozen=True)
class Fig7Result:
    """All series needed to regenerate Fig. 7."""

    per_network: List[NetworkResult] = field(default_factory=list)

    @property
    def networks(self) -> List[str]:
        """Network names in reporting order."""
        return [result.network for result in self.per_network]

    def improvements(self, design: str) -> List[float]:
        """Normalized latency improvements of one design across networks."""
        return [result.latency_improvement(design) for result in self.per_network]

    def average_improvement(self, design: str) -> float:
        """Geometric-mean improvement across the six networks."""
        return _geomean(self.improvements(design))

    def max_improvement(self, design: str) -> float:
        """Largest per-network improvement (the "up to" numbers)."""
        return max(self.improvements(design))

    def min_improvement(self, design: str) -> float:
        """Smallest per-network improvement."""
        return min(self.improvements(design))

    def gpu_vs_baseline(self) -> Dict[str, float]:
        """Baseline-ePCM latency / GPU latency per network (> 1 = GPU wins)."""
        return {
            result.network: result.latency["baseline_epcm"] / result.latency["gpu"]
            for result in self.per_network
        }


@dataclass(frozen=True)
class Fig8Result:
    """All series needed to regenerate Fig. 8."""

    per_network: List[NetworkResult] = field(default_factory=list)

    @property
    def networks(self) -> List[str]:
        """Network names in reporting order."""
        return [result.network for result in self.per_network]

    def ratios(self, design: str) -> List[float]:
        """Normalized energy of one design across networks (lower is better)."""
        return [result.energy_ratio(design) for result in self.per_network]

    def average_ratio(self, design: str) -> float:
        """Geometric-mean normalized energy across networks."""
        return _geomean(self.ratios(design))


def _evaluate_networks(networks: Optional[Sequence[str]] = None,
                       configs: Optional[Dict[str, AcceleratorConfig]] = None,
                       gpu_config: Optional[GPUConfig] = None,
                       workloads: Optional[Dict[str, NetworkWorkload]] = None,
                       ) -> List[NetworkResult]:
    names = list(networks) if networks is not None else list_networks()
    if configs is None:
        configs = {
            "baseline_epcm": baseline_epcm_config(),
            "tacitmap_epcm": tacitmap_epcm_config(),
            "einsteinbarrier": einsteinbarrier_config(),
        }
    models = {key: AcceleratorModel(config) for key, config in configs.items()}
    gpu = GPUModel(gpu_config)
    results: List[NetworkResult] = []
    for name in names:
        if workloads is not None and name in workloads:
            workload = workloads[name]
        else:
            # memoised: Fig. 7 and Fig. 8 share one extraction per network
            # instead of rebuilding the model per design per figure
            workload = get_workload(name)
        latency: Dict[str, float] = {}
        energy: Dict[str, float] = {}
        for key, model in models.items():
            report = model.run_inference(workload)
            latency[key] = report.latency.total
            energy[key] = report.energy.total
        latency["gpu"] = gpu.run_inference(workload).latency
        energy["gpu"] = gpu.energy(workload)
        results.append(NetworkResult(network=name, latency=latency, energy=energy))
    return results


def run_fig7(networks: Optional[Sequence[str]] = None, *,
             configs: Optional[Dict[str, AcceleratorConfig]] = None,
             gpu_config: Optional[GPUConfig] = None,
             workloads: Optional[Dict[str, NetworkWorkload]] = None) -> Fig7Result:
    """Regenerate Fig. 7: normalized latency improvements over all networks."""
    return Fig7Result(per_network=_evaluate_networks(
        networks, configs, gpu_config, workloads
    ))


def run_fig8(networks: Optional[Sequence[str]] = None, *,
             configs: Optional[Dict[str, AcceleratorConfig]] = None,
             gpu_config: Optional[GPUConfig] = None,
             workloads: Optional[Dict[str, NetworkWorkload]] = None) -> Fig8Result:
    """Regenerate Fig. 8: normalized energy consumption over all networks."""
    return Fig8Result(per_network=_evaluate_networks(
        networks, configs, gpu_config, workloads
    ))


def headline_numbers(fig7: Optional[Fig7Result] = None,
                     fig8: Optional[Fig8Result] = None) -> Dict[str, float]:
    """The abstract/summary numbers of the paper, recomputed.

    Returns a dictionary with the reproduction's values for:

    * ``tacitmap_avg`` / ``tacitmap_max`` — TacitMap-ePCM latency improvement
      (paper: ~78x average, up to ~154x),
    * ``einsteinbarrier_avg`` / ``einsteinbarrier_max`` /
      ``einsteinbarrier_min`` — EinsteinBarrier latency improvement
      (paper: ~1205x average, ~22x to ~3113x),
    * ``einsteinbarrier_over_tacitmap`` — EinsteinBarrier vs TacitMap-ePCM
      (paper: ~15x),
    * ``tacitmap_energy_ratio`` — TacitMap-ePCM energy vs baseline
      (paper: ~5.35x more),
    * ``einsteinbarrier_energy_ratio`` — EinsteinBarrier energy vs baseline
      (paper: ~0.64x, i.e. ~1.56x better).
    """
    fig7 = fig7 if fig7 is not None else run_fig7()
    fig8 = fig8 if fig8 is not None else run_fig8()
    eb_over_tacit = [
        result.latency["tacitmap_epcm"] / result.latency["einsteinbarrier"]
        for result in fig7.per_network
    ]
    return {
        "tacitmap_avg": fig7.average_improvement("tacitmap_epcm"),
        "tacitmap_max": fig7.max_improvement("tacitmap_epcm"),
        "einsteinbarrier_avg": fig7.average_improvement("einsteinbarrier"),
        "einsteinbarrier_max": fig7.max_improvement("einsteinbarrier"),
        "einsteinbarrier_min": fig7.min_improvement("einsteinbarrier"),
        "einsteinbarrier_over_tacitmap": _geomean(eb_over_tacit),
        "tacitmap_energy_ratio": fig8.average_ratio("tacitmap_epcm"),
        "einsteinbarrier_energy_ratio": fig8.average_ratio("einsteinbarrier"),
    }
