"""Append-only columnar sweep results: ``.npz`` segments + JSON manifest.

The sweep layer historically materialised every record twice — pickle
result bundles inside the queue namespace, then one monolithic JSON
artifact — which is fine at 10^4 records and hopeless at the 10^7-record
design-space studies the crossbar/WDM/noise/hierarchy axes imply.  This
module owns the at-scale result format:

* **Segments** are immutable ``seg-NNNNNNN-<hash8>.npz`` files, each one
  structured NumPy array whose first field is the row's
  **content-addressed identity** (:func:`task_identity`).  A segment is
  written once (tmp + atomic rename) and never mutated.
* The **manifest** (``manifest.json``) is the single small mutable
  object: an ordered list of ``{name, rows, sha256}`` entries plus the
  record schema version.  It is rewritten atomically on every append, so
  a reader always sees a consistent prefix of the store.
* **Integrity is checked, never assumed**: every read verifies the
  segment's SHA-256 against the manifest before :func:`numpy.load`
  touches it; a mismatch raises :class:`CorruptSegmentError`, and
  :meth:`ColumnarStore.scan` (``repair=True``) *quarantines* corrupt or
  truncated segments into ``quarantine/`` — loudly, in the returned
  report — instead of silently dropping rows.
* **Schema bumps force recompute.**  Opening a store whose manifest
  carries a different ``schema_version`` archives the old manifest and
  segments into ``superseded-v<N>-<hash>/`` and starts fresh; because
  :func:`task_identity` hashes the schema version too, every identity
  changes and a resuming sweep re-evaluates everything rather than
  silently reusing stale records.

Concurrency contract: **one writer, any number of readers**.  The
sharded-sweep collector (:mod:`repro.eval.shard`) is the only appender —
partitions drain through the queue protocol and the submitter folds each
drained partition into one segment — while streaming readers
(:func:`iter_sweep_rows`, consumed by ``eval/reporting.py`` and
``benchmarks/record_trend.py``) never hold more than one segment in
memory.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import shutil
from dataclasses import asdict, dataclass, is_dataclass
from typing import (
    Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple,
)

import numpy as np

from repro.eval.sweep import SweepRecord

#: bump when the meaning/derivation of a sweep record changes; hashed
#: into every :func:`task_identity`, so a bump invalidates all published
#: identities and forces recompute instead of silently reusing stale rows
RECORD_SCHEMA_VERSION = 1

#: manifest file format version (the envelope, not the record schema)
MANIFEST_FORMAT = "repro-columnar"
MANIFEST_FORMAT_VERSION = 1

_MANIFEST_NAME = "manifest.json"
_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".npz"
_QUARANTINE_DIR = "quarantine"
_ARRAY_KEY = "records"

#: structured dtype of one sweep record row (field 0 is the identity);
#: ``U``-fields hold unicode, nullable floats map ``None`` <-> NaN
SWEEP_RECORD_DTYPE = np.dtype([
    ("identity", "U64"),
    ("network", "U32"),
    ("design", "U32"),
    ("crossbar_size", "i8"),
    ("wdm_capacity", "i8"),
    ("noise_sigma", "f8"),
    ("latency_s", "f8"),
    ("energy_j", "f8"),
    ("speedup_vs_baseline", "f8"),
    ("energy_ratio_vs_baseline", "f8"),
    ("popcount_error", "f8"),
    ("columns_per_adc", "i8"),
    ("thermal_sigma", "f8"),
    ("shot_factor", "f8"),
    ("ir_drop_alpha", "f8"),
    ("vcores_per_ecore", "i8"),
    ("ecores_per_tile", "i8"),
    ("tiles_per_node", "i8"),
    ("vcores_required", "i8"),
    ("nodes_required", "i8"),
    ("node_utilisation", "f8"),
])

#: SweepRecord fields whose ``None`` is stored as NaN (Optional[float])
_NULLABLE_FIELDS = ("noise_sigma", "popcount_error")


class CorruptSegmentError(RuntimeError):
    """A segment's bytes do not match the manifest's checksum."""


def task_identity(point: object, *,
                  schema_version: int = RECORD_SCHEMA_VERSION) -> str:
    """Stable content hash of one (design point, seed, schema) task.

    The identity is the SHA-256 of the canonical JSON of the point's
    fields plus the record schema version.  Canonical means sorted keys,
    no whitespace, ASCII-escaped — so the hash is independent of dict
    insertion order, process, host and Python hash randomisation, and
    changes whenever any axis value, the seed, or the schema version
    changes.  Attached to every queued task and every published row,
    it is what lets an interrupted/extended/re-submitted sweep *resume*
    by skipping already-published identities.
    """
    if is_dataclass(point) and not isinstance(point, type):
        fields: Mapping[str, object] = asdict(point)
    elif isinstance(point, Mapping):
        fields = dict(point)
    else:
        raise TypeError(
            f"point must be a dataclass instance or a mapping, got {point!r}"
        )
    payload = {"point": fields, "schema": int(schema_version)}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def sweep_records_to_array(
        rows: Iterable[Tuple[str, SweepRecord]]) -> np.ndarray:
    """Pack ``(identity, record)`` pairs into one structured array."""
    rows = list(rows)
    arr = np.empty(len(rows), dtype=SWEEP_RECORD_DTYPE)
    for i, (identity, record) in enumerate(rows):
        values = record.to_dict()
        values["identity"] = identity
        for name in _NULLABLE_FIELDS:
            if values[name] is None:
                values[name] = np.nan
        arr[i] = tuple(values[name] for name in SWEEP_RECORD_DTYPE.names)
    return arr


def array_to_sweep_records(
        arr: np.ndarray) -> List[Tuple[str, SweepRecord]]:
    """Unpack a structured array back into ``(identity, record)`` pairs.

    Exactly inverts :func:`sweep_records_to_array`: NaN in a nullable
    field becomes ``None`` again and integer/float fields come back as
    native Python scalars, so a round-tripped :class:`SweepRecord`
    compares (and pickles) identical to the original.
    """
    pairs: List[Tuple[str, SweepRecord]] = []
    field_types = {name: SWEEP_RECORD_DTYPE[name].kind
                   for name in SWEEP_RECORD_DTYPE.names}
    for row in arr:
        values: Dict[str, object] = {}
        for name in SWEEP_RECORD_DTYPE.names:
            value = row[name]
            kind = field_types[name]
            if kind == "U":
                values[name] = str(value)
            elif kind == "i":
                values[name] = int(value)
            else:
                values[name] = float(value)
        for name in _NULLABLE_FIELDS:
            if isinstance(values[name], float) and np.isnan(values[name]):
                values[name] = None
        identity = str(values.pop("identity"))
        pairs.append((identity, SweepRecord(**values)))
    return pairs


@dataclass(frozen=True)
class SegmentInfo:
    """One manifest entry: an immutable, checksummed segment."""

    name: str
    rows: int
    sha256: str

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "rows": self.rows, "sha256": self.sha256}


@dataclass(frozen=True)
class ScanReport:
    """Outcome of a :meth:`ColumnarStore.scan` integrity pass."""

    ok: Tuple[str, ...]
    corrupt: Tuple[str, ...]
    orphans: Tuple[str, ...]
    quarantined: Tuple[str, ...]

    def to_dict(self) -> Dict[str, object]:
        return {"ok": list(self.ok), "corrupt": list(self.corrupt),
                "orphans": list(self.orphans),
                "quarantined": list(self.quarantined)}


class ColumnarStore:
    """Append-only columnar record store under one directory.

    Generic over any structured dtype whose first field is ``identity``
    (a unicode content hash); the sweep layer uses it with
    :data:`SWEEP_RECORD_DTYPE`.  See the module docstring for the
    durability/concurrency contract.  Storage is plain file I/O on the
    shared mount — segments are written next to the queue layouts both
    :class:`~repro.runtime.store.DirStore` and the hermetic object fake
    keep on a filesystem, and every write is tmp + atomic rename.
    """

    def __init__(self, root: str, *,
                 schema_version: int = RECORD_SCHEMA_VERSION) -> None:
        self.root = root
        self.schema_version = int(schema_version)
        os.makedirs(self.root, exist_ok=True)
        self._supersede_on_schema_bump()

    # -- manifest ---------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, _MANIFEST_NAME)

    def _read_manifest(self) -> Optional[Dict[str, object]]:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return manifest if isinstance(manifest, dict) else None

    def _write_manifest(self, segments: Sequence[SegmentInfo]) -> None:
        payload = {
            "format": MANIFEST_FORMAT,
            "format_version": MANIFEST_FORMAT_VERSION,
            "schema_version": self.schema_version,
            "segments": [segment.to_dict() for segment in segments],
        }
        blob = json.dumps(payload, sort_keys=True, indent=2) + "\n"
        tmp_path = f"{self.manifest_path}.{os.getpid()}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(blob)
        os.replace(tmp_path, self.manifest_path)

    def segments(self) -> List[SegmentInfo]:
        """Manifest entries, in append order ([] when empty/missing)."""
        manifest = self._read_manifest()
        if manifest is None:
            return []
        entries = manifest.get("segments")
        segments: List[SegmentInfo] = []
        for entry in entries if isinstance(entries, list) else []:
            if not isinstance(entry, dict):
                continue
            segments.append(SegmentInfo(
                name=str(entry.get("name", "")),
                rows=int(entry.get("rows", 0)),
                sha256=str(entry.get("sha256", "")),
            ))
        return segments

    @property
    def rows(self) -> int:
        """Total published rows (manifest metadata; no segment is read)."""
        return sum(segment.rows for segment in self.segments())

    def _supersede_on_schema_bump(self) -> None:
        """Archive segments written under a different record schema.

        The archive directory name carries the old version and a hash of
        the old manifest, so repeated bumps never collide.  Nothing is
        deleted — stale records stay inspectable — but the store starts
        empty, and because the schema version is part of every task
        identity, a resuming sweep recomputes every point.
        """
        manifest = self._read_manifest()
        if manifest is None:
            return
        found = manifest.get("schema_version")
        if found == self.schema_version:
            return
        stamp = hashlib.sha256(
            json.dumps(manifest, sort_keys=True).encode("utf-8")
        ).hexdigest()[:8]
        archive = os.path.join(self.root, f"superseded-v{found}-{stamp}")
        os.makedirs(archive, exist_ok=True)
        for segment in self.segments():
            source = os.path.join(self.root, segment.name)
            if os.path.exists(source):
                os.replace(source, os.path.join(archive, segment.name))
        os.replace(self.manifest_path,
                   os.path.join(archive, _MANIFEST_NAME))

    # -- segments ---------------------------------------------------------
    def _segment_files_on_disk(self) -> List[str]:
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(name for name in names
                      if name.startswith(_SEGMENT_PREFIX)
                      and name.endswith(_SEGMENT_SUFFIX))

    @staticmethod
    def _parse_sequence(name: str) -> int:
        try:
            return int(name[len(_SEGMENT_PREFIX):].split("-", 1)[0])
        except (ValueError, IndexError):
            return -1

    def _next_sequence(self) -> int:
        taken = [self._parse_sequence(segment.name)
                 for segment in self.segments()]
        taken += [self._parse_sequence(name)
                  for name in self._segment_files_on_disk()]
        return max(taken, default=-1) + 1

    def append(self, arr: np.ndarray) -> Optional[SegmentInfo]:
        """Durably publish one structured array as a new segment.

        The segment file lands first (tmp + rename, name carrying a
        content-hash suffix so identical appends are idempotent at the
        byte level), then the manifest is atomically extended — a crash
        between the two leaves an *orphan* segment that the next
        :meth:`scan(repair=True) <scan>` quarantines, never a manifest
        entry pointing at missing bytes.  Empty arrays are a no-op.
        """
        if arr.shape[0] == 0:
            return None
        buffer = io.BytesIO()
        np.savez(buffer, **{_ARRAY_KEY: arr})
        blob = buffer.getvalue()
        digest = hashlib.sha256(blob).hexdigest()
        name = (f"{_SEGMENT_PREFIX}{self._next_sequence():07d}"
                f"-{digest[:8]}{_SEGMENT_SUFFIX}")
        path = os.path.join(self.root, name)
        tmp_path = f"{path}.{os.getpid()}.tmp"
        with open(tmp_path, "wb") as handle:
            handle.write(blob)
        os.replace(tmp_path, path)
        segment = SegmentInfo(name=name, rows=int(arr.shape[0]),
                              sha256=digest)
        self._write_manifest(self.segments() + [segment])
        return segment

    def _load_segment(self, segment: SegmentInfo) -> np.ndarray:
        path = os.path.join(self.root, segment.name)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError as exc:
            raise CorruptSegmentError(
                f"segment {segment.name} is missing from {self.root}"
            ) from exc
        digest = hashlib.sha256(blob).hexdigest()
        if digest != segment.sha256:
            raise CorruptSegmentError(
                f"segment {segment.name} fails its checksum "
                f"(manifest {segment.sha256[:12]}..., found {digest[:12]}...)"
                " — truncated or corrupted; run scan(repair=True) to"
                " quarantine it"
            )
        with np.load(io.BytesIO(blob)) as archive:
            return archive[_ARRAY_KEY]

    def iter_segments(self) -> Iterator[np.ndarray]:
        """Stream segment arrays in append order (one in memory at a time).

        Every segment is checksum-verified before NumPy parses it;
        corruption raises :class:`CorruptSegmentError` instead of
        yielding garbage rows.
        """
        for segment in self.segments():
            yield self._load_segment(segment)

    def iter_rows(self) -> Iterator[np.void]:
        """Stream individual rows across all segments, in append order."""
        for arr in self.iter_segments():
            yield from arr

    def published_identities(self) -> Set[str]:
        """Identities of every published row (streamed, full set returned).

        This is the resume seam: a planner skips any task whose identity
        is already here.  Only the ``identity`` column of each segment is
        materialised.
        """
        identities: Set[str] = set()
        for arr in self.iter_segments():
            identities.update(str(value) for value in arr["identity"])
        return identities

    # -- integrity --------------------------------------------------------
    def scan(self, *, repair: bool = False) -> ScanReport:
        """Verify every segment; optionally quarantine the damage.

        ``corrupt`` lists manifest entries whose bytes are missing or
        fail their checksum (the torn tail a crash mid-append can
        leave); ``orphans`` lists on-disk ``seg-*.npz`` files the
        manifest does not know (the other half of the same crash).  With
        ``repair=True`` both are *moved* into ``quarantine/`` — loudly
        reported, never silently dropped — and the manifest is rewritten
        to the surviving entries; their rows recompute on the next
        resume because their identities are no longer published.
        """
        ok: List[str] = []
        corrupt: List[str] = []
        quarantined: List[str] = []
        survivors: List[SegmentInfo] = []
        listed = set()
        for segment in self.segments():
            listed.add(segment.name)
            try:
                self._load_segment(segment)
            except CorruptSegmentError:
                corrupt.append(segment.name)
            else:
                ok.append(segment.name)
                survivors.append(segment)
        orphans = [name for name in self._segment_files_on_disk()
                   if name not in listed]
        if repair and (corrupt or orphans):
            quarantine = os.path.join(self.root, _QUARANTINE_DIR)
            os.makedirs(quarantine, exist_ok=True)
            for name in corrupt + orphans:
                source = os.path.join(self.root, name)
                if os.path.exists(source):
                    os.replace(source, os.path.join(quarantine, name))
                    quarantined.append(name)
            self._write_manifest(survivors)
        return ScanReport(ok=tuple(ok), corrupt=tuple(corrupt),
                          orphans=tuple(orphans),
                          quarantined=tuple(quarantined))

    def remove(self) -> None:
        """Delete the store directory and everything under it."""
        shutil.rmtree(self.root, ignore_errors=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ColumnarStore({self.root!r}, "
                f"schema_version={self.schema_version})")


def iter_sweep_rows(store: ColumnarStore
                    ) -> Iterator[Tuple[str, SweepRecord]]:
    """Stream ``(identity, record)`` pairs out of a sweep columnar store.

    One segment is decoded at a time, so reporting over a 10^7-row store
    never materialises the full record set.
    """
    for arr in store.iter_segments():
        yield from array_to_sweep_records(arr)
