"""Sharded, resumable design-space sweeps over the work-queue fleet.

:func:`repro.eval.sweep.run_sweep` evaluates one grid through one queue
namespace and hands back one in-memory result — right at 10^4 points,
wrong at 10^7.  This module is the at-scale path:

* :func:`plan_shards` splits a :class:`~repro.eval.sweep.SweepGrid` into
  independently-queued **partitions**, each its own full queue layout
  (``part-NNNN/`` under one sweep root) that any worker pointed at the
  root discovers and drains like a ``run-*`` namespace.
* Every task carries its **content-addressed identity**
  (:func:`repro.eval.columnar.task_identity` — a stable hash of the
  design point, its seed and the record schema version), and every
  published row carries it too.  Planning therefore *resumes*: points
  whose identities are already published in the sweep root's columnar
  store are skipped, never recomputed — whether the previous run was
  killed, the grid was extended, or the same sweep was submitted twice.
* Drained partitions fold into the root's **append-only columnar store**
  (:mod:`repro.eval.columnar`) one segment per partition, and the final
  :class:`~repro.eval.sweep.SweepResult` is assembled by a
  **tree-structured merge** of the per-segment record runs — segments
  stream one at a time and merge pairwise, so aggregation never needs
  the queue namespaces again (they are retired as they drain).

Crash safety follows one ordering rule: a partition's results are read
from the queue, durably appended to the columnar store, and only then is
the partition namespace removed.  A crash between append and removal
leaves a namespace whose results are already published — the next
:func:`prepare_sweep` *salvages* it (appending only rows whose identity
is still unpublished, i.e. nothing) and retires it.  A crash before the
append loses nothing: the identities stay unpublished and re-plan.

Resume assumes the previous submitter is gone and no worker holds a live
lease on the root (see ``docs/multihost-runbook.md``).

CLI: ``python -m repro.eval.shard <root> --networks MLP-S --partitions 8
--out sweep.json`` runs (or resumes) a sharded sweep inline;
``--status`` reports the columnar store and pending-point counts without
executing anything.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.eval.columnar import (
    RECORD_SCHEMA_VERSION,
    ColumnarStore,
    array_to_sweep_records,
    sweep_records_to_array,
    task_identity,
)
from repro.eval.sweep import (
    SweepGrid,
    SweepPointSpec,
    SweepRecord,
    SweepResult,
    evaluate_point,
    write_sweep_json,
)
from repro.runtime import janitor
from repro.runtime.queue import (
    PART_PREFIX,
    StoreLike,
    collect_results,
    enqueue_task,
    init_queue_dirs,
    partition_namespace,
    serve,
    write_shared_fn,
)
from repro.runtime.store import QueueStore, resolve_store
from repro.runtime.tasks import Task

#: environment variable setting the default partition count fleet-wide
SWEEP_PARTITIONS_ENV = "REPRO_SWEEP_PARTITIONS"

DEFAULT_PARTITIONS = 8

#: subdirectory of a sweep root holding the columnar result store
COLUMNAR_DIR = "columnar"

#: one identified task: ``(identity, spec)`` — the identity rides the
#: queue with the point and comes back attached to the published record
IdentifiedPoint = Tuple[str, SweepPointSpec]


def default_partitions() -> int:
    """Partition count from :data:`SWEEP_PARTITIONS_ENV` (default 8)."""
    value = os.environ.get(SWEEP_PARTITIONS_ENV, "").strip()
    if not value:
        return DEFAULT_PARTITIONS
    count = int(value)
    if count < 1:
        raise ValueError(
            f"{SWEEP_PARTITIONS_ENV}={value!r} must be >= 1"
        )
    return count


def identified_points(grid: SweepGrid, *,
                      schema_version: int = RECORD_SCHEMA_VERSION
                      ) -> List[IdentifiedPoint]:
    """Grid points in row-major order, each with its task identity."""
    return [(task_identity(spec, schema_version=schema_version), spec)
            for spec in grid.points()]


def evaluate_identified_point(pair: IdentifiedPoint
                              ) -> Tuple[str, SweepRecord]:
    """The shared task callable of every partition.

    Takes ``(identity, spec)``, returns ``(identity, record)`` — the
    identity travels with the payload so salvage and aggregation never
    have to re-derive it from the record.
    """
    identity, spec = pair
    return identity, evaluate_point(spec)


@dataclass(frozen=True)
class SweepPartition:
    """One independently-queued slice of a sharded sweep."""

    index: int
    name: str
    points: Tuple[IdentifiedPoint, ...]

    def root(self, sweep_root: str) -> str:
        return os.path.join(sweep_root, self.name)


@dataclass(frozen=True)
class ShardPlan:
    """What :func:`prepare_sweep` queued (and what it skipped)."""

    grid: SweepGrid
    schema_version: int
    partitions: Tuple[SweepPartition, ...]
    total_points: int
    skipped: int

    @property
    def pending(self) -> int:
        return sum(len(partition.points) for partition in self.partitions)


def plan_shards(grid: SweepGrid, *, partitions: Optional[int] = None,
                published: Optional[Set[str]] = None,
                schema_version: int = RECORD_SCHEMA_VERSION) -> ShardPlan:
    """Split a grid's *unpublished* points into balanced partitions.

    Points whose identity is in ``published`` are skipped — the resume
    semantics.  Pending points split into at most ``partitions``
    contiguous (grid-order) slices of near-equal size; empty slices are
    dropped, so a nearly-complete resume plans only the few partitions
    it still needs.
    """
    if partitions is None:
        partitions = default_partitions()
    if partitions < 1:
        raise ValueError(f"partitions must be >= 1, got {partitions}")
    points = identified_points(grid, schema_version=schema_version)
    published = published or set()
    pending = [pair for pair in points if pair[0] not in published]
    shards: List[SweepPartition] = []
    count = min(partitions, len(pending))
    if count:
        base, extra = divmod(len(pending), count)
        start = 0
        for index in range(count):
            size = base + (1 if index < extra else 0)
            shards.append(SweepPartition(
                index=index,
                name=os.path.basename(partition_namespace("", index)),
                points=tuple(pending[start:start + size]),
            ))
            start += size
    return ShardPlan(
        grid=grid, schema_version=schema_version,
        partitions=tuple(shards), total_points=len(points),
        skipped=len(points) - len(pending),
    )


def columnar_store(root: str, *,
                   schema_version: int = RECORD_SCHEMA_VERSION
                   ) -> ColumnarStore:
    """The sweep root's columnar result store (``<root>/columnar/``)."""
    return ColumnarStore(os.path.join(root, COLUMNAR_DIR),
                         schema_version=schema_version)


def _salvage_partitions(root: str, columnar: ColumnarStore,
                        published: Set[str], *,
                        backend: QueueStore) -> int:
    """Fold leftover partition namespaces into the columnar store.

    Every ``part-*`` layout under ``root`` is a remnant of an
    interrupted run: its *published, successful* results whose identity
    is not yet columnar are appended as one segment, then the namespace
    is removed.  Failed/unfinished members simply stay unpublished and
    re-plan.  Returns the number of rows salvaged.
    """
    salvaged = 0
    for layout in backend.list_layouts(root, run_prefix=PART_PREFIX):
        if os.path.normpath(layout) == os.path.normpath(root):
            continue
        rows: List[Tuple[str, SweepRecord]] = []
        for _, (ok, payload) in sorted(
                janitor.result_entries(layout, store=backend).items()):
            if not ok:
                continue
            identity, record = payload
            if identity not in published:
                rows.append((identity, record))
                published.add(identity)
        if rows:
            columnar.append(sweep_records_to_array(rows))
            salvaged += len(rows)
        backend.remove_tree(layout)
    return salvaged


def prepare_sweep(grid: SweepGrid, root: str, *,
                  partitions: Optional[int] = None,
                  schema_version: int = RECORD_SCHEMA_VERSION,
                  point_fn: Optional[Callable] = None,
                  store: StoreLike = None) -> ShardPlan:
    """Repair, salvage, plan and enqueue a sharded sweep under ``root``.

    Idempotent by identity: submitting the same grid into the same root
    twice enqueues nothing the second time.  Steps, in order:

    1. open the columnar store (archiving it wholesale on a schema
       bump) and ``scan(repair=True)`` — torn/orphan segments are
       quarantined *before* their identities could mask recompute;
    2. salvage leftover ``part-*`` namespaces of an interrupted run
       (durable append first, namespace removal second);
    3. plan: skip published identities, split the rest into at most
       ``partitions`` slices;
    4. enqueue each partition as its own queue layout with the shared
       callable ``point_fn`` (default
       :func:`evaluate_identified_point`; overrides must keep the
       ``(identity, spec) -> (identity, record)`` contract).

    Returns the :class:`ShardPlan`; pass it to
    :func:`drain_and_aggregate` (or let external workers pointed at
    ``root`` drain the partitions meanwhile).
    """
    backend = resolve_store(store)
    columnar = columnar_store(root, schema_version=schema_version)
    columnar.scan(repair=True)
    published = columnar.published_identities()
    _salvage_partitions(root, columnar, published, backend=backend)
    plan = plan_shards(grid, partitions=partitions, published=published,
                       schema_version=schema_version)
    fn = point_fn if point_fn is not None else evaluate_identified_point
    for partition in plan.partitions:
        part_root = partition.root(root)
        init_queue_dirs(part_root, store=backend)
        write_shared_fn(part_root, fn, store=backend)
        for index, pair in enumerate(partition.points):
            enqueue_task(part_root, Task(index=index, fn=fn, arg=pair),
                         shared_fn=True, store=backend)
    return plan


def drain_and_aggregate(root: str, plan: ShardPlan, *,
                        timeout_s: float = 3600.0,
                        poll_interval_s: float = 0.05,
                        max_retries: Optional[int] = None,
                        compact_threshold: Optional[int] = None,
                        inline: bool = True,
                        store: StoreLike = None) -> SweepResult:
    """Collect every partition, fold it columnar, and aggregate.

    Partitions are collected in order; each drained partition appends
    exactly one columnar segment and then retires its namespace.  With
    ``inline=True`` (the default) every poll cycle also serves a slice
    of the *whole root* in-process — the submitter cooperates with any
    external workers and completes alone when there are none.  The
    final :class:`SweepResult` comes from
    :func:`aggregate_sweep` — i.e. from the columnar store, not from
    queue payloads, so it is identical to what any later reader sees.
    """
    backend = resolve_store(store)
    columnar = columnar_store(root, schema_version=plan.schema_version)
    if inline:
        def inline_worker() -> int:
            return serve(root, max_tasks=32, store=backend,
                         compact_threshold=compact_threshold)
    else:
        inline_worker = None
    for partition in plan.partitions:
        part_root = partition.root(root)
        collect_results(
            part_root, len(partition.points), timeout_s=timeout_s,
            poll_interval_s=poll_interval_s, max_retries=max_retries,
            compact_threshold=compact_threshold,
            inline_worker=inline_worker, store=backend,
        )
        rows = []
        for _, (ok, payload) in sorted(
                janitor.result_entries(part_root, store=backend).items()):
            if ok:
                rows.append(payload)
        columnar.append(sweep_records_to_array(rows))
        backend.remove_tree(part_root)
    return aggregate_sweep(root, plan.grid,
                           schema_version=plan.schema_version)


def run_sharded_sweep(grid: SweepGrid, root: str, *,
                      partitions: Optional[int] = None,
                      schema_version: int = RECORD_SCHEMA_VERSION,
                      point_fn: Optional[Callable] = None,
                      timeout_s: float = 3600.0,
                      poll_interval_s: float = 0.05,
                      max_retries: Optional[int] = None,
                      compact_threshold: Optional[int] = None,
                      inline: bool = True,
                      store: StoreLike = None) -> SweepResult:
    """Run (or resume) a sharded sweep under ``root`` to completion.

    :func:`prepare_sweep` followed by :func:`drain_and_aggregate`; see
    both for the semantics.  Safe to call again after any interruption —
    published identities are never recomputed.
    """
    plan = prepare_sweep(grid, root, partitions=partitions,
                         schema_version=schema_version, point_fn=point_fn,
                         store=store)
    return drain_and_aggregate(root, plan, timeout_s=timeout_s,
                               poll_interval_s=poll_interval_s,
                               max_retries=max_retries,
                               compact_threshold=compact_threshold,
                               inline=inline, store=store)


# --------------------------------------------------------------------------- #
# Tree-structured aggregation out of the columnar store
# --------------------------------------------------------------------------- #

_Run = List[Tuple[int, SweepRecord]]


def _merge_runs(left: _Run, right: _Run) -> _Run:
    """Merge two grid-position-sorted runs, deduplicating by position.

    Duplicates (one identity published twice across segments) collapse
    to the first occurrence — byte-identical anyway by the determinism
    contract.
    """
    merged: _Run = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i][0] < right[j][0]:
            merged.append(left[i])
            i += 1
        elif right[j][0] < left[i][0]:
            merged.append(right[j])
            j += 1
        else:
            merged.append(left[i])
            i += 1
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged


def aggregate_sweep(root: str, grid: SweepGrid, *,
                    schema_version: int = RECORD_SCHEMA_VERSION
                    ) -> SweepResult:
    """Assemble the final :class:`SweepResult` from the columnar store.

    Segments stream one at a time; each contributes one run of records
    sorted by grid position, and the runs merge **pairwise in rounds**
    (a tree, not a left fold) until one remains — O(n log s) comparisons
    over s segments, and at no point is more than the merge frontier in
    memory on top of one decoded segment.  Rows whose identity is not in
    the current grid (a superseded schema, a shrunk grid) are ignored;
    a grid point with *no* published row fails loudly with the resume
    instruction instead of returning a silently-partial result.
    """
    columnar = columnar_store(root, schema_version=schema_version)
    position: Dict[str, int] = {
        identity: index for index, (identity, _) in enumerate(
            identified_points(grid, schema_version=schema_version)
        )
    }
    runs: List[_Run] = []
    for arr in columnar.iter_segments():
        run = sorted(
            ((position[identity], record)
             for identity, record in array_to_sweep_records(arr)
             if identity in position),
            key=lambda item: item[0],
        )
        if run:
            runs.append(run)
    while len(runs) > 1:
        paired: List[_Run] = []
        for k in range(0, len(runs) - 1, 2):
            paired.append(_merge_runs(runs[k], runs[k + 1]))
        if len(runs) % 2:
            paired.append(runs[-1])
        runs = paired
    merged: _Run = runs[0] if runs else []
    if len(merged) != len(position):
        missing = len(position) - len(merged)
        raise RuntimeError(
            f"sweep at {root!r} has {missing} of {len(position)} grid "
            f"points unpublished — the sweep is incomplete; resume it "
            f"with run_sharded_sweep(grid, {root!r})"
        )
    return SweepResult(grid=grid,
                       records=[record for _, record in merged])


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #

def _build_grid(args: argparse.Namespace) -> SweepGrid:
    kwargs: Dict[str, object] = {
        "networks": tuple(args.networks),
        "designs": tuple(args.designs),
        "crossbar_sizes": tuple(args.crossbar_sizes),
        "wdm_capacities": tuple(args.wdm_capacities),
        "seed": args.seed,
    }
    if args.noise_sigmas:
        kwargs["noise_sigmas"] = tuple(args.noise_sigmas)
    return SweepGrid(**kwargs)


def _status_payload(root: str, grid: SweepGrid,
                    schema_version: int) -> Dict[str, object]:
    columnar = columnar_store(root, schema_version=schema_version)
    published = columnar.published_identities()
    points = identified_points(grid, schema_version=schema_version)
    pending = sum(1 for identity, _ in points if identity not in published)
    return {
        "rows": columnar.rows,
        "segments": len(columnar.segments()),
        "grid_points": len(points),
        "pending_points": pending,
        "schema_version": schema_version,
        "scan": columnar.scan().to_dict(),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.eval.shard`` — run/resume/inspect sharded sweeps."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.shard",
        description=(
            "Run (or resume) a sharded design-space sweep under a shared "
            "root: unpublished grid points are planned into part-* queue "
            "partitions, drained (inline and/or by external workers "
            "pointed at the root), folded into the append-only columnar "
            "store, and aggregated into one JSON artifact."
        ),
    )
    parser.add_argument("root", help="sweep root directory (shared mount)")
    parser.add_argument("--networks", nargs="+", default=["MLP-S"],
                        help="evaluation networks (default: MLP-S)")
    parser.add_argument("--designs", nargs="+",
                        default=["baseline_epcm", "einsteinbarrier"],
                        help="design keys to sweep")
    parser.add_argument("--crossbar-sizes", nargs="+", type=int,
                        default=[128, 256], help="crossbar sizes")
    parser.add_argument("--wdm-capacities", nargs="+", type=int,
                        default=[4, 16], help="WDM capacities")
    parser.add_argument("--noise-sigmas", nargs="*", type=float,
                        default=[], help="read-noise sigmas (optional)")
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument("--partitions", type=int, default=None,
                        help=f"partition count (default: "
                             f"${SWEEP_PARTITIONS_ENV} or "
                             f"{DEFAULT_PARTITIONS})")
    parser.add_argument("--store", default=None,
                        help="queue-storage backend (dir|object)")
    parser.add_argument("--timeout", type=float, default=3600.0,
                        help="collection timeout in seconds")
    parser.add_argument("--out", default=None,
                        help="write the final sweep JSON artifact here")
    parser.add_argument("--status", action="store_true",
                        help="report store/pending state, run nothing")
    args = parser.parse_args(argv)

    grid = _build_grid(args)
    if args.status:
        payload = _status_payload(args.root, grid, RECORD_SCHEMA_VERSION)
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0
    result = run_sharded_sweep(
        grid, args.root, partitions=args.partitions,
        timeout_s=args.timeout, store=args.store,
    )
    if args.out:
        write_sweep_json(args.out, result)
    best = result.best()
    json.dump({
        "records": len(result.records),
        "best_design": best.design,
        "best_speedup_vs_baseline": best.speedup_vs_baseline,
        "out": args.out,
    }, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
