"""CI performance regression gate over the benchmark JSON artifacts.

The smoke benchmarks record their measurements into ``BENCH_*.smoke.json``
artifacts; this module compares selected metrics inside those payloads
against committed thresholds (``benchmarks/perf_thresholds.json``) so a
perf regression fails the CI benchmark job instead of silently shifting
the artifact trend.

The thresholds file maps artifact file names to ``{dotted.metric.path:
bound}`` entries; dotted paths are resolved into the artifact's nested
JSON payload.  A bound is either a bare number — a *minimum*, the
historical form, right for throughput/speedup floors — or an object with
``"min"`` and/or ``"max"`` keys, the latter being how latency ceilings
(the serving smoke p99) are gated.  A mapping may additionally carry
``"min_multicore"``: a floor that replaces ``"min"`` when the artifact's
``host.effective_cpus`` header reports two or more cores — how
parallel-speedup floors stay honest on single-core CI runners, where the
physically correct expectation is ~1x.  :func:`check_artifacts` returns one
:class:`GateCheck` per threshold (passing and failing alike) — the gate
passes when every check's ``passed`` is true.  The CLI wrapper lives in
``benchmarks/check_perf_regression.py``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple


@dataclass(frozen=True)
class GateCheck:
    """Outcome of one threshold comparison (for reporting)."""

    artifact: str
    metric: str
    minimum: float | None
    actual: float | None
    maximum: float | None = None

    @property
    def passed(self) -> bool:
        """Whether the metric exists and sits inside its bounds."""
        if self.actual is None:
            return False
        if self.minimum is not None and self.actual < self.minimum:
            return False
        if self.maximum is not None and self.actual > self.maximum:
            return False
        return True

    def describe(self) -> str:
        """One-line human-readable summary of this check."""
        status = "ok  " if self.passed else "FAIL"
        actual = "missing" if self.actual is None else f"{self.actual:.3f}"
        bounds = []
        if self.minimum is not None:
            bounds.append(f"minimum {self.minimum:.3f}")
        if self.maximum is not None:
            bounds.append(f"maximum {self.maximum:.3f}")
        return (
            f"[{status}] {self.artifact}: {self.metric} = {actual} "
            f"({', '.join(bounds) if bounds else 'no bounds'})"
        )


def parse_bounds(bound: object) -> Tuple[float | None, float | None]:
    """Normalise one threshold entry into a ``(minimum, maximum)`` pair.

    A bare number is a minimum (the historical thresholds-file form); a
    mapping may carry ``"min"`` and/or ``"max"``.
    """
    if isinstance(bound, Mapping):
        minimum = bound.get("min")
        maximum = bound.get("max")
        return (
            float(minimum) if minimum is not None else None,
            float(maximum) if maximum is not None else None,
        )
    return float(bound), None  # type: ignore[arg-type]


def resolve_metric(payload: Mapping[str, object], dotted_path: str):
    """Look up a dotted path (``a.b.c``) inside a nested JSON payload.

    Returns ``None`` when any segment is missing or the leaf is not a
    number — the gate reports that as a failure rather than crashing, so a
    renamed metric cannot silently disable its threshold.
    """
    node: object = payload
    for segment in dotted_path.split("."):
        if not isinstance(node, Mapping) or segment not in node:
            return None
        node = node[segment]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def effective_bounds(bound: object, payload: Mapping[str, object]
                     ) -> Tuple[float | None, float | None]:
    """Like :func:`parse_bounds`, with host-conditional floors resolved.

    When a mapping bound carries ``"min_multicore"`` and the artifact's
    ``host.effective_cpus`` header is two or more, that floor replaces
    the plain ``"min"``.  An artifact without the header (or a
    single-core run) keeps the unconditional minimum.
    """
    minimum, maximum = parse_bounds(bound)
    if isinstance(bound, Mapping) and "min_multicore" in bound:
        cpus = resolve_metric(payload, "host.effective_cpus")
        if cpus is not None and cpus >= 2:
            minimum = float(bound["min_multicore"])  # type: ignore[index]
    return minimum, maximum


def check_payload(artifact: str, payload: Mapping[str, object],
                  thresholds: Mapping[str, object]) -> List[GateCheck]:
    """Compare one artifact payload against its metric thresholds."""
    checks = []
    for metric, bound in sorted(thresholds.items()):
        minimum, maximum = effective_bounds(bound, payload)
        checks.append(GateCheck(
            artifact=artifact,
            metric=metric,
            minimum=minimum,
            maximum=maximum,
            actual=resolve_metric(payload, metric),
        ))
    return checks


def check_artifacts(root: str,
                    spec: Mapping[str, Mapping[str, object]]) -> List[GateCheck]:
    """Run every threshold of ``spec`` against the artifacts under ``root``.

    ``spec`` maps artifact file names (relative to ``root``) to their
    metric thresholds.  A missing or unreadable artifact fails all of its
    checks (``actual = None``).
    """
    checks: List[GateCheck] = []
    for artifact, thresholds in sorted(spec.items()):
        path = os.path.join(root, artifact)
        payload: Dict[str, object] = {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict):
                payload = loaded
        except (OSError, ValueError, UnicodeDecodeError):
            # missing/truncated/corrupt artifact: every check fails cleanly
            # (actual=None) instead of crashing the gate
            pass
        checks.extend(check_payload(artifact, payload, thresholds))
    return checks


def _validate_bound(artifact: str, metric: str, bound: object) -> None:
    if isinstance(bound, bool):
        raise ValueError(
            f"bound for {artifact!r}:{metric!r} must be a number"
        )
    if isinstance(bound, (int, float)):
        return
    if isinstance(bound, dict):
        unknown = set(bound) - {"min", "max", "min_multicore"}
        if unknown or not bound:
            raise ValueError(
                f"bound for {artifact!r}:{metric!r} must carry only "
                f"'min'/'max'/'min_multicore' keys (at least one)"
            )
        for key, value in bound.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"{key!r} of {artifact!r}:{metric!r} must be a number"
                )
        minimum, maximum = parse_bounds(bound)
        if minimum is not None and maximum is not None and minimum > maximum:
            raise ValueError(
                f"bound for {artifact!r}:{metric!r} has min > max"
            )
        return
    raise ValueError(
        f"bound for {artifact!r}:{metric!r} must be a number or a "
        f"min/max mapping"
    )


def load_thresholds(path: str) -> Dict[str, Dict[str, object]]:
    """Load and validate a thresholds file."""
    with open(path, "r", encoding="utf-8") as handle:
        spec = json.load(handle)
    if not isinstance(spec, dict):
        raise ValueError("thresholds file must map artifact names to metrics")
    for artifact, thresholds in spec.items():
        if not isinstance(thresholds, dict) or not thresholds:
            raise ValueError(
                f"thresholds for {artifact!r} must be a non-empty mapping"
            )
        for metric, bound in thresholds.items():
            _validate_bound(artifact, metric, bound)
    return spec
