"""Design-space ablations (Sec. VI-C: "Design Space Exploration of oPCM-based
VCores ... is encouraged and left for future work").

Three sweeps the paper fixes to single values but whose influence its
arguments rely on:

* **WDM capacity K** — the extra parallelism dimension of EinsteinBarrier
  (fixed to 16 in the paper);
* **crossbar size** — bounds both the per-tile parallelism of TacitMap and
  the serialisation length of the baseline (fixed to the PUMA-style 256x256);
* **ADC sharing** — how many columns share one converter (footnote 1 of
  Sec. IV assumes fully parallel read-out and promises to revisit it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.arch.accelerator import AcceleratorModel
from repro.arch.config import (
    baseline_epcm_config,
    einsteinbarrier_config,
    tacitmap_epcm_config,
)
from repro.bnn.workload import NetworkWorkload, get_workload


@dataclass(frozen=True)
class SweepPoint:
    """One point of an ablation sweep."""

    parameter: float
    latency: float
    energy: float
    speedup_vs_baseline: float
    energy_ratio_vs_baseline: float


def _workload(network: str | NetworkWorkload) -> NetworkWorkload:
    if isinstance(network, NetworkWorkload):
        return network
    return get_workload(network)


def sweep_wdm_capacity(network: str | NetworkWorkload = "CNN-L", *,
                       capacities: Sequence[int] = (1, 2, 4, 8, 16, 32),
                       crossbar_size: int = 256) -> List[SweepPoint]:
    """EinsteinBarrier latency/energy as a function of WDM capacity K."""
    workload = _workload(network)
    baseline = AcceleratorModel(
        baseline_epcm_config(crossbar_size=crossbar_size)
    ).run_inference(workload)
    points: List[SweepPoint] = []
    for capacity in capacities:
        if capacity < 1:
            raise ValueError("WDM capacity must be >= 1")
        config = einsteinbarrier_config(
            crossbar_size=crossbar_size, wdm_capacity=capacity
        )
        report = AcceleratorModel(config).run_inference(workload)
        points.append(SweepPoint(
            parameter=float(capacity),
            latency=report.latency.total,
            energy=report.energy.total,
            speedup_vs_baseline=baseline.latency.total / report.latency.total,
            energy_ratio_vs_baseline=report.energy.total / baseline.energy.total,
        ))
    return points


def sweep_crossbar_size(network: str | NetworkWorkload = "CNN-L", *,
                        sizes: Sequence[int] = (64, 128, 256, 512, 1024),
                        design: str = "einsteinbarrier") -> List[SweepPoint]:
    """Latency/energy of one design as a function of crossbar array size.

    The baseline reference is re-evaluated at every size so the ratios always
    compare equal-capacity arrays.
    """
    workload = _workload(network)
    factories = {
        "baseline_epcm": baseline_epcm_config,
        "tacitmap_epcm": tacitmap_epcm_config,
        "einsteinbarrier": einsteinbarrier_config,
    }
    if design not in factories:
        raise ValueError(f"unknown design {design!r}; choose from {sorted(factories)}")
    points: List[SweepPoint] = []
    for size in sizes:
        if size < 2:
            raise ValueError("crossbar size must be >= 2")
        baseline = AcceleratorModel(
            baseline_epcm_config(crossbar_size=size)
        ).run_inference(workload)
        report = AcceleratorModel(
            factories[design](crossbar_size=size)
        ).run_inference(workload)
        points.append(SweepPoint(
            parameter=float(size),
            latency=report.latency.total,
            energy=report.energy.total,
            speedup_vs_baseline=baseline.latency.total / report.latency.total,
            energy_ratio_vs_baseline=report.energy.total / baseline.energy.total,
        ))
    return points


def sweep_adc_sharing(network: str | NetworkWorkload = "CNN-L", *,
                      columns_per_adc: Sequence[int] = (1, 2, 4, 8, 16, 32),
                      design: str = "tacitmap_epcm") -> List[SweepPoint]:
    """Latency/energy as a function of how many columns share one ADC."""
    workload = _workload(network)
    baseline = AcceleratorModel(baseline_epcm_config()).run_inference(workload)
    factories = {
        "tacitmap_epcm": tacitmap_epcm_config,
        "einsteinbarrier": einsteinbarrier_config,
    }
    if design not in factories:
        raise ValueError(f"unknown design {design!r}; choose from {sorted(factories)}")
    points: List[SweepPoint] = []
    for share in columns_per_adc:
        if share < 1:
            raise ValueError("columns_per_adc must be >= 1")
        report = AcceleratorModel(
            factories[design](columns_per_adc=share)
        ).run_inference(workload)
        points.append(SweepPoint(
            parameter=float(share),
            latency=report.latency.total,
            energy=report.energy.total,
            speedup_vs_baseline=baseline.latency.total / report.latency.total,
            energy_ratio_vs_baseline=report.energy.total / baseline.energy.total,
        ))
    return points
