"""Plain-text reporting helpers for the benchmarks and examples."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], *,
                 float_format: str = "{:.3g}") -> str:
    """Render a list of rows as an aligned plain-text table."""
    headers = [str(h) for h in headers]
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float], *,
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render one figure series as labelled (x, y) pairs."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    pairs = ", ".join(f"({x:g}, {y:.4g})" for x, y in zip(xs, ys))
    return f"{name} [{x_label} -> {y_label}]: {pairs}"


def format_ratio_summary(label: str, values: Dict[str, float]) -> str:
    """Render a {name: ratio} mapping as a one-line summary."""
    body = ", ".join(f"{key}={value:.3g}x" for key, value in values.items())
    return f"{label}: {body}"
