"""Reporting helpers: plain-text tables and JSON artifacts.

The text formatters serve the benchmarks and examples; the JSON helpers
serialise sweep/benchmark payloads into the artifacts CI uploads per PR so
the performance trajectory stays inspectable over time.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], *,
                 float_format: str = "{:.3g}") -> str:
    """Render a list of rows as an aligned plain-text table."""
    headers = [str(h) for h in headers]
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float], *,
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render one figure series as labelled (x, y) pairs."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    pairs = ", ".join(f"({x:g}, {y:.4g})" for x, y in zip(xs, ys))
    return f"{name} [{x_label} -> {y_label}]: {pairs}"


def format_ratio_summary(label: str, values: Dict[str, float]) -> str:
    """Render a {name: ratio} mapping as a one-line summary."""
    body = ", ".join(f"{key}={value:.3g}x" for key, value in values.items())
    return f"{label}: {body}"


def host_info() -> Dict[str, object]:
    """Hardware context of a benchmark run: this host's CPU budget.

    Recorded in every ``BENCH_*`` artifact header so performance gates
    can condition their floors on the cores the measuring run actually
    had.  ``effective_cpus`` honours the scheduler affinity mask — the
    number CI containers actually constrain — while ``cpu_count`` is the
    raw host total.
    """
    count = os.cpu_count() or 1
    try:
        effective = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        effective = count
    return {"cpu_count": count, "effective_cpus": effective}


def write_json_report(path: str, payload: Mapping[str, object]) -> None:
    """Write ``payload`` to ``path`` as deterministic, human-diffable JSON.

    Keys are sorted and the file ends with a newline so repeated runs with
    identical results produce byte-identical artifacts (the property the
    sweep determinism tests and the CI artifact diffing rely on).
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def summarise_sweep_stream(records: Iterable[Mapping[str, object]], *,
                           metric: str = "speedup_vs_baseline"
                           ) -> Dict[str, object]:
    """One-pass summary of a *stream* of sweep records.

    Built for the columnar streaming reader
    (:func:`repro.eval.columnar.iter_sweep_rows` — pass the records as
    dicts): the stream is consumed exactly once, O(1) memory beyond the
    running aggregates, so a 10^7-row store summarises without ever
    materialising the record set.  Returns the record count, the best
    record (by ``metric``), stream means and the axis values seen —
    the fields ``benchmarks/record_trend.py`` and the sharded-sweep
    benchmark publish.
    """
    count = 0
    best: Dict[str, object] = {}
    latency_sum = 0.0
    metric_sum = 0.0
    designs: set = set()
    networks: set = set()
    for record in records:
        count += 1
        value = float(record[metric])  # type: ignore[arg-type]
        metric_sum += value
        latency_sum += float(record["latency_s"])  # type: ignore[arg-type]
        if not best or value > float(best[metric]):  # type: ignore[arg-type]
            best = dict(record)
        designs.add(str(record["design"]))
        networks.add(str(record["network"]))
    return {
        "records": count,
        "metric": metric,
        "best": best or None,
        f"best_{metric}": float(best[metric]) if best else 0.0,
        f"mean_{metric}": metric_sum / count if count else 0.0,
        "mean_latency_s": latency_sum / count if count else 0.0,
        "designs": sorted(designs),
        "networks": sorted(networks),
    }


def format_sweep_table(records: Iterable[Mapping[str, object]]) -> str:
    """Render sweep records (as dicts) as an aligned plain-text table."""
    headers = [
        "network", "design", "size", "K", "noise", "latency[us]",
        "speedup", "energy ratio", "popcount err", "nodes", "util",
    ]
    rows = []
    for record in records:
        noise = record.get("noise_sigma")
        error = record.get("popcount_error")
        utilisation = record.get("node_utilisation")
        rows.append([
            record["network"],
            record["design"],
            int(record["crossbar_size"]),
            int(record["wdm_capacity"]),
            "-" if noise is None else f"{noise:g}",
            float(record["latency_s"]) * 1e6,
            float(record["speedup_vs_baseline"]),
            float(record["energy_ratio_vs_baseline"]),
            "-" if error is None else f"{error:.3g}",
            int(record.get("nodes_required", 1)),
            "-" if utilisation is None else f"{utilisation:.2f}",
        ])
    return format_table(headers, rows)
