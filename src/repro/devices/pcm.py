"""Electronic phase-change memory (ePCM) device model.

The paper's ePCM crossbars (Baseline-ePCM and TacitMap-ePCM) store one bit
per cell: the crystalline state is a high conductance ``g_on`` and the
amorphous state a low conductance ``g_off``.  The model captures the
non-idealities that matter for a *binary* read-out:

* programming (cycle-to-cycle) variability — each programmed conductance is
  drawn from a log-normal distribution around its nominal state,
* read noise — an additive Gaussian perturbation on every read,
* resistance drift — amorphous-state conductance decays as
  ``g(t) = g0 * (t / t0)^(-nu)``, the standard empirical drift law
  (Sec. II-C lists drift as an ePCM challenge that oPCM avoids),
* per-operation latency and energy for reads and writes, consumed by the
  architecture-level timing/energy models.

Defaults follow the public characterisation literature the paper builds on
(MNEMOSENE-class mushroom cells, tens-of-µS ON conductance, ~100 ns read
pulse, ~10 pJ-class write energy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, make_rng
from repro.utils.units import NANO, PICO
from repro.utils.validation import check_binary, check_probability


@dataclass(frozen=True)
class EPCMConfig:
    """Parameters of a binary ePCM cell.

    Attributes
    ----------
    g_on:
        Crystalline (SET) conductance in siemens.
    g_off:
        Amorphous (RESET) conductance in siemens.
    programming_sigma:
        Relative log-normal spread of the programmed conductance
        (cycle-to-cycle variability).
    read_noise_sigma:
        Relative std-dev of additive Gaussian read noise, expressed as a
        fraction of ``g_on``.
    drift_nu_amorphous:
        Drift exponent of the amorphous state (crystalline drift is
        negligible and modelled as 0).
    drift_t0:
        Reference time of the drift law in seconds.
    read_voltage:
        Read voltage applied to a row during a VMM, in volts.
    read_latency:
        Duration of one crossbar read pulse, in seconds.
    write_latency:
        Duration of one program (SET/RESET) operation, in seconds.
    read_energy_per_cell:
        Energy dissipated in one cell during one read, in joules.
    write_energy_per_cell:
        Energy of one program pulse, in joules.
    """

    g_on: float = 25e-6
    g_off: float = 0.1e-6
    programming_sigma: float = 0.02
    read_noise_sigma: float = 0.005
    drift_nu_amorphous: float = 0.05
    drift_t0: float = 1.0
    read_voltage: float = 0.2
    read_latency: float = 100 * NANO
    write_latency: float = 500 * NANO
    read_energy_per_cell: float = 0.05 * PICO
    write_energy_per_cell: float = 10.0 * PICO

    def __post_init__(self) -> None:
        if self.g_on <= self.g_off:
            raise ValueError(
                f"g_on ({self.g_on}) must exceed g_off ({self.g_off}) for a "
                "binary-readable device"
            )
        if self.g_off < 0:
            raise ValueError("g_off must be non-negative")
        check_probability("programming_sigma", self.programming_sigma)
        check_probability("read_noise_sigma", self.read_noise_sigma)
        if self.read_latency <= 0 or self.write_latency <= 0:
            raise ValueError("latencies must be positive")
        if self.read_voltage <= 0:
            raise ValueError("read_voltage must be positive")

    @property
    def on_off_ratio(self) -> float:
        """Ratio of ON to OFF conductance (read-margin figure of merit)."""
        return self.g_on / max(self.g_off, 1e-30)


class EPCMDeviceArray:
    """A 2-D array of binary ePCM cells.

    The array stores nominal programmed conductances and exposes noisy,
    drift-aware conductance snapshots for the analog crossbar model, plus the
    latency/energy of the program operation.
    """

    def __init__(self, rows: int, cols: int, *,
                 config: Optional[EPCMConfig] = None,
                 rng: RngLike = None) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        self.rows = int(rows)
        self.cols = int(cols)
        self.config = config if config is not None else EPCMConfig()
        self._rng = make_rng(rng)
        self._bits = np.zeros((rows, cols), dtype=np.int8)
        self._programmed_g = np.full((rows, cols), self.config.g_off)
        self._programmed = False

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, cols) of the device array."""
        return (self.rows, self.cols)

    @property
    def stored_bits(self) -> np.ndarray:
        """The last bit pattern programmed into the array (copy)."""
        return self._bits.copy()

    def program(self, bits: np.ndarray) -> dict[str, float]:
        """Program the array with a binary pattern.

        Parameters
        ----------
        bits:
            Binary matrix of shape ``(rows, cols)``; 1 programs the
            crystalline (high-G) state, 0 the amorphous (low-G) state.

        Returns
        -------
        dict
            ``{"latency": seconds, "energy": joules}`` of the programming
            operation (cells are written row-by-row, one pulse per cell).
        """
        bits = check_binary("bits", bits)
        if bits.shape != (self.rows, self.cols):
            raise ValueError(
                f"bits shape {bits.shape} does not match array {self.shape}"
            )
        self._bits = bits.astype(np.int8)
        nominal = np.where(bits == 1, self.config.g_on, self.config.g_off)
        if self.config.programming_sigma > 0:
            spread = self._rng.lognormal(
                mean=0.0, sigma=self.config.programming_sigma, size=bits.shape
            )
        else:
            spread = 1.0
        self._programmed_g = nominal * spread
        self._programmed = True
        cells = self.rows * self.cols
        return {
            "latency": self.rows * self.config.write_latency,
            "energy": cells * self.config.write_energy_per_cell,
        }

    def conductances(self, *, time_since_program: float = 0.0,
                     with_read_noise: bool = True) -> np.ndarray:
        """Return a conductance snapshot of the array.

        Parameters
        ----------
        time_since_program:
            Seconds elapsed since programming; amorphous cells drift downward
            following the power-law drift model.
        with_read_noise:
            Add per-read Gaussian noise when ``True``.
        """
        if not self._programmed:
            raise RuntimeError("array must be programmed before reading")
        if time_since_program < 0:
            raise ValueError("time_since_program must be non-negative")
        conductance = self._programmed_g.copy()
        if time_since_program > 0 and self.config.drift_nu_amorphous > 0:
            factor = (
                (time_since_program + self.config.drift_t0) / self.config.drift_t0
            ) ** (-self.config.drift_nu_amorphous)
            amorphous = self._bits == 0
            conductance[amorphous] *= factor
        if with_read_noise and self.config.read_noise_sigma > 0:
            noise = self._rng.normal(
                0.0, self.config.read_noise_sigma * self.config.g_on,
                size=conductance.shape,
            )
            conductance = np.clip(conductance + noise, 0.0, None)
        return conductance

    def read_cost(self, active_rows: int) -> dict[str, float]:
        """Latency/energy of one crossbar read activating ``active_rows`` rows."""
        if active_rows <= 0 or active_rows > self.rows:
            raise ValueError(
                f"active_rows must be in [1, {self.rows}], got {active_rows}"
            )
        return {
            "latency": self.config.read_latency,
            "energy": active_rows * self.cols * self.config.read_energy_per_cell,
        }
