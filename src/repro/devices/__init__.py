"""Non-volatile memory device models.

Two binary-state device families back the crossbars in this reproduction:

* :mod:`repro.devices.pcm` — *electronic* phase-change memory (ePCM) cells
  read as conductances through a 1T1R/2T2R crossbar (the technology behind
  TacitMap-ePCM and the Baseline-ePCM design), and
* :mod:`repro.devices.opcm` — *optical* phase-change memory (oPCM) cells,
  i.e. GST patches on silicon waveguides read as optical transmissions
  (the technology behind EinsteinBarrier's VCores).

Both models expose binary programming (the paper deliberately uses PCM in a
binary mode, Sec. II-C), stochastic programming variability, read noise, and
per-operation latency/energy numbers consumed by the architecture models.
"""

from repro.devices.pcm import EPCMConfig, EPCMDeviceArray
from repro.devices.opcm import OPCMConfig, OPCMDeviceArray

__all__ = [
    "EPCMConfig",
    "EPCMDeviceArray",
    "OPCMConfig",
    "OPCMDeviceArray",
]
