"""Optical phase-change memory (oPCM) device model.

EinsteinBarrier's VCores store one bit per GST (Ge2Sb2Te5) patch deposited on
a silicon waveguide: the amorphous state is nearly transparent (high optical
transmission) and the crystalline state absorbs most of the guided light (low
transmission).  A weight bit therefore modulates how much of the incoming
optical power reaches the column photodetector, and the accumulated
photocurrent of a column realises the multiply-accumulate — the photonic
analogue of Kirchhoff summation.

Compared to the ePCM model, the oPCM model

* has *no resistance drift and no Joule-heating constraints* (Sec. II-C lists
  these as ePCM challenges that the optical device avoids),
* reads at optical-link rates (GHz-class, i.e. ~1 ns per crossbar read
  instead of ~100 ns),
* spends almost no energy in the cell itself during a read (the light is
  supplied by the transmitter's laser, accounted separately by
  :mod:`repro.photonics.power`), and
* still pays a slow, energetic write (the GST phase transition), which is
  fine for inference where weights are written once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, make_rng
from repro.utils.units import NANO, PICO
from repro.utils.validation import check_binary, check_probability


@dataclass(frozen=True)
class OPCMConfig:
    """Parameters of a binary oPCM (GST-on-waveguide) cell.

    Attributes
    ----------
    t_high:
        Optical transmission of the amorphous (bit 1) state, in [0, 1].
    t_low:
        Optical transmission of the crystalline (bit 0) state, in [0, 1].
    programming_sigma:
        Relative spread of the programmed transmission.
    read_noise_sigma:
        Relative std-dev of per-read noise (laser RIN + detector noise
        referred to the transmission domain).
    read_latency:
        Duration of one optical crossbar read, in seconds (photonic rates).
    write_latency:
        Duration of one program operation (GST phase switch), in seconds.
    read_energy_per_cell:
        Electrical energy dissipated per cell per read (essentially zero;
        optical power is accounted in the transmitter model).
    write_energy_per_cell:
        Energy of one program pulse, in joules.
    insertion_loss_db:
        Passive insertion loss contributed by each cell, in dB.
    """

    t_high: float = 0.92
    t_low: float = 0.10
    programming_sigma: float = 0.02
    read_noise_sigma: float = 0.01
    read_latency: float = 1.0 * NANO
    write_latency: float = 100 * NANO
    read_energy_per_cell: float = 0.001 * PICO
    write_energy_per_cell: float = 15.0 * PICO
    insertion_loss_db: float = 0.05

    def __post_init__(self) -> None:
        check_probability("t_high", self.t_high)
        check_probability("t_low", self.t_low)
        if self.t_high <= self.t_low:
            raise ValueError(
                f"t_high ({self.t_high}) must exceed t_low ({self.t_low})"
            )
        check_probability("programming_sigma", self.programming_sigma)
        check_probability("read_noise_sigma", self.read_noise_sigma)
        if self.read_latency <= 0 or self.write_latency <= 0:
            raise ValueError("latencies must be positive")
        if self.insertion_loss_db < 0:
            raise ValueError("insertion_loss_db must be non-negative")

    @property
    def extinction_ratio_db(self) -> float:
        """Extinction ratio between the two states, in dB."""
        return 10.0 * np.log10(self.t_high / max(self.t_low, 1e-12))


class OPCMDeviceArray:
    """A 2-D array of binary oPCM cells exposing transmission snapshots."""

    def __init__(self, rows: int, cols: int, *,
                 config: Optional[OPCMConfig] = None,
                 rng: RngLike = None) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        self.rows = int(rows)
        self.cols = int(cols)
        self.config = config if config is not None else OPCMConfig()
        self._rng = make_rng(rng)
        self._bits = np.zeros((rows, cols), dtype=np.int8)
        self._programmed_t = np.full((rows, cols), self.config.t_low)
        self._programmed = False

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, cols) of the device array."""
        return (self.rows, self.cols)

    @property
    def stored_bits(self) -> np.ndarray:
        """The last bit pattern programmed into the array (copy)."""
        return self._bits.copy()

    def program(self, bits: np.ndarray) -> dict[str, float]:
        """Program the array with a binary pattern (1 = high transmission).

        Returns the latency/energy of the programming operation.
        """
        bits = check_binary("bits", bits)
        if bits.shape != (self.rows, self.cols):
            raise ValueError(
                f"bits shape {bits.shape} does not match array {self.shape}"
            )
        self._bits = bits.astype(np.int8)
        nominal = np.where(bits == 1, self.config.t_high, self.config.t_low)
        if self.config.programming_sigma > 0:
            spread = 1.0 + self._rng.normal(
                0.0, self.config.programming_sigma, size=bits.shape
            )
        else:
            spread = 1.0
        self._programmed_t = np.clip(nominal * spread, 0.0, 1.0)
        self._programmed = True
        cells = self.rows * self.cols
        return {
            "latency": self.rows * self.config.write_latency,
            "energy": cells * self.config.write_energy_per_cell,
        }

    def transmissions(self, *, with_read_noise: bool = True) -> np.ndarray:
        """Return a transmission snapshot of the array (no drift in oPCM)."""
        if not self._programmed:
            raise RuntimeError("array must be programmed before reading")
        transmission = self._programmed_t.copy()
        if with_read_noise and self.config.read_noise_sigma > 0:
            noise = self._rng.normal(
                0.0, self.config.read_noise_sigma, size=transmission.shape
            )
            transmission = np.clip(transmission + noise, 0.0, 1.0)
        return transmission

    def read_cost(self, active_rows: int) -> dict[str, float]:
        """Latency/energy of one optical crossbar read."""
        if active_rows <= 0 or active_rows > self.rows:
            raise ValueError(
                f"active_rows must be in [1, {self.rows}], got {active_rows}"
            )
        return {
            "latency": self.config.read_latency,
            "energy": active_rows * self.cols * self.config.read_energy_per_cell,
        }
