"""End-to-end functional verification of mapped layers.

These helpers close the loop between the three levels of the reproduction:

1. the software reference (Eq. 1 evaluated with
   :func:`repro.bnn.xnor_ops.binary_matmul`),
2. the *mapping* level (tile placements + reference tile arithmetic), and
3. the *analog* level (tile placements programmed into
   :class:`~repro.crossbar.array.CrossbarArray` devices and read back through
   the noisy ADC path).

`verify_layer_equivalence` is used both by the test-suite and by the
quickstart example to demonstrate that TacitMap (and the baseline mapping)
compute exactly the XNOR+Popcount the paper's Eq. 1 prescribes.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.bnn.binarize import to_unipolar
from repro.bnn.xnor_ops import binary_matmul
from repro.core.custbinarymap import CustBinaryMap
from repro.core.mapping_base import DataMapping, LayerMapping
from repro.core.tacitmap import TacitMap
from repro.crossbar.array import CrossbarArray
from repro.utils.rng import RngLike
from repro.utils.validation import check_binary

Backend = Literal["reference", "analog"]


def execute_mapped_layer(mapping: DataMapping, layer_mapping: LayerMapping,
                         weight_bits: np.ndarray, input_bits: np.ndarray, *,
                         backend: Backend = "reference",
                         technology: str = "epcm",
                         rng: RngLike = None) -> np.ndarray:
    """Evaluate a mapped binary layer for a batch of unipolar input vectors.

    Parameters
    ----------
    mapping:
        The :class:`TacitMap` or :class:`CustBinaryMap` instance that
        produced ``layer_mapping``.
    layer_mapping:
        Tile placement returned by ``mapping.map_layer``.
    weight_bits:
        The layer's unipolar weights ``(n, m)`` (used only by the baseline's
        row-serial reference path).
    input_bits:
        Batch of unipolar activation vectors ``(batch, m)``.
    backend:
        ``"reference"`` evaluates the ideal tile arithmetic; ``"analog"``
        programs each tile into a :class:`CrossbarArray` and reads counts
        through the noisy analog path (TacitMap only — the baseline's PCSA
        path is digital after the sense).
    technology:
        Device technology for the analog backend (``"epcm"`` or ``"opcm"``).

    Returns
    -------
    numpy.ndarray
        Integer popcounts of shape ``(batch, n)`` —
        ``popcount(XNOR(x, w_j))`` for every input ``x`` and weight vector
        ``w_j``.
    """
    weight_bits = check_binary("weight_bits", weight_bits)
    inputs = check_binary("input_bits", np.atleast_2d(input_bits))
    batch = inputs.shape[0]
    counts = np.zeros((batch, layer_mapping.num_weight_vectors), dtype=np.int64)

    if isinstance(mapping, TacitMap):
        for tile in layer_mapping.tiles:
            encoded = mapping.encode_input(inputs, tile.vector_slice)
            if backend == "analog":
                array = CrossbarArray(
                    tile.bits.shape[0], tile.bits.shape[1],
                    technology=technology, rng=rng,
                )
                array.program(tile.bits)
                partial = np.atleast_2d(array.match_counts(encoded))
            else:
                partial = TacitMap.tile_counts_reference(tile.bits, encoded)
            start, stop = tile.output_slice
            counts[:, start:stop] += partial
        return counts

    if isinstance(mapping, CustBinaryMap):
        if backend == "analog":
            raise ValueError(
                "the baseline mapping's analog path reduces to per-bit XNOR "
                "sensing; use the reference backend"
            )
        for tile in layer_mapping.tiles:
            encoded = mapping.encode_input(inputs, tile.vector_slice)
            out_start, out_stop = tile.output_slice
            for local_row in range(tile.bits.shape[0]):
                stored = tile.bits[local_row]
                for sample in range(batch):
                    xnor_bits = CustBinaryMap.row_xnor_reference(
                        stored, encoded[sample]
                    )
                    counts[sample, out_start + local_row] += int(xnor_bits.sum())
        return counts

    raise TypeError(f"unsupported mapping type {type(mapping)!r}")


def verify_layer_equivalence(mapping: DataMapping,
                             weights_bipolar: np.ndarray,
                             inputs_bipolar: np.ndarray, *,
                             backend: Backend = "reference",
                             technology: str = "epcm",
                             rng: RngLike = None,
                             layer_name: str = "verify") -> dict:
    """Check a mapped layer against Eq. 1 evaluated in software.

    Returns a result dictionary with the mapped popcounts, the recovered
    bipolar dot products (``2*count - m``), the software reference, and an
    ``equivalent`` flag.
    """
    weights_bipolar = np.asarray(weights_bipolar)
    inputs_bipolar = np.atleast_2d(np.asarray(inputs_bipolar))
    weight_bits = to_unipolar(weights_bipolar)
    input_bits = to_unipolar(inputs_bipolar)

    layer_mapping = mapping.map_layer(weight_bits, layer_name=layer_name)
    counts = execute_mapped_layer(
        mapping, layer_mapping, weight_bits, input_bits,
        backend=backend, technology=technology, rng=rng,
    )
    vector_length = weights_bipolar.shape[1]
    recovered = 2 * counts - vector_length
    reference = binary_matmul(inputs_bipolar, weights_bipolar)
    return {
        "counts": counts,
        "recovered_dot_products": recovered,
        "reference_dot_products": reference,
        "equivalent": bool(np.array_equal(recovered, reference)),
        "num_tiles": layer_mapping.num_tiles,
        "mapping": layer_mapping.mapping_name,
    }
