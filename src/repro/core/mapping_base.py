"""Shared machinery for crossbar data mappings.

A *data mapping* answers three questions for a binary layer with weight
matrix ``W`` (``n`` weight vectors of length ``m``):

1. **Placement** — which bits go into which cells of which physical crossbar
   tile (:class:`MappedTile` / :class:`LayerMapping`)?
2. **Input encoding** — how is an activation vector presented to the rows (or
   bit lines) of each tile?
3. **Operation schedule** — how many crossbar activations, analog-to-digital
   conversions, sense operations and digital additions does one inference
   need, and how many of them can overlap?

TacitMap and CustBinaryMap implement the :class:`DataMapping` interface; the
schedule module converts their placements into operation counts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.utils.validation import check_binary


@dataclass(frozen=True)
class TileShape:
    """Physical dimensions of one crossbar tile.

    ``rows`` counts word lines and ``cols`` counts bit-line outputs (for a
    2T2R tile a "column" is one differential pair read by one PCSA).
    """

    rows: int = 256
    cols: int = 256

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("tile rows and cols must be positive")


@dataclass(frozen=True)
class MappedTile:
    """One physical tile's worth of placed weight bits.

    Attributes
    ----------
    layer_name:
        Name of the layer this tile belongs to.
    grid_position:
        ``(segment_index, group_index)`` — which slice of the weight matrix
        this tile holds.  For TacitMap, ``segment_index`` walks the vector
        dimension (rows) and ``group_index`` the weight-vector dimension
        (columns); for CustBinaryMap the roles are transposed.
    bits:
        The binary pattern programmed into the tile (rows x cols of the tile
        actually used; may be smaller than the physical tile).
    vector_slice:
        ``(start, stop)`` range of the weight-vector *element* dimension
        handled by this tile.
    output_slice:
        ``(start, stop)`` range of weight vectors (output neurons) handled by
        this tile.
    """

    layer_name: str
    grid_position: Tuple[int, int]
    bits: np.ndarray
    vector_slice: Tuple[int, int]
    output_slice: Tuple[int, int]

    @property
    def used_rows(self) -> int:
        """Number of physical rows this tile occupies."""
        return int(self.bits.shape[0])

    @property
    def used_cols(self) -> int:
        """Number of physical columns this tile occupies."""
        return int(self.bits.shape[1])

    @property
    def num_outputs(self) -> int:
        """Weight vectors (outputs) mapped to this tile."""
        return self.output_slice[1] - self.output_slice[0]

    @property
    def vector_elements(self) -> int:
        """Weight-vector elements mapped to this tile."""
        return self.vector_slice[1] - self.vector_slice[0]


@dataclass(frozen=True)
class LayerMapping:
    """All tiles of one mapped binary layer plus bookkeeping totals."""

    layer_name: str
    mapping_name: str
    tile_shape: TileShape
    vector_length: int
    num_weight_vectors: int
    tiles: List[MappedTile] = field(default_factory=list)
    num_vector_segments: int = 1
    num_output_groups: int = 1

    @property
    def num_tiles(self) -> int:
        """Number of physical tiles the layer occupies."""
        return len(self.tiles)

    @property
    def cells_used(self) -> int:
        """Total crossbar cells programmed across all tiles."""
        return int(sum(tile.bits.size for tile in self.tiles))

    def tiles_by_grid(self) -> Dict[Tuple[int, int], MappedTile]:
        """Index the tiles by their ``grid_position``."""
        return {tile.grid_position: tile for tile in self.tiles}


class DataMapping(ABC):
    """Interface implemented by TacitMap and CustBinaryMap."""

    #: short identifier used in schedules and reports
    name: str = "abstract"

    def __init__(self, tile_shape: TileShape | None = None) -> None:
        self.tile_shape = tile_shape if tile_shape is not None else TileShape()

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    @abstractmethod
    def map_layer(self, weight_bits: np.ndarray, *,
                  layer_name: str = "layer") -> LayerMapping:
        """Place a layer's unipolar weight bits ``(n, m)`` onto tiles."""

    # ------------------------------------------------------------------ #
    # Input encoding
    # ------------------------------------------------------------------ #
    @abstractmethod
    def encode_input(self, input_bits: np.ndarray,
                     vector_slice: Tuple[int, int]) -> np.ndarray:
        """Encode the slice of an activation vector a given tile consumes."""

    # ------------------------------------------------------------------ #
    # First-order step counts (the headline claim of Sec. III)
    # ------------------------------------------------------------------ #
    @abstractmethod
    def steps_per_input_vector(self, num_weight_vectors: int) -> int:
        """Crossbar steps needed to evaluate one activation vector against
        ``num_weight_vectors`` stored weight vectors on a single tile."""

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate_weights(weight_bits: np.ndarray) -> np.ndarray:
        weights = check_binary("weight_bits", weight_bits)
        if weights.ndim != 2:
            raise ValueError(
                f"weight_bits must be 2-D (n_vectors, length), got {weights.ndim}-D"
            )
        return weights

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(tile={self.tile_shape.rows}"
            f"x{self.tile_shape.cols})"
        )


def split_ranges(total: int, chunk: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into consecutive ``(start, stop)`` chunks."""
    if total <= 0:
        raise ValueError("total must be positive")
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    return [(start, min(start + chunk, total)) for start in range(0, total, chunk)]
