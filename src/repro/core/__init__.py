"""Core contribution of the paper: the data mappings for BNN XNOR+Popcount.

* :mod:`repro.core.tacitmap` — **TacitMap**, the proposed mapping: weight
  vectors and their complements stacked vertically in 1T1R crossbar columns,
  read out as popcounts through the column ADCs in a single VMM step.
* :mod:`repro.core.custbinarymap` — **CustBinaryMap**, the state-of-the-art
  baseline mapping (Hirtzlin et al.): weight/complement bits interleaved
  horizontally in 2T2R rows, read one weight vector at a time through PCSAs
  followed by digital popcount circuitry.
* :mod:`repro.core.mapping_base` — shared tiling/placement machinery.
* :mod:`repro.core.schedule` — operation-count schedules (crossbar
  activations, ADC conversions, sense operations, digital adds) per layer,
  consumed by the architecture timing and energy models.
* :mod:`repro.core.verify` — end-to-end functional equivalence checks of a
  mapped layer against Eq. 1 evaluated in software.
"""

from repro.core.custbinarymap import CustBinaryMap
from repro.core.mapping_base import (
    DataMapping,
    LayerMapping,
    MappedTile,
    TileShape,
)
from repro.core.schedule import LayerSchedule, NetworkSchedule, build_network_schedule
from repro.core.tacitmap import TacitMap
from repro.core.verify import execute_mapped_layer, verify_layer_equivalence

__all__ = [
    "CustBinaryMap",
    "DataMapping",
    "LayerMapping",
    "MappedTile",
    "TileShape",
    "LayerSchedule",
    "NetworkSchedule",
    "build_network_schedule",
    "TacitMap",
    "execute_mapped_layer",
    "verify_layer_equivalence",
]
