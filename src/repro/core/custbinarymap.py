"""CustBinaryMap: the state-of-the-art baseline mapping (Hirtzlin et al.).

The baseline design stores each weight vector *horizontally* in one 2T2R
memory row: cell ``(i, j)`` of the row holds bit ``w_i[j]`` in its first
device and the complement ``~w_i[j]`` in its second device (Fig. 2-(a),
Fig. 3-(a)).  The activation vector is likewise interleaved with its
complement and driven on the bit lines.  One read step activates a *single*
word line (one stored weight vector); the pre-charge sense amplifier of each
column pair compares the true and complement branch currents and latches the
XNOR of the input bit and the stored bit.  A digital popcount tree then
reduces the ``m`` XNOR bits to the count.

Consequences the evaluation leans on (Sec. III):

* evaluating ``n`` weight vectors takes at least ``n`` sequential steps
  (one row activation each), versus TacitMap's single VMM;
* every step needs digital post-processing (local 5-bit column counters plus
  a global popcount tree), which TacitMap avoids entirely;
* on the flip side each step only fires cheap PCSAs instead of ADCs, which is
  why the baseline wins on energy per activation (Fig. 8).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.mapping_base import (
    DataMapping,
    LayerMapping,
    MappedTile,
    split_ranges,
)
from repro.utils.validation import check_binary

#: width (in bits) of the per-column local popcount counters of the baseline
LOCAL_COUNTER_BITS = 5


class CustBinaryMap(DataMapping):
    """The 2T2R row-wise interleaved mapping used by the SotA baseline."""

    name = "custbinarymap"

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def map_layer(self, weight_bits: np.ndarray, *,
                  layer_name: str = "layer") -> LayerMapping:
        """Place unipolar weights ``(n, m)`` as interleaved 2T2R rows.

        A tile column corresponds to one 2T2R cell (one weight bit plus its
        complement), so a tile holds up to ``cols`` weight-bit positions and
        ``rows`` weight vectors.  The stored pattern records the *true* bits;
        the complement device content is implied by the cell structure.
        """
        weights = self._validate_weights(weight_bits)
        num_vectors, length = weights.shape

        output_groups = split_ranges(num_vectors, self.tile_shape.rows)
        vector_segments = split_ranges(length, self.tile_shape.cols)

        tiles: List[MappedTile] = []
        for segment_index, (element_start, element_stop) in enumerate(vector_segments):
            for group_index, (output_start, output_stop) in enumerate(output_groups):
                block = weights[output_start:output_stop, element_start:element_stop]
                tiles.append(
                    MappedTile(
                        layer_name=layer_name,
                        grid_position=(segment_index, group_index),
                        bits=block.astype(np.int8),
                        vector_slice=(element_start, element_stop),
                        output_slice=(output_start, output_stop),
                    )
                )
        return LayerMapping(
            layer_name=layer_name,
            mapping_name=self.name,
            tile_shape=self.tile_shape,
            vector_length=length,
            num_weight_vectors=num_vectors,
            tiles=tiles,
            num_vector_segments=len(vector_segments),
            num_output_groups=len(output_groups),
        )

    # ------------------------------------------------------------------ #
    # Input encoding
    # ------------------------------------------------------------------ #
    def encode_input(self, input_bits: np.ndarray,
                     vector_slice: Tuple[int, int]) -> np.ndarray:
        """Bit-line drive for one tile: just the input slice.

        The complement bit lines are implied by the 2T2R structure (the cell
        compares against both), so the encoded input is the plain slice; the
        interleaving is a wiring detail that does not change the bit content.
        """
        bits = check_binary("input_bits", input_bits)
        start, stop = vector_slice
        if not (0 <= start < stop <= bits.shape[-1]):
            raise ValueError(
                f"vector_slice {vector_slice} out of range for input of "
                f"length {bits.shape[-1]}"
            )
        return bits[..., start:stop]

    # ------------------------------------------------------------------ #
    # Step counts
    # ------------------------------------------------------------------ #
    def steps_per_input_vector(self, num_weight_vectors: int) -> int:
        """One row activation per stored weight vector (n sequential steps)."""
        if num_weight_vectors <= 0:
            raise ValueError("num_weight_vectors must be positive")
        return num_weight_vectors

    # ------------------------------------------------------------------ #
    # Per-step functional evaluation (used by the verification layer)
    # ------------------------------------------------------------------ #
    @staticmethod
    def row_xnor_reference(stored_row_bits: np.ndarray,
                           input_bits: np.ndarray) -> np.ndarray:
        """Bits latched by the PCSAs for one activated row (ideal).

        Each 2T2R column compares the input bit against the stored bit and
        its complement; the latched value is their XNOR.
        """
        stored_row_bits = check_binary("stored_row_bits", stored_row_bits)
        input_bits = check_binary("input_bits", input_bits)
        if stored_row_bits.shape != input_bits.shape:
            raise ValueError("stored row and input must have the same length")
        return (stored_row_bits == input_bits).astype(np.int8)

    @staticmethod
    def popcount_tree_adds(num_bits: int) -> int:
        """Number of two-input additions a popcount tree over ``num_bits`` needs."""
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        return num_bits - 1

    @staticmethod
    def popcount_tree_depth(num_bits: int) -> int:
        """Depth (levels) of the popcount adder tree over ``num_bits`` inputs."""
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        return int(np.ceil(np.log2(num_bits))) if num_bits > 1 else 0
