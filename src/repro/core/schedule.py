"""Operation-count schedules for mapped BNN layers.

The architecture-level timing and energy models (both for EinsteinBarrier and
for the baselines) do not re-simulate tensor values — they consume *operation
counts*: how many crossbar activations a layer needs, how many of them are on
the critical path when tiles run in parallel, how many ADC conversions / PCSA
senses / digital additions accompany them, and how many cells must be
programmed.  This module derives those counts from a
:class:`~repro.bnn.workload.LayerSpec` plus a mapping and tile geometry.

The counts encode the paper's first-order claims directly:

* TacitMap needs ``ceil(v / K)`` crossbar steps per tile for ``v`` activation
  vectors and WDM capacity ``K`` (``K = 1`` on ePCM), independent of how many
  weight vectors the tile stores — the "1-step XNOR+Popcount" property;
* CustBinaryMap needs one row activation per stored weight vector per
  activation vector, plus a digital popcount per output — the "n-step"
  behaviour TacitMap removes.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bnn.workload import LayerSpec, NetworkWorkload
from repro.core.custbinarymap import CustBinaryMap
from repro.core.mapping_base import TileShape
from repro.core.tacitmap import TacitMap


@dataclass(frozen=True)
class LayerSchedule:
    """Operation counts for one binary layer under one mapping.

    All counts are per single inference (one input sample).

    Attributes
    ----------
    layer_name, mapping_name:
        Identification of the layer and the mapping that produced the counts.
    wdm_capacity:
        WDM capacity K used when grouping activation vectors (1 = no WDM).
    num_tiles:
        Physical crossbar tiles occupied by the layer's weights.
    crossbar_activations:
        Total analog array activations (every tile counted individually).
    sequential_steps:
        Activations on the critical path assuming all tiles of the layer
        operate concurrently (the intra-layer parallelism both designs have).
    adc_conversions:
        Analog-to-digital conversions performed (TacitMap/EinsteinBarrier).
    pcsa_senses:
        Sense-amplifier operations performed (CustBinaryMap baseline).
    dac_drives:
        Row/bit-line driver conversions performed.
    digital_adds:
        Two-input digital additions (popcount trees for the baseline,
        partial-count accumulation across row segments for TacitMap).
    popcount_tree_depth:
        Depth of the baseline's popcount tree (0 when unused).
    cells_programmed:
        Crossbar cells written when loading the layer's weights.
    """

    layer_name: str
    mapping_name: str
    wdm_capacity: int
    num_tiles: int
    crossbar_activations: int
    sequential_steps: int
    adc_conversions: int
    pcsa_senses: int
    dac_drives: int
    digital_adds: int
    popcount_tree_depth: int
    cells_programmed: int


@dataclass(frozen=True)
class NetworkSchedule:
    """Schedules of every binary layer of a network under one mapping."""

    network_name: str
    mapping_name: str
    wdm_capacity: int
    tile_shape: TileShape
    layer_schedules: List[LayerSchedule]
    full_precision_layers: List[LayerSpec]

    @property
    def total_crossbar_activations(self) -> int:
        """Sum of crossbar activations across all binary layers."""
        return sum(s.crossbar_activations for s in self.layer_schedules)

    @property
    def total_sequential_steps(self) -> int:
        """Critical-path crossbar steps across all binary layers (layers are
        executed one after another because of the data dependency)."""
        return sum(s.sequential_steps for s in self.layer_schedules)

    @property
    def total_adc_conversions(self) -> int:
        """Total ADC conversions across all binary layers."""
        return sum(s.adc_conversions for s in self.layer_schedules)

    @property
    def total_pcsa_senses(self) -> int:
        """Total PCSA sense operations across all binary layers."""
        return sum(s.pcsa_senses for s in self.layer_schedules)

    @property
    def total_digital_adds(self) -> int:
        """Total digital additions across all binary layers."""
        return sum(s.digital_adds for s in self.layer_schedules)

    @property
    def total_tiles(self) -> int:
        """Total crossbar tiles occupied by the network."""
        return sum(s.num_tiles for s in self.layer_schedules)


def _tacitmap_layer_schedule(spec: LayerSpec, tile: TileShape,
                             wdm_capacity: int) -> LayerSchedule:
    elements_per_segment = max(tile.rows // 2, 1)
    segments = math.ceil(spec.vector_length / elements_per_segment)
    groups = math.ceil(spec.num_weight_vectors / tile.cols)
    tiles = segments * groups

    activation_rounds = math.ceil(spec.num_input_vectors / wdm_capacity)
    crossbar_activations = tiles * activation_rounds
    sequential_steps = activation_rounds

    # Each activation ends with one column conversion per used output column:
    # the TIA/ADC chain runs once per activation window and deserialises the
    # (up to K) wavelengths within it, which is how EinsteinBarrier "uses the
    # same crossbar, ADCs, and other peripheries" for multiple outputs
    # (Sec. VI-B) — so grouping K vectors divides the conversion count by K.
    adc_conversions = segments * spec.num_weight_vectors * activation_rounds
    dac_drives = crossbar_activations * min(
        2 * spec.vector_length, tile.rows
    )
    # partial counts of the row segments are accumulated digitally
    digital_adds = (
        (segments - 1) * spec.num_weight_vectors * spec.num_input_vectors
    )
    cells_programmed = 2 * spec.vector_length * spec.num_weight_vectors
    return LayerSchedule(
        layer_name=spec.name,
        mapping_name=TacitMap.name,
        wdm_capacity=wdm_capacity,
        num_tiles=tiles,
        crossbar_activations=crossbar_activations,
        sequential_steps=sequential_steps,
        adc_conversions=adc_conversions,
        pcsa_senses=0,
        dac_drives=dac_drives,
        digital_adds=digital_adds,
        popcount_tree_depth=0,
        cells_programmed=cells_programmed,
    )


def _custbinarymap_layer_schedule(spec: LayerSpec,
                                  tile: TileShape) -> LayerSchedule:
    output_groups = math.ceil(spec.num_weight_vectors / tile.rows)
    vector_segments = math.ceil(spec.vector_length / tile.cols)
    tiles = output_groups * vector_segments

    # one row activation per stored weight vector per segment per input vector
    crossbar_activations = (
        spec.num_weight_vectors * vector_segments * spec.num_input_vectors
    )
    # tiles holding different output groups run in parallel; tiles holding
    # different segments of the same weight vector also fire in parallel
    rows_per_group = math.ceil(spec.num_weight_vectors / output_groups)
    sequential_steps = rows_per_group * spec.num_input_vectors

    pcsa_senses = (
        spec.num_weight_vectors * spec.vector_length * spec.num_input_vectors
    )
    dac_drives = crossbar_activations * min(spec.vector_length, tile.cols)
    popcount_adds_per_output = CustBinaryMap.popcount_tree_adds(spec.vector_length)
    digital_adds = (
        popcount_adds_per_output * spec.num_weight_vectors * spec.num_input_vectors
    )
    cells_programmed = spec.vector_length * spec.num_weight_vectors
    return LayerSchedule(
        layer_name=spec.name,
        mapping_name=CustBinaryMap.name,
        wdm_capacity=1,
        num_tiles=tiles,
        crossbar_activations=crossbar_activations,
        sequential_steps=sequential_steps,
        adc_conversions=0,
        pcsa_senses=pcsa_senses,
        dac_drives=dac_drives,
        digital_adds=digital_adds,
        popcount_tree_depth=CustBinaryMap.popcount_tree_depth(spec.vector_length),
        cells_programmed=cells_programmed,
    )


#: memoisation table for :func:`build_layer_schedule`.  Every input is a
#: frozen (hashable) dataclass and every output is immutable, so schedules
#: can be shared freely across compiler, hierarchy, area and sweep callers —
#: including concurrently: the runtime layer's thread backend
#: (:class:`repro.runtime.executors.ThreadExecutor`) shares this per-process
#: cache across worker threads, so lookups/inserts and the hit/miss counters
#: are serialised under a lock.
_SCHEDULE_CACHE: Dict[Tuple[LayerSpec, str, TileShape, int], LayerSchedule] = {}
_CACHE_LOCK = threading.Lock()
_CACHE_HITS = 0
_CACHE_MISSES = 0


def clear_schedule_cache() -> None:
    """Empty the layer-schedule memoisation table and reset its counters."""
    global _CACHE_HITS, _CACHE_MISSES
    with _CACHE_LOCK:
        _SCHEDULE_CACHE.clear()
        _CACHE_HITS = 0
        _CACHE_MISSES = 0


def schedule_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the layer-schedule memoisation table."""
    with _CACHE_LOCK:
        return {
            "hits": _CACHE_HITS,
            "misses": _CACHE_MISSES,
            "size": len(_SCHEDULE_CACHE),
        }


def build_layer_schedule(spec: LayerSpec, *, mapping: str,
                         tile_shape: Optional[TileShape] = None,
                         wdm_capacity: int = 1,
                         memoize: bool = True) -> LayerSchedule:
    """Build the operation-count schedule of one binary layer.

    Results are memoised by ``(spec, mapping, tile_shape, wdm_capacity)``:
    one inference estimate builds the same layer schedule several times
    (compiler, hierarchy allocator, area model) and design-space sweeps
    revisit identical layers across grid points, so the cache removes the
    dominant rebuild cost.  Pass ``memoize=False`` to force a fresh build.

    Parameters
    ----------
    spec:
        The layer's operation-count description.
    mapping:
        ``"tacitmap"`` or ``"custbinarymap"``.
    tile_shape:
        Physical crossbar tile dimensions (256x256 by default).
    wdm_capacity:
        WDM capacity K (only meaningful for TacitMap on oPCM; must be 1 for
        the baseline mapping).
    memoize:
        Whether to consult/populate the module-level schedule cache.
    """
    global _CACHE_HITS, _CACHE_MISSES
    if not spec.is_binary:
        raise ValueError(
            f"layer {spec.name} is not binary; only binary layers are mapped "
            "onto the crossbars"
        )
    tile = tile_shape if tile_shape is not None else TileShape()
    if wdm_capacity < 1:
        raise ValueError("wdm_capacity must be >= 1")
    key = (spec, mapping, tile, wdm_capacity)
    if memoize:
        with _CACHE_LOCK:
            cached = _SCHEDULE_CACHE.get(key)
            if cached is not None:
                _CACHE_HITS += 1
                return cached
    if mapping == TacitMap.name:
        schedule = _tacitmap_layer_schedule(spec, tile, wdm_capacity)
    elif mapping == CustBinaryMap.name:
        if wdm_capacity != 1:
            raise ValueError("the baseline mapping does not support WDM")
        schedule = _custbinarymap_layer_schedule(spec, tile)
    else:
        raise ValueError(f"unknown mapping {mapping!r}")
    if memoize:
        # two threads may race to build the same schedule; both build the
        # identical immutable value, the first insert wins and the counters
        # stay consistent because they only move under the lock
        with _CACHE_LOCK:
            if key not in _SCHEDULE_CACHE:
                _CACHE_MISSES += 1
                _SCHEDULE_CACHE[key] = schedule
            else:
                _CACHE_HITS += 1
            return _SCHEDULE_CACHE[key]
    return schedule


def build_network_schedule(workload: NetworkWorkload, *, mapping: str,
                           tile_shape: Optional[TileShape] = None,
                           wdm_capacity: int = 1) -> NetworkSchedule:
    """Build per-layer schedules for every binary layer of a network."""
    tile = tile_shape if tile_shape is not None else TileShape()
    schedules = [
        build_layer_schedule(
            spec, mapping=mapping, tile_shape=tile, wdm_capacity=wdm_capacity
        )
        for spec in workload.binary_layers
    ]
    return NetworkSchedule(
        network_name=workload.name,
        mapping_name=mapping,
        wdm_capacity=wdm_capacity,
        tile_shape=tile,
        layer_schedules=schedules,
        full_precision_layers=list(workload.full_precision_layers),
    )
