"""TacitMap: the paper's proposed data mapping (Sec. III).

For a binary layer with ``n`` weight vectors of length ``m`` (unipolar bits),
TacitMap places weight vector ``w_j`` *vertically* in crossbar column ``j``:
the top ``m`` rows hold ``w_j`` and the next ``m`` rows hold its bitwise
complement ``~w_j`` (Fig. 2-(b), Fig. 3-(b)).  The activation vector ``x`` is
presented to the rows as the concatenation ``[x, ~x]``.

The column dot product then counts the rows where input and weight bits are
both 1 *plus* the rows where both are 0::

    [x, ~x] . [w, ~w] = x.w + (1-x).(1-w) = popcount(XNOR(x, w))

so a single analog VMM yields the XNOR+Popcount of ``x`` against *every*
stored weight vector simultaneously, read straight out of the column ADCs —
the "1-step, column-wise, no extra digital circuitry" property the paper
claims over CustBinaryMap.

When ``2*m`` exceeds the tile's row count the vector is split over several
row *segments* whose partial counts are added digitally; when ``n`` exceeds
the tile's column count the weight vectors are split over several column
*groups* (different tiles), which operate fully in parallel.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.mapping_base import (
    DataMapping,
    LayerMapping,
    MappedTile,
    split_ranges,
)
from repro.utils.validation import check_binary


class TacitMap(DataMapping):
    """The proposed vertical weight+complement mapping on 1T1R crossbars."""

    name = "tacitmap"

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def map_layer(self, weight_bits: np.ndarray, *,
                  layer_name: str = "layer") -> LayerMapping:
        """Place unipolar weights ``(n, m)`` as ``[w; ~w]`` columns on tiles.

        Returns a :class:`LayerMapping` whose tiles form a
        ``num_vector_segments x num_output_groups`` grid: segment ``s`` holds
        rows ``[2*seg_start, 2*seg_stop)`` of the stacked pattern, group
        ``g`` holds weight vectors ``[col_start, col_stop)``.
        """
        weights = self._validate_weights(weight_bits)
        num_vectors, length = weights.shape

        # each element of the vector occupies 2 physical rows (bit + complement),
        # so one tile fits floor(rows / 2) vector elements per segment
        elements_per_segment = max(self.tile_shape.rows // 2, 1)
        vector_segments = split_ranges(length, elements_per_segment)
        output_groups = split_ranges(num_vectors, self.tile_shape.cols)

        tiles: List[MappedTile] = []
        for segment_index, (element_start, element_stop) in enumerate(vector_segments):
            for group_index, (output_start, output_stop) in enumerate(output_groups):
                block = weights[output_start:output_stop, element_start:element_stop]
                # columns hold [w_segment; ~w_segment]
                pattern = np.vstack([block.T, 1 - block.T]).astype(np.int8)
                tiles.append(
                    MappedTile(
                        layer_name=layer_name,
                        grid_position=(segment_index, group_index),
                        bits=pattern,
                        vector_slice=(element_start, element_stop),
                        output_slice=(output_start, output_stop),
                    )
                )
        return LayerMapping(
            layer_name=layer_name,
            mapping_name=self.name,
            tile_shape=self.tile_shape,
            vector_length=length,
            num_weight_vectors=num_vectors,
            tiles=tiles,
            num_vector_segments=len(vector_segments),
            num_output_groups=len(output_groups),
        )

    # ------------------------------------------------------------------ #
    # Input encoding
    # ------------------------------------------------------------------ #
    def encode_input(self, input_bits: np.ndarray,
                     vector_slice: Tuple[int, int]) -> np.ndarray:
        """Row drive for one tile: the input slice concatenated with its complement.

        Accepts a single vector ``(m,)`` or a batch ``(k, m)`` (the K WDM
        vectors of an MMM); the complement concatenation happens along the
        last axis.
        """
        bits = check_binary("input_bits", input_bits)
        start, stop = vector_slice
        if not (0 <= start < stop <= bits.shape[-1]):
            raise ValueError(
                f"vector_slice {vector_slice} out of range for input of "
                f"length {bits.shape[-1]}"
            )
        segment = bits[..., start:stop]
        return np.concatenate([segment, 1 - segment], axis=-1)

    # ------------------------------------------------------------------ #
    # Step counts
    # ------------------------------------------------------------------ #
    def steps_per_input_vector(self, num_weight_vectors: int) -> int:
        """TacitMap evaluates all weight vectors of a tile in a single step."""
        if num_weight_vectors <= 0:
            raise ValueError("num_weight_vectors must be positive")
        return 1

    # ------------------------------------------------------------------ #
    # Per-tile functional evaluation (used by the verification layer)
    # ------------------------------------------------------------------ #
    @staticmethod
    def tile_counts_reference(tile_bits: np.ndarray,
                              encoded_input: np.ndarray) -> np.ndarray:
        """Ideal (noise-free) column counts of one tile activation.

        ``tile_bits`` is the programmed pattern ``(2*seg, outputs)`` and
        ``encoded_input`` the ``[x, ~x]`` row drive; the result is the
        per-column partial popcount.
        """
        tile_bits = check_binary("tile_bits", tile_bits)
        encoded_input = check_binary("encoded_input", encoded_input)
        if encoded_input.shape[-1] != tile_bits.shape[0]:
            raise ValueError(
                f"encoded input length {encoded_input.shape[-1]} does not "
                f"match tile rows {tile_bits.shape[0]}"
            )
        return encoded_input.astype(np.int64) @ tile_bits.astype(np.int64)
