"""Comparison baselines used in the paper's evaluation (Sec. V-B).

* :mod:`repro.baselines.baseline_epcm` — the SotA CIM accelerator for BNNs
  (Hirtzlin et al.'s differential 2T2R design with CustBinaryMap), exposed as
  a thin convenience wrapper over the generic accelerator model configured
  with :func:`repro.arch.config.baseline_epcm_config`.
* :mod:`repro.baselines.gpu` — an analytical roofline model of a GPU running
  the same XNOR-popcount BNN inference (Baseline-GPU).
"""

from repro.baselines.baseline_epcm import BaselineEPCMAccelerator
from repro.baselines.gpu import GPUConfig, GPUModel, GPUReport

__all__ = [
    "BaselineEPCMAccelerator",
    "GPUConfig",
    "GPUModel",
    "GPUReport",
]
