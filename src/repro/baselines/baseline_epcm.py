"""Baseline-ePCM: the state-of-the-art CIM accelerator for BNNs.

The paper's primary comparison point is the design of Hirtzlin et al.
("Digital biologically plausible implementation of binarized neural networks
with differential hafnium oxide resistive memory arrays"), referred to as
CustBinaryMap/Baseline-ePCM throughout.  Architecturally it is a crossbar
accelerator like the others — what differs is the mapping (row-wise 2T2R with
interleaved complements), the read-out (PCSA instead of ADC) and the digital
popcount post-processing.  This module therefore wraps the generic
:class:`~repro.arch.accelerator.AcceleratorModel` with the baseline
configuration and adds the couple of queries the evaluation wants to ask the
baseline specifically.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.accelerator import AcceleratorModel, InferenceReport
from repro.arch.config import AcceleratorConfig, baseline_epcm_config
from repro.bnn.model import BNNModel
from repro.bnn.workload import NetworkWorkload, extract_workload
from repro.core.schedule import build_network_schedule


class BaselineEPCMAccelerator:
    """The SotA ePCM baseline (CustBinaryMap + PCSA + digital popcount)."""

    def __init__(self, config: Optional[AcceleratorConfig] = None) -> None:
        self.config = config if config is not None else baseline_epcm_config()
        if self.config.mapping != "custbinarymap":
            raise ValueError(
                "BaselineEPCMAccelerator requires the custbinarymap mapping"
            )
        self._model = AcceleratorModel(self.config)

    @property
    def name(self) -> str:
        """Design name used in reports."""
        return self.config.name

    def run_inference(self, workload: NetworkWorkload | BNNModel) -> InferenceReport:
        """Latency/energy/allocation report of one inference."""
        return self._model.run_inference(workload)

    def serialization_factor(self, workload: NetworkWorkload | BNNModel) -> float:
        """Average number of sequential crossbar steps per activation vector.

        This is the quantity the paper blames for the baseline losing to the
        GPU on MLP-heavy workloads (Sec. VI-A, observation 4): the row-serial
        read-out forces ``n`` steps per activation vector, so networks with
        wide fully connected layers serialise badly.
        """
        if isinstance(workload, BNNModel):
            workload = extract_workload(workload)
        schedule = build_network_schedule(
            workload, mapping="custbinarymap", tile_shape=self.config.tile_shape
        )
        total_vectors = sum(
            spec.num_input_vectors for spec in workload.binary_layers
        )
        if total_vectors == 0:
            return 0.0
        return schedule.total_sequential_steps / total_vectors
