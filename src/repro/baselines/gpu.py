"""Baseline-GPU: analytical roofline model of GPU BNN inference.

The paper compares the CIM designs against "a GPU implementation of the same
network" (Sec. V-B).  Real GPU measurements are unavailable in this offline
reproduction, so the GPU is modelled with the standard ingredients that
determine small-batch BNN inference latency on a GPU (see PhoneBit and the
FPGA/CPU/GPU comparison study the paper cites):

* a **per-kernel launch/framework overhead** — the dominant term for small
  networks at batch size 1.  Convolutions cost more kernels than fully
  connected layers (im2col, GEMM, col2im, normalisation, binarisation);
* a **memory-traffic term** — weights and activations streamed from DRAM at
  the GPU's effective bandwidth (binary layers use packed 1-bit weights);
* a **compute term** — XNOR-popcount (binary) or FMA (full-precision) ops at
  the GPU's peak throughput, derated by a utilisation factor that grows with
  the amount of exposed parallelism (tiny layers cannot fill the machine).

The point the model must reproduce is the *crossover* of Fig. 7 (marker 4):
Baseline-ePCM beats the GPU on the small CNN because the GPU drowns in
per-kernel overheads, while the GPU beats Baseline-ePCM on the large MLPs
because the baseline mapping serialises one row read per output neuron.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.bnn.model import BNNModel
from repro.bnn.workload import LayerSpec, NetworkWorkload, extract_workload
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class GPUConfig:
    """Analytical GPU parameters (defaults approximate a mid-range card)."""

    name: str = "Baseline-GPU"
    #: peak binary (XNOR-popcount) throughput in operations per second
    peak_binary_ops_per_s: float = 50e12
    #: peak full-precision MAC throughput in operations per second
    peak_mac_ops_per_s: float = 10e12
    #: effective DRAM bandwidth in bytes per second
    memory_bandwidth_bytes_per_s: float = 500e9
    #: fixed host-side overhead per launched kernel, in seconds
    kernel_launch_overhead: float = 2e-6
    #: kernels launched per convolutional MAC layer (im2col, GEMM, col2im,
    #: batch-norm, binarise, pool)
    kernels_per_conv_layer: int = 4
    #: kernels launched per fully connected MAC layer (GEMV, batch-norm/sign)
    kernels_per_fc_layer: int = 2
    #: fixed lowering cost per convolutional layer: bit-packing + im2col for
    #: binary tensors has no vendor-library fast path, so BNN GPU engines
    #: (PhoneBit-class) pay a large fixed transform cost per conv layer at
    #: batch size 1
    conv_lowering_overhead: float = 250e-6
    #: number of parallel scalar operations needed to reach full utilisation
    full_utilisation_parallelism: float = 2e5
    #: board power while running inference, in watts
    board_power_w: float = 250.0
    #: bytes per full-precision weight/activation element
    full_precision_bytes: int = 2

    def __post_init__(self) -> None:
        check_positive("peak_binary_ops_per_s", self.peak_binary_ops_per_s)
        check_positive("peak_mac_ops_per_s", self.peak_mac_ops_per_s)
        check_positive("memory_bandwidth_bytes_per_s",
                       self.memory_bandwidth_bytes_per_s)
        check_positive("kernel_launch_overhead", self.kernel_launch_overhead,
                       allow_zero=True)
        check_positive("conv_lowering_overhead", self.conv_lowering_overhead,
                       allow_zero=True)
        if self.kernels_per_conv_layer < 1 or self.kernels_per_fc_layer < 1:
            raise ValueError("kernel counts must be >= 1")
        check_positive("full_utilisation_parallelism",
                       self.full_utilisation_parallelism)
        check_positive("board_power_w", self.board_power_w)
        if self.full_precision_bytes < 1:
            raise ValueError("full_precision_bytes must be >= 1")


@dataclass(frozen=True)
class GPUReport:
    """Latency/energy estimate of one inference on the GPU baseline."""

    design_name: str
    network_name: str
    per_layer: Dict[str, float] = field(default_factory=dict)
    kernel_overhead: float = 0.0
    memory_time: float = 0.0
    compute_time: float = 0.0

    @property
    def latency(self) -> float:
        """End-to-end inference latency in seconds."""
        return self.kernel_overhead + self.memory_time + self.compute_time

    @property
    def total(self) -> float:
        """Alias for :attr:`latency` (keeps report interfaces uniform)."""
        return self.latency


class GPUModel:
    """Roofline-style GPU latency/energy estimator."""

    def __init__(self, config: GPUConfig | None = None) -> None:
        self.config = config if config is not None else GPUConfig()

    @property
    def name(self) -> str:
        """Design name used in reports."""
        return self.config.name

    # ------------------------------------------------------------------ #
    # Per-layer terms
    # ------------------------------------------------------------------ #
    def _layer_kernels(self, spec: LayerSpec) -> int:
        if spec.kind == "conv":
            return self.config.kernels_per_conv_layer
        return self.config.kernels_per_fc_layer

    def _layer_fixed_overhead(self, spec: LayerSpec) -> float:
        overhead = self._layer_kernels(spec) * self.config.kernel_launch_overhead
        if spec.kind == "conv":
            overhead += self.config.conv_lowering_overhead
        return overhead

    def _layer_bytes(self, spec: LayerSpec) -> float:
        weight_elements = spec.vector_length * spec.num_weight_vectors
        activation_elements = spec.vector_length * spec.num_input_vectors
        output_elements = spec.num_weight_vectors * spec.num_input_vectors
        if spec.is_binary:
            weight_bytes = weight_elements / 8.0
            activation_bytes = activation_elements / 8.0
        else:
            weight_bytes = weight_elements * self.config.full_precision_bytes
            activation_bytes = activation_elements * self.config.full_precision_bytes
        output_bytes = output_elements * self.config.full_precision_bytes
        return weight_bytes + activation_bytes + output_bytes

    def _layer_compute(self, spec: LayerSpec) -> float:
        parallel_work = spec.num_weight_vectors * spec.num_input_vectors
        utilisation = min(
            1.0, parallel_work / self.config.full_utilisation_parallelism
        )
        utilisation = max(utilisation, 1e-3)
        peak = (
            self.config.peak_binary_ops_per_s if spec.is_binary
            else self.config.peak_mac_ops_per_s
        )
        return spec.macs / (peak * utilisation)

    # ------------------------------------------------------------------ #
    # Whole-network estimation
    # ------------------------------------------------------------------ #
    def run_inference(self, workload: NetworkWorkload | BNNModel) -> GPUReport:
        """Estimate one inference of ``workload`` on the GPU baseline."""
        if isinstance(workload, BNNModel):
            workload = extract_workload(workload)
        per_layer: Dict[str, float] = {}
        kernel_overhead = 0.0
        memory_time = 0.0
        compute_time = 0.0
        for spec in workload.layers:
            overhead = self._layer_fixed_overhead(spec)
            memory = self._layer_bytes(spec) / self.config.memory_bandwidth_bytes_per_s
            compute = self._layer_compute(spec)
            kernel_overhead += overhead
            memory_time += memory
            compute_time += compute
            per_layer[spec.name] = overhead + memory + compute
        return GPUReport(
            design_name=self.config.name,
            network_name=workload.name,
            per_layer=per_layer,
            kernel_overhead=kernel_overhead,
            memory_time=memory_time,
            compute_time=compute_time,
        )

    def energy(self, workload: NetworkWorkload | BNNModel) -> float:
        """Inference energy: board power integrated over the latency."""
        return self.config.board_power_w * self.run_inference(workload).latency
