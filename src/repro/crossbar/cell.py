"""Crossbar cell structures: 1T1R and 2T2R.

The two mappings compared in the paper sit on different cell structures
(Fig. 2): TacitMap assumes the conventional *1T1R* cell (one access
transistor, one resistive device) while CustBinaryMap needs a customised
*2T2R* cell storing a bit and its complement side by side and a modified
sense amplifier.  The paper notes both mappings use the same total number of
devices per stored XNOR bit — what differs is how the devices are arranged
and therefore how much parallelism one array activation yields.

These classes carry the structural facts (devices per cell, area estimate,
readout style) that the area/energy accounting and the documentation-level
comparisons use; the electrical behaviour itself lives in
:mod:`repro.crossbar.array`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class CellType(Enum):
    """Supported crossbar cell structures."""

    ONE_T_ONE_R = "1T1R"
    TWO_T_TWO_R = "2T2R"


#: feature size (F) based area of a minimum-size 1T1R cell, in F^2
_AREA_1T1R_F2 = 12.0
#: a 2T2R cell is roughly twice the device area plus shared select overhead
_AREA_2T2R_F2 = 25.0


@dataclass(frozen=True)
class OneT1RCell:
    """Conventional one-transistor / one-resistor cell (TacitMap's substrate).

    Attributes
    ----------
    feature_size_nm:
        Technology feature size F in nanometres used for area estimates.
    """

    feature_size_nm: float = 32.0

    def __post_init__(self) -> None:
        if self.feature_size_nm <= 0:
            raise ValueError("feature_size_nm must be positive")

    cell_type: CellType = CellType.ONE_T_ONE_R

    @property
    def devices_per_cell(self) -> int:
        """Number of resistive devices per cell."""
        return 1

    @property
    def transistors_per_cell(self) -> int:
        """Number of access transistors per cell."""
        return 1

    @property
    def area_um2(self) -> float:
        """Estimated cell area in square micrometres."""
        feature_um = self.feature_size_nm * 1e-3
        return _AREA_1T1R_F2 * feature_um * feature_um

    @property
    def readout(self) -> str:
        """Peripheral read-out circuit this cell structure pairs with."""
        return "ADC"

    def cells_for_bits(self, num_bits: int) -> int:
        """Cells needed to store ``num_bits`` weight bits *and* complements.

        TacitMap stores the weight vector and its complement in separate
        cells of the same column, so each logical weight bit occupies 2 cells.
        """
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        return 2 * num_bits


@dataclass(frozen=True)
class TwoT2RCell:
    """Two-transistor / two-resistor differential cell (CustBinaryMap).

    Stores a bit and its complement in the same cell; read out differentially
    by a pre-charge sense amplifier.
    """

    feature_size_nm: float = 32.0

    def __post_init__(self) -> None:
        if self.feature_size_nm <= 0:
            raise ValueError("feature_size_nm must be positive")

    cell_type: CellType = CellType.TWO_T_TWO_R

    @property
    def devices_per_cell(self) -> int:
        """Number of resistive devices per cell."""
        return 2

    @property
    def transistors_per_cell(self) -> int:
        """Number of access transistors per cell."""
        return 2

    @property
    def area_um2(self) -> float:
        """Estimated cell area in square micrometres."""
        feature_um = self.feature_size_nm * 1e-3
        return _AREA_2T2R_F2 * feature_um * feature_um

    @property
    def readout(self) -> str:
        """Peripheral read-out circuit this cell structure pairs with."""
        return "PCSA"

    def cells_for_bits(self, num_bits: int) -> int:
        """Cells needed to store ``num_bits`` weight bits and complements.

        The 2T2R cell already holds both the bit and its complement, so one
        cell per logical weight bit suffices.
        """
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        return num_bits


def devices_for_bits(cell: OneT1RCell | TwoT2RCell, num_bits: int) -> int:
    """Total resistive devices needed to store ``num_bits`` logical bits.

    The paper observes that both mappings end up with the *same* device count
    (two devices per logical bit) — this helper makes that check explicit and
    is exercised by the tests.
    """
    return cell.cells_for_bits(num_bits) * cell.devices_per_cell
