"""Functional analog crossbar array (electronic or photonic).

This is the *value-level* crossbar: it stores a binary matrix in a device
array (:class:`~repro.devices.pcm.EPCMDeviceArray` or
:class:`~repro.devices.opcm.OPCMDeviceArray`), applies binary input vectors
to the rows, accumulates along the columns exactly like Kirchhoff's law (or
photocurrent summation), and recovers integer match counts through a
calibrated ADC read-out.

The mapping-equivalence tests program TacitMap layouts into this array and
check that the recovered counts equal ``popcount(XNOR(in, w))`` — i.e. that
the proposed data mapping really computes Eq. 1 in a single analog step.
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np

from repro.crossbar.adc import ADCConfig, SarADC, required_adc_bits
from repro.crossbar.noise import CrossbarNoiseModel, NoiseConfig
from repro.devices.opcm import OPCMConfig, OPCMDeviceArray
from repro.devices.pcm import EPCMConfig, EPCMDeviceArray
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import check_binary

Technology = Literal["epcm", "opcm"]


class CrossbarArray:
    """A programmable analog crossbar performing binary-input VMMs.

    Parameters
    ----------
    rows, cols:
        Array dimensions.
    technology:
        ``"epcm"`` for an electronic PCM crossbar (currents/conductances) or
        ``"opcm"`` for an optical PCM crossbar (powers/transmissions).
    device_config:
        Optional device configuration (an :class:`EPCMConfig` or
        :class:`OPCMConfig` matching the technology).
    noise:
        Optional read-out noise configuration.
    adc:
        Optional ADC configuration; by default an ADC with just enough
        resolution to represent ``rows`` distinct counts is used.
    rng:
        Seed or generator for all stochastic behaviour in this array.
    """

    def __init__(self, rows: int, cols: int, *, technology: Technology = "epcm",
                 device_config: Optional[EPCMConfig | OPCMConfig] = None,
                 noise: Optional[NoiseConfig] = None,
                 adc: Optional[ADCConfig] = None,
                 rng: RngLike = None) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        if technology not in ("epcm", "opcm"):
            raise ValueError(f"technology must be 'epcm' or 'opcm', got {technology!r}")
        self.rows = int(rows)
        self.cols = int(cols)
        self.technology: Technology = technology
        self._rng = make_rng(rng)
        if technology == "epcm":
            config = device_config if device_config is not None else EPCMConfig()
            if not isinstance(config, EPCMConfig):
                raise TypeError("device_config must be an EPCMConfig for 'epcm'")
            self.devices = EPCMDeviceArray(rows, cols, config=config, rng=self._rng)
        else:
            config = device_config if device_config is not None else OPCMConfig()
            if not isinstance(config, OPCMConfig):
                raise TypeError("device_config must be an OPCMConfig for 'opcm'")
            self.devices = OPCMDeviceArray(rows, cols, config=config, rng=self._rng)
        self.noise_model = CrossbarNoiseModel(noise, rng=self._rng)
        if adc is None:
            # one extra bit of resolution keeps the quantisation error below
            # half a count even at full array occupancy
            adc = ADCConfig(resolution_bits=max(required_adc_bits(rows) + 1, 4))
        self.adc = SarADC(adc)

    # ------------------------------------------------------------------ #
    # Programming
    # ------------------------------------------------------------------ #
    def program(self, bits: np.ndarray) -> dict[str, float]:
        """Program a binary weight matrix into the array.

        ``bits`` may be smaller than the array; the remaining cells are
        padded with zeros (OFF devices), which contribute only the leakage
        term that the calibrated read-out subtracts.
        """
        bits = check_binary("bits", bits)
        if bits.ndim != 2:
            raise ValueError("bits must be a 2-D matrix")
        pad_rows = self.rows - bits.shape[0]
        pad_cols = self.cols - bits.shape[1]
        if pad_rows < 0 or pad_cols < 0:
            raise ValueError(
                f"pattern {bits.shape} does not fit array ({self.rows}, {self.cols})"
            )
        padded = np.pad(bits, ((0, pad_rows), (0, pad_cols)), constant_values=0)
        self._used_cols = bits.shape[1]
        self._used_rows = bits.shape[0]
        return self.devices.program(padded)

    # ------------------------------------------------------------------ #
    # Analog evaluation
    # ------------------------------------------------------------------ #
    def _cell_states(self, ideal: bool) -> np.ndarray:
        """Per-cell analog weights (conductance or transmission)."""
        if self.technology == "epcm":
            return self.devices.conductances(with_read_noise=not ideal)
        return self.devices.transmissions(with_read_noise=not ideal)

    def _state_levels(self) -> tuple[float, float]:
        """(high, low) nominal analog levels of the two device states."""
        config = self.devices.config
        if self.technology == "epcm":
            return config.g_on, config.g_off
        return config.t_high, config.t_low

    def analog_outputs(self, input_bits: np.ndarray, *,
                       ideal: bool = False) -> np.ndarray:
        """Raw analog column outputs for one or more binary input vectors.

        Parameters
        ----------
        input_bits:
            Binary array of shape ``(rows,)`` or ``(k, rows)``; each row of a
            2-D input is an independent vector (e.g. one WDM wavelength).
        ideal:
            Disable device read noise and array noise when ``True``.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(cols,)`` or ``(k, cols)`` with the accumulated
            analog quantity per column (current for ePCM, optical power for
            oPCM), normalised to a unit row drive.
        """
        input_bits = check_binary("input_bits", input_bits)
        single = input_bits.ndim == 1
        matrix = np.atleast_2d(input_bits).astype(np.float64)
        if matrix.shape[1] != self.rows:
            raise ValueError(
                f"input length {matrix.shape[1]} does not match rows {self.rows}"
            )
        states = self._cell_states(ideal)
        drive = matrix * self.noise_model.ir_drop_weights(self.rows)
        outputs = drive @ states
        if not ideal:
            high, _ = self._state_levels()
            full_scale = self.rows * high
            outputs = self.noise_model.perturb(outputs, full_scale)
        return outputs[0] if single else outputs

    def match_counts(self, input_bits: np.ndarray, *, ideal: bool = False,
                     quantize: bool = True) -> np.ndarray:
        """Recover per-column match counts from an analog read.

        For a column programmed with bits ``w`` and an input vector ``x``
        with ``A`` active rows, the analog output is
        ``high * matches + low * (A - matches)`` (plus noise), where
        ``matches`` counts the active rows whose device is ON.  Solving for
        ``matches`` and quantising through the ADC yields the integer count
        the paper reads "directly from the ADC" (Sec. III).

        When the input encodes ``[x, ~x]`` (TacitMap) the count equals
        ``popcount(XNOR(x, w))``.
        """
        input_bits = check_binary("input_bits", input_bits)
        single = input_bits.ndim == 1
        matrix = np.atleast_2d(input_bits)
        outputs = np.atleast_2d(
            self.analog_outputs(input_bits, ideal=ideal)
        ).astype(np.float64)
        high, low = self._state_levels()
        active = matrix.sum(axis=1, keepdims=True).astype(np.float64)
        if quantize:
            full_scale = float(self.rows * high)
            codes = self.adc.quantize(outputs, full_scale)
            outputs = self.adc.dequantize(codes, full_scale)
        counts = (outputs - active * low) / (high - low)
        counts = np.clip(np.round(counts), 0, active).astype(np.int64)
        return counts[0] if single else counts

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def stored_bits(self) -> np.ndarray:
        """The programmed bit pattern (full array, including padding)."""
        return self.devices.stored_bits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CrossbarArray({self.rows}x{self.cols}, technology={self.technology!r})"
        )
