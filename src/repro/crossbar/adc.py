"""Analog-to-digital converter (ADC) model.

TacitMap reads each column's accumulated current with an ADC whose digital
output *is* the popcount (Sec. III).  ADCs are the power-hungry periphery the
energy analysis of Fig. 8 hinges on: TacitMap-ePCM spends ~5× more energy
than the SA-based baseline precisely because of them, and EinsteinBarrier
recovers that energy by amortising each conversion over K WDM vectors.

The model is a successive-approximation (SAR) ADC: conversion latency scales
linearly with resolution and conversion energy scales with ``4^bits``-class
behaviour in real silicon, but we keep an explicit per-conversion energy knob
(default 2 pJ, a mid-range 8-bit SAR figure) so the evaluation can sweep it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.units import NANO, PICO
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ADCConfig:
    """SAR ADC parameters.

    Attributes
    ----------
    resolution_bits:
        Output resolution.  To read an exact popcount of a length-``m``
        vector the resolution must satisfy ``2**bits > m``.
    latency_per_bit:
        SAR loop latency per resolved bit, in seconds.
    energy_per_conversion:
        Energy of one complete conversion, in joules.
    """

    resolution_bits: int = 8
    latency_per_bit: float = 0.125 * NANO
    energy_per_conversion: float = 2.0 * PICO

    def __post_init__(self) -> None:
        if self.resolution_bits < 1:
            raise ValueError("resolution_bits must be >= 1")
        check_positive("latency_per_bit", self.latency_per_bit)
        check_positive("energy_per_conversion", self.energy_per_conversion,
                       allow_zero=True)

    @property
    def levels(self) -> int:
        """Number of output codes."""
        return 2 ** self.resolution_bits

    @property
    def conversion_latency(self) -> float:
        """Latency of one full conversion in seconds."""
        return self.resolution_bits * self.latency_per_bit


class SarADC:
    """Quantises analog column outputs into digital codes."""

    def __init__(self, config: ADCConfig | None = None) -> None:
        self.config = config if config is not None else ADCConfig()

    def quantize(self, analog: np.ndarray, full_scale: float) -> np.ndarray:
        """Quantise analog values in ``[0, full_scale]`` to integer codes.

        Values outside the range saturate at the rails, as in real converters.
        """
        if full_scale <= 0:
            raise ValueError("full_scale must be positive")
        analog = np.asarray(analog, dtype=np.float64)
        levels = self.config.levels
        codes = np.round(analog / full_scale * (levels - 1))
        return np.clip(codes, 0, levels - 1).astype(np.int64)

    def dequantize(self, codes: np.ndarray, full_scale: float) -> np.ndarray:
        """Map integer codes back to the analog value they represent."""
        if full_scale <= 0:
            raise ValueError("full_scale must be positive")
        codes = np.asarray(codes, dtype=np.float64)
        return codes / (self.config.levels - 1) * full_scale

    def conversion_cost(self, num_conversions: int) -> dict[str, float]:
        """Latency/energy for ``num_conversions`` *sequential* conversions.

        When several columns share one ADC the conversions serialise, so both
        latency and energy scale with the count.
        """
        if num_conversions < 0:
            raise ValueError("num_conversions must be non-negative")
        return {
            "latency": num_conversions * self.config.conversion_latency,
            "energy": num_conversions * self.config.energy_per_conversion,
        }


def required_adc_bits(max_count: int) -> int:
    """Smallest ADC resolution that can represent counts ``0..max_count``."""
    if max_count < 1:
        raise ValueError("max_count must be >= 1")
    return int(np.ceil(np.log2(max_count + 1)))
