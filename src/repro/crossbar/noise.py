"""Noise models applied to analog crossbar read-out.

The analog column current of a crossbar VMM is perturbed by several sources
before it reaches the ADC/SA; the paper's motivation (Sec. I, citing Cardoso
et al.) is precisely that at high read frequencies the noise level grows and
multi-level read-out becomes unreliable, which is why binary PCM states are
the robust choice.  The models here let the functional simulations inject
controlled amounts of those non-idealities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RngLike, make_rng


@dataclass(frozen=True)
class NoiseConfig:
    """Aggregate noise configuration for a crossbar read.

    Attributes
    ----------
    thermal_sigma:
        Std-dev of additive thermal (Johnson) noise, as a fraction of the
        full-scale column output.
    shot_factor:
        Scale of signal-dependent shot noise: the per-column std-dev is
        ``shot_factor * sqrt(signal / full_scale)`` of full scale.
    ir_drop_alpha:
        Strength of the deterministic IR-drop attenuation along the column:
        the column seen by row ``i`` of ``n`` is attenuated by
        ``1 - ir_drop_alpha * i / n``.
    """

    thermal_sigma: float = 0.0
    shot_factor: float = 0.0
    ir_drop_alpha: float = 0.0

    def __post_init__(self) -> None:
        for name in ("thermal_sigma", "shot_factor", "ir_drop_alpha"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.ir_drop_alpha >= 1.0:
            raise ValueError("ir_drop_alpha must be < 1")

    @property
    def is_ideal(self) -> bool:
        """True when every noise term is disabled."""
        return (
            self.thermal_sigma == 0.0
            and self.shot_factor == 0.0
            and self.ir_drop_alpha == 0.0
        )


class CrossbarNoiseModel:
    """Applies read-out noise to ideal column outputs."""

    def __init__(self, config: NoiseConfig | None = None, *,
                 rng: RngLike = None) -> None:
        self.config = config if config is not None else NoiseConfig()
        self._rng = make_rng(rng)

    def ir_drop_weights(self, num_rows: int) -> np.ndarray:
        """Per-row attenuation factors modelling wire resistance."""
        if num_rows <= 0:
            raise ValueError("num_rows must be positive")
        if self.config.ir_drop_alpha == 0.0:
            return np.ones(num_rows)
        positions = np.arange(num_rows) / num_rows
        return 1.0 - self.config.ir_drop_alpha * positions

    def perturb(self, column_outputs: np.ndarray, full_scale: float) -> np.ndarray:
        """Add thermal and shot noise to ideal column outputs."""
        if full_scale <= 0:
            raise ValueError("full_scale must be positive")
        outputs = np.asarray(column_outputs, dtype=np.float64)
        if self.config.is_ideal:
            return outputs
        noisy = outputs.copy()
        if self.config.thermal_sigma > 0:
            noisy = noisy + self._rng.normal(
                0.0, self.config.thermal_sigma * full_scale, size=outputs.shape
            )
        if self.config.shot_factor > 0:
            relative = np.clip(np.abs(outputs) / full_scale, 0.0, None)
            sigma = self.config.shot_factor * np.sqrt(relative) * full_scale
            noisy = noisy + self._rng.normal(0.0, 1.0, size=outputs.shape) * sigma
        return noisy
