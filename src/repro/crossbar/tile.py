"""Crossbar tile: array + periphery cost model.

A *tile* in the paper's sense (Sec. IV-A1) is one crossbar plus everything
needed to read and write it: row DACs, column ADCs (possibly shared between
several columns — footnote 1 of Sec. IV), or column PCSAs for the baseline
mapping, and for the photonic VCore the transimpedance amplifiers feeding the
ADCs.  The tile exposes *cost queries* — "what does one VMM with this many
active rows and read columns cost in seconds and joules?" — which the
architecture-level timing/energy models aggregate over a whole network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional

import numpy as np

from repro.crossbar.adc import ADCConfig, SarADC
from repro.crossbar.dac import DAC, DACConfig
from repro.crossbar.sense_amplifier import PCSAConfig, PrechargeSenseAmplifier
from repro.devices.opcm import OPCMConfig
from repro.devices.pcm import EPCMConfig
from repro.utils.units import mW

Technology = Literal["epcm", "opcm"]
Readout = Literal["adc", "pcsa"]

#: power of one transimpedance amplifier in the photonic receiver (Eq. 2)
TIA_POWER_W = 2.0 * mW


@dataclass(frozen=True)
class TileConfig:
    """Static configuration of a crossbar tile.

    Attributes
    ----------
    rows, cols:
        Crossbar dimensions.
    technology:
        ``"epcm"`` or ``"opcm"`` — selects the device read/write costs.
    readout:
        ``"adc"`` (TacitMap-style column ADCs) or ``"pcsa"``
        (CustBinaryMap-style differential sense amplifiers).
    columns_per_adc:
        How many columns share one ADC; 1 means a private ADC per column
        (fully parallel read-out), larger values serialise conversions.
    wdm_capacity:
        Number of wavelengths the tile can process per activation (K in the
        paper; only meaningful for ``technology="opcm"``, 1 otherwise).
    device_config, adc_config, dac_config, pcsa_config:
        Component configurations; defaults are created when omitted.
    """

    rows: int = 256
    cols: int = 256
    technology: Technology = "epcm"
    readout: Readout = "adc"
    columns_per_adc: int = 1
    wdm_capacity: int = 1
    device_config: Optional[EPCMConfig | OPCMConfig] = None
    adc_config: ADCConfig = field(default_factory=ADCConfig)
    dac_config: DACConfig = field(default_factory=DACConfig)
    pcsa_config: PCSAConfig = field(default_factory=PCSAConfig)

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("rows and cols must be positive")
        if self.technology not in ("epcm", "opcm"):
            raise ValueError("technology must be 'epcm' or 'opcm'")
        if self.readout not in ("adc", "pcsa"):
            raise ValueError("readout must be 'adc' or 'pcsa'")
        if self.columns_per_adc < 1 or self.columns_per_adc > self.cols:
            raise ValueError("columns_per_adc must be in [1, cols]")
        if self.wdm_capacity < 1:
            raise ValueError("wdm_capacity must be >= 1")
        if self.technology == "epcm" and self.wdm_capacity != 1:
            raise ValueError("WDM is only available on oPCM tiles")

    @property
    def resolved_device_config(self) -> EPCMConfig | OPCMConfig:
        """The device configuration, defaulted by technology when omitted."""
        if self.device_config is not None:
            return self.device_config
        return EPCMConfig() if self.technology == "epcm" else OPCMConfig()

    @property
    def num_adcs(self) -> int:
        """Number of physical ADCs on the tile."""
        if self.readout != "adc":
            return 0
        return int(np.ceil(self.cols / self.columns_per_adc))

    @property
    def num_tias(self) -> int:
        """Number of transimpedance amplifiers (photonic receiver only)."""
        return self.cols if self.technology == "opcm" else 0


class CrossbarTile:
    """Cost model of one crossbar tile (array + read/write periphery)."""

    def __init__(self, config: TileConfig | None = None) -> None:
        self.config = config if config is not None else TileConfig()
        self._dac = DAC(self.config.dac_config)
        self._adc = SarADC(self.config.adc_config)
        self._pcsa = PrechargeSenseAmplifier(self.config.pcsa_config)
        self._device = self.config.resolved_device_config

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    def write_cost(self, rows_written: int, cols_written: int) -> dict[str, float]:
        """Latency/energy of programming a ``rows x cols`` sub-block."""
        if not (0 < rows_written <= self.config.rows):
            raise ValueError("rows_written out of range")
        if not (0 < cols_written <= self.config.cols):
            raise ValueError("cols_written out of range")
        cells = rows_written * cols_written
        return {
            "latency": rows_written * self._device.write_latency,
            "energy": cells * self._device.write_energy_per_cell,
        }

    # ------------------------------------------------------------------ #
    # Read paths
    # ------------------------------------------------------------------ #
    def vmm_cost(self, active_rows: int, read_columns: int, *,
                 wavelengths: int = 1) -> dict[str, float]:
        """Cost of one ADC-read crossbar activation (TacitMap-style VMM/MMM).

        Parameters
        ----------
        active_rows:
            Rows driven by the input vector(s).
        read_columns:
            Columns whose result is converted.
        wavelengths:
            Number of WDM channels carried in this activation (1 for ePCM).
            The crossbar read and the analog accumulation happen once for
            all wavelengths; each wavelength then needs its own ADC
            conversion per column, but those conversions proceed on the same
            shared converters.

        Returns
        -------
        dict with ``latency`` (s), ``energy`` (J) and ``adc_conversions``.
        """
        if self.config.readout != "adc":
            raise RuntimeError("vmm_cost requires an ADC read-out tile")
        self._check_extents(active_rows, read_columns)
        if wavelengths < 1 or wavelengths > self.config.wdm_capacity:
            raise ValueError(
                f"wavelengths must be in [1, {self.config.wdm_capacity}]"
            )
        dac = self._dac.conversion_cost(active_rows)
        array = self._array_read_cost(active_rows, read_columns)
        conversions = read_columns * wavelengths
        rounds = int(np.ceil(conversions / max(self.config.num_adcs, 1)))
        adc_latency = rounds * self.config.adc_config.conversion_latency
        adc_energy = conversions * self.config.adc_config.energy_per_conversion
        tia_energy = 0.0
        if self.config.technology == "opcm":
            # Eq. 2: each column TIA burns 2 mW for the duration of the read.
            read_duration = array["latency"] + adc_latency
            tia_energy = read_columns * TIA_POWER_W * read_duration
        return {
            "latency": dac["latency"] + array["latency"] + adc_latency,
            "energy": dac["energy"] + array["energy"] + adc_energy + tia_energy,
            "adc_conversions": float(conversions),
        }

    def pcsa_row_cost(self, read_columns: int) -> dict[str, float]:
        """Cost of one CustBinaryMap step: activate one row, sense all columns.

        The baseline mapping activates a single word line (one stored weight
        vector) and latches one XNOR bit per column pair through the PCSAs;
        the popcount is *not* included here (it is digital post-processing,
        accounted by the baseline architecture model).
        """
        if self.config.readout != "pcsa":
            raise RuntimeError("pcsa_row_cost requires a PCSA read-out tile")
        if not (0 < read_columns <= self.config.cols):
            raise ValueError("read_columns out of range")
        dac = self._dac.conversion_cost(read_columns)  # inputs drive bit lines
        array = self._array_read_cost(1, read_columns)
        # a PCSA read only conducts during the short pre-charge/discharge
        # window, not for the full analog-integration read pulse, so the
        # per-cell energy scales with the sensing window
        window_ratio = min(
            self.config.pcsa_config.latency / self._device.read_latency, 1.0
        )
        array["energy"] *= window_ratio
        sense = self._pcsa.sense_cost(read_columns)
        return {
            "latency": dac["latency"] + array["latency"] + sense["latency"],
            "energy": dac["energy"] + array["energy"] + sense["energy"],
            "adc_conversions": 0.0,
        }

    # ------------------------------------------------------------------ #
    # Static power / area style queries
    # ------------------------------------------------------------------ #
    def receiver_static_power(self) -> float:
        """Static receiver power in watts (Eq. 2: N TIAs at 2 mW each)."""
        return self.config.num_tias * TIA_POWER_W

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _check_extents(self, active_rows: int, read_columns: int) -> None:
        if not (0 < active_rows <= self.config.rows):
            raise ValueError(
                f"active_rows must be in [1, {self.config.rows}], got {active_rows}"
            )
        if not (0 < read_columns <= self.config.cols):
            raise ValueError(
                f"read_columns must be in [1, {self.config.cols}], got {read_columns}"
            )

    def _array_read_cost(self, active_rows: int, read_columns: int) -> dict[str, float]:
        return {
            "latency": self._device.read_latency,
            "energy": active_rows * read_columns * self._device.read_energy_per_cell,
        }
