"""Digital-to-analog converter (DAC) model.

Each crossbar row is driven by a DAC that converts the digital input bit (or
multi-bit value) into a row voltage.  For BNN inputs a 1-bit DAC suffices —
the row is either driven at the read voltage or held at ground — which is
exactly why the paper's designs get away with cheap input drivers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.units import NANO, PICO
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DACConfig:
    """DAC parameters.

    Attributes
    ----------
    resolution_bits:
        Number of input bits the DAC resolves (1 for binary inputs).
    v_max:
        Full-scale output voltage in volts.
    latency:
        Conversion latency in seconds.
    energy_per_conversion:
        Energy per conversion in joules.
    """

    resolution_bits: int = 1
    v_max: float = 0.2
    latency: float = 0.5 * NANO
    energy_per_conversion: float = 0.02 * PICO

    def __post_init__(self) -> None:
        if self.resolution_bits < 1:
            raise ValueError("resolution_bits must be >= 1")
        check_positive("v_max", self.v_max)
        check_positive("latency", self.latency)
        check_positive("energy_per_conversion", self.energy_per_conversion,
                       allow_zero=True)

    @property
    def levels(self) -> int:
        """Number of distinct output levels."""
        return 2 ** self.resolution_bits


class DAC:
    """Converts digital input values into row voltages."""

    def __init__(self, config: DACConfig | None = None) -> None:
        self.config = config if config is not None else DACConfig()

    def convert(self, digital: np.ndarray) -> np.ndarray:
        """Convert digital codes in ``[0, levels-1]`` to analog voltages."""
        digital = np.asarray(digital)
        levels = self.config.levels
        if np.any(digital < 0) or np.any(digital > levels - 1):
            raise ValueError(
                f"digital codes must be in [0, {levels - 1}] for a "
                f"{self.config.resolution_bits}-bit DAC"
            )
        if levels == 2:
            return digital.astype(np.float64) * self.config.v_max
        return digital.astype(np.float64) / (levels - 1) * self.config.v_max

    def conversion_cost(self, num_conversions: int) -> dict[str, float]:
        """Latency/energy for ``num_conversions`` parallel conversions.

        All row DACs convert simultaneously, so latency does not scale with
        the count while energy does.
        """
        if num_conversions < 0:
            raise ValueError("num_conversions must be non-negative")
        return {
            "latency": self.config.latency if num_conversions else 0.0,
            "energy": num_conversions * self.config.energy_per_conversion,
        }
