"""Electronic crossbar substrate: cells, periphery, and the analog VMM array.

The crossbar (Fig. 1-(c) of the paper) is the compute primitive both
mappings target: weights live as device states at the row/column
intersections, an input vector is applied to the rows, and Kirchhoff
summation on each column produces a Multiply-and-Accumulate in one step.

The package models the crossbar at two levels:

* a *functional/analog* level (:class:`~repro.crossbar.array.CrossbarArray`)
  that actually multiplies voltages against noisy device conductances /
  transmissions and quantises the result through ADC or PCSA read-out —
  this is what the mapping-equivalence tests exercise, and
* a *cost* level (:class:`~repro.crossbar.tile.CrossbarTile`) that adds DACs,
  ADCs (possibly shared among columns), sense amplifiers and their per-access
  latency/energy, which is what the architecture models consume.
"""

from repro.crossbar.adc import ADCConfig, SarADC
from repro.crossbar.array import CrossbarArray
from repro.crossbar.cell import CellType, OneT1RCell, TwoT2RCell
from repro.crossbar.dac import DAC, DACConfig
from repro.crossbar.sense_amplifier import PCSAConfig, PrechargeSenseAmplifier
from repro.crossbar.tile import CrossbarTile, TileConfig

__all__ = [
    "ADCConfig",
    "SarADC",
    "CrossbarArray",
    "CellType",
    "OneT1RCell",
    "TwoT2RCell",
    "DAC",
    "DACConfig",
    "PCSAConfig",
    "PrechargeSenseAmplifier",
    "CrossbarTile",
    "TileConfig",
]
