"""Pre-charge sense amplifier (PCSA) model.

CustBinaryMap (the Baseline-ePCM mapping of Hirtzlin et al.) does not use
ADCs at all: each 2T2R column pair is read by a *pre-charge sense amplifier*
that compares the currents through the true and complement devices and
outputs a single bit — the XNOR of the stored weight bit and the applied
input bit.  The popcount must then be finished by digital counters.

A PCSA is tiny and cheap (femtojoule-class) compared to an ADC, which is the
root of the energy trade-off in Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.units import FEMTO, NANO
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PCSAConfig:
    """Pre-charge sense amplifier parameters.

    Attributes
    ----------
    latency:
        Sensing latency (pre-charge + discharge + latch), in seconds.
    energy_per_sense:
        Energy per sensing operation, in joules.
    offset_sigma:
        Input-referred offset expressed as a fraction of the ON/OFF current
        difference; a mismatch larger than 0.5 flips the decision.
    """

    latency: float = 1.0 * NANO
    energy_per_sense: float = 30.0 * FEMTO
    offset_sigma: float = 0.02

    def __post_init__(self) -> None:
        check_positive("latency", self.latency)
        check_positive("energy_per_sense", self.energy_per_sense, allow_zero=True)
        if self.offset_sigma < 0:
            raise ValueError("offset_sigma must be non-negative")


class PrechargeSenseAmplifier:
    """Differential sensing of a 2T2R cell pair, producing one XNOR bit."""

    def __init__(self, config: PCSAConfig | None = None, *,
                 rng: np.random.Generator | None = None) -> None:
        self.config = config if config is not None else PCSAConfig()
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def sense(self, current_true: np.ndarray,
              current_complement: np.ndarray) -> np.ndarray:
        """Compare true/complement branch currents and latch a bit per column.

        Returns 1 where the true branch conducts more than the complement
        branch (i.e. input and weight agree under the CustBinaryMap layout).
        """
        current_true = np.asarray(current_true, dtype=np.float64)
        current_complement = np.asarray(current_complement, dtype=np.float64)
        if current_true.shape != current_complement.shape:
            raise ValueError("true/complement current shapes must match")
        difference = current_true - current_complement
        if self.config.offset_sigma > 0:
            scale = np.maximum(np.abs(difference).max(initial=0.0), 1e-30)
            offset = self._rng.normal(
                0.0, self.config.offset_sigma * scale, size=difference.shape
            )
            difference = difference + offset
        return (difference > 0).astype(np.int8)

    def sense_cost(self, num_senses: int) -> dict[str, float]:
        """Latency/energy of ``num_senses`` parallel sensing operations.

        All column PCSAs fire simultaneously, so latency is one sensing delay
        while energy scales with the count.
        """
        if num_senses < 0:
            raise ValueError("num_senses must be non-negative")
        return {
            "latency": self.config.latency if num_senses else 0.0,
            "energy": num_senses * self.config.energy_per_sense,
        }
