"""Persistent per-host kernel-autotune cache.

The packed/BLAS dispatch boundary of :func:`repro.bnn.xnor_ops.
choose_matmul_kernel` and the fused-conv patch-block budget are size
heuristics whose right values depend on the host CPU, not on the model.
Re-deriving them at boot is cheap once but the parallel runtime spawns a
fresh worker process per pool, so the cost is paid per worker, per run.
This module resolves both numbers **once per host** and persists them to::

    ~/.cache/repro/autotune-<host>-<numpy>-<cpu>.json

Every later process (including spawned pool workers) reads the file back
instead of measuring.  The cache is defensive:

* the payload embeds a **versioned key** — schema version, hostname,
  numpy version and CPU model string — and a file whose key does not
  match the running host is re-measured and rewritten, so a container
  image upgrade (new numpy, new CPU generation) invalidates stale
  boundaries instead of silently dispatching with the last host's
  numbers;
* a corrupt or truncated file falls back to the built-in defaults (and
  is rewritten on the next measurement);
* ``REPRO_AUTOTUNE_CACHE=off`` disables both the measurement and the
  file entirely (static defaults — right for hermetic CI and for
  debugging a suspected bad measurement); any other non-empty value
  except ``on``/``auto``/``1`` overrides the cache *directory*, which is
  what the unit tests use to stay out of ``~/.cache``.

Both kernels compute bit-identical results, so a bad boundary can only
cost speed, never correctness.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

#: environment toggle: ``off`` disables, ``on``/``auto``/empty selects the
#: default cache directory, anything else *is* the cache directory.
CACHE_ENV = "REPRO_AUTOTUNE_CACHE"

#: bump when the schema or the measurement procedure changes incompatibly
CACHE_VERSION = 1

#: fallback dispatch boundary (MACs) — see ``_PACKED_DISPATCH_MACS`` lore
#: in :mod:`repro.bnn.xnor_ops`
DEFAULT_DISPATCH_MACS = 4096

#: fallback fused-conv float32 patch-block budget (bytes)
DEFAULT_CONV_BLOCK_BYTES = 4 << 20

#: measured boundaries are clamped to this window so a noisy measurement
#: can never push dispatch into a regime the kernels were not built for
#: (and so the documented tiny-product/huge-product behaviour is stable)
_DISPATCH_MACS_RANGE = (512, 1 << 20)
_CONV_BLOCK_RANGE = (1 << 20, 32 << 20)

#: candidate MAC sizes probed when measuring the dispatch boundary
_DISPATCH_LADDER = (512, 2048, 8192, 32768, 131072)

#: candidate patch-block budgets probed for the fused-conv pipeline
_CONV_BLOCK_LADDER = (1 << 20, 2 << 20, 4 << 20, 8 << 20)


@dataclass(frozen=True)
class AutotuneParams:
    """Resolved kernel-dispatch parameters plus their provenance.

    ``source`` is one of ``"cache"`` (read back from a valid cache file),
    ``"measured"`` (measured this process, file written), or
    ``"defaults"`` (cache disabled, or measurement/persistence failed).
    """

    dispatch_macs: int
    conv_block_bytes: int
    source: str


def _cpu_model() -> str:
    """Best-effort CPU model string (part of the cache key)."""
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    _, _, value = line.partition(":")
                    model = value.strip()
                    if model:
                        return model
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def cache_key() -> Dict[str, object]:
    """The versioned identity a cache file must match to be trusted."""
    return {
        "version": CACHE_VERSION,
        "host": platform.node() or "unknown",
        "numpy": np.__version__,
        "cpu": _cpu_model(),
    }


def _slug(text: str, limit: int = 40) -> str:
    """Filesystem-safe token derived from an identity component."""
    cleaned = "".join(c if c.isalnum() or c in "._-" else "-" for c in text)
    return (cleaned or "unknown")[:limit]


def cache_dir() -> Optional[str]:
    """Resolved cache directory, or ``None`` when the cache is disabled."""
    raw = os.environ.get(CACHE_ENV, "").strip()
    if raw.lower() in ("off", "0", "false", "disabled", "no"):
        return None
    if raw and raw.lower() not in ("on", "auto", "1", "yes"):
        return raw
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def cache_path() -> Optional[str]:
    """Per-host cache file path, or ``None`` when the cache is disabled."""
    directory = cache_dir()
    if directory is None:
        return None
    key = cache_key()
    name = (
        f"autotune-{_slug(str(key['host']))}"
        f"-{_slug(str(key['numpy']))}"
        f"-{_slug(str(key['cpu']))}.json"
    )
    return os.path.join(directory, name)


def _load_payload(path: str) -> Optional[Dict[str, object]]:
    """The raw key-validated payload (``None`` = absent/stale/corrupt)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("key") != cache_key():
        return None
    return payload


def _read_cache(path: str) -> Optional[Dict[str, int]]:
    """Validated params from a cache file (``None`` = absent/stale/corrupt)."""
    payload = _load_payload(path)
    if payload is None:
        return None
    params = payload.get("params")
    if not isinstance(params, dict):
        return None
    resolved: Dict[str, int] = {}
    for name, (lower, upper) in (
        ("dispatch_macs", _DISPATCH_MACS_RANGE),
        ("conv_block_bytes", _CONV_BLOCK_RANGE),
    ):
        value = params.get(name)
        if not isinstance(value, int) or isinstance(value, bool) \
                or not lower <= value <= upper:
            return None
        resolved[name] = value
    return resolved


def _write_cache(path: str, *, params: Optional[Dict[str, int]] = None,
                 pipeline_updates: Optional[Dict[str, Dict[str, object]]]
                 = None) -> bool:
    """Persist params and/or pipeline decisions; False when the fs refuses.

    Merges into the existing key-valid payload so the kernel ``params``
    section and the streaming-pipeline ``pipeline`` section never clobber
    each other; a stale-key file is rewritten wholesale (its pipeline
    decisions belonged to the previous host identity too).
    """
    payload = _load_payload(path) or {"key": cache_key()}
    if params is not None:
        payload["params"] = params
    if pipeline_updates:
        section = payload.get("pipeline")
        if not isinstance(section, dict):
            section = {}
        section.update(pipeline_updates)
        payload["pipeline"] = section
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return False
    return True


def _best_time(fn: Callable[[], object], repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_dispatch_macs() -> int:
    """Largest MAC count where the packed kernel still beats BLAS.

    Probes a geometric ladder of operand sizes with both explicit kernels
    and returns the midpoint between the last packed win and the first
    BLAS win, clamped into :data:`_DISPATCH_MACS_RANGE`.  The operands are
    shaped ``(16, L) x (16, L)`` so the ladder varies MACs through the
    reduction length, matching how real layers cross the boundary.
    """
    from repro.bnn.xnor_ops import binary_matmul  # lazy: avoid import cycle

    rng = np.random.default_rng(0)
    last_packed_win = 0
    first_blas_win = 0
    for macs in _DISPATCH_LADDER:
        length = max(8, macs // (16 * 16))
        a = rng.choice(np.array([-1, 1], dtype=np.int8), size=(16, length))
        b = rng.choice(np.array([-1, 1], dtype=np.int8), size=(16, length))
        packed_s = _best_time(lambda: binary_matmul(a, b, kernel="packed"))
        blas_s = _best_time(lambda: binary_matmul(a, b, kernel="blas"))
        if packed_s <= blas_s:
            last_packed_win = macs
        elif not first_blas_win:
            first_blas_win = macs
    if not last_packed_win:
        boundary = _DISPATCH_MACS_RANGE[0]
    elif not first_blas_win or first_blas_win < last_packed_win:
        boundary = last_packed_win
    else:
        boundary = int((last_packed_win * first_blas_win) ** 0.5)
    return max(_DISPATCH_MACS_RANGE[0],
               min(_DISPATCH_MACS_RANGE[1], boundary))


def _measure_conv_block_bytes() -> int:
    """Fastest patch-block budget for the fused-conv gather/GEMM pipeline.

    Times a blocked ``float32`` GEMM shaped like the fused conv kernel's
    inner loop (gathered patch block times flat kernels) for each ladder
    budget and keeps the fastest, clamped into :data:`_CONV_BLOCK_RANGE`.
    """
    rng = np.random.default_rng(0)
    row_length = 1152  # 128 channels x 3x3 kernel — a representative conv
    num_rows, num_outputs = 2048, 64
    patches = rng.standard_normal((num_rows, row_length)).astype(np.float32)
    kernels = rng.standard_normal((num_outputs, row_length)).astype(np.float32)
    out = np.empty((num_rows, num_outputs), dtype=np.float32)

    def run(block_bytes: int) -> None:
        rows_per_block = max(1, block_bytes // (row_length * 4))
        for start in range(0, num_rows, rows_per_block):
            block = patches[start:start + rows_per_block]
            out[start:start + rows_per_block] = block @ kernels.T

    timed = {budget: _best_time(lambda: run(budget))
             for budget in _CONV_BLOCK_LADDER}
    best = min(timed, key=timed.get)
    return max(_CONV_BLOCK_RANGE[0], min(_CONV_BLOCK_RANGE[1], best))


def measure_params() -> Dict[str, int]:
    """Run both measurements (no cache interaction)."""
    return {
        "dispatch_macs": _measure_dispatch_macs(),
        "conv_block_bytes": _measure_conv_block_bytes(),
    }


_PARAMS: Optional[AutotuneParams] = None


def get_params(*, refresh: bool = False) -> AutotuneParams:
    """Resolved autotune parameters for this host (process-wide singleton).

    Resolution order: in-process singleton -> valid cache file ->
    measure-and-persist -> built-in defaults (cache disabled or the
    measurement could not be persisted *and* ran into an error).
    ``refresh=True`` drops the singleton and re-resolves (tests).
    """
    global _PARAMS
    if _PARAMS is not None and not refresh:
        return _PARAMS
    path = cache_path()
    if path is None:
        _PARAMS = AutotuneParams(DEFAULT_DISPATCH_MACS,
                                 DEFAULT_CONV_BLOCK_BYTES, "defaults")
        return _PARAMS
    cached = _read_cache(path)
    if cached is not None:
        _PARAMS = AutotuneParams(cached["dispatch_macs"],
                                 cached["conv_block_bytes"], "cache")
        return _PARAMS
    try:
        measured = measure_params()
    except Exception:
        _PARAMS = AutotuneParams(DEFAULT_DISPATCH_MACS,
                                 DEFAULT_CONV_BLOCK_BYTES, "defaults")
        return _PARAMS
    _write_cache(path, params=measured)
    _PARAMS = AutotuneParams(measured["dispatch_macs"],
                             measured["conv_block_bytes"], "measured")
    return _PARAMS


def reset_cached_params() -> None:
    """Drop the in-process singletons so the next call re-resolves (tests)."""
    global _PARAMS
    _PARAMS = None
    _PIPELINE_DECISIONS.clear()


def dispatch_macs() -> int:
    """The resolved packed/BLAS dispatch boundary in MACs."""
    return get_params().dispatch_macs


def conv_block_bytes() -> int:
    """The resolved fused-conv patch-block budget in bytes."""
    return get_params().conv_block_bytes


# --------------------------------------------------------------------------- #
# Streaming-pipeline profitability decisions
# --------------------------------------------------------------------------- #

#: measured pipelined/serial speedup at or above which the streaming
#: pipeline is judged profitable for a (plan, batch_size) signature
PIPELINE_MIN_SPEEDUP = 1.05

#: in-process memo of pipeline decisions, keyed by plan signature; the
#: persistent copy lives under the ``"pipeline"`` section of the same
#: per-host cache file as the kernel params
_PIPELINE_DECISIONS: Dict[str, Dict[str, object]] = {}


def _valid_pipeline_entry(entry: object) -> Optional[Dict[str, object]]:
    if not isinstance(entry, dict):
        return None
    speedup = entry.get("speedup")
    profitable = entry.get("profitable")
    if isinstance(speedup, bool) or not isinstance(speedup, (int, float)):
        return None
    if not isinstance(profitable, bool):
        return None
    return {"speedup": float(speedup), "profitable": profitable}


def pipeline_decision(signature: str) -> Optional[Dict[str, object]]:
    """Cached streaming-pipeline verdict for ``signature``, or ``None``.

    Resolution order mirrors :func:`get_params`: in-process memo, then
    the ``"pipeline"`` section of the key-valid per-host cache file.
    The returned dict carries ``speedup``/``profitable`` plus a
    ``source`` of ``"memory"`` or ``"cache"``; ``None`` means unmeasured
    (the caller measures and records).  With the cache disabled
    (``REPRO_AUTOTUNE_CACHE=off``) only the in-process memo answers.
    """
    entry = _PIPELINE_DECISIONS.get(signature)
    if entry is not None:
        return dict(entry, source="memory")
    path = cache_path()
    if path is None:
        return None
    payload = _load_payload(path)
    section = payload.get("pipeline") if payload else None
    if not isinstance(section, dict):
        return None
    entry = _valid_pipeline_entry(section.get(signature))
    if entry is None:
        return None
    _PIPELINE_DECISIONS[signature] = entry
    return dict(entry, source="cache")


def record_pipeline_decision(signature: str, speedup: float,
                             ) -> Dict[str, object]:
    """Memoise and persist a measured pipeline speedup for ``signature``.

    The verdict is ``speedup >= PIPELINE_MIN_SPEEDUP`` — the overlap
    must pay for its hand-off overhead.  Persistence failures degrade to
    the in-process memo (same policy as the kernel params).
    """
    entry: Dict[str, object] = {
        "speedup": round(float(speedup), 4),
        "profitable": bool(float(speedup) >= PIPELINE_MIN_SPEEDUP),
    }
    _PIPELINE_DECISIONS[signature] = entry
    path = cache_path()
    if path is not None:
        _write_cache(path, pipeline_updates={signature: entry})
    return dict(entry, source="measured")
