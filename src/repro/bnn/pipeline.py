"""Streaming packed pipeline: stage-overlapped execution of a compiled plan.

The paper's accelerator owes its throughput to a pipelined dataflow: the
full-precision first layer and the binary crossbar blocks process
*different* inputs concurrently instead of serialising per image.  This
module is the software analogue for :class:`~repro.bnn.model.InferenceEngine`:
the compiled step plan is split into stages —

::

    chunks ──> [ dense prefix ] ──> [ packed body ] ──> ( packed body 2 ) ──> [ dense tail ] ──> logits
       k+2          BLAS      queue  XNOR/popcount queue   (optional split) queue    BLAS
                 (chunk k+2)          (chunk k+1)             (chunk k)           (chunk k-1)

— each stage on its own worker thread, connected by small bounded
hand-off queues, so chunk *k+1*'s BLAS prefix overlaps chunk *k*'s
XNOR/popcount body.  Threads (not processes) are the right substrate:
both kernel families release the GIL (BLAS GEMM inside NumPy ``dot``,
the packed XNOR/popcount kernels inside NumPy ufuncs), and staying
in-process means activations hand off by reference — no pickle, no
shared memory.

**Bit-exactness is non-negotiable.**  Chunk boundaries are unchanged and
every stage runs :meth:`InferenceEngine._run_steps` with *global* plan
indices, so the per-``(offset, step_index)`` flip-noise seed derivation
is identical to the serial path — pipelined output is byte-identical to
``_run_chunk`` per chunk, including seeded flip noise (property-tested
in ``tests/bnn/test_pipeline.py``).

Mode resolution (``maybe_stream``): an explicit ``pipeline=`` argument
beats the ``REPRO_ENGINE_PIPELINE`` env toggle, which defaults to
``"auto"``.  ``"auto"`` defers to :mod:`repro.bnn.autotune`, which
measures per-host profitability once per (network plan, batch size) and
caches the verdict alongside the kernel parameters — on a 1-core host
the measurement says no and the serial path keeps running.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.bnn.model import (
    _STEP_BINARY_DENSE,
    _STEP_FUSED,
    _STEP_SIGN,
    _binary_num_outputs,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.bnn.model import InferenceEngine, _PlanStep

#: env toggle of the default pipeline mode (an explicit ``pipeline=``
#: argument wins); unset/invalid resolves to ``auto``
PIPELINE_ENV = "REPRO_ENGINE_PIPELINE"

_MODES = ("auto", "on", "off")

#: bounded hand-off depth between adjacent stages: deep enough to absorb
#: per-chunk jitter, shallow enough that at most a few chunks of
#: activations are in flight per stage boundary
QUEUE_DEPTH = 2

#: chunks fed to each arm of the ``auto`` profitability probe
#: (the profitability threshold itself lives in
#: :data:`repro.bnn.autotune.PIPELINE_MIN_SPEEDUP`)
_PROBE_CHUNKS = 4

#: ``auto`` declines batches smaller than this without measuring: the
#: overlap cannot recoup hand-off overhead on a handful of rows, and the
#: probe itself would dwarf the work being probed
_AUTO_MIN_ROWS = 64

_SENTINEL = object()


def pipeline_mode(pipeline: Optional[str] = None) -> str:
    """Resolve the effective mode: explicit argument, else env, else auto.

    An invalid explicit argument raises; an invalid env value falls back
    to ``"auto"`` (same leniency as ``REPRO_RUNTIME_SHM``).
    """
    if pipeline is not None:
        if pipeline not in _MODES:
            raise ValueError(
                f"pipeline must be one of {_MODES}, got {pipeline!r}"
            )
        return pipeline
    raw = os.environ.get(PIPELINE_ENV, "").strip().lower()
    return raw if raw in _MODES else "auto"


# --------------------------------------------------------------------------- #
# Stage planning
# --------------------------------------------------------------------------- #

#: step kinds that operate on packed bit-planes (the crossbar body)
_PACKED_KINDS = (_STEP_FUSED, _STEP_BINARY_DENSE, _STEP_SIGN)


@dataclass(frozen=True)
class Stage:
    """A contiguous ``[start, stop)`` slice of the compiled plan."""

    name: str
    start: int
    stop: int

    @property
    def num_steps(self) -> int:
        return self.stop - self.start


def _fused_cost(step: "_PlanStep") -> int:
    # XNOR-MAC count per output position: vector length x output channels
    # (spatial extent ignored — it only reorders convs against convs of
    # similar depth, and the split just needs the heaviest step)
    return step.vector_length * _binary_num_outputs(step.layer)


def plan_stages(steps: Sequence["_PlanStep"], *,
                split_body: bool = True) -> List[Stage]:
    """Split a compiled plan into pipeline stages.

    Dense prefix (everything before the first packed-kind step), packed
    binary body, dense tail (everything after the last packed-kind step).
    With ``split_body`` the body is additionally split *before* its most
    expensive fused step (XNOR-MAC proxy), so the two body stages carry
    comparable work.  A plan with no packed steps degenerates to a single
    stage — the caller falls back to the serial path.
    """
    packed = [i for i, step in enumerate(steps)
              if step.kind in _PACKED_KINDS]
    if not packed:
        return [Stage("plan", 0, len(steps))]
    body_start, body_stop = packed[0], packed[-1] + 1
    stages: List[Stage] = []
    if body_start > 0:
        stages.append(Stage("dense_prefix", 0, body_start))
    fused = [i for i in range(body_start, body_stop)
             if steps[i].kind == _STEP_FUSED]
    boundary = None
    if split_body and len(fused) >= 2:
        heaviest = max(fused, key=lambda i: _fused_cost(steps[i]))
        # the heaviest fused step opens the second body stage so it never
        # shares a thread with the rest of the body's fused work
        boundary = heaviest if heaviest > body_start else heaviest + 1
    if boundary is not None and body_start < boundary < body_stop:
        stages.append(Stage("packed_body", body_start, boundary))
        stages.append(Stage("packed_body_2", boundary, body_stop))
    else:
        stages.append(Stage("packed_body", body_start, body_stop))
    if body_stop < len(steps):
        stages.append(Stage("dense_tail", body_stop, len(steps)))
    return stages


def plan_signature(engine: "InferenceEngine", batch_size: int) -> str:
    """Cache key of an (engine plan, chunk size) pair for autotune."""
    kinds = ",".join(step.kind for step in engine._steps)
    return f"{engine.model.name}|{kinds}|bs{int(batch_size)}"


# --------------------------------------------------------------------------- #
# The streaming pipeline
# --------------------------------------------------------------------------- #

@dataclass
class StageStats:
    """Per-stage occupancy from one :meth:`StreamingPipeline.run`."""

    name: str
    num_steps: int
    busy_s: float = 0.0
    chunks: int = 0
    occupancy: float = 0.0

    def as_dict(self) -> dict:
        return {"name": self.name, "num_steps": self.num_steps,
                "busy_s": round(self.busy_s, 6), "chunks": self.chunks,
                "occupancy": round(self.occupancy, 4)}


@dataclass
class _Failure:
    exc: Optional[BaseException] = None
    lock: threading.Lock = field(default_factory=threading.Lock)

    def record(self, exc: BaseException) -> None:
        with self.lock:
            if self.exc is None:
                self.exc = exc


class StreamingPipeline:
    """Run an engine's chunks through stage worker threads.

    One pipeline is cheap to build (stage planning is ``O(steps)``) and
    holds no threads between runs — workers live only inside
    :meth:`run`, which joins every one of them before returning, even
    when a stage raises (the first stage exception is re-raised in the
    caller after the join, so a crash leaves no live threads behind).
    """

    def __init__(self, engine: "InferenceEngine", *,
                 split_body: bool = True,
                 queue_depth: int = QUEUE_DEPTH) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.engine = engine
        self.stages = plan_stages(engine._steps, split_body=split_body)
        self.queue_depth = int(queue_depth)

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def run(self, x: np.ndarray, batch_size: int
            ) -> Tuple[np.ndarray, List[StageStats]]:
        """Stream ``x`` through the stages; returns ``(logits, stats)``.

        Byte-identical to the serial path: chunk boundaries are the same
        ``range(0, n, batch_size)`` slices and every stage runs
        ``_run_steps`` with global plan indices.
        """
        engine = self.engine
        stages = self.stages
        offsets = list(range(0, x.shape[0], batch_size))
        stats = [StageStats(stage.name, stage.num_steps) for stage in stages]
        if len(stages) == 1 or len(offsets) == 1:
            # degenerate: nothing to overlap — run serially in the caller
            wall = time.perf_counter()
            parts = [engine._run_chunk(x[off:off + batch_size], off)
                     for off in offsets]
            stats[0].busy_s = time.perf_counter() - wall
            stats[0].chunks = len(offsets)
            stats[0].occupancy = 1.0
            return np.concatenate(parts, axis=0), stats

        queues = [queue.Queue(maxsize=self.queue_depth)
                  for _ in range(len(stages))]
        failure = _Failure()
        abort = threading.Event()
        results: dict = {}

        def _put(q: "queue.Queue", item: object) -> bool:
            while not abort.is_set():
                try:
                    q.put(item, timeout=0.05)
                    return True
                except queue.Full:
                    continue
            return False

        def _stage_worker(index: int) -> None:
            stage = stages[index]
            inbox = queues[index]
            outbox = queues[index + 1] if index + 1 < len(stages) else None
            last = outbox is None
            while True:
                item = inbox.get()
                if item is _SENTINEL:
                    if outbox is not None:
                        # unconditional: the next stage drains its inbox
                        # until the sentinel arrives, so this cannot block
                        # forever even mid-abort
                        outbox.put(_SENTINEL)
                    return
                if abort.is_set():
                    continue  # drain so upstream puts never deadlock
                offset, state = item
                try:
                    tick = time.perf_counter()
                    state = engine._run_steps(state, offset, stage.start,
                                              stage.stop)
                    if last:
                        state = engine._finalise(state)
                    stats[index].busy_s += time.perf_counter() - tick
                    stats[index].chunks += 1
                except BaseException as exc:
                    failure.record(exc)
                    abort.set()
                    continue
                if last:
                    results[offset] = state
                elif not _put(outbox, (offset, state)):
                    continue

        wall = time.perf_counter()
        workers = [
            threading.Thread(target=_stage_worker, args=(index,),
                             name=f"repro-pipeline-s{index}", daemon=True)
            for index in range(len(stages))
        ]
        for worker in workers:
            worker.start()
        try:
            for offset in offsets:
                if not _put(queues[0], (offset, x[offset:offset + batch_size])):
                    break
        finally:
            # unconditional: the sentinel is what lets every stage return,
            # and stage 0 keeps draining its inbox until it sees one, so a
            # blocking put cannot deadlock even mid-abort
            queues[0].put(_SENTINEL)
            for worker in workers:
                worker.join()
        if failure.exc is not None:
            raise failure.exc
        wall = time.perf_counter() - wall
        for stat in stats:
            stat.occupancy = min(1.0, stat.busy_s / wall) if wall > 0 else 0.0
        return (
            np.concatenate([results[off] for off in offsets], axis=0),
            stats,
        )


# --------------------------------------------------------------------------- #
# forward_batch integration
# --------------------------------------------------------------------------- #

def measure_speedup(engine: "InferenceEngine", x: np.ndarray,
                    batch_size: int, *, reps: int = 2) -> float:
    """Measured pipelined/serial speedup on a bounded probe of ``x``.

    Interleaves the two arms (serial, pipelined, serial, ...) and takes
    the best of each so one scheduling hiccup cannot flip the verdict.
    """
    probe = x[:min(x.shape[0], _PROBE_CHUNKS * batch_size)]
    pipe = StreamingPipeline(engine)
    offsets = range(0, probe.shape[0], batch_size)
    best_serial = best_piped = float("inf")
    for _ in range(max(1, reps)):
        tick = time.perf_counter()
        for off in offsets:
            engine._run_chunk(probe[off:off + batch_size], off)
        best_serial = min(best_serial, time.perf_counter() - tick)
        tick = time.perf_counter()
        pipe.run(probe, batch_size)
        best_piped = min(best_piped, time.perf_counter() - tick)
    if best_piped <= 0.0:
        return 1.0
    return best_serial / best_piped


def maybe_stream(engine: "InferenceEngine", x: np.ndarray, batch_size: int,
                 pipeline: Optional[str]) -> Optional[np.ndarray]:
    """Run ``x`` through the streaming pipeline, or ``None`` for serial.

    ``None`` (fall back to the serial chunk loop) whenever the mode is
    ``"off"``, the batch is a single chunk, the plan degenerates to one
    stage, or ``"auto"``'s cached/measured profitability verdict says the
    overlap does not pay on this host.
    """
    mode = pipeline_mode(pipeline)
    if mode == "off":
        return None
    if x.shape[0] <= batch_size:
        return None  # one chunk: nothing to overlap
    pipe = StreamingPipeline(engine)
    if pipe.num_stages < 2:
        return None  # degenerate plan (e.g. fully dense): serial
    if mode == "auto":
        if x.shape[0] < _AUTO_MIN_ROWS:
            return None
        from repro.bnn import autotune

        signature = plan_signature(engine, batch_size)
        decision = autotune.pipeline_decision(signature)
        if decision is None:
            speedup = measure_speedup(engine, x, batch_size)
            decision = autotune.record_pipeline_decision(signature, speedup)
        if not decision.get("profitable"):
            return None
    logits, _ = pipe.run(x, batch_size)
    return logits
