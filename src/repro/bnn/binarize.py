"""Binarisation utilities.

BNNs in the paper operate on binary weights and activations encoded either as
*bipolar* values ``{-1, +1}`` (the algebra used by Eq. 1's convolution) or as
*unipolar* bits ``{0, 1}`` (the encoding actually stored in PCM cells and fed
through the crossbar).  This module provides the sign binarisation used at
inference time, the straight-through estimator (STE) used during training, and
the lossless conversions between the two encodings.
"""

from __future__ import annotations

import numpy as np


def binarize_sign(x: np.ndarray) -> np.ndarray:
    """Binarise ``x`` to bipolar ``{-1, +1}`` using the sign function.

    Zero is mapped to ``+1`` following the convention of BinaryConnect /
    XNOR-Net, so the output never contains a third value.
    """
    x = np.asarray(x)
    return np.where(x >= 0, 1, -1).astype(np.int8)


def to_unipolar(bipolar: np.ndarray) -> np.ndarray:
    """Convert bipolar ``{-1, +1}`` values to unipolar bits ``{0, 1}``.

    The mapping is ``-1 -> 0`` and ``+1 -> 1``; it is the encoding written
    into PCM devices (amorphous = 0, crystalline = 1).
    """
    bipolar = np.asarray(bipolar)
    unique = np.unique(bipolar)
    if not np.all(np.isin(unique, (-1, 1))):
        raise ValueError(
            f"expected bipolar -1/+1 input, found values {unique[:8]!r}"
        )
    return ((bipolar + 1) // 2).astype(np.int8)


def to_bipolar(unipolar: np.ndarray) -> np.ndarray:
    """Convert unipolar bits ``{0, 1}`` to bipolar values ``{-1, +1}``."""
    unipolar = np.asarray(unipolar)
    unique = np.unique(unipolar)
    if not np.all(np.isin(unique, (0, 1))):
        raise ValueError(
            f"expected unipolar 0/1 input, found values {unique[:8]!r}"
        )
    return (unipolar.astype(np.int8) * 2 - 1).astype(np.int8)


def ste_backward(grad_output: np.ndarray, latent: np.ndarray,
                 clip: float = 1.0) -> np.ndarray:
    """Straight-through estimator gradient for the sign function.

    During training the latent full-precision weights/activations are
    binarised in the forward pass; the backward pass passes the gradient
    straight through wherever the latent value lies inside ``[-clip, clip]``
    and zeroes it elsewhere (the "hard tanh" STE of Courbariaux et al.).

    Parameters
    ----------
    grad_output:
        Gradient flowing back from the binarised value.
    latent:
        The latent full-precision tensor that was binarised.
    clip:
        Saturation bound outside which the gradient is cancelled.
    """
    latent = np.asarray(latent, dtype=np.float64)
    mask = (np.abs(latent) <= clip).astype(np.float64)
    return np.asarray(grad_output, dtype=np.float64) * mask


def clip_latent(latent: np.ndarray, clip: float = 1.0) -> np.ndarray:
    """Clip latent full-precision weights to ``[-clip, clip]``.

    BinaryConnect keeps latent weights bounded so that the STE gradient mask
    never permanently disables a weight.
    """
    return np.clip(np.asarray(latent, dtype=np.float64), -clip, clip)
