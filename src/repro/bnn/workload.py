"""Workload extraction: from a BNN model to per-layer operation counts.

The accelerator timing and energy models do not care about tensor *values* —
they care about how many XNOR+Popcount vector operations each layer needs,
how long those vectors are, and how many of them exist.  This module distils
a :class:`~repro.bnn.model.BNNModel` into a :class:`NetworkWorkload`, a list
of :class:`LayerSpec` records in the paper's vocabulary:

* ``vector_length`` (*m* in Fig. 3) — length of one input/weight vector,
* ``num_weight_vectors`` (*n* in Fig. 3) — how many weight vectors (crossbar
  columns under TacitMap / crossbar rows under CustBinaryMap) the layer has,
* ``num_input_vectors`` — how many activation vectors one inference produces
  (1 for a fully connected layer, ``out_h*out_w`` sliding windows for a
  convolution — the coloured vectors of Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

from repro.bnn.layers import BinaryConv2d, BinaryLinear, Conv2d, Layer, Linear
from repro.bnn.model import BNNModel
from repro.bnn.networks import build_network, dataset_for_network


@dataclass(frozen=True)
class LayerSpec:
    """Operation-count description of a single MAC layer.

    Attributes
    ----------
    name:
        Human-readable layer label, e.g. ``"layer03:BinaryConv2d"``.
    kind:
        ``"linear"`` or ``"conv"``.
    is_binary:
        Whether the layer's MACs are XNOR+Popcount (binary hidden layer) or
        full precision (first/last layers, executed on digital units).
    vector_length:
        Length *m* of one input/weight vector (``in_features`` for linear,
        ``in_channels * k * k`` for conv).
    num_weight_vectors:
        Number *n* of weight vectors (output neurons / output channels).
    num_input_vectors:
        Number of activation vectors per single inference (1 for linear,
        number of sliding windows for conv).
    """

    name: str
    kind: str
    is_binary: bool
    vector_length: int
    num_weight_vectors: int
    num_input_vectors: int

    @property
    def macs(self) -> int:
        """Total multiply-accumulate (or XNOR+accumulate) scalar operations."""
        return self.vector_length * self.num_weight_vectors * self.num_input_vectors

    @property
    def xnor_popcount_ops(self) -> int:
        """Number of vector-level XNOR+Popcount operations (Eq. 1 instances)."""
        return self.num_weight_vectors * self.num_input_vectors

    @property
    def weight_bits(self) -> int:
        """Number of weight bits the layer stores (before complementing)."""
        return self.vector_length * self.num_weight_vectors


@dataclass(frozen=True)
class NetworkWorkload:
    """All MAC layers of one evaluation network, in execution order.

    ``layers`` is a tuple so instances are deeply immutable (and hashable):
    :func:`get_workload` shares one cached instance across the experiment,
    ablation and sweep runners.
    """

    name: str
    dataset: str
    input_shape: Tuple[int, ...]
    layers: Tuple[LayerSpec, ...] = ()

    @property
    def binary_layers(self) -> List[LayerSpec]:
        """The hidden binary layers (the ones the crossbar accelerates)."""
        return [layer for layer in self.layers if layer.is_binary]

    @property
    def full_precision_layers(self) -> List[LayerSpec]:
        """The non-binary first/last layers (executed digitally)."""
        return [layer for layer in self.layers if not layer.is_binary]

    @property
    def total_macs(self) -> int:
        """Total MACs per inference across all layers."""
        return sum(layer.macs for layer in self.layers)

    @property
    def binary_macs(self) -> int:
        """MACs per inference inside binary layers."""
        return sum(layer.macs for layer in self.binary_layers)

    @property
    def full_precision_macs(self) -> int:
        """MACs per inference inside full-precision layers."""
        return sum(layer.macs for layer in self.full_precision_layers)

    @property
    def binary_fraction(self) -> float:
        """Fraction of all MACs that are binary (the Amdahl knob of Fig. 7)."""
        total = self.total_macs
        return self.binary_macs / total if total else 0.0


def _conv_output_hw(layer, input_shape: Tuple[int, ...]) -> Tuple[int, int]:
    _, height, width = input_shape
    out_h = (height + 2 * layer.padding - layer.kernel_size) // layer.stride + 1
    out_w = (width + 2 * layer.padding - layer.kernel_size) // layer.stride + 1
    return out_h, out_w


def extract_workload(model: BNNModel) -> NetworkWorkload:
    """Extract the per-layer operation counts of ``model``.

    Only MAC layers (Linear / Conv2d and their binary variants) contribute a
    :class:`LayerSpec`; normalisation, pooling and activation layers carry a
    negligible operation count that all compared designs execute identically
    in their digital periphery, so they are excluded from the accounting just
    as in the paper.
    """
    specs: List[LayerSpec] = []
    for index, (layer, in_shape, _out_shape) in enumerate(model.iter_with_shapes()):
        spec = _layer_spec(layer, in_shape, index)
        if spec is not None:
            specs.append(spec)
    try:
        dataset = dataset_for_network(model.name)
    except ValueError:
        dataset = "custom"
    return NetworkWorkload(
        name=model.name,
        dataset=dataset,
        input_shape=model.input_shape,
        layers=tuple(specs),
    )


@lru_cache(maxsize=None)
def get_workload(network_name: str) -> NetworkWorkload:
    """Memoised workload of one of the named evaluation networks.

    Building a network instantiates every weight tensor only to read off the
    layer dimensions; the resulting :class:`NetworkWorkload` is immutable and
    identical on every call, so figure regeneration and design-space sweeps
    share one extraction per network instead of rebuilding the model per
    design per figure.  Use :func:`extract_workload` directly for ad-hoc
    models.
    """
    return extract_workload(build_network(network_name))


def _layer_spec(layer: Layer, in_shape: Tuple[int, ...], index: int) -> LayerSpec | None:
    label = f"layer{index:02d}:{type(layer).__name__}"
    if isinstance(layer, (Linear, BinaryLinear)):
        return LayerSpec(
            name=label,
            kind="linear",
            is_binary=layer.is_binary,
            vector_length=layer.in_features,
            num_weight_vectors=layer.out_features,
            num_input_vectors=1,
        )
    if isinstance(layer, (Conv2d, BinaryConv2d)):
        out_h, out_w = _conv_output_hw(layer, in_shape)
        return LayerSpec(
            name=label,
            kind="conv",
            is_binary=layer.is_binary,
            vector_length=layer.in_channels * layer.kernel_size * layer.kernel_size,
            num_weight_vectors=layer.out_channels,
            num_input_vectors=out_h * out_w,
        )
    return None
