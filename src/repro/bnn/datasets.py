"""Synthetic MNIST / CIFAR-10-like datasets.

The paper evaluates on MNIST and CIFAR-10.  This environment has no network
access, so we synthesise datasets with the same tensor shapes, value ranges
and number of classes, built from deterministic class-conditional prototypes
plus noise.  The accelerator study does not depend on absolute accuracy (the
paper states the mappings do not change accuracy at all); what matters is
that real binary weight/activation tensors of the right shapes flow through
the layers, which these datasets provide.  They are also separable enough
that the included training loop visibly learns, which the training tests
assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.rng import RngLike, make_rng

MNIST_SHAPE = (1, 28, 28)
CIFAR_SHAPE = (3, 32, 32)
NUM_CLASSES = 10


@dataclass(frozen=True)
class Dataset:
    """A supervised dataset split into train and test partitions.

    Attributes
    ----------
    name:
        Dataset identifier (``"synthetic-mnist"`` or ``"synthetic-cifar10"``).
    train_images, test_images:
        Arrays of shape ``(n, C, H, W)`` with values in ``[-1, 1]``.
    train_labels, test_labels:
        Integer class labels in ``[0, num_classes)``.
    num_classes:
        Number of distinct classes.
    """

    name: str
    train_images: np.ndarray
    train_labels: np.ndarray
    test_images: np.ndarray
    test_labels: np.ndarray
    num_classes: int

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        """Per-sample ``(channels, height, width)`` shape."""
        return tuple(self.train_images.shape[1:])  # type: ignore[return-value]

    def flattened(self) -> "Dataset":
        """Return a copy with images flattened to ``(n, C*H*W)`` (for MLPs)."""
        return Dataset(
            name=self.name + "-flat",
            train_images=self.train_images.reshape(self.train_images.shape[0], -1),
            train_labels=self.train_labels,
            test_images=self.test_images.reshape(self.test_images.shape[0], -1),
            test_labels=self.test_labels,
            num_classes=self.num_classes,
        )


def _class_prototypes(shape: Tuple[int, int, int], num_classes: int,
                      rng: np.random.Generator) -> np.ndarray:
    """Build smooth, well-separated class prototypes.

    Each prototype is a mixture of a few low-frequency 2-D cosine patterns
    whose phases/frequencies depend on the class index, loosely mimicking the
    stroke/texture structure that distinguishes digit / object classes.
    """
    channels, height, width = shape
    ys, xs = np.meshgrid(
        np.linspace(0, np.pi, height), np.linspace(0, np.pi, width), indexing="ij"
    )
    prototypes = np.zeros((num_classes, channels, height, width))
    for cls in range(num_classes):
        for ch in range(channels):
            freq_y = 1 + (cls % 4) + ch
            freq_x = 1 + ((cls + 2) % 5)
            phase = rng.uniform(0, np.pi)
            pattern = (
                np.cos(freq_y * ys + phase) * np.sin(freq_x * xs + 0.3 * cls)
                + 0.5 * np.cos((cls + 1) * (ys + xs) / 2.0)
            )
            prototypes[cls, ch] = pattern
    # normalise prototypes to [-1, 1]
    max_abs = np.max(np.abs(prototypes), axis=(1, 2, 3), keepdims=True)
    return prototypes / np.maximum(max_abs, 1e-12)


def _synthesise(name: str, shape: Tuple[int, int, int], *, train_size: int,
                test_size: int, noise_std: float, seed: RngLike) -> Dataset:
    rng = make_rng(seed)
    prototypes = _class_prototypes(shape, NUM_CLASSES, rng)

    def _split(count: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, NUM_CLASSES, size=count)
        images = prototypes[labels] + rng.normal(0.0, noise_std, size=(count, *shape))
        return np.clip(images, -1.0, 1.0), labels.astype(np.int64)

    train_images, train_labels = _split(train_size)
    test_images, test_labels = _split(test_size)
    return Dataset(
        name=name,
        train_images=train_images,
        train_labels=train_labels,
        test_images=test_images,
        test_labels=test_labels,
        num_classes=NUM_CLASSES,
    )


def synthetic_mnist(*, train_size: int = 2048, test_size: int = 512,
                    noise_std: float = 0.35, seed: RngLike = 7) -> Dataset:
    """Synthesise an MNIST-like dataset (1x28x28 images, 10 classes)."""
    return _synthesise(
        "synthetic-mnist", MNIST_SHAPE, train_size=train_size,
        test_size=test_size, noise_std=noise_std, seed=seed,
    )


def synthetic_cifar10(*, train_size: int = 2048, test_size: int = 512,
                      noise_std: float = 0.45, seed: RngLike = 11) -> Dataset:
    """Synthesise a CIFAR-10-like dataset (3x32x32 images, 10 classes)."""
    return _synthesise(
        "synthetic-cifar10", CIFAR_SHAPE, train_size=train_size,
        test_size=test_size, noise_std=noise_std, seed=seed,
    )


def load_dataset(name: str, **kwargs) -> Dataset:
    """Load a dataset by name (``"mnist"`` or ``"cifar10"``)."""
    normalised = name.lower().replace("-", "").replace("_", "")
    if normalised in ("mnist", "syntheticmnist"):
        return synthetic_mnist(**kwargs)
    if normalised in ("cifar10", "cifar", "syntheticcifar10"):
        return synthetic_cifar10(**kwargs)
    raise ValueError(f"unknown dataset {name!r}; expected 'mnist' or 'cifar10'")


def iterate_minibatches(images: np.ndarray, labels: np.ndarray, batch_size: int,
                        *, shuffle: bool = True, seed: RngLike = None):
    """Yield ``(images, labels)`` minibatches.

    The last incomplete batch is kept (not dropped), matching common practice
    for evaluation loops.
    """
    if len(images) != len(labels):
        raise ValueError("images and labels must have the same length")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    indices = np.arange(len(images))
    if shuffle:
        make_rng(seed).shuffle(indices)
    for start in range(0, len(indices), batch_size):
        batch_idx = indices[start:start + batch_size]
        yield images[batch_idx], labels[batch_idx]
