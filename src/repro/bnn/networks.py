"""The six evaluation BNNs (MlBench-style MLPs and CNNs).

The paper evaluates "6 BNNs (3 convolutional networks and 3 multilayer
perceptrons) with various sizes from MlBench" (the benchmark suite introduced
by PRIME) on MNIST and CIFAR-10.  The exact layer dimensions are not listed
in the paper, so we follow the PRIME / MlBench network definitions the paper
cites:

* ``MLP-S``:  784 - 500 - 250 - 10              (MNIST)
* ``MLP-M``:  784 - 1000 - 500 - 250 - 10       (MNIST)
* ``MLP-L``:  784 - 2000 - 1500 - 1000 - 500 - 10 (MNIST)
* ``CNN-S``:  LeNet-style conv6-pool-conv16-pool-fc120-fc10 (MNIST)
* ``CNN-M``:  conv32-conv32-pool-conv64-conv64-pool-fc512-fc10 (CIFAR-10)
* ``CNN-L``:  VGG-like conv128x2-pool-conv256x2-pool-conv512x2-pool-fc1024-fc10
  (CIFAR-10)

Following Sec. II-B of the paper the first and last layers stay in full
precision; every hidden MAC layer is binary.  Each binary layer is preceded
by batch-norm and followed by a sign activation, the standard BinaryNet
recipe.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.bnn.layers import (
    BatchNorm,
    BinaryConv2d,
    BinaryLinear,
    Conv2d,
    Flatten,
    Layer,
    Linear,
    MaxPool2d,
    SignActivation,
)
from repro.bnn.model import BNNModel
from repro.utils.rng import RngLike, spawn_rngs

#: dataset associated with each network name
NETWORK_DATASETS: Dict[str, str] = {
    "MLP-S": "mnist",
    "MLP-M": "mnist",
    "MLP-L": "mnist",
    "CNN-S": "mnist",
    "CNN-M": "cifar10",
    "CNN-L": "cifar10",
}

MNIST_INPUT = (784,)
MNIST_IMAGE_INPUT = (1, 28, 28)
CIFAR_IMAGE_INPUT = (3, 32, 32)
NUM_CLASSES = 10


def _mlp(name: str, hidden_sizes: List[int], *, seed: RngLike) -> BNNModel:
    """Build an MLP with full-precision first/last layers and binary hidden layers."""
    sizes = [MNIST_INPUT[0], *hidden_sizes, NUM_CLASSES]
    rngs = spawn_rngs(seed, len(sizes))
    layers: List[Layer] = []
    for index in range(len(sizes) - 1):
        in_features, out_features = sizes[index], sizes[index + 1]
        first = index == 0
        last = index == len(sizes) - 2
        if first or last:
            layers.append(Linear(in_features, out_features, rng=rngs[index]))
        else:
            layers.append(BinaryLinear(in_features, out_features, rng=rngs[index]))
        if not last:
            layers.append(BatchNorm(out_features))
            layers.append(SignActivation())
    return BNNModel(layers, name=name, input_shape=MNIST_INPUT)


def build_mlp_s(seed: RngLike = 1) -> BNNModel:
    """MLP-S: 784-500-250-10 on MNIST."""
    return _mlp("MLP-S", [500, 250], seed=seed)


def build_mlp_m(seed: RngLike = 2) -> BNNModel:
    """MLP-M: 784-1000-500-250-10 on MNIST."""
    return _mlp("MLP-M", [1000, 500, 250], seed=seed)


def build_mlp_l(seed: RngLike = 3) -> BNNModel:
    """MLP-L: 784-2000-1500-1000-500-10 on MNIST."""
    return _mlp("MLP-L", [2000, 1500, 1000, 500], seed=seed)


def build_cnn_s(seed: RngLike = 4) -> BNNModel:
    """CNN-S: LeNet-style binary CNN on MNIST.

    conv(1->6,k5) - pool - Bconv(6->16,k5) - pool - Bfc(400->120) - fc(120->10)
    """
    rngs = spawn_rngs(seed, 4)
    layers: List[Layer] = [
        Conv2d(1, 6, 5, padding=2, rng=rngs[0]),        # full precision first layer
        BatchNorm(6),
        SignActivation(),
        MaxPool2d(2),
        BinaryConv2d(6, 16, 5, rng=rngs[1]),
        BatchNorm(16),
        SignActivation(),
        MaxPool2d(2),
        Flatten(),
        BinaryLinear(16 * 5 * 5, 120, rng=rngs[2]),
        BatchNorm(120),
        SignActivation(),
        Linear(120, NUM_CLASSES, rng=rngs[3]),          # full precision last layer
    ]
    return BNNModel(layers, name="CNN-S", input_shape=MNIST_IMAGE_INPUT)


def build_cnn_m(seed: RngLike = 5) -> BNNModel:
    """CNN-M: mid-size binary CNN on CIFAR-10.

    conv(3->32) - Bconv(32->32) - pool - Bconv(32->64) - Bconv(64->64) - pool -
    Bfc(4096->512) - fc(512->10)
    """
    rngs = spawn_rngs(seed, 6)
    layers: List[Layer] = [
        Conv2d(3, 32, 3, padding=1, rng=rngs[0]),
        BatchNorm(32),
        SignActivation(),
        BinaryConv2d(32, 32, 3, padding=1, rng=rngs[1]),
        BatchNorm(32),
        SignActivation(),
        MaxPool2d(2),
        BinaryConv2d(32, 64, 3, padding=1, rng=rngs[2]),
        BatchNorm(64),
        SignActivation(),
        BinaryConv2d(64, 64, 3, padding=1, rng=rngs[3]),
        BatchNorm(64),
        SignActivation(),
        MaxPool2d(2),
        Flatten(),
        BinaryLinear(64 * 8 * 8, 512, rng=rngs[4]),
        BatchNorm(512),
        SignActivation(),
        Linear(512, NUM_CLASSES, rng=rngs[5]),
    ]
    return BNNModel(layers, name="CNN-M", input_shape=CIFAR_IMAGE_INPUT)


def build_cnn_l(seed: RngLike = 6) -> BNNModel:
    """CNN-L: VGG-like binary CNN on CIFAR-10.

    conv(3->128) - Bconv(128->128) - pool - Bconv(128->256) - Bconv(256->256) -
    pool - Bconv(256->512) - Bconv(512->512) - pool - Bfc(8192->1024) -
    fc(1024->10)
    """
    rngs = spawn_rngs(seed, 8)
    layers: List[Layer] = [
        Conv2d(3, 128, 3, padding=1, rng=rngs[0]),
        BatchNorm(128),
        SignActivation(),
        BinaryConv2d(128, 128, 3, padding=1, rng=rngs[1]),
        BatchNorm(128),
        SignActivation(),
        MaxPool2d(2),
        BinaryConv2d(128, 256, 3, padding=1, rng=rngs[2]),
        BatchNorm(256),
        SignActivation(),
        BinaryConv2d(256, 256, 3, padding=1, rng=rngs[3]),
        BatchNorm(256),
        SignActivation(),
        MaxPool2d(2),
        BinaryConv2d(256, 512, 3, padding=1, rng=rngs[4]),
        BatchNorm(512),
        SignActivation(),
        BinaryConv2d(512, 512, 3, padding=1, rng=rngs[5]),
        BatchNorm(512),
        SignActivation(),
        MaxPool2d(2),
        Flatten(),
        BinaryLinear(512 * 4 * 4, 1024, rng=rngs[6]),
        BatchNorm(1024),
        SignActivation(),
        Linear(1024, NUM_CLASSES, rng=rngs[7]),
    ]
    return BNNModel(layers, name="CNN-L", input_shape=CIFAR_IMAGE_INPUT)


_BUILDERS: Dict[str, Callable[..., BNNModel]] = {
    "MLP-S": build_mlp_s,
    "MLP-M": build_mlp_m,
    "MLP-L": build_mlp_l,
    "CNN-S": build_cnn_s,
    "CNN-M": build_cnn_m,
    "CNN-L": build_cnn_l,
}


def list_networks() -> List[str]:
    """Names of the six evaluation networks, in the paper's reporting order."""
    return ["CNN-S", "CNN-M", "CNN-L", "MLP-S", "MLP-M", "MLP-L"]


def build_network(name: str, *, seed: RngLike = None) -> BNNModel:
    """Build one of the six evaluation networks by name."""
    key = name.upper().replace("_", "-")
    if key not in _BUILDERS:
        raise ValueError(
            f"unknown network {name!r}; available: {sorted(_BUILDERS)}"
        )
    if seed is None:
        return _BUILDERS[key]()
    return _BUILDERS[key](seed=seed)


def dataset_for_network(name: str) -> str:
    """Dataset name ('mnist' or 'cifar10') associated with a network."""
    key = name.upper().replace("_", "-")
    if key not in NETWORK_DATASETS:
        raise ValueError(f"unknown network {name!r}")
    return NETWORK_DATASETS[key]
