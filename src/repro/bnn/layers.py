"""Neural-network layers used by the evaluation BNNs.

The paper keeps the *first and last* layers of every network in higher
precision and binarises only the hidden layers (Sec. II-B); the layer classes
here therefore come in two flavours:

* full-precision layers (:class:`Linear`, :class:`Conv2d`) that execute on the
  digital scalar units of the accelerators, and
* binary layers (:class:`BinaryLinear`, :class:`BinaryConv2d`) whose forward
  pass uses the XNOR+Popcount identity of Eq. 1 and whose training pass uses
  latent full-precision weights with a straight-through estimator.

All layers implement a minimal ``forward`` / ``backward`` protocol operating
on NumPy arrays so the whole stack runs without any deep-learning framework.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.bnn.binarize import binarize_sign, clip_latent, ste_backward
from repro.bnn.xnor_ops import (
    PackedTensor,
    PackedWeights,
    SignSpec,
    binary_conv2d,
    binary_matmul,
    fused_conv2d_sign,
    fused_matmul_sign,
    im2col,
    pack_conv_weights,
    pack_linear_weights,
    packed_flatten,
    packed_maxpool2d,
)
from repro.utils.rng import RngLike, make_rng


class Layer:
    """Base class for all layers.

    Sub-classes implement :meth:`forward` and :meth:`backward` and expose
    trainable parameters through :attr:`params` / :attr:`grads` dictionaries
    keyed by parameter name.
    """

    #: whether the layer's MAC work is binary (runs on the crossbar) or not
    is_binary: bool = False

    def __init__(self) -> None:
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}
        self.training: bool = False

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def train(self) -> None:
        """Switch the layer to training mode."""
        self.training = True

    def eval(self) -> None:
        """Switch the layer to inference mode."""
        self.training = False

    def num_parameters(self) -> int:
        """Total number of trainable scalars in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape of the output for a single sample of ``input_shape``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def _kaiming_init(shape: Tuple[int, ...], fan_in: int,
                  rng: np.random.Generator) -> np.ndarray:
    """He-style initialisation appropriate for sign activations."""
    scale = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, scale, size=shape)


class _BinaryWeightCache:
    """Mixin caching the binarised and bit-packed weights of a binary layer.

    The latent weights only change through optimiser steps, yet the seed
    implementation re-ran ``binarize_sign`` on every forward call — even in
    eval mode, where the weights are frozen.  The mixin memoises both the
    bipolar weights and the :class:`~repro.bnn.xnor_ops.PackedWeights`
    operands of the fused kernels, and invalidates them wherever the
    training loop can mutate the latents: on :meth:`train`, on every
    training-mode forward (the optimiser updates ``params['weight']`` in
    place between forwards), and on :meth:`clip_latent_weights`.  Code that
    mutates ``params['weight']`` outside the training protocol must call
    :meth:`invalidate_weight_cache` explicitly.

    Get-or-compute and invalidation are serialised by a per-layer lock so
    eval-mode layers are safe to share across threads (the serving layer
    keeps one compiled :class:`~repro.bnn.model.InferenceEngine` alive
    across a dispatcher thread while clients probe the same model; without
    the lock two first-touch threads could each pack the weights, or a
    concurrent ``invalidate`` could expose a half-populated entry).  The
    lock is recreated — not shipped — on unpickling, so engines still
    cross the process/queue backends' IPC boundary.
    """

    def _init_weight_cache(self) -> None:
        self._weight_cache: Dict[str, object] = {}
        # reentrant: packing the fused operands reads `binary_weight`,
        # which re-enters the get-or-compute path on the same thread
        self._weight_cache_lock = threading.RLock()

    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        # locks are not picklable; __setstate__ makes a fresh one
        state.pop("_weight_cache_lock", None)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._weight_cache_lock = threading.RLock()

    def invalidate_weight_cache(self) -> None:
        """Drop the cached binary/packed weights (after a weight mutation)."""
        with self._weight_cache_lock:
            self._weight_cache.clear()

    def _pack_weight_operands(self) -> PackedWeights:  # pragma: no cover - interface
        raise NotImplementedError

    def _cached_weight_operand(self, key: str,
                               compute: "Callable[[], object]") -> object:
        """Get-or-compute one cache entry under the per-layer lock.

        Holding the lock across ``compute`` means a concurrent first touch
        blocks instead of duplicating the (deterministic but costly)
        binarise/pack work, and never observes a partially-published entry.
        """
        with self._weight_cache_lock:
            cached = self._weight_cache.get(key)
            if cached is None:
                cached = compute()
                self._weight_cache[key] = cached
            return cached

    @property
    def binary_weight(self) -> np.ndarray:
        """Bipolar {-1,+1} weights actually used at inference (memoised)."""
        return self._cached_weight_operand(
            "binary", lambda: binarize_sign(self.params["weight"]))

    @property
    def packed_weights(self) -> PackedWeights:
        """Pre-packed fused-kernel operands for the binary weights (memoised)."""
        return self._cached_weight_operand("packed", self._pack_weight_operands)

    def train(self) -> None:
        super().train()
        self.invalidate_weight_cache()

    def clip_latent_weights(self) -> None:
        """Clip latent weights to [-1, 1] after an optimiser step."""
        self.params["weight"] = clip_latent(self.params["weight"])
        self.invalidate_weight_cache()


class Linear(Layer):
    """Full-precision fully connected layer ``y = x @ W.T + b``."""

    is_binary = False

    def __init__(self, in_features: int, out_features: int, *,
                 bias: bool = True, rng: RngLike = None) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.use_bias = bool(bias)
        generator = make_rng(rng)
        self.params["weight"] = _kaiming_init(
            (out_features, in_features), in_features, generator
        )
        if bias:
            self.params["bias"] = np.zeros(out_features)
        self._cache_input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (batch, {self.in_features}), got {x.shape}"
            )
        self._cache_input = x if self.training else None
        out = x @ self.params["weight"].T
        if self.use_bias:
            out = out + self.params["bias"]
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache_input is None:
            raise RuntimeError("backward called before a training-mode forward")
        x = self._cache_input
        self.grads["weight"] = grad.T @ x
        if self.use_bias:
            self.grads["bias"] = grad.sum(axis=0)
        return grad @ self.params["weight"]

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (self.out_features,)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class BinaryLinear(_BinaryWeightCache, Layer):
    """Fully connected layer with binary weights (and binary inputs).

    At inference the latent weights are binarised with ``sign`` and the output
    is computed with :func:`repro.bnn.xnor_ops.binary_matmul`, i.e. through
    exactly the XNOR+Popcount path that the crossbar mappings implement.
    The binarised/packed weights are memoised (see :class:`_BinaryWeightCache`)
    and :meth:`forward_packed` runs the layer on bit-packed activations.
    """

    is_binary = True

    def __init__(self, in_features: int, out_features: int, *,
                 rng: RngLike = None) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        generator = make_rng(rng)
        self.params["weight"] = _kaiming_init(
            (out_features, in_features), in_features, generator
        )
        self._init_weight_cache()
        self._cache_input: Optional[np.ndarray] = None

    def _pack_weight_operands(self) -> PackedWeights:
        return pack_linear_weights(self.binary_weight)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (batch, {self.in_features}), got {x.shape}"
            )
        x_binary = binarize_sign(x)
        if self.training:
            # the optimiser may have stepped the latents since the last call
            self.invalidate_weight_cache()
            self._cache_input = np.asarray(x, dtype=np.float64)
        else:
            self._cache_input = None
        weight_binary = self.binary_weight
        return binary_matmul(x_binary, weight_binary).astype(np.float64)

    def forward_packed(self, x: PackedTensor,
                       sign: Optional[SignSpec] = None, *,
                       kernel: str = "auto", flip_rate: float = 0.0,
                       rng: Optional[np.random.Generator] = None):
        """Packed-path forward on bit-packed activations.

        With ``sign`` the following batch-norm + sign pair is folded in and
        a :class:`~repro.bnn.xnor_ops.PackedTensor` comes back; without it
        the dense float64 pre-activations are returned (identical to
        :meth:`forward` on the unpacked input).
        """
        if len(x.shape) != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected packed input of shape (batch, {self.in_features}), "
                f"got {x.shape}"
            )
        out = fused_matmul_sign(
            x, self.packed_weights, sign, kernel=kernel,
            flip_rate=flip_rate, rng=rng,
        )
        if sign is None:
            return out.astype(np.float64)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache_input is None:
            raise RuntimeError("backward called before a training-mode forward")
        x_latent = self._cache_input
        x_binary = binarize_sign(x_latent).astype(np.float64)
        # Gradient w.r.t. binary weights, passed straight through to latents.
        grad_weight = grad.T @ x_binary
        self.grads["weight"] = ste_backward(grad_weight, self.params["weight"])
        # Gradient w.r.t. binary inputs, then STE through the input sign().
        grad_input_binary = grad @ binarize_sign(self.params["weight"]).astype(np.float64)
        return ste_backward(grad_input_binary, x_latent)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (self.out_features,)

    def __repr__(self) -> str:
        return f"BinaryLinear({self.in_features}, {self.out_features})"


class Conv2d(Layer):
    """Full-precision 2-D convolution (used for non-binarised first layers)."""

    is_binary = False

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int, *,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: RngLike = None) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size) <= 0:
            raise ValueError("channels and kernel_size must be positive")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.use_bias = bool(bias)
        fan_in = in_channels * kernel_size * kernel_size
        generator = make_rng(rng)
        self.params["weight"] = _kaiming_init(
            (out_channels, in_channels, kernel_size, kernel_size), fan_in, generator
        )
        if bias:
            self.params["bias"] = np.zeros(out_channels)
        self._cache: Optional[Tuple[np.ndarray, int, int, Tuple[int, ...]]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected input (batch, {self.in_channels}, H, W), got {x.shape}"
            )
        patches, out_h, out_w = im2col(
            x, self.kernel_size, stride=self.stride, padding=self.padding,
            pad_value=0.0,
        )
        flat_weight = self.params["weight"].reshape(self.out_channels, -1)
        out = patches @ flat_weight.T
        if self.use_bias:
            out = out + self.params["bias"]
        batch = x.shape[0]
        if self.training:
            self._cache = (patches, out_h, out_w, x.shape)
        else:
            self._cache = None
        return out.reshape(batch, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training-mode forward")
        patches, out_h, out_w, input_shape = self._cache
        batch = input_shape[0]
        grad_flat = grad.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        flat_weight = self.params["weight"].reshape(self.out_channels, -1)
        self.grads["weight"] = (grad_flat.T @ patches).reshape(
            self.params["weight"].shape
        )
        if self.use_bias:
            self.grads["bias"] = grad_flat.sum(axis=0)
        grad_patches = grad_flat @ flat_weight
        return _col2im(
            grad_patches, input_shape, self.kernel_size, self.stride,
            self.padding, out_h, out_w,
        )

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        _, height, width = input_shape
        out_h = (height + 2 * self.padding - self.kernel_size) // self.stride + 1
        out_w = (width + 2 * self.padding - self.kernel_size) // self.stride + 1
        return (self.out_channels, out_h, out_w)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )


class BinaryConv2d(_BinaryWeightCache, Layer):
    """2-D convolution with binary weights and binary activations.

    The forward pass flattens each receptive field (im2col) and evaluates the
    XNOR+Popcount identity, mirroring how TacitMap flattens kernels into
    crossbar columns (Fig. 5, "Flattened Kernels").  The binarised/packed
    kernels are memoised (see :class:`_BinaryWeightCache`) and
    :meth:`forward_packed` runs the layer on channel-packed activations.
    """

    is_binary = True

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int, *,
                 stride: int = 1, padding: int = 0, rng: RngLike = None) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size) <= 0:
            raise ValueError("channels and kernel_size must be positive")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        fan_in = in_channels * kernel_size * kernel_size
        generator = make_rng(rng)
        self.params["weight"] = _kaiming_init(
            (out_channels, in_channels, kernel_size, kernel_size), fan_in, generator
        )
        self._init_weight_cache()
        self._cache: Optional[Tuple[np.ndarray, np.ndarray, int, int, Tuple[int, ...]]] = None

    def _pack_weight_operands(self) -> PackedWeights:
        return pack_conv_weights(self.binary_weight)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected input (batch, {self.in_channels}, H, W), got {x.shape}"
            )
        x_binary = binarize_sign(x)
        if self.training:
            # the optimiser may have stepped the latents since the last call
            self.invalidate_weight_cache()
        out = binary_conv2d(
            x_binary, self.binary_weight, stride=self.stride, padding=self.padding
        ).astype(np.float64)
        if self.training:
            patches_latent, out_h, out_w = im2col(
                np.asarray(x, dtype=np.float64), self.kernel_size,
                stride=self.stride, padding=self.padding, pad_value=-1.0,
            )
            self._cache = (patches_latent, x_binary, out_h, out_w, x.shape)
        else:
            self._cache = None
        return out

    def forward_packed(self, x: PackedTensor,
                       sign: Optional[SignSpec] = None, *,
                       kernel: str = "auto", flip_rate: float = 0.0,
                       rng: Optional[np.random.Generator] = None):
        """Packed-path forward on channel-packed activations.

        With ``sign`` the following batch-norm + sign pair is folded in and
        a channel-packed :class:`~repro.bnn.xnor_ops.PackedTensor` comes
        back; without it the dense float64 pre-activations are returned
        (identical to :meth:`forward` on the unpacked input).
        """
        if len(x.shape) != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected packed input (batch, {self.in_channels}, H, W), "
                f"got {x.shape}"
            )
        out = fused_conv2d_sign(
            x, self.packed_weights, self.kernel_size, sign,
            stride=self.stride, padding=self.padding, kernel=kernel,
            flip_rate=flip_rate, rng=rng,
        )
        if sign is None:
            return out.astype(np.float64)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training-mode forward")
        patches_latent, _, out_h, out_w, input_shape = self._cache
        grad_flat = grad.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        patches_binary = binarize_sign(patches_latent).astype(np.float64)
        grad_weight_flat = grad_flat.T @ patches_binary
        grad_weight = ste_backward(
            grad_weight_flat.reshape(self.params["weight"].shape),
            self.params["weight"],
        )
        self.grads["weight"] = grad_weight
        flat_weight = binarize_sign(self.params["weight"]).reshape(
            self.out_channels, -1
        ).astype(np.float64)
        grad_patches_binary = grad_flat @ flat_weight
        grad_patches = ste_backward(grad_patches_binary, patches_latent)
        return _col2im(
            grad_patches, input_shape, self.kernel_size, self.stride,
            self.padding, out_h, out_w,
        )

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        _, height, width = input_shape
        out_h = (height + 2 * self.padding - self.kernel_size) // self.stride + 1
        out_w = (width + 2 * self.padding - self.kernel_size) // self.stride + 1
        return (self.out_channels, out_h, out_w)

    def __repr__(self) -> str:
        return (
            f"BinaryConv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )


def _col2im(grad_patches: np.ndarray, input_shape: Tuple[int, ...],
            kernel_size: int, stride: int, padding: int,
            out_h: int, out_w: int) -> np.ndarray:
    """Scatter patch gradients back to image layout (inverse of im2col).

    Loops over the ``kernel_size**2`` kernel offsets (not over output
    positions): for a fixed offset every output position touches a distinct
    input pixel, so each offset is one strided vectorised accumulation.
    """
    batch, channels, height, width = input_shape
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding)
    )
    grad_patches = grad_patches.reshape(
        batch, out_h, out_w, channels, kernel_size, kernel_size
    ).transpose(0, 3, 1, 2, 4, 5)
    for dr in range(kernel_size):
        for dc in range(kernel_size):
            padded[:, :,
                   dr:dr + out_h * stride:stride,
                   dc:dc + out_w * stride:stride] += grad_patches[..., dr, dc]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


class BatchNorm(Layer):
    """Batch normalisation over the channel/feature axis.

    Works for both 2-D ``(batch, features)`` and 4-D ``(batch, channels, H, W)``
    inputs.  BNNs rely on batch-norm before each sign activation to keep the
    binarisation threshold centred.
    """

    is_binary = False

    def __init__(self, num_features: int, *, momentum: float = 0.1,
                 eps: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.params["gamma"] = np.ones(num_features)
        self.params["beta"] = np.zeros(num_features)
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def _moments_axes(self, x: np.ndarray) -> Tuple[int, ...]:
        if x.ndim == 2:
            return (0,)
        if x.ndim == 4:
            return (0, 2, 3)
        raise ValueError(f"BatchNorm expects 2-D or 4-D input, got {x.ndim}-D")

    def _broadcast(self, stat: np.ndarray, ndim: int) -> np.ndarray:
        if ndim == 2:
            return stat.reshape(1, -1)
        return stat.reshape(1, -1, 1, 1)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        axes = self._moments_axes(x)
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        std = np.sqrt(var + self.eps)
        x_hat = (x - self._broadcast(mean, x.ndim)) / self._broadcast(std, x.ndim)
        out = (
            self._broadcast(self.params["gamma"], x.ndim) * x_hat
            + self._broadcast(self.params["beta"], x.ndim)
        )
        if self.training:
            self._cache = (x_hat, std, x)
        else:
            self._cache = None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training-mode forward")
        x_hat, std, x = self._cache
        axes = self._moments_axes(x)
        count = x.size / self.num_features
        self.grads["gamma"] = np.sum(grad * x_hat, axis=axes)
        self.grads["beta"] = np.sum(grad, axis=axes)
        gamma = self._broadcast(self.params["gamma"], x.ndim)
        std_b = self._broadcast(std, x.ndim)
        grad_xhat = grad * gamma
        grad_input = (
            grad_xhat
            - self._broadcast(np.mean(grad_xhat, axis=axes), x.ndim)
            - x_hat * self._broadcast(
                np.sum(grad_xhat * x_hat, axis=axes) / count, x.ndim
            )
        ) / std_b
        return grad_input

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape

    def __repr__(self) -> str:
        return f"BatchNorm({self.num_features})"


class SignActivation(Layer):
    """Sign activation producing bipolar {-1,+1} outputs (STE backward)."""

    is_binary = False

    def __init__(self) -> None:
        super().__init__()
        self._cache_input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if self.training:
            self._cache_input = x
        else:
            self._cache_input = None
        return binarize_sign(x).astype(np.float64)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache_input is None:
            raise RuntimeError("backward called before a training-mode forward")
        return ste_backward(grad, self._cache_input)

    def forward_packed(self, x: PackedTensor) -> PackedTensor:
        """Sign of an already-binarised packed activation is the identity."""
        return x

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape


class HardTanh(Layer):
    """Hard tanh non-linearity (used before output layers in some BNNs)."""

    is_binary = False

    def __init__(self) -> None:
        super().__init__()
        self._cache_input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if self.training:
            self._cache_input = x
        else:
            self._cache_input = None
        return np.clip(x, -1.0, 1.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache_input is None:
            raise RuntimeError("backward called before a training-mode forward")
        mask = (np.abs(self._cache_input) <= 1.0).astype(np.float64)
        return grad * mask

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape


class MaxPool2d(Layer):
    """Max pooling with a square window."""

    is_binary = False

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else int(kernel_size)
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...]]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4:
            raise ValueError(f"MaxPool2d expects 4-D input, got shape {x.shape}")
        batch, channels, height, width = x.shape
        k, s = self.kernel_size, self.stride
        out_h = (height - k) // s + 1
        out_w = (width - k) // s + 1
        windows = np.lib.stride_tricks.sliding_window_view(
            x, (k, k), axis=(2, 3)
        )[:, :, ::s, ::s].reshape(batch, channels, out_h, out_w, k * k)
        out = windows.max(axis=-1)
        if self.training:
            argmax = windows.argmax(axis=-1)
            self._cache = (argmax, x.shape)
        else:
            self._cache = None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training-mode forward")
        argmax, input_shape = self._cache
        k, s = self.kernel_size, self.stride
        out_h, out_w = grad.shape[2], grad.shape[3]
        grad_input = np.zeros(input_shape)
        dr, dc = np.divmod(argmax, k)
        b_idx, c_idx, row_idx, col_idx = np.ogrid[
            :grad.shape[0], :grad.shape[1], :out_h, :out_w
        ]
        # overlapping windows can select the same input pixel, so scatter-add
        np.add.at(
            grad_input,
            (b_idx, c_idx, row_idx * s + dr, col_idx * s + dc),
            grad,
        )
        return grad_input

    def forward_packed(self, x: PackedTensor) -> PackedTensor:
        """Max pooling on packed signs: bytewise OR over each window."""
        return packed_maxpool2d(x, self.kernel_size, self.stride)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        channels, height, width = input_shape
        out_h = (height - self.kernel_size) // self.stride + 1
        out_w = (width - self.kernel_size) // self.stride + 1
        return (channels, out_h, out_w)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    is_binary = False

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return grad.reshape(self._input_shape)

    def forward_packed(self, x: PackedTensor) -> PackedTensor:
        """Repack a channel-packed activation into the linear-layer layout."""
        return packed_flatten(x)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        size = 1
        for dim in input_shape:
            size *= dim
        return (size,)
