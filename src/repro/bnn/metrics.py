"""Classification metrics for BNN evaluation."""

from __future__ import annotations

import numpy as np


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of predictions equal to labels."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of empty arrays")
    return float(np.mean(predictions == labels))


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """Confusion matrix with true classes on rows, predictions on columns."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    if num_classes <= 0:
        raise ValueError("num_classes must be positive")
    if predictions.min(initial=0) < 0 or predictions.max(initial=0) >= num_classes:
        raise ValueError("predictions contain out-of-range class indices")
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= num_classes:
        raise ValueError("labels contain out-of-range class indices")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose true class is within the top-k logits."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError("logits must be 2-D (batch, classes)")
    if k <= 0 or k > logits.shape[1]:
        raise ValueError("k must be in [1, num_classes]")
    top_k = np.argsort(-logits, axis=1)[:, :k]
    hits = np.any(top_k == labels[:, None], axis=1)
    return float(np.mean(hits))


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - np.max(logits, axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=-1, keepdims=True)


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy loss of integer ``labels`` under ``logits``."""
    probabilities = softmax(logits)
    labels = np.asarray(labels, dtype=np.int64)
    if probabilities.shape[0] != labels.shape[0]:
        raise ValueError("batch size mismatch between logits and labels")
    picked = probabilities[np.arange(labels.shape[0]), labels]
    return float(-np.mean(np.log(np.clip(picked, 1e-12, None))))


def cross_entropy_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Gradient of mean cross-entropy w.r.t. the logits."""
    probabilities = softmax(logits)
    labels = np.asarray(labels, dtype=np.int64)
    grad = probabilities.copy()
    grad[np.arange(labels.shape[0]), labels] -= 1.0
    return grad / labels.shape[0]
