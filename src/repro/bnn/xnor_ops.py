"""XNOR + Popcount arithmetic (Equation 1 of the paper).

The central identity the whole paper builds on is::

    In (*) W = 2 * popcount(In' XNOR W') - L            (Eq. 1)

where ``In`` and ``W`` are bipolar {-1,+1} vectors of length ``L``, ``(*)``
is the dot product (the inner kernel of convolution), and ``In'``, ``W'`` are
the unipolar {0,1} encodings of the same vectors.  This module provides the
unipolar-domain primitives (``xnor``, ``popcount``) and the bipolar-domain
operations (``binary_dot``, ``binary_matmul``, ``binary_conv2d``) used both
by the BNN layers and by the mapping-equivalence tests.

The batched operations come in three interchangeable kernels, selectable via
the ``kernel`` argument of :func:`binary_matmul` / :func:`binary_conv2d`:

* ``"blas"`` — one float64 matrix product over the bipolar operands.  Exact
  (the accumulators stay far below 2**53) and the fastest on CPU.
* ``"packed"`` — the bit-parallel path: operands are packed 8 bits per byte
  with :func:`numpy.packbits` and mismatches are counted through a 256-entry
  popcount look-up table, mirroring how a digital XNOR+Popcount engine (or
  the crossbar read-out) works on words rather than scalars.  Uses 8x less
  memory per operand than the unpacked encodings.
* ``"reference"`` — the original unipolar match-counting implementation
  (:func:`binary_matmul_reference`, retained verbatim, as is
  :func:`im2col_reference`).  :func:`binary_conv2d_reference` is a
  *newly written* per-scalar oracle used for equivalence testing and as a
  scalar-engine speedup baseline — it is not the implementation this
  module's fast paths replaced.

The default ``"auto"`` dispatches through :func:`choose_matmul_kernel`, a
measured size heuristic: the BLAS kernel wins on every non-trivial operand
size on CPU, so ``auto`` selects ``"packed"`` only for tiny products where
the two are within measurement noise and the packed operands' 8x smaller
workspace is worth having.  Sweeps that model the packed hardware datapath
can still opt into ``"packed"`` explicitly at any size.

Beyond the 2-D matmul kernels this module also provides the *batched packed
inference* primitives used by :class:`repro.bnn.model.InferenceEngine`:

* :class:`PackedTensor` — activations kept bit-packed *between* layers
  (``np.packbits`` along the feature/channel axis plus logical shape
  metadata), so layer boundaries stop round-tripping through dense bipolar
  arrays;
* :class:`PackedWeights` / :func:`pack_linear_weights` /
  :func:`pack_conv_weights` — pre-packed binary weight operands cached by
  the binary layers;
* :class:`SignSpec` — per-output-channel integer threshold rules that fold
  an inference-mode batch-norm + sign pair into a single comparison on the
  integer popcount outputs;
* :func:`fused_matmul_sign` / :func:`fused_conv2d_sign` — fused
  ``matmul -> sign`` / ``conv -> sign`` kernels that consume and emit
  :class:`PackedTensor` activations directly, with optional per-popcount
  bit-flip noise injection;
* :func:`packed_maxpool2d` (max over bipolar signs == OR over bits) and
  :func:`packed_flatten` (layout change into the linear-layer packing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.bnn import autotune
from repro.bnn.binarize import to_unipolar
from repro.utils.validation import check_binary, check_bipolar

#: number of set bits for every uint8 value — the popcount LUT of the packed
#: kernel (equivalent to an 8-bit hardware popcount unit)
_POPCOUNT_LUT = np.array([bin(v).count("1") for v in range(256)], dtype=np.uint8)

#: row-block size used when materialising XOR intermediates in the packed
#: kernel, keeping the (block x outputs x bytes) workspace cache-resident
_PACKED_BLOCK_ROWS = 512


def xnor(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise XNOR of two unipolar {0,1} arrays."""
    a = check_binary("a", a)
    b = check_binary("b", b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return (a == b).astype(np.int8)


def popcount(bits: np.ndarray, axis: int | None = None) -> np.ndarray:
    """Population count (number of set bits) along ``axis``.

    With ``axis=None`` the total count over all elements is returned.
    """
    bits = check_binary("bits", bits)
    return np.sum(bits.astype(np.int64), axis=axis)


def xnor_popcount(a: np.ndarray, b: np.ndarray, axis: int | None = None) -> np.ndarray:
    """``popcount(a XNOR b)`` — the crossbar-friendly form of a binary dot."""
    return popcount(xnor(a, b), axis=axis)


def binary_dot(in_bipolar: np.ndarray, w_bipolar: np.ndarray) -> int:
    """Reference bipolar dot product ``sum(in_i * w_i)`` of two {-1,+1} vectors."""
    in_bipolar = np.asarray(in_bipolar, dtype=np.int64)
    w_bipolar = np.asarray(w_bipolar, dtype=np.int64)
    if in_bipolar.shape != w_bipolar.shape:
        raise ValueError(
            f"shape mismatch: {in_bipolar.shape} vs {w_bipolar.shape}"
        )
    return int(np.sum(in_bipolar * w_bipolar))


def binary_dot_via_xnor(in_bipolar: np.ndarray, w_bipolar: np.ndarray) -> int:
    """Evaluate the bipolar dot product through Eq. 1 (XNOR + popcount path)."""
    in_bits = to_unipolar(in_bipolar)
    w_bits = to_unipolar(w_bipolar)
    length = in_bits.size
    return int(2 * xnor_popcount(in_bits.ravel(), w_bits.ravel()) - length)


def _check_matmul_shapes(inputs: np.ndarray, weights: np.ndarray) -> None:
    if inputs.ndim != 2 or weights.ndim != 2:
        raise ValueError("binary_matmul expects 2-D inputs and weights")
    if inputs.shape[1] != weights.shape[1]:
        raise ValueError(
            f"vector length mismatch: inputs {inputs.shape[1]} vs "
            f"weights {weights.shape[1]}"
        )


def _check_matmul_operands(inputs_bipolar: np.ndarray,
                           weights_bipolar: np.ndarray
                           ) -> tuple[np.ndarray, np.ndarray]:
    in_bits = to_unipolar(inputs_bipolar)
    w_bits = to_unipolar(weights_bipolar)
    _check_matmul_shapes(in_bits, w_bits)
    return in_bits, w_bits


def binary_matmul_reference(inputs_bipolar: np.ndarray,
                            weights_bipolar: np.ndarray) -> np.ndarray:
    """Oracle bipolar matrix product via unipolar match counting.

    This is the original implementation, retained unchanged as the ground
    truth the fast kernels are verified against.
    """
    in_bits, w_bits = _check_matmul_operands(inputs_bipolar, weights_bipolar)
    length = in_bits.shape[1]
    # XNOR(a, b) summed over the length axis == a.b + (1-a).(1-b) in 0/1 algebra.
    matches = (
        in_bits.astype(np.int64) @ w_bits.astype(np.int64).T
        + (1 - in_bits.astype(np.int64)) @ (1 - w_bits.astype(np.int64)).T
    )
    return 2 * matches - length


def pack_bipolar(bipolar: np.ndarray) -> tuple[np.ndarray, int]:
    """Pack bipolar {-1,+1} rows into uint8 words, 8 bits per byte.

    Returns ``(packed, length)`` where ``packed`` has the last axis packed
    with :func:`numpy.packbits` (zero-padded to a whole number of bytes) and
    ``length`` is the original last-axis bit count.
    """
    bits = to_unipolar(bipolar)
    if bits.ndim < 1:
        raise ValueError("pack_bipolar expects at least 1-D input")
    return np.packbits(bits, axis=-1), bits.shape[-1]


def packed_mismatches(a_packed: np.ndarray, b_packed: np.ndarray) -> np.ndarray:
    """Pairwise Hamming distances between packed bit rows.

    ``a_packed`` is ``(n, nbytes)`` and ``b_packed`` is ``(m, nbytes)``; the
    result is the ``(n, m)`` int64 matrix of set bits in ``a XOR b``.

    Precondition: both operands must be packed from the *same* original bit
    length (as :func:`binary_matmul_packed` guarantees).  Only then does the
    zero padding added by :func:`numpy.packbits` line up and cancel in the
    XOR; equal byte widths alone cannot prove equal bit lengths, so rows
    packed from different lengths produce silently inflated distances.
    """
    if a_packed.ndim != 2 or b_packed.ndim != 2:
        raise ValueError("packed operands must be 2-D")
    if a_packed.shape[1] != b_packed.shape[1]:
        raise ValueError(
            f"packed width mismatch: {a_packed.shape[1]} vs {b_packed.shape[1]}"
        )
    n = a_packed.shape[0]
    out = np.empty((n, b_packed.shape[0]), dtype=np.int64)
    for start in range(0, n, _PACKED_BLOCK_ROWS):
        stop = min(start + _PACKED_BLOCK_ROWS, n)
        xor = a_packed[start:stop, None, :] ^ b_packed[None, :, :]
        out[start:stop] = _POPCOUNT_LUT[xor].sum(axis=-1, dtype=np.int64)
    return out


def binary_matmul_packed(inputs_bipolar: np.ndarray,
                         weights_bipolar: np.ndarray) -> np.ndarray:
    """Bipolar matrix product on bit-packed operands (packbits + LUT).

    With ``d`` mismatching bits out of ``L``, the bipolar dot product is
    ``L - 2 d`` — the XOR-domain restatement of Eq. 1.
    """
    in_bits, w_bits = _check_matmul_operands(inputs_bipolar, weights_bipolar)
    length = in_bits.shape[1]
    in_packed = np.packbits(in_bits, axis=-1)
    w_packed = np.packbits(w_bits, axis=-1)
    return length - 2 * packed_mismatches(in_packed, w_packed)


def _binary_matmul_blas(inputs_bipolar: np.ndarray,
                        weights_bipolar: np.ndarray) -> np.ndarray:
    inputs = np.asarray(inputs_bipolar)
    weights = np.asarray(weights_bipolar)
    _check_matmul_shapes(inputs, weights)
    if inputs.size == 0 or weights.size == 0:
        # degenerate batch/length: the other kernels return all-zero counts
        return np.zeros((inputs.shape[0], weights.shape[0]), dtype=np.int64)
    inputs = check_bipolar("inputs_bipolar", inputs)
    weights = check_bipolar("weights_bipolar", weights)
    # one BLAS product straight over the bipolar operands; exact because
    # every accumulator is an integer well below 2**53
    return np.rint(
        inputs.astype(np.float64) @ weights.astype(np.float64).T
    ).astype(np.int64)


_MATMUL_KERNELS = {
    "blas": _binary_matmul_blas,
    "packed": binary_matmul_packed,
    "reference": binary_matmul_reference,
}


def binary_matmul(inputs_bipolar: np.ndarray, weights_bipolar: np.ndarray, *,
                  kernel: str = "auto") -> np.ndarray:
    """Bipolar matrix product computed through the XNOR+Popcount identity.

    Parameters
    ----------
    inputs_bipolar:
        Array of shape ``(batch, length)`` with values in {-1, +1}.
    weights_bipolar:
        Array of shape ``(n_outputs, length)`` with values in {-1, +1}; each
        row is one weight vector (one output neuron).
    kernel:
        ``"auto"`` (default), ``"blas"``, ``"packed"`` or ``"reference"`` —
        see the module docstring.  All kernels return bit-exact results.

    Returns
    -------
    numpy.ndarray
        Integer array of shape ``(batch, n_outputs)`` equal to
        ``inputs_bipolar @ weights_bipolar.T``.
    """
    if kernel == "auto":
        kernel = "blas"
    try:
        implementation = _MATMUL_KERNELS[kernel]
    except KeyError:
        raise ValueError(
            f"unknown kernel {kernel!r}; choose from "
            f"{sorted(_MATMUL_KERNELS)} or 'auto'"
        ) from None
    return implementation(inputs_bipolar, weights_bipolar)


def _pad_and_extent(images: np.ndarray, kernel_size: int, stride: int,
                    padding: int, pad_value: float
                    ) -> tuple[np.ndarray, int, int]:
    if images.ndim != 4:
        raise ValueError(f"images must be 4-D (N, C, H, W), got shape {images.shape}")
    _, _, height, width = images.shape
    if padding > 0:
        images = np.pad(
            images,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
            constant_values=pad_value,
        )
        height += 2 * padding
        width += 2 * padding
    out_h = (height - kernel_size) // stride + 1
    out_w = (width - kernel_size) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kernel_size} with stride {stride} does not fit "
            f"input of size {height}x{width}"
        )
    return images, out_h, out_w


def im2col_reference(images: np.ndarray, kernel_size: int, stride: int = 1,
                     padding: int = 0, pad_value: float = -1.0
                     ) -> tuple[np.ndarray, int, int]:
    """Oracle im2col walking every output position with Python loops.

    Retained unchanged as the ground truth :func:`im2col` is tested against.
    """
    images = np.asarray(images)
    images, out_h, out_w = _pad_and_extent(
        images, kernel_size, stride, padding, pad_value
    )
    batch, channels = images.shape[:2]
    patches = np.empty(
        (batch, out_h, out_w, channels, kernel_size, kernel_size),
        dtype=images.dtype,
    )
    for row in range(out_h):
        top = row * stride
        for col in range(out_w):
            left = col * stride
            patches[:, row, col] = images[
                :, :, top:top + kernel_size, left:left + kernel_size
            ]
    flat = patches.reshape(batch * out_h * out_w,
                           channels * kernel_size * kernel_size)
    return flat, out_h, out_w


def im2col(images: np.ndarray, kernel_size: int, stride: int = 1,
           padding: int = 0, pad_value: float = -1.0) -> tuple[np.ndarray, int, int]:
    """Unfold image patches into rows so convolution becomes a matrix product.

    Vectorised with :func:`numpy.lib.stride_tricks.sliding_window_view` — no
    Python-level loop over output positions (see :func:`im2col_reference`
    for the loop oracle).

    Parameters
    ----------
    images:
        Array of shape ``(batch, channels, height, width)``.
    kernel_size:
        Square kernel extent.
    stride:
        Sliding-window stride.
    padding:
        Symmetric zero-...well, ``pad_value``-padding added to both spatial
        sides.  BNNs pad with ``-1`` (the bipolar encoding of bit 0) so padded
        positions stay binary.
    pad_value:
        Value used for padding.

    Returns
    -------
    (patches, out_h, out_w):
        ``patches`` has shape ``(batch * out_h * out_w,
        channels * kernel_size * kernel_size)``; each row is one flattened
        receptive field (one "activation vector" in the paper's terminology).
    """
    images = np.asarray(images)
    images, out_h, out_w = _pad_and_extent(
        images, kernel_size, stride, padding, pad_value
    )
    batch, channels = images.shape[:2]
    windows = np.lib.stride_tricks.sliding_window_view(
        images, (kernel_size, kernel_size), axis=(2, 3)
    )[:, :, ::stride, ::stride]
    # (batch, channels, out_h, out_w, k, k) -> (batch, out_h, out_w, channels, k, k)
    flat = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch * out_h * out_w, channels * kernel_size * kernel_size
    )
    return flat, out_h, out_w


def binary_conv2d_reference(images_bipolar: np.ndarray,
                            kernels_bipolar: np.ndarray,
                            stride: int = 1, padding: int = 0) -> np.ndarray:
    """Oracle bipolar convolution: one Eq. 1 dot product per output scalar.

    Quadruple-nested loop over (batch, out_channel, out_row, out_col) — the
    per-pixel evaluation order a scalar XNOR+Popcount engine would follow.
    Written (new in this module, alongside the retained
    :func:`im2col_reference`/:func:`binary_matmul_reference`) as an
    independent ground truth and scalar-engine baseline for the vectorised
    :func:`binary_conv2d`.
    """
    images = np.asarray(images_bipolar)
    kernels = np.asarray(kernels_bipolar)
    if kernels.ndim != 4:
        raise ValueError("kernels must be 4-D (out_c, in_c, k, k)")
    out_channels, in_channels, k_h, k_w = kernels.shape
    if k_h != k_w:
        raise ValueError("only square kernels are supported")
    images, out_h, out_w = _pad_and_extent(images, k_h, stride, padding, -1)
    batch = images.shape[0]
    flat_kernels = [
        to_unipolar(kernels[oc]).ravel() for oc in range(out_channels)
    ]
    length = in_channels * k_h * k_w
    out = np.empty((batch, out_channels, out_h, out_w), dtype=np.int64)
    for b in range(batch):
        for row in range(out_h):
            top = row * stride
            for col in range(out_w):
                left = col * stride
                patch = to_unipolar(
                    images[b, :, top:top + k_h, left:left + k_w]
                ).ravel()
                for oc in range(out_channels):
                    matches = xnor_popcount(patch, flat_kernels[oc])
                    out[b, oc, row, col] = 2 * int(matches) - length
    return out


def binary_conv2d(images_bipolar: np.ndarray, kernels_bipolar: np.ndarray,
                  stride: int = 1, padding: int = 0, *,
                  kernel: str = "auto") -> np.ndarray:
    """Bipolar 2-D convolution evaluated through the XNOR+Popcount identity.

    The im2col-based batched path: every receptive field becomes one row of a
    patch matrix and the whole layer collapses into a single
    :func:`binary_matmul` (mirroring how TacitMap flattens kernels into
    crossbar columns).  ``kernel`` selects the matmul kernel; see
    :func:`binary_conv2d_reference` for the per-pixel loop oracle.

    Parameters
    ----------
    images_bipolar:
        Array ``(batch, in_channels, height, width)`` of {-1,+1} activations.
    kernels_bipolar:
        Array ``(out_channels, in_channels, k, k)`` of {-1,+1} weights.
    kernel:
        Matmul kernel: ``"auto"``, ``"blas"``, ``"packed"`` or ``"reference"``.

    Returns
    -------
    numpy.ndarray
        Integer array ``(batch, out_channels, out_h, out_w)``.
    """
    kernels_bipolar = np.asarray(kernels_bipolar)
    if kernels_bipolar.ndim != 4:
        raise ValueError("kernels must be 4-D (out_c, in_c, k, k)")
    out_channels, in_channels, k_h, k_w = kernels_bipolar.shape
    if k_h != k_w:
        raise ValueError("only square kernels are supported")
    patches, out_h, out_w = im2col(
        images_bipolar, k_h, stride=stride, padding=padding, pad_value=-1
    )
    flat_kernels = kernels_bipolar.reshape(out_channels, in_channels * k_h * k_w)
    result = binary_matmul(patches, flat_kernels, kernel=kernel)
    batch = np.asarray(images_bipolar).shape[0]
    return result.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)


# --------------------------------------------------------------------------- #
# Packed activation tensors and fused layer kernels (batched inference path)
# --------------------------------------------------------------------------- #

#: default MAC-count boundary of :func:`choose_matmul_kernel`.  Measured on
#: this container: the BLAS kernel is faster (often by 10-20x) for every
#: product above a few thousand MACs; below it the two are within measurement
#: noise and the packed operands use 8x less workspace, so packed gets the
#: nod.  The live boundary is resolved per host by :mod:`repro.bnn.autotune`
#: (persistent cache, ``REPRO_AUTOTUNE_CACHE=off`` pins this default).
_PACKED_DISPATCH_MACS = autotune.DEFAULT_DISPATCH_MACS

#: default float32 patch-block budget of the fused conv kernel: the gather/
#: convert/GEMM pipeline runs per block of output rows so the patch workspace
#: stays cache-resident (measured ~1.5x faster than one whole-batch patch
#: matrix).  Also resolved per host by :mod:`repro.bnn.autotune`.
_CONV_BLOCK_BYTES = autotune.DEFAULT_CONV_BLOCK_BYTES


def choose_matmul_kernel(num_rows: int, num_outputs: int, length: int) -> str:
    """Auto-select the matmul kernel from the operand sizes.

    Returns ``"blas"`` or ``"packed"``.  The decision is a measured size
    heuristic, not a model: one float32 BLAS product beats the byte-wise
    XOR+LUT popcount on this class of CPU for every operand above a few
    thousand MACs, so only tiny products (where both kernels cost single
    microseconds and the packed path needs 8x less workspace) dispatch to
    the packed kernel.  The boundary comes from the per-host autotune
    cache (:mod:`repro.bnn.autotune`); both kernels are bit-identical, so
    the boundary only ever affects speed.
    """
    if num_rows < 0 or num_outputs < 0 or length < 0:
        raise ValueError("operand sizes must be non-negative")
    macs = num_rows * num_outputs * length
    return "packed" if macs <= autotune.dispatch_macs() else "blas"


def _packed_width(bits: int) -> int:
    """Bytes needed to store ``bits`` packed bits."""
    return (bits + 7) // 8


@dataclass(frozen=True)
class PackedTensor:
    """A bipolar activation tensor kept bit-packed between layers.

    The unipolar encoding (``+1 -> 1``, ``-1 -> 0``) is packed 8 bits per
    byte with :func:`numpy.packbits` along one axis; the logical bipolar
    shape is retained as metadata so layers can reason about batch/channel
    extents without unpacking.

    Two layouts exist, selected by the rank of ``shape``:

    * logical ``(batch, features)`` — ``data`` is ``(batch, ceil(F/8))``
      with ``bit_length == features`` (linear-layer packing);
    * logical ``(batch, channels, height, width)`` — ``data`` is
      ``(batch, height, width, ceil(C/8))`` with ``bit_length == channels``
      (channel-last packing, so spatial windows slide over whole bytes and
      convolution never touches individual bits).

    The zero bits :func:`numpy.packbits` pads with encode bipolar ``-1`` —
    the same value the binary layers pad convolutions with — so padding
    cancels exactly in every XOR/popcount and GEMM below.
    """

    data: np.ndarray
    bit_length: int
    shape: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.data.dtype != np.uint8:
            raise TypeError("PackedTensor data must be uint8")
        if len(self.shape) == 2:
            batch, features = self.shape
            expected = (batch, _packed_width(features))
            if self.bit_length != features:
                raise ValueError("bit_length must equal the feature count")
        elif len(self.shape) == 4:
            batch, channels, height, width = self.shape
            expected = (batch, height, width, _packed_width(channels))
            if self.bit_length != channels:
                raise ValueError("bit_length must equal the channel count")
        else:
            raise ValueError(
                f"PackedTensor supports 2-D or 4-D logical shapes, got {self.shape}"
            )
        if tuple(self.data.shape) != expected:
            raise ValueError(
                f"data shape {self.data.shape} does not match logical shape "
                f"{self.shape} (expected {expected})"
            )

    @property
    def batch(self) -> int:
        """Number of samples in the tensor."""
        return self.shape[0]

    @classmethod
    def _from_bits(cls, bits: np.ndarray) -> "PackedTensor":
        """Pack a unipolar bit array in the layout its rank dictates."""
        if bits.ndim == 2:
            return cls(np.packbits(bits, axis=-1), bits.shape[1], bits.shape)
        if bits.ndim == 4:
            channel_last = np.ascontiguousarray(bits.transpose(0, 2, 3, 1))
            return cls(
                np.packbits(channel_last, axis=-1), bits.shape[1], bits.shape
            )
        raise ValueError(
            f"expected a 2-D or 4-D array, got shape {bits.shape}"
        )

    @classmethod
    def pack_signs(cls, dense: np.ndarray) -> "PackedTensor":
        """Binarise-and-pack an arbitrary real tensor in one pass.

        Equivalent to ``from_bipolar(binarize_sign(dense))`` (zero maps to
        bit 1, the BinaryConnect convention) but without materialising the
        bipolar intermediate or paying the value-validation scan — this is
        the packing entry point of the batched inference engine.
        """
        dense = np.asarray(dense)
        return cls._from_bits((dense >= 0).astype(np.uint8))

    @classmethod
    def from_bipolar(cls, bipolar: np.ndarray) -> "PackedTensor":
        """Pack a bipolar {-1,+1} array of shape (B, F) or (B, C, H, W)."""
        return cls._from_bits(to_unipolar(bipolar))

    def to_unipolar(self) -> np.ndarray:
        """Unpack to a unipolar {0,1} uint8 array in the logical shape."""
        bits = np.unpackbits(self.data, axis=-1, count=self.bit_length)
        if len(self.shape) == 4:
            return np.ascontiguousarray(bits.transpose(0, 3, 1, 2))
        return bits

    def to_bipolar(self) -> np.ndarray:
        """Unpack to a bipolar {-1,+1} int8 array in the logical shape."""
        bits = self.to_unipolar()
        return (bits.astype(np.int8) * 2 - 1).astype(np.int8)


@dataclass(frozen=True)
class PackedWeights:
    """Pre-packed binary weight operands consumed by the fused kernels.

    ``f32`` carries the bipolar rows as float32 (the BLAS operand; exact
    because every accumulator is an integer far below 2**24) and ``packed``
    the same rows bit-packed (the XOR+popcount operand).  For convolutions
    the rows are laid out in channel-last ``(k, k, C)`` order with the
    per-position byte padding matching :class:`PackedTensor` windows, and
    ``bit_length`` is the *logical* vector length ``C * k * k``.
    """

    f32: np.ndarray
    packed: np.ndarray
    bit_length: int

    @property
    def num_outputs(self) -> int:
        """Number of weight rows (output neurons / channels)."""
        return self.f32.shape[0]


def pack_linear_weights(weights_bipolar: np.ndarray) -> PackedWeights:
    """Pack the (n_outputs, in_features) bipolar rows of a linear layer."""
    weights = np.asarray(weights_bipolar)
    if weights.ndim != 2:
        raise ValueError("linear weights must be 2-D (n_outputs, in_features)")
    bits = to_unipolar(weights)
    return PackedWeights(
        f32=weights.astype(np.float32),
        packed=np.packbits(bits, axis=-1),
        bit_length=weights.shape[1],
    )


def pack_conv_weights(kernels_bipolar: np.ndarray) -> PackedWeights:
    """Pack the (out_c, in_c, k, k) bipolar kernels of a conv layer.

    Rows are flattened in channel-last ``(k, k, C)`` order so they line up
    with the byte windows a channel-packed :class:`PackedTensor` produces.
    """
    kernels = np.asarray(kernels_bipolar)
    if kernels.ndim != 4:
        raise ValueError("conv kernels must be 4-D (out_c, in_c, k, k)")
    out_channels, in_channels, k_h, k_w = kernels.shape
    if k_h != k_w:
        raise ValueError("only square kernels are supported")
    channel_last = np.ascontiguousarray(kernels.transpose(0, 2, 3, 1))
    bits = to_unipolar(channel_last)
    packed = np.packbits(bits, axis=-1).reshape(out_channels, -1)
    return PackedWeights(
        f32=channel_last.reshape(out_channels, -1).astype(np.float32),
        packed=packed,
        bit_length=in_channels * k_h * k_w,
    )


#: comparison codes of :class:`SignSpec`
SIGN_GE = 0   #: bit = (x >= threshold)   — batch-norm scale > 0 (or no BN)
SIGN_LE = 1   #: bit = (x <= threshold)   — batch-norm scale < 0
SIGN_CONST = 2  #: bit = constant          — batch-norm scale == 0


@dataclass(frozen=True)
class SignSpec:
    """Per-output-channel integer decision rules for a fused sign.

    Inference-mode batch-norm followed by ``sign`` is a monotone function
    of the integer popcount output per channel, so it folds into a single
    integer comparison: ``mode`` selects the comparison direction per
    channel, ``threshold`` the integer boundary, ``constant`` the fixed bit
    for channels whose batch-norm scale is exactly zero.
    """

    mode: np.ndarray       #: int8 per channel, one of SIGN_GE/SIGN_LE/SIGN_CONST
    threshold: np.ndarray  #: int64 per channel
    constant: np.ndarray   #: uint8 per channel (used where mode == SIGN_CONST)

    def __post_init__(self) -> None:
        if not (self.mode.shape == self.threshold.shape == self.constant.shape):
            raise ValueError("SignSpec arrays must share one (channels,) shape")
        if self.mode.ndim != 1:
            raise ValueError("SignSpec arrays must be 1-D")

    @property
    def num_channels(self) -> int:
        """Number of output channels the spec covers."""
        return self.mode.shape[0]

    @classmethod
    def plain(cls, num_channels: int) -> "SignSpec":
        """The bare ``sign(x)`` rule (bit = x >= 0) for every channel."""
        return cls(
            mode=np.zeros(num_channels, dtype=np.int8),
            threshold=np.zeros(num_channels, dtype=np.int64),
            constant=np.zeros(num_channels, dtype=np.uint8),
        )


def apply_sign_spec(accumulators: np.ndarray, spec: SignSpec) -> np.ndarray:
    """Evaluate a :class:`SignSpec` on (rows, channels) integer accumulators.

    Returns the uint8 bit matrix (1 encodes bipolar +1).
    """
    if accumulators.ndim != 2 or accumulators.shape[1] != spec.num_channels:
        raise ValueError(
            f"accumulators must be (rows, {spec.num_channels}), "
            f"got shape {accumulators.shape}"
        )
    if np.all(spec.mode == SIGN_GE):
        # by far the common case (positive batch-norm scales): one compare
        return (accumulators >= spec.threshold).astype(np.uint8)
    ge_bits = accumulators >= spec.threshold
    le_bits = accumulators <= spec.threshold
    bits = np.where(
        spec.mode == SIGN_GE, ge_bits,
        np.where(spec.mode == SIGN_LE, le_bits, spec.constant.astype(bool)),
    )
    return bits.astype(np.uint8)


def inject_bit_flips(bits: np.ndarray, flip_rate: float,
                     rng: Optional[np.random.Generator]) -> np.ndarray:
    """Flip each bit independently with probability ``flip_rate``.

    Models a crossbar read returning a wrong popcount: the functional
    effect on the binarised activation is a flipped sign bit.  A zero rate
    (or no generator) returns ``bits`` unchanged.
    """
    if flip_rate < 0 or flip_rate > 1:
        raise ValueError(f"flip_rate must be in [0, 1], got {flip_rate!r}")
    if flip_rate == 0.0 or rng is None:
        return bits
    mask = rng.random(bits.shape) < flip_rate
    return bits ^ mask.astype(np.uint8)


def _packed_accumulate(patches_f32: Optional[np.ndarray],
                       patches_packed: Optional[np.ndarray],
                       weights: PackedWeights, kernel: str) -> np.ndarray:
    """Shared matmul core of the fused kernels.

    Exactly one of ``patches_f32`` / ``patches_packed`` is consulted,
    depending on ``kernel``.  Returns the integer-valued bipolar products
    as the dtype the kernel naturally produces (float32 for BLAS).
    """
    if kernel == "blas":
        return patches_f32 @ weights.f32.T
    mismatches = packed_mismatches(patches_packed, weights.packed)
    return weights.bit_length - 2 * mismatches


def fused_matmul_sign(x: PackedTensor, weights: PackedWeights,
                      sign: Optional[SignSpec] = None, *,
                      kernel: str = "auto", flip_rate: float = 0.0,
                      rng: Optional[np.random.Generator] = None):
    """Fused ``matmul -> sign`` on a packed (batch, features) activation.

    With a :class:`SignSpec` the result is a :class:`PackedTensor` of shape
    ``(batch, n_outputs)`` — the activations never materialise densely.
    Without one the integer pre-activations are returned as an int64 array
    (the caller continues on the dense path, e.g. into a full-precision
    output layer).
    """
    if len(x.shape) != 2:
        raise ValueError(f"fused_matmul_sign expects a 2-D activation, got {x.shape}")
    if x.bit_length != weights.bit_length:
        raise ValueError(
            f"vector length mismatch: activations {x.bit_length} vs "
            f"weights {weights.bit_length}"
        )
    if kernel == "auto":
        kernel = choose_matmul_kernel(x.batch, weights.num_outputs, x.bit_length)
    if kernel == "blas":
        bipolar = np.unpackbits(
            x.data, axis=-1, count=x.bit_length
        ).astype(np.float32)
        bipolar *= 2.0
        bipolar -= 1.0
        acc = _packed_accumulate(bipolar, None, weights, "blas")
    elif kernel == "packed":
        acc = _packed_accumulate(None, x.data, weights, "packed")
    else:
        raise ValueError(f"unknown fused kernel {kernel!r}; choose 'auto', "
                         f"'blas' or 'packed'")
    if sign is None:
        return np.rint(acc).astype(np.int64)
    bits = apply_sign_spec(acc, sign)
    bits = inject_bit_flips(bits, flip_rate, rng)
    out_features = weights.num_outputs
    return PackedTensor(
        np.packbits(bits, axis=-1), out_features, (x.batch, out_features)
    )


def fused_conv2d_sign(x: PackedTensor, weights: PackedWeights,
                      kernel_size: int, sign: Optional[SignSpec] = None, *,
                      stride: int = 1, padding: int = 0,
                      kernel: str = "auto", flip_rate: float = 0.0,
                      rng: Optional[np.random.Generator] = None):
    """Fused ``conv2d -> sign`` on a channel-packed (B, C, H, W) activation.

    Spatial padding pads the packed bytes with zeros — the unipolar
    encoding of bipolar ``-1``, exactly the dense path's ``pad_value=-1``.
    With a :class:`SignSpec` the output is the channel-packed
    :class:`PackedTensor` of logical shape ``(B, out_c, out_h, out_w)``;
    without one the integer pre-activations come back as a dense int64
    array in that shape.
    """
    if len(x.shape) != 4:
        raise ValueError(f"fused_conv2d_sign expects a 4-D activation, got {x.shape}")
    batch, channels, height, width = x.shape
    if weights.bit_length != channels * kernel_size * kernel_size:
        raise ValueError(
            f"weight vector length {weights.bit_length} does not match "
            f"{channels} channels x {kernel_size}x{kernel_size} kernel"
        )
    data = x.data
    if padding > 0:
        data = np.pad(
            data, ((0, 0), (padding, padding), (padding, padding), (0, 0))
        )
    padded_h = height + 2 * padding
    padded_w = width + 2 * padding
    out_h = (padded_h - kernel_size) // stride + 1
    out_w = (padded_w - kernel_size) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kernel_size} with stride {stride} does not fit "
            f"input of size {padded_h}x{padded_w}"
        )
    num_rows = batch * out_h * out_w
    if kernel == "auto":
        kernel = choose_matmul_kernel(
            num_rows, weights.num_outputs, weights.bit_length
        )
    if kernel == "blas":
        # bipolar int8 in place (0/1 -> -1/+1); the strided window gather
        # then moves 1-byte elements and the float32 conversion runs on
        # contiguous blocks — measurably faster than gathering float32
        bipolar = np.unpackbits(data, axis=-1, count=channels).view(np.int8)
        bipolar <<= 1
        bipolar -= 1
        windows = np.lib.stride_tricks.sliding_window_view(
            bipolar, (kernel_size, kernel_size), axis=(1, 2)
        )[:, ::stride, ::stride]
        # (B, OH, OW, C, k, k) -> rows in the weights' (k, k, C) order;
        # gather + convert + GEMM per cache-sized row block so the patch
        # workspace never leaves cache (per-image at most)
        transposed = windows.transpose(0, 1, 2, 4, 5, 3)
        row_length = weights.bit_length
        rows_per_block = max(1, autotune.conv_block_bytes() // (row_length * 4))
        oh_per_block = max(1, rows_per_block // out_w)
        acc = np.empty((num_rows, weights.num_outputs), dtype=np.float32)
        weights_t = weights.f32.T
        for image in range(batch):
            for oh_start in range(0, out_h, oh_per_block):
                oh_stop = min(out_h, oh_start + oh_per_block)
                block = np.ascontiguousarray(
                    transposed[image, oh_start:oh_stop]
                ).reshape(-1, row_length).astype(np.float32)
                row_start = (image * out_h + oh_start) * out_w
                acc[row_start:row_start + block.shape[0]] = block @ weights_t
    elif kernel == "packed":
        windows = np.lib.stride_tricks.sliding_window_view(
            data, (kernel_size, kernel_size), axis=(1, 2)
        )[:, ::stride, ::stride]
        # (B, OH, OW, nbytes, k, k) -> (k, k, nbytes) byte rows, matching the
        # per-position padding of pack_conv_weights so padding bits cancel;
        # the row width is spelled out (not -1) so zero-row batches — the
        # shm transport's shape-probing dry run — reshape unambiguously
        patches = windows.transpose(0, 1, 2, 4, 5, 3).reshape(
            num_rows, kernel_size * kernel_size * data.shape[-1])
        patches = np.ascontiguousarray(patches)
        acc = _packed_accumulate(None, patches, weights, "packed")
    else:
        raise ValueError(f"unknown fused kernel {kernel!r}; choose 'auto', "
                         f"'blas' or 'packed'")
    out_channels = weights.num_outputs
    if sign is None:
        dense = np.rint(acc).astype(np.int64)
        return dense.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)
    bits = apply_sign_spec(acc, sign)
    bits = inject_bit_flips(bits, flip_rate, rng)
    packed = np.packbits(bits.reshape(batch, out_h, out_w, out_channels), axis=-1)
    return PackedTensor(packed, out_channels, (batch, out_channels, out_h, out_w))


def packed_maxpool2d(x: PackedTensor, kernel_size: int, stride: int) -> PackedTensor:
    """Max pooling on a channel-packed activation via bytewise OR.

    Over bipolar signs ``max == OR`` of the unipolar bits, so the pool
    reduces whole bytes without unpacking; channel padding bits stay zero.
    """
    if len(x.shape) != 4:
        raise ValueError(f"packed_maxpool2d expects a 4-D activation, got {x.shape}")
    batch, channels, height, width = x.shape
    out_h = (height - kernel_size) // stride + 1
    out_w = (width - kernel_size) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"pool window {kernel_size} with stride {stride} does not fit "
            f"input of size {height}x{width}"
        )
    windows = np.lib.stride_tricks.sliding_window_view(
        x.data, (kernel_size, kernel_size), axis=(1, 2)
    )[:, ::stride, ::stride]
    # the window extent is spelled out (not -1) so zero-row batches — the
    # shm transport's shape-probing dry run — reshape unambiguously
    pooled = np.bitwise_or.reduce(
        windows.reshape(batch, out_h, out_w, x.data.shape[-1],
                        kernel_size * kernel_size),
        axis=-1,
    )
    return PackedTensor(pooled, channels, (batch, channels, out_h, out_w))


def packed_flatten(x: PackedTensor) -> PackedTensor:
    """Flatten a channel-packed (B, C, H, W) activation to (B, C*H*W).

    The dense :class:`~repro.bnn.layers.Flatten` ravels in (C, H, W) order,
    so the bits are unpacked, reordered channel-major and repacked — a
    byte-level shuffle on what is by this point a small tensor.
    """
    if len(x.shape) == 2:
        return x
    batch, channels, height, width = x.shape
    bits = x.to_unipolar().reshape(batch, channels * height * width)
    return PackedTensor(
        np.packbits(bits, axis=-1), bits.shape[1], (batch, bits.shape[1])
    )
