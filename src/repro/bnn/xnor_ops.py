"""XNOR + Popcount arithmetic (Equation 1 of the paper).

The central identity the whole paper builds on is::

    In (*) W = 2 * popcount(In' XNOR W') - L            (Eq. 1)

where ``In`` and ``W`` are bipolar {-1,+1} vectors of length ``L``, ``(*)``
is the dot product (the inner kernel of convolution), and ``In'``, ``W'`` are
the unipolar {0,1} encodings of the same vectors.  This module provides the
unipolar-domain primitives (``xnor``, ``popcount``) and the bipolar-domain
operations (``binary_dot``, ``binary_matmul``, ``binary_conv2d``) used both
by the BNN layers and by the mapping-equivalence tests.

The batched operations come in three interchangeable kernels, selectable via
the ``kernel`` argument of :func:`binary_matmul` / :func:`binary_conv2d`:

* ``"blas"`` — one float64 matrix product over the bipolar operands.  Exact
  (the accumulators stay far below 2**53) and the fastest on CPU.
* ``"packed"`` — the bit-parallel path: operands are packed 8 bits per byte
  with :func:`numpy.packbits` and mismatches are counted through a 256-entry
  popcount look-up table, mirroring how a digital XNOR+Popcount engine (or
  the crossbar read-out) works on words rather than scalars.  Uses 8x less
  memory per operand than the unpacked encodings.
* ``"reference"`` — the original unipolar match-counting implementation
  (:func:`binary_matmul_reference`, retained verbatim, as is
  :func:`im2col_reference`).  :func:`binary_conv2d_reference` is a
  *newly written* per-scalar oracle used for equivalence testing and as a
  scalar-engine speedup baseline — it is not the implementation this
  module's fast paths replaced.

The default ``"auto"`` picks the BLAS kernel; sweeps that model the packed
hardware datapath can opt into ``"packed"`` explicitly.
"""

from __future__ import annotations

import numpy as np

from repro.bnn.binarize import to_unipolar
from repro.utils.validation import check_binary, check_bipolar

#: number of set bits for every uint8 value — the popcount LUT of the packed
#: kernel (equivalent to an 8-bit hardware popcount unit)
_POPCOUNT_LUT = np.array([bin(v).count("1") for v in range(256)], dtype=np.uint8)

#: row-block size used when materialising XOR intermediates in the packed
#: kernel, keeping the (block x outputs x bytes) workspace cache-resident
_PACKED_BLOCK_ROWS = 512


def xnor(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise XNOR of two unipolar {0,1} arrays."""
    a = check_binary("a", a)
    b = check_binary("b", b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return (a == b).astype(np.int8)


def popcount(bits: np.ndarray, axis: int | None = None) -> np.ndarray:
    """Population count (number of set bits) along ``axis``.

    With ``axis=None`` the total count over all elements is returned.
    """
    bits = check_binary("bits", bits)
    return np.sum(bits.astype(np.int64), axis=axis)


def xnor_popcount(a: np.ndarray, b: np.ndarray, axis: int | None = None) -> np.ndarray:
    """``popcount(a XNOR b)`` — the crossbar-friendly form of a binary dot."""
    return popcount(xnor(a, b), axis=axis)


def binary_dot(in_bipolar: np.ndarray, w_bipolar: np.ndarray) -> int:
    """Reference bipolar dot product ``sum(in_i * w_i)`` of two {-1,+1} vectors."""
    in_bipolar = np.asarray(in_bipolar, dtype=np.int64)
    w_bipolar = np.asarray(w_bipolar, dtype=np.int64)
    if in_bipolar.shape != w_bipolar.shape:
        raise ValueError(
            f"shape mismatch: {in_bipolar.shape} vs {w_bipolar.shape}"
        )
    return int(np.sum(in_bipolar * w_bipolar))


def binary_dot_via_xnor(in_bipolar: np.ndarray, w_bipolar: np.ndarray) -> int:
    """Evaluate the bipolar dot product through Eq. 1 (XNOR + popcount path)."""
    in_bits = to_unipolar(in_bipolar)
    w_bits = to_unipolar(w_bipolar)
    length = in_bits.size
    return int(2 * xnor_popcount(in_bits.ravel(), w_bits.ravel()) - length)


def _check_matmul_shapes(inputs: np.ndarray, weights: np.ndarray) -> None:
    if inputs.ndim != 2 or weights.ndim != 2:
        raise ValueError("binary_matmul expects 2-D inputs and weights")
    if inputs.shape[1] != weights.shape[1]:
        raise ValueError(
            f"vector length mismatch: inputs {inputs.shape[1]} vs "
            f"weights {weights.shape[1]}"
        )


def _check_matmul_operands(inputs_bipolar: np.ndarray,
                           weights_bipolar: np.ndarray
                           ) -> tuple[np.ndarray, np.ndarray]:
    in_bits = to_unipolar(inputs_bipolar)
    w_bits = to_unipolar(weights_bipolar)
    _check_matmul_shapes(in_bits, w_bits)
    return in_bits, w_bits


def binary_matmul_reference(inputs_bipolar: np.ndarray,
                            weights_bipolar: np.ndarray) -> np.ndarray:
    """Oracle bipolar matrix product via unipolar match counting.

    This is the original implementation, retained unchanged as the ground
    truth the fast kernels are verified against.
    """
    in_bits, w_bits = _check_matmul_operands(inputs_bipolar, weights_bipolar)
    length = in_bits.shape[1]
    # XNOR(a, b) summed over the length axis == a.b + (1-a).(1-b) in 0/1 algebra.
    matches = (
        in_bits.astype(np.int64) @ w_bits.astype(np.int64).T
        + (1 - in_bits.astype(np.int64)) @ (1 - w_bits.astype(np.int64)).T
    )
    return 2 * matches - length


def pack_bipolar(bipolar: np.ndarray) -> tuple[np.ndarray, int]:
    """Pack bipolar {-1,+1} rows into uint8 words, 8 bits per byte.

    Returns ``(packed, length)`` where ``packed`` has the last axis packed
    with :func:`numpy.packbits` (zero-padded to a whole number of bytes) and
    ``length`` is the original last-axis bit count.
    """
    bits = to_unipolar(bipolar)
    if bits.ndim < 1:
        raise ValueError("pack_bipolar expects at least 1-D input")
    return np.packbits(bits, axis=-1), bits.shape[-1]


def packed_mismatches(a_packed: np.ndarray, b_packed: np.ndarray) -> np.ndarray:
    """Pairwise Hamming distances between packed bit rows.

    ``a_packed`` is ``(n, nbytes)`` and ``b_packed`` is ``(m, nbytes)``; the
    result is the ``(n, m)`` int64 matrix of set bits in ``a XOR b``.

    Precondition: both operands must be packed from the *same* original bit
    length (as :func:`binary_matmul_packed` guarantees).  Only then does the
    zero padding added by :func:`numpy.packbits` line up and cancel in the
    XOR; equal byte widths alone cannot prove equal bit lengths, so rows
    packed from different lengths produce silently inflated distances.
    """
    if a_packed.ndim != 2 or b_packed.ndim != 2:
        raise ValueError("packed operands must be 2-D")
    if a_packed.shape[1] != b_packed.shape[1]:
        raise ValueError(
            f"packed width mismatch: {a_packed.shape[1]} vs {b_packed.shape[1]}"
        )
    n = a_packed.shape[0]
    out = np.empty((n, b_packed.shape[0]), dtype=np.int64)
    for start in range(0, n, _PACKED_BLOCK_ROWS):
        stop = min(start + _PACKED_BLOCK_ROWS, n)
        xor = a_packed[start:stop, None, :] ^ b_packed[None, :, :]
        out[start:stop] = _POPCOUNT_LUT[xor].sum(axis=-1, dtype=np.int64)
    return out


def binary_matmul_packed(inputs_bipolar: np.ndarray,
                         weights_bipolar: np.ndarray) -> np.ndarray:
    """Bipolar matrix product on bit-packed operands (packbits + LUT).

    With ``d`` mismatching bits out of ``L``, the bipolar dot product is
    ``L - 2 d`` — the XOR-domain restatement of Eq. 1.
    """
    in_bits, w_bits = _check_matmul_operands(inputs_bipolar, weights_bipolar)
    length = in_bits.shape[1]
    in_packed = np.packbits(in_bits, axis=-1)
    w_packed = np.packbits(w_bits, axis=-1)
    return length - 2 * packed_mismatches(in_packed, w_packed)


def _binary_matmul_blas(inputs_bipolar: np.ndarray,
                        weights_bipolar: np.ndarray) -> np.ndarray:
    inputs = np.asarray(inputs_bipolar)
    weights = np.asarray(weights_bipolar)
    _check_matmul_shapes(inputs, weights)
    if inputs.size == 0 or weights.size == 0:
        # degenerate batch/length: the other kernels return all-zero counts
        return np.zeros((inputs.shape[0], weights.shape[0]), dtype=np.int64)
    inputs = check_bipolar("inputs_bipolar", inputs)
    weights = check_bipolar("weights_bipolar", weights)
    # one BLAS product straight over the bipolar operands; exact because
    # every accumulator is an integer well below 2**53
    return np.rint(
        inputs.astype(np.float64) @ weights.astype(np.float64).T
    ).astype(np.int64)


_MATMUL_KERNELS = {
    "blas": _binary_matmul_blas,
    "packed": binary_matmul_packed,
    "reference": binary_matmul_reference,
}


def binary_matmul(inputs_bipolar: np.ndarray, weights_bipolar: np.ndarray, *,
                  kernel: str = "auto") -> np.ndarray:
    """Bipolar matrix product computed through the XNOR+Popcount identity.

    Parameters
    ----------
    inputs_bipolar:
        Array of shape ``(batch, length)`` with values in {-1, +1}.
    weights_bipolar:
        Array of shape ``(n_outputs, length)`` with values in {-1, +1}; each
        row is one weight vector (one output neuron).
    kernel:
        ``"auto"`` (default), ``"blas"``, ``"packed"`` or ``"reference"`` —
        see the module docstring.  All kernels return bit-exact results.

    Returns
    -------
    numpy.ndarray
        Integer array of shape ``(batch, n_outputs)`` equal to
        ``inputs_bipolar @ weights_bipolar.T``.
    """
    if kernel == "auto":
        kernel = "blas"
    try:
        implementation = _MATMUL_KERNELS[kernel]
    except KeyError:
        raise ValueError(
            f"unknown kernel {kernel!r}; choose from "
            f"{sorted(_MATMUL_KERNELS)} or 'auto'"
        ) from None
    return implementation(inputs_bipolar, weights_bipolar)


def _pad_and_extent(images: np.ndarray, kernel_size: int, stride: int,
                    padding: int, pad_value: float
                    ) -> tuple[np.ndarray, int, int]:
    if images.ndim != 4:
        raise ValueError(f"images must be 4-D (N, C, H, W), got shape {images.shape}")
    _, _, height, width = images.shape
    if padding > 0:
        images = np.pad(
            images,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
            constant_values=pad_value,
        )
        height += 2 * padding
        width += 2 * padding
    out_h = (height - kernel_size) // stride + 1
    out_w = (width - kernel_size) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kernel_size} with stride {stride} does not fit "
            f"input of size {height}x{width}"
        )
    return images, out_h, out_w


def im2col_reference(images: np.ndarray, kernel_size: int, stride: int = 1,
                     padding: int = 0, pad_value: float = -1.0
                     ) -> tuple[np.ndarray, int, int]:
    """Oracle im2col walking every output position with Python loops.

    Retained unchanged as the ground truth :func:`im2col` is tested against.
    """
    images = np.asarray(images)
    images, out_h, out_w = _pad_and_extent(
        images, kernel_size, stride, padding, pad_value
    )
    batch, channels = images.shape[:2]
    patches = np.empty(
        (batch, out_h, out_w, channels, kernel_size, kernel_size),
        dtype=images.dtype,
    )
    for row in range(out_h):
        top = row * stride
        for col in range(out_w):
            left = col * stride
            patches[:, row, col] = images[
                :, :, top:top + kernel_size, left:left + kernel_size
            ]
    flat = patches.reshape(batch * out_h * out_w,
                           channels * kernel_size * kernel_size)
    return flat, out_h, out_w


def im2col(images: np.ndarray, kernel_size: int, stride: int = 1,
           padding: int = 0, pad_value: float = -1.0) -> tuple[np.ndarray, int, int]:
    """Unfold image patches into rows so convolution becomes a matrix product.

    Vectorised with :func:`numpy.lib.stride_tricks.sliding_window_view` — no
    Python-level loop over output positions (see :func:`im2col_reference`
    for the loop oracle).

    Parameters
    ----------
    images:
        Array of shape ``(batch, channels, height, width)``.
    kernel_size:
        Square kernel extent.
    stride:
        Sliding-window stride.
    padding:
        Symmetric zero-...well, ``pad_value``-padding added to both spatial
        sides.  BNNs pad with ``-1`` (the bipolar encoding of bit 0) so padded
        positions stay binary.
    pad_value:
        Value used for padding.

    Returns
    -------
    (patches, out_h, out_w):
        ``patches`` has shape ``(batch * out_h * out_w,
        channels * kernel_size * kernel_size)``; each row is one flattened
        receptive field (one "activation vector" in the paper's terminology).
    """
    images = np.asarray(images)
    images, out_h, out_w = _pad_and_extent(
        images, kernel_size, stride, padding, pad_value
    )
    batch, channels = images.shape[:2]
    windows = np.lib.stride_tricks.sliding_window_view(
        images, (kernel_size, kernel_size), axis=(2, 3)
    )[:, :, ::stride, ::stride]
    # (batch, channels, out_h, out_w, k, k) -> (batch, out_h, out_w, channels, k, k)
    flat = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch * out_h * out_w, channels * kernel_size * kernel_size
    )
    return flat, out_h, out_w


def binary_conv2d_reference(images_bipolar: np.ndarray,
                            kernels_bipolar: np.ndarray,
                            stride: int = 1, padding: int = 0) -> np.ndarray:
    """Oracle bipolar convolution: one Eq. 1 dot product per output scalar.

    Quadruple-nested loop over (batch, out_channel, out_row, out_col) — the
    per-pixel evaluation order a scalar XNOR+Popcount engine would follow.
    Written (new in this module, alongside the retained
    :func:`im2col_reference`/:func:`binary_matmul_reference`) as an
    independent ground truth and scalar-engine baseline for the vectorised
    :func:`binary_conv2d`.
    """
    images = np.asarray(images_bipolar)
    kernels = np.asarray(kernels_bipolar)
    if kernels.ndim != 4:
        raise ValueError("kernels must be 4-D (out_c, in_c, k, k)")
    out_channels, in_channels, k_h, k_w = kernels.shape
    if k_h != k_w:
        raise ValueError("only square kernels are supported")
    images, out_h, out_w = _pad_and_extent(images, k_h, stride, padding, -1)
    batch = images.shape[0]
    flat_kernels = [
        to_unipolar(kernels[oc]).ravel() for oc in range(out_channels)
    ]
    length = in_channels * k_h * k_w
    out = np.empty((batch, out_channels, out_h, out_w), dtype=np.int64)
    for b in range(batch):
        for row in range(out_h):
            top = row * stride
            for col in range(out_w):
                left = col * stride
                patch = to_unipolar(
                    images[b, :, top:top + k_h, left:left + k_w]
                ).ravel()
                for oc in range(out_channels):
                    matches = xnor_popcount(patch, flat_kernels[oc])
                    out[b, oc, row, col] = 2 * int(matches) - length
    return out


def binary_conv2d(images_bipolar: np.ndarray, kernels_bipolar: np.ndarray,
                  stride: int = 1, padding: int = 0, *,
                  kernel: str = "auto") -> np.ndarray:
    """Bipolar 2-D convolution evaluated through the XNOR+Popcount identity.

    The im2col-based batched path: every receptive field becomes one row of a
    patch matrix and the whole layer collapses into a single
    :func:`binary_matmul` (mirroring how TacitMap flattens kernels into
    crossbar columns).  ``kernel`` selects the matmul kernel; see
    :func:`binary_conv2d_reference` for the per-pixel loop oracle.

    Parameters
    ----------
    images_bipolar:
        Array ``(batch, in_channels, height, width)`` of {-1,+1} activations.
    kernels_bipolar:
        Array ``(out_channels, in_channels, k, k)`` of {-1,+1} weights.
    kernel:
        Matmul kernel: ``"auto"``, ``"blas"``, ``"packed"`` or ``"reference"``.

    Returns
    -------
    numpy.ndarray
        Integer array ``(batch, out_channels, out_h, out_w)``.
    """
    kernels_bipolar = np.asarray(kernels_bipolar)
    if kernels_bipolar.ndim != 4:
        raise ValueError("kernels must be 4-D (out_c, in_c, k, k)")
    out_channels, in_channels, k_h, k_w = kernels_bipolar.shape
    if k_h != k_w:
        raise ValueError("only square kernels are supported")
    patches, out_h, out_w = im2col(
        images_bipolar, k_h, stride=stride, padding=padding, pad_value=-1
    )
    flat_kernels = kernels_bipolar.reshape(out_channels, in_channels * k_h * k_w)
    result = binary_matmul(patches, flat_kernels, kernel=kernel)
    batch = np.asarray(images_bipolar).shape[0]
    return result.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)
