"""XNOR + Popcount arithmetic (Equation 1 of the paper).

The central identity the whole paper builds on is::

    In (*) W = 2 * popcount(In' XNOR W') - L            (Eq. 1)

where ``In`` and ``W`` are bipolar {-1,+1} vectors of length ``L``, ``(*)``
is the dot product (the inner kernel of convolution), and ``In'``, ``W'`` are
the unipolar {0,1} encodings of the same vectors.  This module provides the
unipolar-domain primitives (``xnor``, ``popcount``) and the bipolar-domain
reference operations (``binary_dot``, ``binary_matmul``, ``binary_conv2d``)
used both by the BNN layers and by the mapping-equivalence tests.
"""

from __future__ import annotations

import numpy as np

from repro.bnn.binarize import to_unipolar
from repro.utils.validation import check_binary


def xnor(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise XNOR of two unipolar {0,1} arrays."""
    a = check_binary("a", a)
    b = check_binary("b", b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return (a == b).astype(np.int8)


def popcount(bits: np.ndarray, axis: int | None = None) -> np.ndarray:
    """Population count (number of set bits) along ``axis``.

    With ``axis=None`` the total count over all elements is returned.
    """
    bits = check_binary("bits", bits)
    return np.sum(bits.astype(np.int64), axis=axis)


def xnor_popcount(a: np.ndarray, b: np.ndarray, axis: int | None = None) -> np.ndarray:
    """``popcount(a XNOR b)`` — the crossbar-friendly form of a binary dot."""
    return popcount(xnor(a, b), axis=axis)


def binary_dot(in_bipolar: np.ndarray, w_bipolar: np.ndarray) -> int:
    """Reference bipolar dot product ``sum(in_i * w_i)`` of two {-1,+1} vectors."""
    in_bipolar = np.asarray(in_bipolar, dtype=np.int64)
    w_bipolar = np.asarray(w_bipolar, dtype=np.int64)
    if in_bipolar.shape != w_bipolar.shape:
        raise ValueError(
            f"shape mismatch: {in_bipolar.shape} vs {w_bipolar.shape}"
        )
    return int(np.sum(in_bipolar * w_bipolar))


def binary_dot_via_xnor(in_bipolar: np.ndarray, w_bipolar: np.ndarray) -> int:
    """Evaluate the bipolar dot product through Eq. 1 (XNOR + popcount path)."""
    in_bits = to_unipolar(in_bipolar)
    w_bits = to_unipolar(w_bipolar)
    length = in_bits.size
    return int(2 * xnor_popcount(in_bits.ravel(), w_bits.ravel()) - length)


def binary_matmul(inputs_bipolar: np.ndarray, weights_bipolar: np.ndarray) -> np.ndarray:
    """Bipolar matrix product computed through the XNOR+Popcount identity.

    Parameters
    ----------
    inputs_bipolar:
        Array of shape ``(batch, length)`` with values in {-1, +1}.
    weights_bipolar:
        Array of shape ``(n_outputs, length)`` with values in {-1, +1}; each
        row is one weight vector (one output neuron).

    Returns
    -------
    numpy.ndarray
        Integer array of shape ``(batch, n_outputs)`` equal to
        ``inputs_bipolar @ weights_bipolar.T``.
    """
    in_bits = to_unipolar(inputs_bipolar)
    w_bits = to_unipolar(weights_bipolar)
    if in_bits.ndim != 2 or w_bits.ndim != 2:
        raise ValueError("binary_matmul expects 2-D inputs and weights")
    if in_bits.shape[1] != w_bits.shape[1]:
        raise ValueError(
            f"vector length mismatch: inputs {in_bits.shape[1]} vs "
            f"weights {w_bits.shape[1]}"
        )
    length = in_bits.shape[1]
    # XNOR(a, b) summed over the length axis == a.b + (1-a).(1-b) in 0/1 algebra.
    matches = (
        in_bits.astype(np.int64) @ w_bits.astype(np.int64).T
        + (1 - in_bits.astype(np.int64)) @ (1 - w_bits.astype(np.int64)).T
    )
    return 2 * matches - length


def im2col(images: np.ndarray, kernel_size: int, stride: int = 1,
           padding: int = 0, pad_value: float = -1.0) -> tuple[np.ndarray, int, int]:
    """Unfold image patches into rows so convolution becomes a matrix product.

    Parameters
    ----------
    images:
        Array of shape ``(batch, channels, height, width)``.
    kernel_size:
        Square kernel extent.
    stride:
        Sliding-window stride.
    padding:
        Symmetric zero-...well, ``pad_value``-padding added to both spatial
        sides.  BNNs pad with ``-1`` (the bipolar encoding of bit 0) so padded
        positions stay binary.
    pad_value:
        Value used for padding.

    Returns
    -------
    (patches, out_h, out_w):
        ``patches`` has shape ``(batch * out_h * out_w,
        channels * kernel_size * kernel_size)``; each row is one flattened
        receptive field (one "activation vector" in the paper's terminology).
    """
    images = np.asarray(images)
    if images.ndim != 4:
        raise ValueError(f"images must be 4-D (N, C, H, W), got shape {images.shape}")
    batch, channels, height, width = images.shape
    if padding > 0:
        images = np.pad(
            images,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
            constant_values=pad_value,
        )
        height += 2 * padding
        width += 2 * padding
    out_h = (height - kernel_size) // stride + 1
    out_w = (width - kernel_size) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kernel_size} with stride {stride} does not fit "
            f"input of size {height}x{width}"
        )
    patches = np.empty(
        (batch, out_h, out_w, channels, kernel_size, kernel_size),
        dtype=images.dtype,
    )
    for row in range(out_h):
        top = row * stride
        for col in range(out_w):
            left = col * stride
            patches[:, row, col] = images[
                :, :, top:top + kernel_size, left:left + kernel_size
            ]
    flat = patches.reshape(batch * out_h * out_w,
                           channels * kernel_size * kernel_size)
    return flat, out_h, out_w


def binary_conv2d(images_bipolar: np.ndarray, kernels_bipolar: np.ndarray,
                  stride: int = 1, padding: int = 0) -> np.ndarray:
    """Bipolar 2-D convolution evaluated through the XNOR+Popcount identity.

    Parameters
    ----------
    images_bipolar:
        Array ``(batch, in_channels, height, width)`` of {-1,+1} activations.
    kernels_bipolar:
        Array ``(out_channels, in_channels, k, k)`` of {-1,+1} weights.

    Returns
    -------
    numpy.ndarray
        Integer array ``(batch, out_channels, out_h, out_w)``.
    """
    kernels_bipolar = np.asarray(kernels_bipolar)
    if kernels_bipolar.ndim != 4:
        raise ValueError("kernels must be 4-D (out_c, in_c, k, k)")
    out_channels, in_channels, k_h, k_w = kernels_bipolar.shape
    if k_h != k_w:
        raise ValueError("only square kernels are supported")
    patches, out_h, out_w = im2col(
        images_bipolar, k_h, stride=stride, padding=padding, pad_value=-1
    )
    flat_kernels = kernels_bipolar.reshape(out_channels, in_channels * k_h * k_w)
    result = binary_matmul(patches, flat_kernels)
    batch = np.asarray(images_bipolar).shape[0]
    return result.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)
