"""Sequential BNN model container.

:class:`BNNModel` chains layers, provides forward/backward passes, exposes
the binary layers (the ones the crossbar mappings accelerate), and produces a
human-readable summary that matches the per-layer workload extraction used by
the architecture simulators.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.bnn.layers import BinaryConv2d, BinaryLinear, Layer


class BNNModel:
    """A simple sequential container of :class:`~repro.bnn.layers.Layer`.

    Parameters
    ----------
    layers:
        Layers applied in order.
    name:
        Network name used in reports (e.g. ``"MLP-L"``).
    input_shape:
        Per-sample input shape, e.g. ``(784,)`` for MNIST MLPs or
        ``(3, 32, 32)`` for CIFAR-10 CNNs.
    """

    def __init__(self, layers: Sequence[Layer], *, name: str,
                 input_shape: Tuple[int, ...]) -> None:
        if not layers:
            raise ValueError("a model needs at least one layer")
        self.layers: List[Layer] = list(layers)
        self.name = str(name)
        self.input_shape = tuple(int(d) for d in input_shape)

    # ------------------------------------------------------------------ #
    # Inference / training passes
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the full forward pass on a batch."""
        out = np.asarray(x)
        for layer in self.layers:
            out = layer.forward(out)
        return out

    __call__ = forward

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad`` through every layer (training mode only)."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Return the arg-max class index for each sample in ``x``."""
        logits = self.forward(x)
        return np.argmax(logits, axis=1)

    def train(self) -> None:
        """Put every layer into training mode."""
        for layer in self.layers:
            layer.train()

    def eval(self) -> None:
        """Put every layer into inference mode."""
        for layer in self.layers:
            layer.eval()

    # ------------------------------------------------------------------ #
    # Introspection helpers used by the mappers and timing models
    # ------------------------------------------------------------------ #
    def binary_layers(self) -> List[Layer]:
        """Layers whose MAC work is binary (candidates for the crossbar)."""
        return [layer for layer in self.layers if layer.is_binary]

    def iter_with_shapes(self) -> Iterator[Tuple[Layer, Tuple[int, ...], Tuple[int, ...]]]:
        """Yield ``(layer, input_shape, output_shape)`` per layer."""
        shape = self.input_shape
        for layer in self.layers:
            out_shape = layer.output_shape(shape)
            yield layer, shape, out_shape
            shape = out_shape

    def num_parameters(self) -> int:
        """Total trainable scalar count."""
        return sum(layer.num_parameters() for layer in self.layers)

    def num_binary_parameters(self) -> int:
        """Trainable scalar count inside binary layers only."""
        return sum(layer.num_parameters() for layer in self.binary_layers())

    def clip_latent_weights(self) -> None:
        """Clip latent weights of all binary layers (post-optimiser step)."""
        for layer in self.layers:
            if isinstance(layer, (BinaryLinear, BinaryConv2d)):
                layer.clip_latent_weights()

    def summary(self) -> str:
        """Return a layer-by-layer textual summary of the network."""
        lines = [f"{self.name} (input {self.input_shape})"]
        for index, (layer, in_shape, out_shape) in enumerate(self.iter_with_shapes()):
            kind = "binary" if layer.is_binary else "full-precision"
            lines.append(
                f"  [{index:2d}] {layer!r:45s} {in_shape} -> {out_shape} "
                f"({kind}, {layer.num_parameters()} params)"
            )
        lines.append(
            f"  total parameters: {self.num_parameters()} "
            f"({self.num_binary_parameters()} binary)"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BNNModel(name={self.name!r}, layers={len(self.layers)})"
