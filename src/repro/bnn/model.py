"""Sequential BNN model container and the batched packed inference engine.

:class:`BNNModel` chains layers, provides forward/backward passes, exposes
the binary layers (the ones the crossbar mappings accelerate), and produces a
human-readable summary that matches the per-layer workload extraction used by
the architecture simulators.

:class:`InferenceEngine` is the batched end-to-end inference path: it
compiles a model into a plan whose activations stay bit-packed *between*
binary layers (no per-layer pack/unpack round trips), folds every
inference-mode batch-norm + sign pair into exact integer thresholds on the
popcount outputs, and optionally injects per-popcount bit-flip errors so
accuracy-vs-read-noise curves come out of the same fast path.

The engine is also the compute substrate of the online serving layer
(:mod:`repro.serving`): one compiled engine stays alive for the lifetime of
the service and every micro-batch flush runs through
:meth:`InferenceEngine.forward_batch` — see the thread-safety notes on
:class:`InferenceEngine`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.bnn.layers import (
    BatchNorm,
    BinaryConv2d,
    BinaryLinear,
    Flatten,
    Layer,
    MaxPool2d,
    SignActivation,
)
from repro.bnn.xnor_ops import (
    PackedTensor,
    SIGN_CONST,
    SIGN_GE,
    SIGN_LE,
    SignSpec,
)
from repro.runtime.executors import Executor, resolve_executor
from repro.runtime.shm import (
    ArrayDescriptor,
    SharedArrayPool,
    attach_view,
    use_shm_transport,
)
from repro.utils.rng import derive_seed, make_rng


class BNNModel:
    """A simple sequential container of :class:`~repro.bnn.layers.Layer`.

    Parameters
    ----------
    layers:
        Layers applied in order.
    name:
        Network name used in reports (e.g. ``"MLP-L"``).
    input_shape:
        Per-sample input shape, e.g. ``(784,)`` for MNIST MLPs or
        ``(3, 32, 32)`` for CIFAR-10 CNNs.
    """

    def __init__(self, layers: Sequence[Layer], *, name: str,
                 input_shape: Tuple[int, ...]) -> None:
        if not layers:
            raise ValueError("a model needs at least one layer")
        self.layers: List[Layer] = list(layers)
        self.name = str(name)
        self.input_shape = tuple(int(d) for d in input_shape)

    # ------------------------------------------------------------------ #
    # Inference / training passes
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the full forward pass on a batch."""
        out = np.asarray(x)
        for layer in self.layers:
            out = layer.forward(out)
        return out

    __call__ = forward

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad`` through every layer (training mode only)."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Return the arg-max class index for each sample in ``x``."""
        logits = self.forward(x)
        return np.argmax(logits, axis=1)

    def predict_batch(self, x: np.ndarray, *, batch_size: int = 256,
                      **engine_kwargs) -> np.ndarray:
        """Arg-max predictions through the batched packed inference path.

        Convenience wrapper building a one-shot :class:`InferenceEngine`;
        construct the engine directly when running many batches so the
        compiled plan and weight packs are reused.  Note the engine switches
        the model to eval mode (unlike :meth:`predict`) — call
        :meth:`train` again before resuming a training loop.
        """
        engine = InferenceEngine(self, **engine_kwargs)
        return engine.predict_batch(x, batch_size=batch_size)

    def train(self) -> None:
        """Put every layer into training mode."""
        for layer in self.layers:
            layer.train()

    def eval(self) -> None:
        """Put every layer into inference mode."""
        for layer in self.layers:
            layer.eval()

    # ------------------------------------------------------------------ #
    # Introspection helpers used by the mappers and timing models
    # ------------------------------------------------------------------ #
    def binary_layers(self) -> List[Layer]:
        """Layers whose MAC work is binary (candidates for the crossbar)."""
        return [layer for layer in self.layers if layer.is_binary]

    def iter_with_shapes(self) -> Iterator[Tuple[Layer, Tuple[int, ...], Tuple[int, ...]]]:
        """Yield ``(layer, input_shape, output_shape)`` per layer."""
        shape = self.input_shape
        for layer in self.layers:
            out_shape = layer.output_shape(shape)
            yield layer, shape, out_shape
            shape = out_shape

    def num_parameters(self) -> int:
        """Total trainable scalar count."""
        return sum(layer.num_parameters() for layer in self.layers)

    def num_binary_parameters(self) -> int:
        """Trainable scalar count inside binary layers only."""
        return sum(layer.num_parameters() for layer in self.binary_layers())

    def clip_latent_weights(self) -> None:
        """Clip latent weights of all binary layers (post-optimiser step)."""
        for layer in self.layers:
            if isinstance(layer, (BinaryLinear, BinaryConv2d)):
                layer.clip_latent_weights()

    def summary(self) -> str:
        """Return a layer-by-layer textual summary of the network."""
        lines = [f"{self.name} (input {self.input_shape})"]
        for index, (layer, in_shape, out_shape) in enumerate(self.iter_with_shapes()):
            kind = "binary" if layer.is_binary else "full-precision"
            lines.append(
                f"  [{index:2d}] {layer!r:45s} {in_shape} -> {out_shape} "
                f"({kind}, {layer.num_parameters()} params)"
            )
        lines.append(
            f"  total parameters: {self.num_parameters()} "
            f"({self.num_binary_parameters()} binary)"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BNNModel(name={self.name!r}, layers={len(self.layers)})"


# --------------------------------------------------------------------------- #
# Batched packed inference engine
# --------------------------------------------------------------------------- #

#: per-layer bit-flip rate: one rate for every binary layer, or a callable
#: mapping a layer's XNOR vector length to its rate (the robustness helpers
#: in :mod:`repro.eval.robustness` produce such callables)
FlipRate = Union[float, Callable[[int], float]]

_STEP_FUSED = "fused"          # binary layer (+ folded batch-norm) + sign
_STEP_BINARY_DENSE = "binary"  # binary layer emitting dense pre-activations
_STEP_POOL = "pool"
_STEP_FLATTEN = "flatten"
_STEP_SIGN = "sign"            # pack point (or identity when already packed)
_STEP_DENSE = "dense"          # any other layer, on the dense fallback path


@dataclass
class _PlanStep:
    """One compiled step of the packed execution plan."""

    kind: str
    layer: Layer
    batch_norm: Optional[BatchNorm] = None
    sign_spec: Optional[SignSpec] = None
    flip_rate: float = 0.0
    vector_length: int = 0


def _binary_vector_length(layer: Layer) -> int:
    """Length of the layer's XNOR vectors (m in the paper's Fig. 3)."""
    if isinstance(layer, BinaryLinear):
        return layer.in_features
    if isinstance(layer, BinaryConv2d):
        return layer.in_channels * layer.kernel_size ** 2
    raise TypeError(f"not a binary MAC layer: {layer!r}")


def _binary_num_outputs(layer: Layer) -> int:
    if isinstance(layer, BinaryLinear):
        return layer.out_features
    return layer.out_channels


def fold_batchnorm_sign(batch_norm: Optional[BatchNorm], num_channels: int,
                        vector_length: int) -> SignSpec:
    """Fold inference-mode batch-norm + sign into integer threshold rules.

    The dense path evaluates ``sign(gamma * (x - mean) / std + beta)`` in
    float64 on the integer popcount output ``x``; that expression is
    monotone in ``x`` (non-decreasing for ``gamma > 0``, non-increasing for
    ``gamma < 0``), so per channel there is one integer boundary.  The
    algebraic root is computed first and then nudged by re-evaluating the
    *dense* float64 expression at neighbouring integers, which makes the
    folded rule bit-exact against the dense path including any float64
    rounding at the boundary.  ``x`` is bounded by the layer's
    ``vector_length``, so thresholds are clamped one step outside
    ``[-L, L]`` (always-0 / always-1 rules).
    """
    if batch_norm is None:
        return SignSpec.plain(num_channels)
    if batch_norm.num_features != num_channels:
        raise ValueError(
            f"batch-norm features {batch_norm.num_features} do not match "
            f"{num_channels} layer outputs"
        )
    gamma = np.asarray(batch_norm.params["gamma"], dtype=np.float64)
    beta = np.asarray(batch_norm.params["beta"], dtype=np.float64)
    mean = np.asarray(batch_norm.running_mean, dtype=np.float64)
    std = np.sqrt(np.asarray(batch_norm.running_var, dtype=np.float64)
                  + batch_norm.eps)
    mode = np.empty(num_channels, dtype=np.int8)
    threshold = np.zeros(num_channels, dtype=np.int64)
    constant = np.zeros(num_channels, dtype=np.uint8)
    low, high = -vector_length - 1, vector_length + 1

    for c in range(num_channels):
        def dense_bit(x: float, c: int = c) -> bool:
            # the exact float64 expression of the dense BatchNorm + sign
            return gamma[c] * ((x - mean[c]) / std[c]) + beta[c] >= 0.0

        if gamma[c] == 0.0:
            mode[c] = SIGN_CONST
            constant[c] = 1 if beta[c] >= 0.0 else 0
            continue
        root = mean[c] - beta[c] * std[c] / gamma[c]
        boundary = int(np.clip(np.ceil(root), low, high))
        if gamma[c] > 0.0:
            # smallest integer x with dense_bit(x): bit = (x >= t)
            while boundary > low and dense_bit(boundary - 1):
                boundary -= 1
            while boundary < high and not dense_bit(boundary):
                boundary += 1
            mode[c] = SIGN_GE
        else:
            # largest integer x with dense_bit(x): bit = (x <= t)
            while boundary < high and dense_bit(boundary + 1):
                boundary += 1
            while boundary > low and not dense_bit(boundary):
                boundary -= 1
            mode[c] = SIGN_LE
        threshold[c] = boundary
    return SignSpec(mode=mode, threshold=threshold, constant=constant)


class _ChunkTask:
    """Picklable task running one ``(offset, chunk)`` pair of an engine.

    A plain callable object (not a closure or bound method partial-ism)
    so the process/queue backends of :mod:`repro.runtime` can ship it by
    pickle; the engine itself pickles because its plan holds only layers,
    numpy arrays and (since :class:`repro.eval.robustness.PopcountFlipRate`
    became a dataclass) picklable flip-rate callables.
    """

    def __init__(self, engine: "InferenceEngine") -> None:
        self.engine = engine

    def __call__(self, item: Tuple[int, np.ndarray]) -> np.ndarray:
        offset, chunk = item
        return self.engine._run_chunk(chunk, offset)


class _ShmChunkTask:
    """Chunk task whose input/output ride shared memory, not pickle.

    Items are ``(start, stop)`` row ranges; the input batch and the
    output rows live in the parent's :class:`SharedArrayPool` segments
    and are referenced by descriptor, so the per-task pickle is the
    engine (once per worker via the shared-fn path) plus a few dozen
    bytes.  Workers attach the input read-only, compute the chunk with
    its true row offset (flip-noise streams derive from it — bit-exact
    with the serial path), and write the rows into the output segment,
    returning ``(start, None)``.  If the engine produces rows the
    preallocated segment cannot hold (shape/dtype drift), the rows fall
    back to the pickle path as ``(start, rows)`` and the parent patches
    them in — a slow path, never a wrong one.
    """

    def __init__(self, engine: "InferenceEngine", input_desc: ArrayDescriptor,
                 output_desc: ArrayDescriptor) -> None:
        self.engine = engine
        self.input_desc = input_desc
        self.output_desc = output_desc

    def __call__(self, item: Tuple[int, int]
                 ) -> Tuple[int, Optional[np.ndarray]]:
        start, stop = item
        batch = attach_view(self.input_desc, readonly=True)
        rows = self.engine._run_chunk(batch[start:stop], start)
        out = attach_view(self.output_desc, readonly=False)
        target = out[start:stop]
        if rows.shape == target.shape and rows.dtype == out.dtype:
            target[...] = rows
            return (start, None)
        return (start, rows)


class InferenceEngine:
    """Batched end-to-end inference with activations packed between layers.

    The constructor compiles ``model`` into a step plan: leading
    full-precision layers run densely; the first sign activation becomes the
    pack point; every ``binary layer [+ batch-norm] + sign`` triple executes
    as one fused packed kernel whose integer outputs are thresholded
    (``fold_batchnorm_sign``) and re-packed without ever materialising a
    dense activation; pooling ORs packed bytes and flatten repacks layouts;
    trailing full-precision layers unpack once and finish densely.  With
    ``flip_rate == 0`` the result is bit-exact with ``model.forward``.

    Parameters
    ----------
    model:
        The network to compile.  It is switched to eval mode; batch-norm
        statistics and weights are snapshot at construction — call
        :meth:`refresh` after mutating them.
    kernel:
        Matmul kernel for the fused steps: ``"auto"`` (size heuristic),
        ``"blas"`` or ``"packed"``.
    flip_rate:
        Per-popcount bit-flip probability modelling noisy crossbar reads —
        a single float applied to every binary layer, or a callable mapping
        the layer's XNOR vector length to a rate (see
        :func:`repro.eval.robustness.popcount_flip_rate`).
    seed:
        Base seed of the flip noise.  Flip streams are derived per
        (chunk offset, step), so results are deterministic for a given
        ``(seed, batch_size)`` no matter how calls are ordered or how many
        sweep workers share the grid.

    **Thread safety** (audited for the serving layer).  After construction
    the compiled plan — steps, folded sign specs, flip rates — is never
    mutated by :meth:`forward_batch`, every execution-path read of layer
    state goes through eval-mode (frozen) parameters, and the memoised
    binarised/packed weight operands are published under each binary
    layer's cache lock (see ``repro.bnn.layers._BinaryWeightCache``), so
    concurrent :meth:`forward_batch` / :meth:`predict_batch` calls on one
    engine are safe from any number of threads.  What is *not* safe
    concurrently with in-flight forwards: :meth:`refresh` (it rebuilds
    ``_steps`` in place), switching the model back to training mode, or
    mutating weights/batch-norm statistics — quiesce the callers (e.g.
    :meth:`repro.serving.InferenceService.close`) before doing any of
    those, then :meth:`refresh` and restart.
    """

    def __init__(self, model: BNNModel, *, kernel: str = "auto",
                 flip_rate: FlipRate = 0.0, seed: int = 0) -> None:
        if kernel not in ("auto", "blas", "packed"):
            raise ValueError(
                f"kernel must be 'auto', 'blas' or 'packed', got {kernel!r}"
            )
        self.model = model
        self.kernel = kernel
        self._seed = int(seed)
        self._flip_rate = flip_rate
        model.eval()
        self._steps: List[_PlanStep] = []
        self._probe_cache: Dict[Tuple[Tuple[int, ...], str],
                                Optional[np.ndarray]] = {}
        self.refresh()

    # ------------------------------------------------------------------ #
    # Plan compilation
    # ------------------------------------------------------------------ #
    def _resolve_flip_rate(self, vector_length: int) -> float:
        rate = self._flip_rate
        if callable(rate):
            rate = rate(vector_length)
        rate = float(rate)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"flip rate must be in [0, 1], got {rate!r}")
        return rate

    def refresh(self) -> None:
        """Recompile the plan (after weight / batch-norm mutations)."""
        self._probe_cache.clear()
        layers = self.model.layers
        for layer in layers:
            # direct weight mutations bypass the training-protocol
            # invalidation hooks, so drop the memoised packs here
            if isinstance(layer, (BinaryLinear, BinaryConv2d)):
                layer.invalidate_weight_cache()
        steps: List[_PlanStep] = []
        index = 0
        while index < len(layers):
            layer = layers[index]
            if isinstance(layer, (BinaryLinear, BinaryConv2d)):
                follower = index + 1
                batch_norm: Optional[BatchNorm] = None
                if follower < len(layers) and isinstance(layers[follower], BatchNorm):
                    batch_norm = layers[follower]
                    follower += 1
                has_sign = (follower < len(layers)
                            and isinstance(layers[follower], SignActivation))
                length = _binary_vector_length(layer)
                if has_sign:
                    steps.append(_PlanStep(
                        kind=_STEP_FUSED,
                        layer=layer,
                        batch_norm=batch_norm,
                        sign_spec=fold_batchnorm_sign(
                            batch_norm, _binary_num_outputs(layer), length
                        ),
                        flip_rate=self._resolve_flip_rate(length),
                        vector_length=length,
                    ))
                    index = follower + 1
                    continue
                # no trailing sign: emit dense integer pre-activations and
                # let any batch-norm run on the dense fallback path
                steps.append(_PlanStep(kind=_STEP_BINARY_DENSE, layer=layer,
                                       vector_length=length))
                index += 1
                continue
            if isinstance(layer, MaxPool2d):
                steps.append(_PlanStep(kind=_STEP_POOL, layer=layer))
            elif isinstance(layer, Flatten):
                steps.append(_PlanStep(kind=_STEP_FLATTEN, layer=layer))
            elif isinstance(layer, SignActivation):
                steps.append(_PlanStep(kind=_STEP_SIGN, layer=layer))
            else:
                steps.append(_PlanStep(kind=_STEP_DENSE, layer=layer))
            index += 1
        self._steps = steps

    @property
    def noise_flip_rates(self) -> Dict[str, float]:
        """Resolved bit-flip rate per fused binary step (for reporting)."""
        return {
            f"step{idx:02d}:{type(step.layer).__name__}": step.flip_rate
            for idx, step in enumerate(self._steps)
            if step.kind == _STEP_FUSED
        }

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _flip_rng(self, offset: int, step_index: int,
                  rate: float) -> Optional[np.random.Generator]:
        if rate <= 0.0:
            return None
        return make_rng(derive_seed(self._seed, f"{offset}/{step_index}"))

    def _run_steps(self, state: Union[np.ndarray, PackedTensor], offset: int,
                   start: int, stop: int) -> Union[np.ndarray, PackedTensor]:
        """Run plan steps ``[start, stop)`` on ``state`` (possibly packed).

        ``start``/``stop`` are *global* plan indices: the flip-noise stream
        of a fused step derives from ``(offset, step_index)`` with the
        step's position in the full plan, so running the plan in slices
        (the streaming pipeline's stages) draws exactly the same noise as
        one straight :meth:`_run_chunk` pass — the bit-exactness contract.
        """
        for step_index in range(start, stop):
            step = self._steps[step_index]
            packed = isinstance(state, PackedTensor)
            if step.kind == _STEP_FUSED:
                if not packed:
                    state = PackedTensor.pack_signs(state)
                state = step.layer.forward_packed(
                    state, step.sign_spec, kernel=self.kernel,
                    flip_rate=step.flip_rate,
                    rng=self._flip_rng(offset, step_index, step.flip_rate),
                )
            elif step.kind == _STEP_BINARY_DENSE:
                if not packed:
                    state = PackedTensor.pack_signs(state)
                state = step.layer.forward_packed(state, None, kernel=self.kernel)
            elif step.kind == _STEP_SIGN:
                if not packed:
                    state = PackedTensor.pack_signs(state)
            elif step.kind in (_STEP_POOL, _STEP_FLATTEN):
                if packed:
                    state = step.layer.forward_packed(state)
                else:
                    state = step.layer.forward(state)
            else:
                if packed:
                    state = state.to_bipolar().astype(np.float64)
                state = step.layer.forward(state)
        return state

    @staticmethod
    def _finalise(state: Union[np.ndarray, PackedTensor]) -> np.ndarray:
        if isinstance(state, PackedTensor):
            return state.to_bipolar().astype(np.float64)
        return state

    def _run_chunk(self, chunk: np.ndarray, offset: int) -> np.ndarray:
        return self._finalise(self._run_steps(chunk, offset, 0,
                                              len(self._steps)))

    def forward_batch(self, x: np.ndarray, *, batch_size: int = 256,
                      workers: Optional[int] = None,
                      backend: Optional[str] = None,
                      executor: Optional[Executor] = None,
                      pipeline: Optional[str] = None) -> np.ndarray:
        """Logits for a whole image batch through the packed plan.

        Each ``batch_size`` chunk is bit-exact with ``model.forward`` on the
        same chunk.  Note the *full-precision* first/last layers inherit
        BLAS's shape-dependent float rounding (the dense path itself differs
        in the last ulp when chunked differently), so compare against a dense
        pass over identical chunks; the binary layers are exact integer
        arithmetic at any chunking.

        The per-chunk loop is the engine's parallel seam: chunks are
        independent (flip-noise streams derive from each chunk's offset),
        so they fan out across any :mod:`repro.runtime` backend via
        ``workers=`` (process pool), ``backend=`` (``"serial"`` /
        ``"thread"`` / ``"process"`` / ``"queue"``) or a caller-owned
        ``executor=``.  Outputs are reassembled in offset order, so every
        backend is bit-exact with the serial path for a given
        ``(seed, batch_size)``.  The default stays serial — chunk-level
        parallelism is opt-in per call, and deliberately ignores the
        ``REPRO_RUNTIME_BACKEND`` toggle so sweep workers (which may
        themselves be pool processes that cannot spawn children) can call
        engines safely.

        When the executor is a same-host process pool (or a queue
        executor with ``REPRO_RUNTIME_SHM=on``), chunk inputs and result
        rows ride shared memory instead of pickle: the batch is shipped
        once into a :class:`repro.runtime.shm.SharedArrayPool` segment
        and tasks carry only ``(start, stop)`` plus descriptors — see
        :mod:`repro.runtime.shm` for the gating and cleanup rules.  The
        transport never changes results, only the wire format.

        ``pipeline=`` selects the *streaming packed pipeline* on the
        serial path: the plan is split into stages (dense prefix, packed
        binary body, dense tail) that run on their own threads connected
        by bounded queues, so chunk *k+1*'s BLAS prefix overlaps chunk
        *k*'s XNOR/popcount body.  ``"on"`` forces it, ``"off"`` disables
        it, ``"auto"`` defers to the per-host autotune cache, and ``None``
        (the default) reads the ``REPRO_ENGINE_PIPELINE`` env toggle
        (itself defaulting to ``"auto"``).  The pipeline preserves chunk
        boundaries and flip-noise seed derivation, so its output is
        byte-identical to the serial path.  It is a serial-path
        optimisation: combining an explicit ``pipeline=`` argument with
        ``executor=``/``backend=``/``workers=`` raises, while an
        env-provided ``"on"`` silently defers to the chunk-parallel
        executor.  See :mod:`repro.bnn.pipeline` and ``docs/runtime.md``.
        """
        x = np.asarray(x)
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if x.shape[0] == 0:
            raise ValueError("forward_batch needs at least one sample")
        parallel = (executor is not None or backend is not None
                    or bool(workers))
        if pipeline is not None and parallel:
            raise ValueError(
                "pipeline= applies to the serial path only; drop "
                "executor=/backend=/workers= or pass pipeline=None"
            )
        if not parallel:
            from repro.bnn.pipeline import maybe_stream

            streamed = maybe_stream(self, x, batch_size, pipeline)
            if streamed is not None:
                return streamed
        if executor is not None:
            return self._dispatch_chunks(x, batch_size, executor)
        with resolve_executor(backend=backend, workers=workers,
                              env=False) as runner:
            return self._dispatch_chunks(x, batch_size, runner)

    def _dispatch_chunks(self, x: np.ndarray, batch_size: int,
                         runner: Executor) -> np.ndarray:
        starts = range(0, x.shape[0], batch_size)
        if len(starts) > 1 and use_shm_transport(runner):
            return self._forward_batch_shm(x, batch_size, runner)
        items = [(start, x[start:start + batch_size]) for start in starts]
        outputs = runner.map(_ChunkTask(self), items)
        return np.concatenate(outputs, axis=0)

    def _probe_rows(self, x: np.ndarray) -> Optional[np.ndarray]:
        """Zero-row dry run revealing the output row shape and dtype.

        Every kernel on the plan is shape-polymorphic over an empty batch,
        so this costs microseconds; ``None`` signals the caller to fall
        back to probing with the first real chunk instead.  Memoised per
        input signature (``refresh()`` drops the memo) so repeated
        forward_batch calls pay the dry run once.
        """
        key = (x.shape[1:], x.dtype.str)
        if key not in self._probe_cache:
            try:
                self._probe_cache[key] = self._run_chunk(x[:0], 0)
            except Exception:
                self._probe_cache[key] = None
        return self._probe_cache[key]

    def _forward_batch_shm(self, x: np.ndarray, batch_size: int,
                           runner: Executor) -> np.ndarray:
        # The first chunk runs in-parent, but the worker chunks must be
        # submitted *before* it starts or the parent's compute serialises
        # ahead of pool spin-up instead of overlapping it.  A zero-row dry
        # run reveals the output row shape/dtype up front; only if that
        # probe fails does the first real chunk take over the probing role
        # (the pre-fix ordering, kept as the slow-but-safe path).
        probe = self._probe_rows(x)
        first_stop = min(batch_size, x.shape[0])
        if probe is None:
            first = self._run_chunk(x[:first_stop], 0)
            probe, prerun = first, first
        else:
            prerun = None
        out_shape = (x.shape[0],) + probe.shape[1:]
        with SharedArrayPool() as pool:
            input_desc = pool.share(x)
            output_desc = pool.allocate(out_shape, probe.dtype)
            items = [
                (start, min(start + batch_size, x.shape[0]))
                for start in range(batch_size, x.shape[0], batch_size)
            ]
            task = _ShmChunkTask(self, input_desc, output_desc)
            if prerun is None:
                # overlap the parent's chunk with the pool: a helper thread
                # computes chunk 0 (the kernels release the GIL) while the
                # main thread blocks in runner.map submitting the rest
                holder: Dict[str, object] = {}

                def _first_chunk() -> None:
                    try:
                        holder["rows"] = self._run_chunk(x[:first_stop], 0)
                    except BaseException as exc:  # re-raised in the parent
                        holder["error"] = exc

                worker = threading.Thread(target=_first_chunk,
                                          name="repro-shm-first-chunk")
                worker.start()
                try:
                    fallbacks = runner.map(task, items)
                finally:
                    worker.join()
                if "error" in holder:
                    raise holder["error"]  # type: ignore[misc]
                first = holder["rows"]  # type: ignore[assignment]
            else:
                fallbacks = runner.map(task, items)
            if first.shape[1:] == out_shape[1:] and first.dtype == probe.dtype:
                pool.view(output_desc)[:first.shape[0]] = first
                result = pool.read(output_desc)
                for start, rows in fallbacks:
                    if rows is not None:
                        result[start:start + rows.shape[0]] = rows
                return result
        # the dry run mis-predicted the row shape: the segment is useless
        # and every worker fell back to pickle rows — reassemble from those
        parts = {0: first}
        for start, rows in fallbacks:
            parts[start] = rows
        return np.concatenate(
            [parts[start] for start in sorted(parts)], axis=0
        )

    def predict_batch(self, x: np.ndarray, *, batch_size: int = 256,
                      **runtime_kwargs) -> np.ndarray:
        """Arg-max class indices for a whole image batch.

        ``runtime_kwargs`` (``workers=``, ``backend=``, ``executor=``)
        forward to :meth:`forward_batch`.
        """
        logits = self.forward_batch(x, batch_size=batch_size,
                                    **runtime_kwargs)
        return np.argmax(logits, axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fused = sum(1 for step in self._steps if step.kind == _STEP_FUSED)
        return (
            f"InferenceEngine({self.model.name!r}, steps={len(self._steps)}, "
            f"fused={fused}, kernel={self.kernel!r})"
        )
